package hamlet

import (
	"fmt"
	"time"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/obs"
	"hamlet/internal/stats"
)

// Span is a node of the hierarchical trace attached to Report.Trace (see
// internal/obs): per-stage wall-clock timings and counters for the whole
// Analyze pipeline, renderable as text or JSON.
type Span = obs.Span

// minReliableElapsed is the wall-clock duration below which a measured
// feature-selection time is treated as timer noise: speedups computed from
// sub-millisecond timings say more about the clock than about the plans, so
// Analyze falls back to the Evaluations ratio (see Report.SpeedupBasis).
const minReliableElapsed = time.Millisecond

// Speedup-basis values reported in Report.SpeedupBasis.
const (
	// SpeedupWallClock means Report.Speedup is the ratio of measured
	// feature-selection wall-clock times (the paper's Figure 7 metric).
	SpeedupWallClock = "wall-clock"
	// SpeedupEvaluations means Report.Speedup is the ratio of subset
	// evaluation counts — the hardware-independent runtime proxy, used when
	// the measured times are below timer resolution.
	SpeedupEvaluations = "evaluations"
)

// PlanOutcome reports one join plan's end-to-end result: the selected
// features, the holdout test error of the model trained on them, and the
// feature-selection cost.
type PlanOutcome struct {
	// Plan is the evaluated join plan.
	Plan Plan
	// InputFeatures is the number of candidate features after the plan's
	// joins.
	InputFeatures int
	// Selected names the features the method kept.
	Selected []string
	// ValError is the validation error of the selected subset.
	ValError float64
	// TestError is the final holdout test error.
	TestError float64
	// Elapsed is the wall-clock feature selection time.
	Elapsed time.Duration
	// Evaluations counts subset evaluations (a hardware-independent
	// runtime proxy).
	Evaluations int
}

// Report is the result of Analyze: the paper's JoinAll-versus-JoinOpt
// comparison on one dataset.
type Report struct {
	// Dataset names the analyzed dataset.
	Dataset string
	// Metric is the error metric used ("zero-one" or "RMSE").
	Metric string
	// Decisions are the advisor's per-attribute-table verdicts.
	Decisions []Decision
	// JoinAll is the outcome of joining every attribute table.
	JoinAll PlanOutcome
	// JoinOpt is the outcome of the advisor's plan.
	JoinOpt PlanOutcome
	// Speedup is JoinAll's feature-selection cost over JoinOpt's, measured
	// on the basis recorded in SpeedupBasis.
	Speedup float64
	// SpeedupBasis documents how Speedup was computed: SpeedupWallClock
	// when both measured times are reliable, SpeedupEvaluations when the
	// run was too fast to time and the subset-evaluation ratio is used
	// instead, "" when neither basis is available.
	SpeedupBasis string
	// Trace is the span tree of the run: materialization vs selection vs
	// train/eval time per plan, with per-stage counters.
	Trace *Span
}

// Analyze runs the paper's end-to-end pipeline on a normalized dataset: the
// advisor decides which joins are safe to avoid, then the feature selection
// method runs over both the JoinAll and JoinOpt designs with Naive Bayes
// under the 50/25/25 holdout protocol, and the report compares errors and
// runtimes. The advisor may be nil for the paper's defaults.
func Analyze(d *Dataset, method FeatureSelector, adv *Advisor, seed uint64) (*Report, error) {
	if d == nil {
		return nil, fmt.Errorf("hamlet: nil dataset")
	}
	if method == nil {
		return nil, fmt.Errorf("hamlet: nil feature selection method")
	}
	if adv == nil {
		adv = NewAdvisor()
	}
	root := obs.StartSpan("analyze(" + d.Name + ")")
	defer root.End()
	sp := root.Child("advise")
	optPlan, decisions, err := adv.JoinOptPlan(d)
	sp.End()
	if err != nil {
		return nil, err
	}
	split, err := dataset.DefaultSplit(d.NumRows(), stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:   d.Name,
		Metric:    ml.MetricName(d.NumClasses()),
		Decisions: decisions,
		Trace:     root,
	}
	rep.JoinAll, err = evaluatePlan(d, d.JoinAllPlan(), method, split, root.Child("plan(JoinAll)"))
	if err != nil {
		return nil, err
	}
	rep.JoinOpt, err = evaluatePlan(d, optPlan, method, split, root.Child("plan(JoinOpt)"))
	if err != nil {
		return nil, err
	}
	rep.Speedup, rep.SpeedupBasis = speedup(rep.JoinAll, rep.JoinOpt)
	return rep, nil
}

// speedup compares the two plans' feature-selection costs. Wall-clock is
// the paper's metric, but on datasets small enough that selection finishes
// below timer resolution the ratio of two noise-dominated timings is
// misleading (and used to surface as Speedup == 0); the subset-evaluation
// ratio is the hardware-independent fallback.
func speedup(all, opt PlanOutcome) (float64, string) {
	if all.Elapsed >= minReliableElapsed && opt.Elapsed >= minReliableElapsed {
		return float64(all.Elapsed) / float64(opt.Elapsed), SpeedupWallClock
	}
	if opt.Evaluations > 0 {
		return float64(all.Evaluations) / float64(opt.Evaluations), SpeedupEvaluations
	}
	return 0, ""
}

// EvaluatePlan runs one feature selection pass over the given plan and
// reports the selected subset's holdout test error. It shares its split
// logic with Analyze but lets callers compare arbitrary plans (e.g. the
// robustness study of Figure 8(A)).
func EvaluatePlan(d *Dataset, p Plan, method FeatureSelector, seed uint64) (PlanOutcome, error) {
	split, err := dataset.DefaultSplit(d.NumRows(), stats.NewRNG(seed))
	if err != nil {
		return PlanOutcome{}, err
	}
	return evaluatePlan(d, p, method, split, nil)
}

// evaluatePlan materializes the plan, selects features over the holdout
// split, and scores the winner on the test split, recording each stage as a
// child of sp (which may be nil for untraced runs).
func evaluatePlan(d *Dataset, p Plan, method FeatureSelector, split *Split, sp *obs.Span) (PlanOutcome, error) {
	defer sp.End()
	mat := sp.Child("materialize")
	design, err := d.Materialize(p)
	mat.End()
	if err != nil {
		return PlanOutcome{}, err
	}
	mat.Add("rows", int64(design.NumRows()))
	mat.Add("features", int64(design.NumFeatures()))
	train, val, test := split.Apply(design)
	sel := sp.Child("select(" + method.Name() + ")")
	start := time.Now()
	res, err := method.Select(nb.New(), train, val)
	elapsed := time.Since(start)
	sel.End()
	if err != nil {
		return PlanOutcome{}, err
	}
	sel.Add("evaluations", int64(res.Evaluations))
	sel.Add("selected", int64(len(res.Features)))
	te := sp.Child("train-eval")
	testErr, err := ml.Evaluate(nb.New(), train, test, res.Features)
	te.End()
	if err != nil {
		return PlanOutcome{}, err
	}
	sp.Add("evaluations", int64(res.Evaluations))
	sp.Add("input_features", int64(design.NumFeatures()))
	return PlanOutcome{
		Plan:          p,
		InputFeatures: design.NumFeatures(),
		Selected:      res.FeatureNames(train),
		ValError:      res.ValError,
		TestError:     testErr,
		Elapsed:       elapsed,
		Evaluations:   res.Evaluations,
	}, nil
}
