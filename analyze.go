package hamlet

import (
	"fmt"
	"time"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
)

// PlanOutcome reports one join plan's end-to-end result: the selected
// features, the holdout test error of the model trained on them, and the
// feature-selection cost.
type PlanOutcome struct {
	// Plan is the evaluated join plan.
	Plan Plan
	// InputFeatures is the number of candidate features after the plan's
	// joins.
	InputFeatures int
	// Selected names the features the method kept.
	Selected []string
	// ValError is the validation error of the selected subset.
	ValError float64
	// TestError is the final holdout test error.
	TestError float64
	// Elapsed is the wall-clock feature selection time.
	Elapsed time.Duration
	// Evaluations counts subset evaluations (a hardware-independent
	// runtime proxy).
	Evaluations int
}

// Report is the result of Analyze: the paper's JoinAll-versus-JoinOpt
// comparison on one dataset.
type Report struct {
	// Dataset names the analyzed dataset.
	Dataset string
	// Metric is the error metric used ("zero-one" or "RMSE").
	Metric string
	// Decisions are the advisor's per-attribute-table verdicts.
	Decisions []Decision
	// JoinAll is the outcome of joining every attribute table.
	JoinAll PlanOutcome
	// JoinOpt is the outcome of the advisor's plan.
	JoinOpt PlanOutcome
	// Speedup is JoinAll's selection time over JoinOpt's.
	Speedup float64
}

// Analyze runs the paper's end-to-end pipeline on a normalized dataset: the
// advisor decides which joins are safe to avoid, then the feature selection
// method runs over both the JoinAll and JoinOpt designs with Naive Bayes
// under the 50/25/25 holdout protocol, and the report compares errors and
// runtimes. The advisor may be nil for the paper's defaults.
func Analyze(d *Dataset, method FeatureSelector, adv *Advisor, seed uint64) (*Report, error) {
	if d == nil {
		return nil, fmt.Errorf("hamlet: nil dataset")
	}
	if method == nil {
		return nil, fmt.Errorf("hamlet: nil feature selection method")
	}
	if adv == nil {
		adv = NewAdvisor()
	}
	optPlan, decisions, err := adv.JoinOptPlan(d)
	if err != nil {
		return nil, err
	}
	split, err := dataset.DefaultSplit(d.NumRows(), stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Dataset:   d.Name,
		Metric:    ml.MetricName(d.NumClasses()),
		Decisions: decisions,
	}
	rep.JoinAll, err = evaluatePlan(d, d.JoinAllPlan(), method, split)
	if err != nil {
		return nil, err
	}
	rep.JoinOpt, err = evaluatePlan(d, optPlan, method, split)
	if err != nil {
		return nil, err
	}
	if rep.JoinOpt.Elapsed > 0 {
		rep.Speedup = float64(rep.JoinAll.Elapsed) / float64(rep.JoinOpt.Elapsed)
	}
	return rep, nil
}

// EvaluatePlan runs one feature selection pass over the given plan and
// reports the selected subset's holdout test error. It shares its split
// logic with Analyze but lets callers compare arbitrary plans (e.g. the
// robustness study of Figure 8(A)).
func EvaluatePlan(d *Dataset, p Plan, method FeatureSelector, seed uint64) (PlanOutcome, error) {
	split, err := dataset.DefaultSplit(d.NumRows(), stats.NewRNG(seed))
	if err != nil {
		return PlanOutcome{}, err
	}
	return evaluatePlan(d, p, method, split)
}

func evaluatePlan(d *Dataset, p Plan, method FeatureSelector, split *Split) (PlanOutcome, error) {
	design, err := d.Materialize(p)
	if err != nil {
		return PlanOutcome{}, err
	}
	train, val, test := split.Apply(design)
	start := time.Now()
	res, err := method.Select(nb.New(), train, val)
	elapsed := time.Since(start)
	if err != nil {
		return PlanOutcome{}, err
	}
	testErr, err := ml.Evaluate(nb.New(), train, test, res.Features)
	if err != nil {
		return PlanOutcome{}, err
	}
	return PlanOutcome{
		Plan:          p,
		InputFeatures: design.NumFeatures(),
		Selected:      res.FeatureNames(train),
		ValError:      res.ValError,
		TestError:     testErr,
		Elapsed:       elapsed,
		Evaluations:   res.Evaluations,
	}, nil
}
