package hamlet

import (
	"testing"
	"time"
)

func TestAnalyzeTrace(t *testing.T) {
	d := exampleDataset(t)
	rep, err := Analyze(d, ForwardSelection(), nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("Analyze returned no trace")
	}
	kids := rep.Trace.Children()
	names := make(map[string]bool, len(kids))
	for _, c := range kids {
		names[c.Name()] = true
	}
	for _, want := range []string{"advise", "plan(JoinAll)", "plan(JoinOpt)"} {
		if !names[want] {
			t.Errorf("trace missing %q child (have %v)", want, names)
		}
	}
	for _, c := range kids {
		if c.Name() == "advise" {
			continue
		}
		stages := make(map[string]bool)
		for _, g := range c.Children() {
			stages[g.Name()] = true
		}
		for _, want := range []string{"materialize", "select(forward)", "train-eval"} {
			if !stages[want] {
				t.Errorf("%s missing %q stage (have %v)", c.Name(), want, stages)
			}
		}
		if c.Counter("evaluations") <= 0 {
			t.Errorf("%s has no evaluations counter", c.Name())
		}
	}
	if rep.Speedup <= 0 {
		t.Errorf("Speedup = %v, want > 0", rep.Speedup)
	}
	if rep.SpeedupBasis != SpeedupWallClock && rep.SpeedupBasis != SpeedupEvaluations {
		t.Errorf("SpeedupBasis = %q", rep.SpeedupBasis)
	}
}

func TestSpeedupBasisFallback(t *testing.T) {
	reliable := 10 * time.Millisecond
	tests := []struct {
		name      string
		all, opt  PlanOutcome
		want      float64
		wantBasis string
	}{
		{
			name:      "wall-clock when both reliable",
			all:       PlanOutcome{Elapsed: 4 * reliable, Evaluations: 100},
			opt:       PlanOutcome{Elapsed: reliable, Evaluations: 10},
			want:      4,
			wantBasis: SpeedupWallClock,
		},
		{
			name:      "evaluations when opt below timer resolution",
			all:       PlanOutcome{Elapsed: 4 * reliable, Evaluations: 100},
			opt:       PlanOutcome{Elapsed: 0, Evaluations: 20},
			want:      5,
			wantBasis: SpeedupEvaluations,
		},
		{
			name:      "evaluations when both below timer resolution",
			all:       PlanOutcome{Elapsed: 0, Evaluations: 60},
			opt:       PlanOutcome{Elapsed: 0, Evaluations: 6},
			want:      10,
			wantBasis: SpeedupEvaluations,
		},
		{
			name:      "no basis when nothing measurable",
			all:       PlanOutcome{},
			opt:       PlanOutcome{},
			want:      0,
			wantBasis: "",
		},
	}
	for _, tc := range tests {
		got, basis := speedup(tc.all, tc.opt)
		if got != tc.want || basis != tc.wantBasis {
			t.Errorf("%s: speedup = %v (%q), want %v (%q)", tc.name, got, basis, tc.want, tc.wantBasis)
		}
	}
}
