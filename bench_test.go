package hamlet

// Benchmark harness: one testing.B benchmark per paper table/figure (each
// executes the full runner that regenerates that artifact at the Quick
// budget — see internal/experiments and EXPERIMENTS.md), plus
// micro-benchmarks for the substrate operations whose costs drive the
// paper's runtime results (KFK joins, Naive Bayes fitting and prediction,
// MI/IGR scoring, greedy selection steps, logistic regression epochs, and
// the decision rules themselves).
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7 -benchtime=1x   # one full fig7 regeneration

import (
	"fmt"
	"testing"

	"hamlet/internal/biasvar"
	"hamlet/internal/dataset"
	"hamlet/internal/experiments"
	"hamlet/internal/fs"
	"hamlet/internal/ml"
	"hamlet/internal/ml/logreg"
	"hamlet/internal/ml/nb"
	"hamlet/internal/obs"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// benchBudget keeps figure regenerations affordable under -bench.
var benchBudget = experiments.Budget{Worlds: 2, L: 6, NTest: 200, MimicScale: 0.02, Seed: 1}

func benchFigure(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig3(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8A(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFig8B(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFig8C(b *testing.B) { benchFigure(b, "fig8c") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkTAN(b *testing.B)   { benchFigure(b, "tan") }

// Monte Carlo engine scaling: one fig7-class simulation sweep (a deep
// bias–variance point, ~seconds of model fits) at fixed worker counts. The
// decompositions are bitwise-identical across the sub-benchmarks — only
// wall time moves — so the ratio between workers=1 and workers=N is the
// engine's parallel speedup on this machine (near-linear up to GOMAXPROCS;
// on a single-core runner all counts collapse to the serial time).
func BenchmarkMonteCarloWorkers(b *testing.B) {
	sim := synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := biasvar.Run(sim, biasvar.Config{
					NTrain: 1000, NTest: 500, L: 24, Worlds: 8, Seed: 1,
					Workers: workers, Learner: nb.New(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 3 {
					b.Fatalf("want 3 model classes, got %d", len(out))
				}
			}
		})
	}
}

// Substrate micro-benchmarks.

func benchWorldDesign(n int) *dataset.Design {
	w, err := synth.NewWorld(synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 100, P: 0.1}, 1)
	if err != nil {
		panic(err)
	}
	return w.Sample(n, stats.NewRNG(2))
}

// BenchmarkKFKJoin measures materializing a KFK equi-join of a 100k-row
// entity table with a 1k-row attribute table of 8 features.
func BenchmarkKFKJoin(b *testing.B) {
	rng := stats.NewRNG(3)
	const nR, nS, dR = 1000, 100000, 8
	r := relational.NewTable("R")
	for j := 0; j < dR; j++ {
		data := make([]int32, nR)
		for i := range data {
			data[i] = int32(rng.IntN(10))
		}
		r.MustAddColumn(&relational.Column{Name: "F" + string(rune('a'+j)), Card: 10, Data: data})
	}
	s := relational.NewTable("S")
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.IntN(nR))
	}
	s.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relational.Join(s, "FK", r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKFKJoinStreamed drains the same join through the streaming
// operator instead of materializing it: identical cells flow past a running
// sink, but residency is one chunk (O(chunk·width)), not the 3.2 MB
// denormalized table. The B/op column against BenchmarkKFKJoin is the
// memory-ceiling claim the CI benchdiff mem gate pins (≤5% of materialized).
func BenchmarkKFKJoinStreamed(b *testing.B) {
	rng := stats.NewRNG(3)
	const nR, nS, dR = 1000, 100000, 8
	r := relational.NewTable("R")
	for j := 0; j < dR; j++ {
		data := make([]int32, nR)
		for i := range data {
			data[i] = int32(rng.IntN(10))
		}
		r.MustAddColumn(&relational.Column{Name: "F" + string(rune('a'+j)), Card: 10, Data: data})
	}
	s := relational.NewTable("S")
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.IntN(nR))
	}
	s.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	src, err := relational.StreamJoin(relational.NewTableSource(s, relational.DefaultChunkSize), "FK", r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		src.Reset()
		for {
			ch, err := src.Next()
			if err != nil {
				b.Fatal(err)
			}
			if ch == nil {
				break
			}
			for _, col := range ch.Cols {
				sink += col[ch.Rows-1]
			}
		}
	}
	_ = sink
}

// BenchmarkKFKJoinStreamedStats pushes Naive Bayes sufficient statistics
// through the same streamed join (entity gains a binary target): the full
// join-then-count workload without ever holding the denormalized design.
// Compare BenchmarkKFKJoin + BenchmarkNBFit run back to back.
func BenchmarkKFKJoinStreamedStats(b *testing.B) {
	rng := stats.NewRNG(3)
	const nR, nS, dR = 1000, 100000, 8
	r := relational.NewTable("R")
	for j := 0; j < dR; j++ {
		data := make([]int32, nR)
		for i := range data {
			data[i] = int32(rng.IntN(10))
		}
		r.MustAddColumn(&relational.Column{Name: "F" + string(rune('a'+j)), Card: 10, Data: data})
	}
	s := relational.NewTable("S")
	y := make([]int32, nS)
	fk := make([]int32, nS)
	for i := range fk {
		y[i] = int32(rng.IntN(2))
		fk[i] = int32(rng.IntN(nR))
	}
	s.MustAddColumn(&relational.Column{Name: "Y", Card: 2, Data: y})
	s.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	ds := &dataset.Dataset{
		Name: "Bench", Entity: s, Target: "Y",
		Attrs: []dataset.AttributeTable{{Table: r, FK: "FK", ClosedDomain: true}},
	}
	p := ds.JoinAllPlan()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nb.StatsFromPlan(ds, p, relational.DefaultChunkSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBFit measures tabulating Naive Bayes sufficient statistics over
// a 50k-row, 9-feature design.
func BenchmarkNBFit(b *testing.B) {
	m := benchWorldDesign(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.NewStats(m)
	}
}

// BenchmarkNBPredict measures full-design prediction with a 9-feature model.
func BenchmarkNBPredict(b *testing.B) {
	m := benchWorldDesign(50000)
	feats := make([]int, m.NumFeatures())
	for i := range feats {
		feats[i] = i
	}
	mod, err := nb.New().Fit(m, feats)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.PredictAll(mod, m)
	}
}

// BenchmarkNBSubsetAssembly measures the decomposability fast path: O(1)
// model assembly from precomputed statistics — the reason wrapper search
// scales with features, not with re-counting.
func BenchmarkNBSubsetAssembly(b *testing.B) {
	m := benchWorldDesign(50000)
	st := nb.NewStats(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nb.ModelFromStats(st, []int{0, 2, 4}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutualInformation measures I(F;Y) over 100k rows.
func BenchmarkMutualInformation(b *testing.B) {
	rng := stats.NewRNG(5)
	n := 100000
	f := make([]int32, n)
	y := make([]int32, n)
	for i := 0; i < n; i++ {
		f[i] = int32(rng.IntN(50))
		y[i] = int32(rng.IntN(5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MutualInformation(f, 50, y, 5)
	}
}

// BenchmarkForwardSelection measures one full greedy forward search with the
// Naive Bayes fast path over 9 candidate features.
func BenchmarkForwardSelection(b *testing.B) {
	m := benchWorldDesign(20000)
	idx := make([]int, m.NumRows())
	for i := range idx {
		idx[i] = i
	}
	train := m.SelectRows(idx[:10000])
	val := m.SelectRows(idx[10000:])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (fs.Forward{}).Select(nb.New(), train, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardSelectionObsOff is BenchmarkForwardSelection with the
// metrics layer disabled — comparing the two proves the disabled-recorder
// fast path adds no measurable overhead to the hottest search loop (the
// acceptance bar is <2%; in practice the pair is within run-to-run noise).
func BenchmarkForwardSelectionObsOff(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	m := benchWorldDesign(20000)
	idx := make([]int, m.NumRows())
	for i := range idx {
		idx[i] = i
	}
	train := m.SelectRows(idx[:10000])
	val := m.SelectRows(idx[10000:])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (fs.Forward{}).Select(nb.New(), train, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogregEpochs measures training L1 softmax regression (20 epochs)
// on 10k rows with a 100-value FK among the features.
func BenchmarkLogregEpochs(b *testing.B) {
	m := benchWorldDesign(10000)
	feats := make([]int, m.NumFeatures())
	for i := range feats {
		feats[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logreg.New(logreg.L1).Fit(m, feats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkROR measures the decision-rule evaluation itself — the paper's
// point is that this is effectively free compared to feature selection.
func BenchmarkROR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ROR(500000, 50000, 2, DefaultDelta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvisor measures a full advisor pass over a generated mimic.
func BenchmarkAdvisor(b *testing.B) {
	spec, err := synth.MimicByName("Yelp")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := spec.Generate(0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	adv := NewAdvisor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adv.Decide(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneHotEncode measures one-hot encoding 10k rows of 9 features.
func BenchmarkOneHotEncode(b *testing.B) {
	m := benchWorldDesign(10000)
	feats := make([]int, m.NumFeatures())
	for i := range feats {
		feats[i] = i
	}
	enc := dataset.NewOneHot(m, feats)
	row := make([]float64, enc.Dims)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < m.NumRows(); r++ {
			enc.Row(r, row)
		}
	}
}

// BenchmarkNBFactorized measures factorized Naive Bayes training over a
// normalized mimic — sufficient statistics without materializing the join
// (companion-work [29] optimization; compare BenchmarkNBMaterialized).
func BenchmarkNBFactorized(b *testing.B) {
	spec, err := synth.MimicByName("Yelp")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := spec.Generate(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nb.StatsFromDataset(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBMaterialized measures the join-then-count baseline on the same
// mimic: materialize JoinAll, then tabulate statistics.
func BenchmarkNBMaterialized(b *testing.B) {
	spec, err := synth.MimicByName("Yelp")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := spec.Generate(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		design, err := ds.Materialize(ds.JoinAllPlan())
		if err != nil {
			b.Fatal(err)
		}
		nb.NewStats(design)
	}
}

// BenchmarkMimicGenerate measures generating the largest mimic at 2% scale.
func BenchmarkMimicGenerate(b *testing.B) {
	spec, err := synth.MimicByName("MovieLens1M")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Generate(0.02, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
