// Command advisord serves the paper's join-avoidance advisor as a
// long-lived HTTP daemon: the transport half of the decision service whose
// in-process floor cmd/loadgen measured (~2.2M decisions/s, p99 ≈ 1.2µs).
// Decisions are answered from internal/registry's cached sufficient
// statistics; a cold (dataset, scale, seed) tuple pays one generation plus
// statistics scan, guarded by the registry's once-cells, and is pure
// arithmetic afterwards.
//
// Usage:
//
//	advisord                                  # serve on 127.0.0.1:8080, Walmart preloaded
//	advisord -addr :9000 -datasets all        # preload every mimic
//	advisord -addr 127.0.0.1:0 -addrfile a    # ephemeral port, resolved address in a
//	advisord -out runs/adv                    # run artifacts: request-log events,
//	                                          # metrics, histograms.json at shutdown
//	advisord -trace-sample 0.01 -out runs/adv # distributed tracing: adopt/mint
//	                                          # traceparent, tail-sample traces
//	                                          # (errors + -slow always kept) into
//	                                          # traces.jsonl
//	advisord -slo-availability 0.999 \
//	         -slo-latency-objective 1ms       # live error-budget burn on /metrics
//
// Endpoints (see internal/server for the schema):
//
//	POST /v1/decide     1..N decisions in one round trip
//	GET  /v1/datasets   the catalog + what is loaded
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 until preload finishes / while draining)
//	GET  /metrics       Prometheus text exposition: counters, rolling rates,
//	                    windowed latency quantiles (`report watch` reads this)
//	GET  /debug/slow    recent slow-request exemplars (requests over -slow)
//	GET  /debug/vars    live expvar metrics (per-endpoint latency histograms)
//	GET  /debug/pprof/  runtime profiling
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener, drops readiness,
// lets in-flight requests finish within -drain, then flushes the latency
// histograms to histograms.json so `report latency` reads a server run
// exactly like a loadgen run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hamlet/internal/core"
	"hamlet/internal/obs"
	"hamlet/internal/registry"
	"hamlet/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests drive the full daemon —
// flags, preload, serving, signal-driven drain, and artifact persistence —
// in-process (the test sends the real SIGTERM).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("advisord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile  = fs.String("addrfile", "", "write the resolved listen address to this file once serving (scripts wait on it)")
		datasets  = fs.String("datasets", "Walmart", "comma-separated mimic names to preload before reporting ready, \"all\", or \"\" for none")
		scale     = fs.Float64("scale", 0.1, "default mimic scale for queries that omit one")
		seed      = fs.Uint64("seed", 1, "default generation seed for queries that omit one")
		rule      = fs.String("rule", "TR", "default decision rule for queries that omit one: TR or ROR")
		precision = fs.Int("precision", obs.DefaultPrecision, "latency histogram sub-bucket bits; quantile error ≤ 2^-precision")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
		outDir    = fs.String("out", "", "write run artifacts (manifest, request-log events, metrics, trace, histograms.json) to this directory")
		slow      = fs.Duration("slow", 10*time.Millisecond, "slow-request threshold: log + retain exemplars on /debug/slow (0 disables)")
		window    = fs.Duration("window", obs.DefaultWindow, "rolling-metrics window length for /metrics rates and quantiles")
		sample    = fs.Float64("trace-sample", 0, "distributed-trace head-sampling probability in [0,1] for requests arriving without a traceparent (0 = tracing off)")
		traceCap  = fs.Float64("trace-cap", 100, "max kept traces per second (0 = uncapped); errors and -slow requests are always kept, within the cap")
		sloAvail  = fs.Float64("slo-availability", 0, "availability SLO target in (0,1), e.g. 0.999; exposes the live error-budget burn rate on /metrics (0 disables)")
		sloLatObj = fs.Duration("slo-latency-objective", 0, "latency SLO objective, e.g. 1ms (0 disables the latency burn gauge)")
		sloLatTgt = fs.Float64("slo-latency-target", 0.99, "fraction of requests required within -slo-latency-objective")
		prof      obs.ProfileFlags
	)
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var defRule core.Rule
	switch strings.ToUpper(*rule) {
	case "TR":
		defRule = core.TRRule
	case "ROR":
		defRule = core.RORRule
	default:
		fmt.Fprintf(stderr, "advisord: unknown rule %q (want TR or ROR)\n", *rule)
		return 2
	}
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(stderr, "advisord: -scale must be in (0, 1]")
		return 2
	}
	if *drain <= 0 {
		fmt.Fprintln(stderr, "advisord: -drain must be positive")
		return 2
	}
	if *slow < 0 {
		fmt.Fprintln(stderr, "advisord: -slow must be non-negative (0 disables slow-request capture)")
		return 2
	}
	if *window <= 0 {
		fmt.Fprintln(stderr, "advisord: -window must be positive")
		return 2
	}
	if *sample < 0 || *sample > 1 {
		fmt.Fprintln(stderr, "advisord: -trace-sample must be in [0,1]")
		return 2
	}
	if *sloAvail < 0 || *sloAvail >= 1 {
		fmt.Fprintln(stderr, "advisord: -slo-availability must be in [0, 1), e.g. 0.999 (0 disables)")
		return 2
	}
	if *sloLatTgt <= 0 || *sloLatTgt >= 1 {
		fmt.Fprintln(stderr, "advisord: -slo-latency-target must be in (0, 1)")
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(stderr, "advisord: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "advisord: profiling: %v\n", err)
		}
	}()

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("advisord", fs))
	if err != nil {
		fmt.Fprintf(stderr, "advisord: %v\n", err)
		return 1
	}
	root := obs.StartSpan("advisord")

	cfg := server.Config{
		Scale:               *scale,
		Seed:                *seed,
		Rule:                defRule,
		Precision:           *precision,
		Events:              runDir.Events(),
		Window:              *window,
		Slow:                *slow,
		SlowLog:             stderr,
		SLOAvailability:     *sloAvail,
		SLOLatencyObjective: *sloLatObj,
		SLOLatencyTarget:    *sloLatTgt,
	}
	// Tracing is an explicit opt-in via -trace-sample: a sampler built from
	// the default flags alone would record spans for every request just to
	// keep slow ones — fine, but not behind the operator's back. The -slow
	// threshold doubles as the tail sampler's always-keep rule.
	if *sample > 0 {
		cfg.Sampler = obs.NewSampler(*sample, *traceCap, *slow)
		cfg.Traces = runDir.Traces()
	}
	srv := server.New(cfg)

	// Preload before listening: the addrfile appearing means the server is
	// both reachable and ready, so scripts need only one wait.
	setup := root.Child("setup(preload)")
	var names []string
	switch *datasets {
	case "":
	case "all":
		names = registry.Names()
	default:
		names = strings.Split(*datasets, ",")
	}
	if err := srv.Preload(names...); err != nil {
		setup.End()
		fmt.Fprintf(stderr, "advisord: %v\n", err)
		_ = runDir.Close(root, err)
		return 1
	}
	setup.End()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "advisord: %v\n", err)
		_ = runDir.Close(root, err)
		return 1
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "advisord: %v\n", err)
			_ = runDir.Close(root, err)
			return 1
		}
		// The addrfile means "reachable": remove it when this process stops
		// serving, so a waiting script never reads a dead server's address.
		defer os.Remove(*addrFile)
	}
	fmt.Fprintf(stdout, "advisord: listening on %s (datasets %s, scale %g, seed %d, rule %s)\n",
		resolved, *datasets, *scale, *seed, strings.ToUpper(*rule))
	runDir.Events().Emit("listening", slog.String("addr", resolved))

	// Signal-driven drain: first SIGINT/SIGTERM starts the graceful
	// shutdown; Serve returns once the listener closes, and the drain
	// error (nil unless in-flight requests outlived -drain) arrives on
	// shutdownErr.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	shutdownErr := make(chan error, 1)
	go func() {
		sig, ok := <-sigs
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "advisord: %v: draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	serve := root.Child("serve")
	serveErr := srv.Serve(ln)
	serve.End()
	signal.Stop(sigs)
	close(sigs)
	if serveErr != nil {
		fmt.Fprintf(stderr, "advisord: %v\n", serveErr)
		_ = runDir.Close(root, serveErr)
		return 1
	}
	drainErr := <-shutdownErr

	reqs, errs := srv.Stats()
	serve.Add("requests", reqs)
	fmt.Fprintf(stdout, "advisord: served %d requests (%d errors)\n", reqs, errs)
	if cfg.Sampler != nil {
		fmt.Fprintf(stdout, "traces:   %d kept (sample %g, cap %g/s, slow %v)\n",
			cfg.Traces.Len(), *sample, *traceCap, *slow)
	}
	hists := srv.Histograms()
	if h := hists[server.LatencyHist]; h.Count > 0 {
		fmt.Fprintf(stdout, "latency:  p50 %v  p90 %v  p99 %v  p99.9 %v  (min %v  max %v)\n",
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.90)),
			time.Duration(h.Quantile(0.99)), time.Duration(h.Quantile(0.999)),
			time.Duration(h.Min), time.Duration(h.Max))
	}
	sumAttrs := []slog.Attr{
		slog.Int64("requests", reqs),
		slog.Int64("errors", errs),
		slog.Int64("p50_ns", hists[server.LatencyHist].Quantile(0.50)),
		slog.Int64("p99_ns", hists[server.LatencyHist].Quantile(0.99)),
	}
	if cfg.Sampler != nil {
		sumAttrs = append(sumAttrs, slog.Int64("traces_kept", cfg.Traces.Len()))
	}
	runDir.Events().Emit("advisord_summary", sumAttrs...)
	if err := runDir.WriteHistograms(hists); err != nil {
		fmt.Fprintf(stderr, "advisord: %v\n", err)
		return 1
	}
	root.End()
	if drainErr != nil {
		fmt.Fprintf(stderr, "advisord: drain: %v (in-flight requests outlived the %v deadline)\n", drainErr, *drain)
		_ = runDir.Close(root, drainErr)
		return 1
	}
	if err := runDir.Close(root, nil); err != nil {
		fmt.Fprintf(stderr, "advisord: run artifacts: %v\n", err)
		return 1
	}
	return 0
}
