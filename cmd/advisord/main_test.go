package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hamlet/internal/obs"
	"hamlet/internal/server"
)

// syncBuffer guards the output buffers: run() writes from the daemon
// goroutine while the test reads after it exits.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesDrainsAndPersists drives the daemon end to end in-process:
// ephemeral port, addrfile discovery, a live decide round trip, a real
// SIGTERM, and the flushed run artifacts.
func TestRunServesDrainsAndPersists(t *testing.T) {
	tmp := t.TempDir()
	addrFile := filepath.Join(tmp, "addr")
	outDir := filepath.Join(tmp, "run")
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addrfile", addrFile,
			"-datasets", "Walmart",
			"-scale", "0.02",
			"-slow", "1ns", // every request becomes a slow exemplar
			"-trace-sample", "1",
			"-slo-availability", "0.999",
			"-slo-latency-objective", "100ms",
			"-out", outDir,
		}, &stdout, &stderr)
	}()

	// The addrfile appears once the daemon is ready and listening.
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
			break
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited early with %d\nstderr:\n%s", code, stderr.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("addrfile never appeared\nstderr:\n%s", stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d after preload", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/decide", "application/json",
		strings.NewReader(`{"requests": [{"dataset": "Walmart"}, {"dataset": "Walmart", "rule": "ROR"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out server.DecideResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("decide status %d, %d results", resp.StatusCode, len(out.Results))
	}
	// Tracing is on: the response names the server's span context.
	if _, err := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader)); err != nil {
		t.Errorf("decide response traceparent: %v", err)
	}

	// The live telemetry surfaces answer while the daemon serves.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"advisord_requests_total", "advisord_request_latency_seconds", "advisord_ready 1",
		"advisord_build_info{", `advisord_slo_error_budget_burn{slo="availability"}`,
		`advisord_slo_error_budget_burn{slo="latency"}`, "advisord_traces_total",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	resp, err = http.Get(base + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow server.SlowResponse
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total < 1 {
		t.Errorf("-slow 1ns retained no exemplars: %+v", slow)
	}
	for _, sr := range slow.Slow {
		if sr.TraceID == "" {
			t.Errorf("slow exemplar %s carries no trace ID", sr.ID)
		}
	}

	// The real signal: the daemon must drain and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d\nstderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	for _, want := range []string{"listening on", "served", "traces:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "slow request id=") {
		t.Errorf("stderr missing slow-request log line:\n%s", stderr.String())
	}

	// The addrfile is a liveness signal: a stopped daemon must not leave a
	// stale address behind for the next script to trust.
	if _, err := os.Stat(addrFile); !os.IsNotExist(err) {
		t.Errorf("addrfile still present after clean exit (stat err = %v)", err)
	}

	// The run dir carries the full artifact set; histograms.json holds the
	// per-endpoint latency series under the loadgen-compatible names.
	for _, f := range []string{obs.ManifestFile, obs.EventsFile, obs.MetricsFile, obs.TraceFile, obs.HistogramsFile} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(outDir, obs.HistogramsFile))
	if err != nil {
		t.Fatal(err)
	}
	var art obs.HistogramsArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.SchemaVersion != obs.SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", art.SchemaVersion, obs.SchemaVersion)
	}
	total, ok := art.Histograms[server.LatencyHist]
	if !ok || total.Count < 2 {
		t.Errorf("run-level histogram = %+v (ok=%v), want count ≥ 2", total, ok)
	}
	if h, ok := art.Histograms[server.LatencyHist+".decide"]; !ok || h.Count < 1 {
		t.Errorf("decide histogram = %+v (ok=%v)", h, ok)
	}
	events, err := os.ReadFile(filepath.Join(outDir, obs.EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"msg":"http_request"`, `"msg":"advisord_summary"`, `"path":"/v1/decide"`, `"trace_id":"`, `"traces_kept":`} {
		if !bytes.Contains(events, []byte(want)) {
			t.Errorf("events.jsonl missing %s", want)
		}
	}
	// Every request was slow (hence kept): the trace artifact holds server
	// span trees.
	traces, err := os.ReadFile(filepath.Join(outDir, obs.TracesFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"server"`, `"name":"server(decide)"`, `"trace_id":"`} {
		if !bytes.Contains(traces, []byte(want)) {
			t.Errorf("traces.jsonl missing %s:\n%s", want, traces)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-rule", "nope"},
		{"-scale", "0"},
		{"-scale", "1.5"},
		{"-drain", "0s"},
		{"-slow", "-1ms"},
		{"-window", "0s"},
		{"-trace-sample", "1.5"},
		{"-trace-sample", "-0.1"},
		{"-slo-availability", "1"},
		{"-slo-latency-target", "0"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var stdout, stderr syncBuffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestRunUnknownPreloadDatasetFails(t *testing.T) {
	var stdout, stderr syncBuffer
	code := run([]string{"-datasets", "NoSuchDataset", "-addr", "127.0.0.1:0"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "NoSuchDataset") {
		t.Errorf("stderr does not name the dataset:\n%s", stderr.String())
	}
}
