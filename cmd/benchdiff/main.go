// Command benchdiff compares two benchmark snapshots and gates on perf
// regressions, closing the loop that scripts/bench.sh opens: bench.sh
// snapshots the suite per commit, benchdiff says whether the join-avoidance
// speedups (and everything else) held between two of them.
//
// Usage:
//
//	benchdiff old.json new.json            # any mix of formats
//	benchdiff -threshold 0.05 old.json new.json
//	go test -run '^$' -bench . -count 5 ./... > new.txt
//	benchdiff BENCH_2026-08-06.json new.txt
//
// Inputs may be bench.sh snapshots ({"meta": ..., "benchmarks": ...}), the
// legacy bare-array snapshots from earlier commits, or raw `go test -bench`
// output. Benchmarks are aligned by name; with -count N samples on both
// sides, a Welch t-test (internal/stats) filters run-to-run noise at level
// -alpha, and single-sample comparisons fall back to the threshold alone.
//
// Exit status: 0 when no benchmark regressed beyond -threshold, 1 when at
// least one did (so CI can gate on it), 2 on usage or parse errors, 3 when
// the comparison would be vacuous — the old (baseline) snapshot does not
// exist, or the two snapshots share zero benchmark names. The distinct code
// lets CI tell "the gate passed" from "the gate never ran": a missing or
// disjoint baseline must not masquerade as a clean pass. The convention is
// shared with `report diff` (see internal/exitcode).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"text/tabwriter"

	"hamlet/internal/bench"
	"hamlet/internal/exitcode"
)

// Exit codes follow the shared gate convention (internal/exitcode): CI
// gates on the difference between a real regression (1) and a comparison
// that never happened (3). cmd/report's diff subcommand uses the same
// codes for accuracy drift.
const (
	exitOK         = exitcode.OK
	exitRegression = exitcode.Failed
	exitUsage      = exitcode.Usage
	exitVacuous    = exitcode.Vacuous
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the full CLI —
// flags, parsing, report rendering, and exit-code policy — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "regression threshold on the ns/op delta (0.10 = 10% slower)")
	memThreshold := fs.Float64("memthreshold", 0.10, "regression threshold on the B/op and allocs/op deltas; applies only to benchmarks where both snapshots record memory (-benchmem)")
	alpha := fs.Float64("alpha", 0.05, "significance level for the Welch t-test when both sides have multiple samples")
	quiet := fs.Bool("q", false, "suppress the per-benchmark table; print only regressions and the geomean")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] old.json new.json\n\ncompare two bench.sh snapshots (or raw `go test -bench` output) and exit 1 on regression\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return exitUsage
	}
	oldSnap, err := bench.ParseFile(fs.Arg(0))
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			fmt.Fprintf(stderr, "benchdiff: baseline snapshot %s does not exist; nothing to gate against (run scripts/bench.sh at the baseline commit, or commit its BENCH_*.json)\n", fs.Arg(0))
			return exitVacuous
		}
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return exitUsage
	}
	newSnap, err := bench.ParseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return exitUsage
	}
	rep := bench.Diff(oldSnap, newSnap)
	if len(rep.Deltas) == 0 {
		fmt.Fprintf(stderr, "benchdiff: no overlapping benchmarks between %s (%d) and %s (%d); the comparison is vacuous, not a pass\n",
			fs.Arg(0), len(oldSnap.Benchmarks), fs.Arg(1), len(newSnap.Benchmarks))
		return exitVacuous
	}
	regressions := rep.Regressions(*threshold, *alpha)
	memRegressions := rep.MemRegressions(*memThreshold, *alpha)
	if !*quiet {
		writeTable(stdout, rep, *threshold, *alpha)
	}
	fmt.Fprintf(stdout, "geomean: %+.2f%% over %d benchmarks", 100*(rep.Geomean-1), len(rep.Deltas))
	if len(rep.OnlyOld) > 0 || len(rep.OnlyNew) > 0 {
		fmt.Fprintf(stdout, " (%d only in old, %d only in new)", len(rep.OnlyOld), len(rep.OnlyNew))
	}
	fmt.Fprintln(stdout)
	failed := false
	if len(regressions) > 0 {
		failed = true
		fmt.Fprintf(stdout, "REGRESSION: %d benchmark(s) slower than %+.0f%%:\n", len(regressions), 100**threshold)
		for _, d := range regressions {
			fmt.Fprintf(stdout, "  %s %+.1f%% (%s -> %s)%s\n",
				d.Name, 100*d.Delta, ns(d.OldNs), ns(d.NewNs), pNote(d))
		}
	}
	if len(memRegressions) > 0 {
		failed = true
		fmt.Fprintf(stdout, "MEM REGRESSION: %d benchmark(s) allocating more than %+.0f%%:\n", len(memRegressions), 100**memThreshold)
		for _, d := range memRegressions {
			if d.BytesRegressed(*memThreshold, *alpha) {
				fmt.Fprintf(stdout, "  %s B/op %+.1f%% (%s -> %s)\n",
					d.Name, 100*d.BytesDelta, bytes(d.OldBytes), bytes(d.NewBytes))
			}
			if d.AllocsRegressed(*memThreshold, *alpha) {
				fmt.Fprintf(stdout, "  %s allocs/op %+.1f%% (%.0f -> %.0f)\n",
					d.Name, 100*d.AllocsDelta, d.OldAllocs, d.NewAllocs)
			}
		}
	}
	if failed {
		return exitRegression
	}
	return exitOK
}

// writeTable renders the per-benchmark comparison, flagging each row as a
// regression (>), an improvement (<), or noise-level (~).
func writeTable(w io.Writer, rep *bench.Report, threshold, alpha float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tp\tB/op\tallocs/op\t")
	for _, d := range rep.Deltas {
		mark := "~"
		switch {
		case d.Delta > threshold && d.Significant(alpha):
			mark = ">"
		case d.Delta < -threshold && d.Significant(alpha):
			mark = "<"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%\t%s\t%s\t%s\t%s\n",
			d.Name, ns(d.OldNs), ns(d.NewNs), 100*d.Delta, pString(d), bytesString(d), allocsString(d), mark)
	}
	tw.Flush()
	for _, name := range rep.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", name)
	}
	for _, name := range rep.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", name)
	}
}

// ns renders a ns/op mean compactly.
func ns(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gµs", v/1e3)
	default:
		return fmt.Sprintf("%.4gns", v)
	}
}

// pString renders the p-value column ("-" when untestable).
func pString(d bench.Delta) string {
	if math.IsNaN(d.P) {
		return "-"
	}
	return fmt.Sprintf("%.3f", d.P)
}

// pNote annotates a regression line with its statistical backing.
func pNote(d bench.Delta) string {
	if math.IsNaN(d.P) {
		return " [single sample; rerun bench.sh with COUNT>1 for significance]"
	}
	return fmt.Sprintf(" [p=%.3f, n=%d/%d]", d.P, d.NOld, d.NNew)
}

// allocsString renders the allocs/op transition, or "-" when unrecorded.
func allocsString(d bench.Delta) string {
	if math.IsNaN(d.OldAllocs) || math.IsNaN(d.NewAllocs) {
		return "-"
	}
	if d.OldAllocs == d.NewAllocs {
		return fmt.Sprintf("%.0f", d.NewAllocs)
	}
	return fmt.Sprintf("%.0f->%.0f", d.OldAllocs, d.NewAllocs)
}

// bytesString renders the B/op transition, or "-" when unrecorded.
func bytesString(d bench.Delta) string {
	if math.IsNaN(d.OldBytes) || math.IsNaN(d.NewBytes) {
		return "-"
	}
	if d.OldBytes == d.NewBytes {
		return bytes(d.NewBytes)
	}
	return bytes(d.OldBytes) + "->" + bytes(d.NewBytes)
}

// bytes renders a B/op mean compactly.
func bytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.3gGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.4gMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.4gKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.4gB", v)
	}
}
