package main

import (
	"strings"
	"testing"
)

func TestExitCodeOnCleanComparison(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"testdata/old.json", "testdata/new_ok.json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "geomean:") {
		t.Errorf("missing geomean line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("clean comparison reported a regression:\n%s", out.String())
	}
}

func TestExitCodeOnRegression(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"testdata/old.json", "testdata/new_regressed.json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "REGRESSION") || !strings.Contains(text, "BenchmarkForwardSelection") {
		t.Errorf("regression report missing offender:\n%s", text)
	}
	// The +25% injected regression should carry its p-value and sample
	// counts (3 samples per side in the fixtures).
	if !strings.Contains(text, "n=3/3") {
		t.Errorf("regression line missing sample counts:\n%s", text)
	}
}

func TestExitCodeOnMemRegression(t *testing.T) {
	var out, errb strings.Builder
	// The fixture holds ns/op at the baseline and regresses only memory:
	// BenchmarkKFKJoin's B/op by +25%, BenchmarkNBFit's allocs/op by +67%.
	code := run([]string{"testdata/old.json", "testdata/new_memregressed.json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, out.String())
	}
	text := out.String()
	if strings.Contains(text, "REGRESSION: ") && !strings.Contains(text, "MEM REGRESSION") {
		t.Errorf("time gate fired on a mem-only fixture:\n%s", text)
	}
	if !strings.Contains(text, "MEM REGRESSION") {
		t.Errorf("mem regression report missing:\n%s", text)
	}
	if !strings.Contains(text, "BenchmarkKFKJoin B/op") {
		t.Errorf("B/op offender missing:\n%s", text)
	}
	if !strings.Contains(text, "BenchmarkNBFit allocs/op") {
		t.Errorf("allocs/op offender missing:\n%s", text)
	}
}

func TestMemThresholdFlagLoosensGate(t *testing.T) {
	var out, errb strings.Builder
	// 25% B/op and 67% allocs/op regressions pass under a 70% threshold.
	code := run([]string{"-memthreshold", "0.7", "testdata/old.json", "testdata/new_memregressed.json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with 70%% memthreshold; stdout:\n%s", code, out.String())
	}
	// The time threshold does not loosen the mem gate.
	code = run([]string{"-threshold", "0.9", "testdata/old.json", "testdata/new_memregressed.json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 with loose time threshold only; stdout:\n%s", code, out.String())
	}
}

func TestThresholdFlagLoosensGate(t *testing.T) {
	var out, errb strings.Builder
	// new_regressed.json regresses both time and memory on
	// BenchmarkForwardSelection, so both gates must be loosened to pass.
	code := run([]string{"-threshold", "0.5", "-memthreshold", "0.5", "testdata/old.json", "testdata/new_regressed.json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with 50%% thresholds; stdout:\n%s", code, out.String())
	}
	// Loosening only the time gate leaves the mem gate armed.
	out.Reset()
	code = run([]string{"-threshold", "0.5", "testdata/old.json", "testdata/new_regressed.json"}, &out, &errb)
	if code != 1 || !strings.Contains(out.String(), "MEM REGRESSION") {
		t.Fatalf("exit = %d, want 1 from the mem gate alone; stdout:\n%s", code, out.String())
	}
}

func TestQuietSuppressesTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-q", "testdata/old.json", "testdata/new_ok.json"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.Contains(out.String(), "BenchmarkKFKJoin") {
		t.Errorf("-q should suppress the per-benchmark table:\n%s", out.String())
	}
}

func TestUsageAndParseErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"one-arg.json"}, &out, &errb); code != 2 {
		t.Errorf("missing arg: exit = %d, want 2", code)
	}
	if code := run([]string{"testdata/old.json", "testdata/does_not_exist.json"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
	if code := run([]string{"-threshold", "oops", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}

func TestMissingBaselineIsVacuousNotPass(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"testdata/no_such_baseline.json", "testdata/new_ok.json"}, &out, &errb)
	if code != exitVacuous {
		t.Fatalf("exit = %d, want %d for a missing baseline; stderr:\n%s", code, exitVacuous, errb.String())
	}
	if !strings.Contains(errb.String(), "does not exist") || !strings.Contains(errb.String(), "bench.sh") {
		t.Errorf("missing-baseline message should say what happened and how to fix it:\n%s", errb.String())
	}
	// A missing *new* snapshot is an ordinary usage error, not a vacuous
	// baseline: the caller just ran the suite, so the path is their typo.
	if code := run([]string{"testdata/old.json", "testdata/no_such_new.json"}, &out, &errb); code != exitUsage {
		t.Errorf("missing new snapshot: exit = %d, want %d", code, exitUsage)
	}
}

func TestZeroOverlapIsVacuousNotPass(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"testdata/old.json", "testdata/disjoint.json"}, &out, &errb)
	if code != exitVacuous {
		t.Fatalf("exit = %d, want %d for zero overlapping benchmarks; stderr:\n%s", code, exitVacuous, errb.String())
	}
	if !strings.Contains(errb.String(), "no overlapping benchmarks") || !strings.Contains(errb.String(), "vacuous") {
		t.Errorf("zero-overlap message should name the problem:\n%s", errb.String())
	}
}

func TestSelfComparisonIsAlwaysClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"testdata/old.json", "testdata/old.json"}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exit = %d, want 0; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "geomean: +0.00%") {
		t.Errorf("self-diff geomean should be exactly zero:\n%s", out.String())
	}
}
