// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure (3, 4, 6, 7, 8A/B/C, 9, 10, 11, 12, 13, and the Appendix
// E TAN study) from the simulation framework and the dataset mimics.
//
// Usage:
//
//	experiments                    # run everything at the full budget
//	experiments -id fig7           # one experiment
//	experiments -id fig3,fig4      # a comma-separated list
//	experiments -quick             # the fast budget (CI-sized)
//	experiments -workers 8         # parallel Monte Carlo engine (same results)
//	experiments -scale 0.05        # override the mimic scale
//	experiments -csv out/          # also write each table as CSV
//
// Observability (see internal/obs):
//
//	experiments -id fig3 -quick -progress   # progress/ETA lines on stderr
//	experiments -id fig7 -trace             # span tree with per-stage timings
//	experiments -cpuprofile cpu.out -memprofile mem.out
//	experiments -http :6060                 # live pprof + /debug/vars
//	experiments -id fig3 -out runs/fig3     # persist run artifacts, including
//	                                        # per-figure results.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hamlet/internal/experiments"
	"hamlet/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("id", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+"), a comma-separated list, or \"all\"")
		quick    = flag.Bool("quick", false, "use the fast budget instead of the full one")
		scale    = flag.Float64("scale", 0, "override the mimic scale (0 keeps the budget default)")
		worlds   = flag.Int("worlds", 0, "override Monte Carlo world count (0 keeps default)")
		l        = flag.Int("L", 0, "override training sets per world (0 keeps default)")
		seed     = flag.Uint64("seed", 0, "override the seed (0 keeps default)")
		workers  = flag.Int("workers", 0, "worker goroutines for the Monte Carlo fan-out (0 = GOMAXPROCS); results are identical at any count")
		csvDir   = flag.String("csv", "", "directory to write per-table CSV files (optional)")
		progress = flag.Bool("progress", false, "print periodic progress/ETA lines to stderr")
		trace    = flag.Bool("trace", false, "print a span tree with per-stage timings and counters after each experiment")
		outDir   = flag.String("out", "", "write run artifacts (manifest.json, events.jsonl, metrics.json, trace.json, results.jsonl) to this directory")
		prof     obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	ids, err := parseIDs(*id, experiments.IDs())
	if err != nil {
		return err
	}

	budget := experiments.Full
	if *quick {
		budget = experiments.Quick
	}
	if *scale != 0 {
		budget.MimicScale = *scale
	}
	if *worlds != 0 {
		budget.Worlds = *worlds
	}
	if *l != 0 {
		budget.L = *l
	}
	if *seed != 0 {
		budget.Seed = *seed
	}
	budget.Workers = *workers

	stop, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: profiling: %v\n", err)
		}
	}()

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("experiments", flag.CommandLine))
	if err != nil {
		return err
	}
	var runRoot *obs.Span
	if runDir != nil {
		runRoot = obs.StartSpan("experiments")
	}

	runErr := func() error {
		for _, eid := range ids {
			b := budget
			if *progress || runDir != nil {
				w := io.Writer(io.Discard)
				if *progress {
					w = os.Stderr
				}
				b.Progress = obs.NewProgress(w, eid, 2*time.Second)
				b.Progress.AttachEvents(runDir.Events())
			}
			var root *obs.Span
			if *trace || runDir != nil {
				root = obs.StartSpan(eid)
				b.Trace = root
			}
			start := time.Now()
			res, err := experiments.Run(eid, b)
			root.End()
			runRoot.Adopt(root)
			b.Progress.Flush()
			if err != nil {
				return fmt.Errorf("%s: %w", eid, err)
			}
			elapsed := time.Since(start)
			runDir.Events().Emit("experiment",
				slog.String("id", eid),
				slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
				slog.Int("tables", len(res.Tables)),
			)
			if err := appendResults(runDir, res); err != nil {
				return fmt.Errorf("results %s: %w", eid, err)
			}
			fmt.Printf("## %s (%v)\n\n", eid, elapsed.Round(time.Millisecond))
			if err := res.WriteText(os.Stdout); err != nil {
				return fmt.Errorf("render %s: %w", eid, err)
			}
			if *trace {
				if err := root.WriteText(os.Stderr); err != nil {
					return fmt.Errorf("trace %s: %w", eid, err)
				}
			}
			if *csvDir != "" {
				if err := writeCSVs(*csvDir, res); err != nil {
					return fmt.Errorf("csv %s: %w", eid, err)
				}
			}
		}
		return nil
	}()
	runRoot.End()
	if cerr := runDir.Close(runRoot, runErr); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return runErr
}

// appendResults streams every table row of one experiment into the run's
// results.jsonl: one self-describing obs.ResultRow line per row (schema v1,
// header order preserved via Columns), so `report tables` can rebuild the
// rendered tables without re-running the Monte Carlo sweep.
func appendResults(runDir *obs.RunDir, res *experiments.Result) error {
	if runDir == nil {
		return nil
	}
	for _, tab := range res.Tables {
		for _, row := range tab.Rows {
			cells := make(map[string]string, len(tab.Columns))
			for i, col := range tab.Columns {
				cells[col] = row[i]
			}
			line := obs.ResultRow{
				V:          obs.SchemaVersion,
				Experiment: res.ID,
				Table:      tab.Title,
				Columns:    tab.Columns,
				Cells:      cells,
			}
			if err := runDir.AppendResult(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseIDs expands and validates the -id flag against the registry before
// anything runs: "all" means every registered experiment, otherwise a
// comma-separated list of known ids (duplicates preserved, blanks ignored).
func parseIDs(arg string, valid []string) ([]string, error) {
	if arg == "all" {
		return valid, nil
	}
	known := make(map[string]bool, len(valid))
	for _, id := range valid {
		known[id] = true
	}
	var ids []string
	for _, id := range strings.Split(arg, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, or \"all\")", id, strings.Join(valid, ", "))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q (valid: %s, or \"all\")", arg, strings.Join(valid, ", "))
	}
	return ids, nil
}

func writeCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
