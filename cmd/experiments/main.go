// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure (3, 4, 6, 7, 8A/B/C, 9, 10, 11, 12, 13, and the Appendix
// E TAN study) from the simulation framework and the dataset mimics.
//
// Usage:
//
//	experiments                    # run everything at the full budget
//	experiments -id fig7           # one experiment
//	experiments -quick             # the fast budget (CI-sized)
//	experiments -scale 0.05       # override the mimic scale
//	experiments -csv out/          # also write each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hamlet/internal/experiments"
)

func main() {
	var (
		id     = flag.String("id", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or \"all\"")
		quick  = flag.Bool("quick", false, "use the fast budget instead of the full one")
		scale  = flag.Float64("scale", 0, "override the mimic scale (0 keeps the budget default)")
		worlds = flag.Int("worlds", 0, "override Monte Carlo world count (0 keeps default)")
		l      = flag.Int("L", 0, "override training sets per world (0 keeps default)")
		seed   = flag.Uint64("seed", 0, "override the seed (0 keeps default)")
		csvDir = flag.String("csv", "", "directory to write per-table CSV files (optional)")
	)
	flag.Parse()

	budget := experiments.Full
	if *quick {
		budget = experiments.Quick
	}
	if *scale != 0 {
		budget.MimicScale = *scale
	}
	if *worlds != 0 {
		budget.Worlds = *worlds
	}
	if *l != 0 {
		budget.L = *l
	}
	if *seed != 0 {
		budget.Seed = *seed
	}

	ids := experiments.IDs()
	if *id != "all" {
		ids = []string{*id}
	}
	for _, eid := range ids {
		start := time.Now()
		res, err := experiments.Run(eid, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", eid, err)
			os.Exit(1)
		}
		fmt.Printf("## %s (%v)\n\n", eid, time.Since(start).Round(time.Millisecond))
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", eid, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", eid, err)
				os.Exit(1)
			}
		}
	}
}

func writeCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
