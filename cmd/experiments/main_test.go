package main

import (
	"strings"
	"testing"
)

func TestParseIDs(t *testing.T) {
	valid := []string{"fig3", "fig4", "fig7"}
	tests := []struct {
		arg     string
		want    []string
		wantErr string
	}{
		{arg: "all", want: valid},
		{arg: "fig3", want: []string{"fig3"}},
		{arg: "fig7,fig3", want: []string{"fig7", "fig3"}},
		{arg: " fig3 , fig4 ", want: []string{"fig3", "fig4"}},
		{arg: "fig3,,fig4", want: []string{"fig3", "fig4"}},
		{arg: "bogus", wantErr: `unknown experiment "bogus"`},
		{arg: "fig3,bogus", wantErr: `unknown experiment "bogus"`},
		{arg: "", wantErr: "no experiment ids"},
		{arg: " , ", wantErr: "no experiment ids"},
	}
	for _, tc := range tests {
		got, err := parseIDs(tc.arg, valid)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseIDs(%q) err = %v, want containing %q", tc.arg, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseIDs(%q): %v", tc.arg, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseIDs(%q) = %v, want %v", tc.arg, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseIDs(%q) = %v, want %v", tc.arg, got, tc.want)
				break
			}
		}
	}
}
