// Command hamlet is the join-avoidance advisor CLI: it applies the paper's
// TR and ROR decision rules to a normalized dataset (one of the built-in
// dataset mimics) and reports, per attribute table, whether the join is
// predicted safe to avoid — optionally running the end-to-end JoinAll vs
// JoinOpt feature selection comparison.
//
// Usage:
//
//	hamlet -dataset Walmart                 # advisor decisions only
//	hamlet -dataset all                     # decisions for every dataset
//	hamlet -dataset Yelp -analyze           # plus end-to-end comparison
//	hamlet -dataset Flights -tolerance 0.01 # relaxed thresholds (τ=10, ρ=4.2)
//	hamlet -dataset Walmart -rule ROR       # use the ROR rule instead of TR
//	hamlet -schema mydata/spec.json         # run on your own CSVs
//	hamlet -dataset Walmart -analyze -trace # span tree: join vs select vs train time
//	hamlet -analyze -cpuprofile cpu.out     # CPU profile of the run
//	hamlet -analyze -http :6060             # live pprof + /debug/vars
//	hamlet -analyze -out runs/walmart       # persist run artifacts (manifest,
//	                                        # events.jsonl, metrics, trace)
//
// A schema spec is a JSON file declaring the entity CSV, target column, and
// KFK references (see hamlet.SchemaSpec for the format).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"text/tabwriter"

	"hamlet"
	"hamlet/internal/obs"
	"hamlet/internal/pool"
)

func main() {
	var (
		name      = flag.String("dataset", "all", "dataset mimic name (Walmart, Expedia, Flights, Yelp, MovieLens1M, LastFM, BookCrossing) or \"all\"")
		schema    = flag.String("schema", "", "JSON schema spec over your own CSV files (overrides -dataset)")
		scale     = flag.Float64("scale", 0.1, "mimic scale in (0,1]; 1 reproduces the paper's row counts")
		seed      = flag.Uint64("seed", 1, "generation seed")
		rule      = flag.String("rule", "TR", "decision rule: TR or ROR")
		tolerance = flag.Float64("tolerance", 0.001, "error tolerance: 0.001 (τ=20, ρ=2.5) or 0.01 (τ=10, ρ=4.2)")
		analyze   = flag.Bool("analyze", false, "also run end-to-end JoinAll vs JoinOpt feature selection")
		method    = flag.String("method", "forward", "feature selection method for -analyze: forward, backward, filter-MI, filter-IGR")
		trace     = flag.Bool("trace", false, "with -analyze, print the span tree (join vs selection vs training time) to stderr")
		outDir    = flag.String("out", "", "write run artifacts (manifest.json, events.jsonl, metrics.json, trace.json) to this directory")
		workers   = flag.Int("workers", 0, "datasets analyzed concurrently with -dataset all (0 = GOMAXPROCS); output order is unchanged")
		prof      obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "hamlet: profiling: %v\n", err)
		}
	}()

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("hamlet", flag.CommandLine))
	if err != nil {
		fatal("%v", err)
	}
	var root *obs.Span
	if runDir != nil {
		root = obs.StartSpan("hamlet")
	}

	adv := hamlet.NewAdvisor()
	switch strings.ToUpper(*rule) {
	case "TR":
		adv.Rule = hamlet.TRRule
	case "ROR":
		adv.Rule = hamlet.RORRule
	default:
		fatal("unknown rule %q (want TR or ROR)", *rule)
	}
	switch *tolerance {
	case 0.001:
		adv.Thresholds = hamlet.DefaultThresholds
	case 0.01:
		adv.Thresholds = hamlet.RelaxedThresholds
	default:
		fatal("tolerance must be 0.001 or 0.01 (tune others via hamlet.TuneThresholds)")
	}

	var datasets []*hamlet.Dataset
	if *schema != "" {
		ds, err := hamlet.LoadDataset(*schema)
		if err != nil {
			fatal("load %s: %v", *schema, err)
		}
		datasets = append(datasets, ds)
	} else {
		var specs []hamlet.MimicSpec
		if *name == "all" {
			specs = hamlet.Mimics()
		} else {
			spec, err := hamlet.MimicByName(*name)
			if err != nil {
				fatal("%v", err)
			}
			specs = []hamlet.MimicSpec{spec}
		}
		for _, spec := range specs {
			ds, err := spec.Generate(*scale, *seed)
			if err != nil {
				fatal("generate %s: %v", spec.Name, err)
			}
			datasets = append(datasets, ds)
		}
	}

	// Datasets are independent, so -dataset all fans out over a bounded
	// worker pool. Each worker renders into its own buffers; stdout/stderr
	// are then flushed in dataset order, so the report reads identically at
	// any worker count (events.jsonl interleaves by completion time — the
	// lines are self-describing and explicitly unordered across datasets).
	outBufs := make([]bytes.Buffer, len(datasets))
	errBufs := make([]bytes.Buffer, len(datasets))
	spans := make([]*obs.Span, len(datasets))
	perr := pool.Run(len(datasets), *workers, func(i int) error {
		ds := datasets[i]
		var dsSpan *obs.Span
		if root != nil {
			dsSpan = obs.StartSpan("dataset(" + ds.Name + ")")
			spans[i] = dsSpan
		}
		err := reportDataset(&outBufs[i], &errBufs[i], ds, dsSpan, adv, runDir,
			*analyze, *method, *trace, *seed)
		dsSpan.End()
		return err
	})
	root.AdoptAll(spans)
	for i := range datasets {
		os.Stdout.Write(outBufs[i].Bytes())
		os.Stderr.Write(errBufs[i].Bytes())
	}
	if perr != nil {
		fatal("%v", perr)
	}
	root.End()
	if err := runDir.Close(root, nil); err != nil {
		fatal("run artifacts: %v", err)
	}
}

// reportDataset runs the advisor (and optionally the end-to-end analysis)
// for one dataset, rendering the report into stdout/stderr buffers so
// parallel workers never interleave their output.
func reportDataset(stdout, stderr io.Writer, ds *hamlet.Dataset, dsSpan *obs.Span,
	adv *hamlet.Advisor, runDir *obs.RunDir, analyze bool, method string, trace bool, seed uint64) error {
	decisions, err := adv.Decide(ds)
	if err != nil {
		return fmt.Errorf("decide %s: %w", ds.Name, err)
	}
	fmt.Fprintf(stdout, "dataset %s: n_S=%d rows, %d attribute tables (rule=%s, τ=%.3g, ρ=%.3g)\n",
		ds.Name, ds.NumRows(), len(ds.Attrs), adv.Rule, adv.Thresholds.Tau, adv.Thresholds.Rho)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  attr table\tFK\tTR\tROR\tverdict\treason")
	for _, dec := range decisions {
		verdict := "KEEP (join)"
		if dec.Considered && dec.Avoid {
			verdict = "AVOID join"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%.2f\t%.2f\t%s\t%s\n", dec.Attr, dec.FK, dec.TR, dec.ROR, verdict, dec.Reason)
		runDir.Events().Emit("decision",
			slog.String("dataset", ds.Name),
			slog.String("attr", dec.Attr),
			slog.String("fk", dec.FK),
			slog.Float64("tr", dec.TR),
			slog.Float64("ror", dec.ROR),
			slog.Bool("avoid", dec.Considered && dec.Avoid),
			slog.String("reason", dec.Reason),
		)
	}
	tw.Flush()
	if analyze {
		sel, err := selector(method)
		if err != nil {
			return err
		}
		rep, err := hamlet.Analyze(ds, sel, adv, seed)
		if err != nil {
			return fmt.Errorf("analyze %s: %w", ds.Name, err)
		}
		dsSpan.Adopt(rep.Trace)
		runDir.Events().Emit("analyze",
			slog.String("dataset", ds.Name),
			slog.String("method", method),
			slog.Float64("joinall_test_error", rep.JoinAll.TestError),
			slog.Float64("joinopt_test_error", rep.JoinOpt.TestError),
			slog.Int("joinall_evaluations", rep.JoinAll.Evaluations),
			slog.Int("joinopt_evaluations", rep.JoinOpt.Evaluations),
			slog.Float64("speedup", rep.Speedup),
			slog.String("speedup_basis", rep.SpeedupBasis),
		)
		fmt.Fprintf(stdout, "  end-to-end (%s, metric %s):\n", method, rep.Metric)
		fmt.Fprintf(stdout, "    JoinAll: %d features in, test error %.4f, selection %v (%d evals)\n",
			rep.JoinAll.InputFeatures, rep.JoinAll.TestError, rep.JoinAll.Elapsed.Round(1e6), rep.JoinAll.Evaluations)
		fmt.Fprintf(stdout, "    JoinOpt: %d features in, test error %.4f, selection %v (%d evals)\n",
			rep.JoinOpt.InputFeatures, rep.JoinOpt.TestError, rep.JoinOpt.Elapsed.Round(1e6), rep.JoinOpt.Evaluations)
		fmt.Fprintf(stdout, "    speedup: %.1fx (%s basis); selected (JoinOpt): %s\n",
			rep.Speedup, rep.SpeedupBasis, strings.Join(rep.JoinOpt.Selected, " "))
		if trace {
			if err := rep.Trace.WriteText(stderr); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
	}
	fmt.Fprintln(stdout)
	return nil
}

func selector(name string) (hamlet.FeatureSelector, error) {
	switch name {
	case "forward":
		return hamlet.ForwardSelection(), nil
	case "backward":
		return hamlet.BackwardSelection(), nil
	case "filter-MI":
		return hamlet.MIFilter(), nil
	case "filter-IGR":
		return hamlet.IGRFilter(), nil
	}
	return nil, fmt.Errorf("unknown method %q", name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hamlet: "+format+"\n", args...)
	os.Exit(1)
}
