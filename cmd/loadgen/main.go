// Command loadgen measures the advisor hot path at service speed: it drives
// join-avoidance decisions (or full hamlet.Analyze pipelines) in-process at
// configurable concurrency, duration, and target rate over a dataset
// registry with cached per-table sufficient statistics, and records
// per-request latency into log-linear obs histograms. It is the measurement
// harness the planned cmd/advisord HTTP service will be benchmarked with:
// the ROADMAP's sub-millisecond-p99 claim has to be demonstrable before the
// transport exists.
//
// Usage:
//
//	loadgen -duration 2s -workers 8                  # Walmart decisions, unthrottled
//	loadgen -dataset all -rate 10000 -duration 10s   # 10k req/s across every mimic
//	loadgen -mode analyze -duration 30s              # full Analyze pipeline per request
//	loadgen -duration 2s -workers 8 -out runs/lg     # persist run artifacts, including
//	                                                 # histograms.json for `report latency`
//	loadgen -duration 2s -precision 9 -progress      # finer quantile error, live ETA
//
// Each worker records latencies into its own histogram shard (no cross-CPU
// contention on the measurement itself); shards merge at exit into the
// run-level snapshots persisted as histograms.json. Quantiles carry the
// bucket scheme's relative error bound of 2^-precision (0.79% at the
// default 7). `report latency <rundir>` renders them; `report latency base
// new` gates p99 regressions between two runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"hamlet"
	"hamlet/internal/obs"
	"hamlet/internal/pool"
	"hamlet/internal/registry"
)

// Histogram names persisted to histograms.json. The run-level merge is
// always present; per-dataset entries appear only when the run drove more
// than one dataset.
const latencyHist = "request_latency_ns"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests drive the full CLI —
// flags, the load loop, and artifact persistence — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("dataset", "Walmart", "dataset mimic name or \"all\" (requests round-robin across datasets)")
		scale     = fs.Float64("scale", 0.1, "mimic scale in (0,1]")
		seed      = fs.Uint64("seed", 1, "generation seed")
		rule      = fs.String("rule", "TR", "decision rule: TR or ROR")
		mode      = fs.String("mode", "decide", "request body: decide (advisor rules over cached stats) or analyze (full JoinAll-vs-JoinOpt pipeline)")
		method    = fs.String("method", "forward", "feature selection method for -mode analyze")
		duration  = fs.Duration("duration", 2*time.Second, "how long to drive load")
		workers   = fs.Int("workers", 0, "concurrent request workers (0 = GOMAXPROCS)")
		rate      = fs.Float64("rate", 0, "target total requests/sec (0 = unthrottled)")
		precision = fs.Int("precision", obs.DefaultPrecision, "histogram sub-bucket bits; quantile error ≤ 2^-precision")
		outDir    = fs.String("out", "", "write run artifacts (manifest, events, metrics, trace, histograms.json) to this directory")
		progress  = fs.Bool("progress", false, "report live throughput/ETA to stderr")
		prof      obs.ProfileFlags
	)
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *duration <= 0 {
		fmt.Fprintln(stderr, "loadgen: -duration must be positive")
		return 2
	}

	adv := hamlet.NewAdvisor()
	switch strings.ToUpper(*rule) {
	case "TR":
		adv.Rule = hamlet.TRRule
	case "ROR":
		adv.Rule = hamlet.RORRule
	default:
		fmt.Fprintf(stderr, "loadgen: unknown rule %q (want TR or ROR)\n", *rule)
		return 2
	}
	var sel hamlet.FeatureSelector
	switch *mode {
	case "decide":
	case "analyze":
		switch *method {
		case "forward":
			sel = hamlet.ForwardSelection()
		case "backward":
			sel = hamlet.BackwardSelection()
		case "filter-MI":
			sel = hamlet.MIFilter()
		case "filter-IGR":
			sel = hamlet.IGRFilter()
		default:
			fmt.Fprintf(stderr, "loadgen: unknown method %q\n", *method)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "loadgen: unknown mode %q (want decide or analyze)\n", *mode)
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "loadgen: profiling: %v\n", err)
		}
	}()

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("loadgen", fs))
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	root := obs.StartSpan("loadgen")

	// Warm the registry before the clock starts: generation and the
	// sufficient-statistics scan are setup cost, not request latency.
	setup := root.Child("setup(registry)")
	names := []string{*name}
	if *name == "all" {
		names = registry.Names()
	}
	reg := registry.New()
	entries := make([]*registry.Entry, len(names))
	for i, n := range names {
		if entries[i], err = reg.Get(n, *scale, *seed); err != nil {
			setup.End()
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			_ = runDir.Close(root, err)
			return 1
		}
	}
	setup.End()

	nWorkers := pool.Workers(*workers)
	var prog *obs.Progress // nil no-ops through every method
	if *progress {
		prog = obs.NewProgress(stderr, "loadgen", time.Second)
		prog.AttachEvents(runDir.Events())
		if *rate > 0 {
			prog.AddTotal(int64(*rate * duration.Seconds()))
		}
	}

	// One histogram shard per (worker, dataset): the measurement itself must
	// not serialize the workers it measures. Shards merge after the run.
	shards := make([][]*obs.Histogram, nWorkers)
	for w := range shards {
		shards[w] = make([]*obs.Histogram, len(entries))
		for d := range shards[w] {
			shards[w][d] = obs.NewHistogram(*precision)
		}
	}

	// Per-worker pacing interval for a global -rate target; worker start
	// offsets stagger so the aggregate stream is evenly spaced.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(nWorkers) / *rate * float64(time.Second))
	}

	drive := root.Child(fmt.Sprintf("drive(mode=%s)", *mode))
	started := time.Now()
	deadline := started.Add(*duration)
	perr := pool.Run(nWorkers, nWorkers, func(w int) error {
		// Progress batching: decide-mode requests run in hundreds of
		// nanoseconds, so stepping the shared reporter per request would
		// serialize the workers on its mutex.
		batch := int64(512)
		if *mode == "analyze" {
			batch = 1
		}
		next := started.Add(time.Duration(float64(interval) * float64(w) / float64(nWorkers)))
		var pending int64
		for i := 0; ; i++ {
			now := time.Now()
			if !now.Before(deadline) {
				break
			}
			if interval > 0 {
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				next = next.Add(interval)
				if now.Sub(next) > 64*interval {
					next = now // cap pacing debt after a stall; don't burst unbounded
				}
			}
			d := i % len(entries)
			e := entries[d]
			var err error
			start := time.Now()
			if *mode == "decide" {
				_, err = e.Decide(adv)
			} else {
				_, err = hamlet.Analyze(e.Dataset, sel, adv, *seed)
			}
			shards[w][d].Observe(time.Since(start).Nanoseconds())
			if err != nil {
				return fmt.Errorf("loadgen: %s request on %s: %w", *mode, e.Dataset.Name, err)
			}
			if pending++; pending == batch {
				prog.Step(pending)
				pending = 0
			}
		}
		prog.Step(pending)
		return nil
	})
	elapsed := time.Since(started)
	drive.End()
	prog.Flush()
	if perr != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", perr)
		_ = runDir.Close(root, perr)
		return 1
	}

	// Merge the shards: across workers into per-dataset snapshots, then
	// across datasets into the run-level histogram.
	var total obs.HistogramSnapshot
	hists := make(map[string]obs.HistogramSnapshot)
	for d, e := range entries {
		var per obs.HistogramSnapshot
		for w := range shards {
			if err := per.Merge(shards[w][d].Snapshot()); err != nil {
				fmt.Fprintf(stderr, "loadgen: %v\n", err)
				return 1
			}
		}
		if len(entries) > 1 {
			hists[latencyHist+"."+e.Dataset.Name] = per
		}
		if err := total.Merge(per); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	if total.Count == 0 {
		// Merge skips empty shards, so adopt the precision explicitly: even a
		// zero-request run writes a well-formed artifact.
		total.Precision = shards[0][0].Snapshot().Precision
	}
	hists[latencyHist] = total
	drive.Add("requests", total.Count)

	rps := float64(total.Count) / elapsed.Seconds()
	fmt.Fprintf(stdout, "loadgen: mode %s, datasets %s, %d workers, %v", *mode, strings.Join(names, ","), nWorkers, duration.Round(time.Millisecond))
	if *rate > 0 {
		fmt.Fprintf(stdout, ", target %.0f req/s", *rate)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "requests: %d in %v (%.1f req/s)\n", total.Count, elapsed.Round(time.Millisecond), rps)
	fmt.Fprintf(stdout, "latency:  p50 %v  p90 %v  p99 %v  p99.9 %v  (min %v  mean %v  max %v)\n",
		ns(total.Quantile(0.50)), ns(total.Quantile(0.90)), ns(total.Quantile(0.99)), ns(total.Quantile(0.999)),
		ns(total.Min), ns(int64(total.Mean())), ns(total.Max))
	fmt.Fprintf(stdout, "precision: %d sub-bucket bits (quantile error ≤ %.2f%%)\n", total.Precision, 100*total.MaxQuantileError())

	runDir.Events().Emit("loadgen_summary",
		slog.String("mode", *mode),
		slog.Int("workers", nWorkers),
		slog.Int64("requests", total.Count),
		slog.Float64("req_per_sec", rps),
		slog.Int64("p50_ns", total.Quantile(0.50)),
		slog.Int64("p99_ns", total.Quantile(0.99)),
		slog.Int64("p999_ns", total.Quantile(0.999)),
	)
	if err := runDir.WriteHistograms(hists); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	root.End()
	if err := runDir.Close(root, nil); err != nil {
		fmt.Fprintf(stderr, "loadgen: run artifacts: %v\n", err)
		return 1
	}
	return 0
}

// ns renders a nanosecond latency as a duration string.
func ns(v int64) time.Duration { return time.Duration(v) }
