// Command loadgen measures the advisor hot path at service speed: it drives
// join-avoidance decisions (or full hamlet.Analyze pipelines) at
// configurable concurrency, duration, and target rate, and records
// per-request latency into log-linear obs histograms. It has two
// transports: in-process (the service floor — decisions straight off the
// statistics registry) and HTTP (-url, the same request stream POSTed to a
// running cmd/advisord), so one harness measures the transport overhead
// against the floor it already established.
//
// Usage:
//
//	loadgen -duration 2s -workers 8                  # Walmart decisions, unthrottled
//	loadgen -dataset all -rate 10000 -duration 10s   # 10k req/s across every mimic
//	loadgen -mode analyze -duration 30s              # full Analyze pipeline per request
//	loadgen -url http://127.0.0.1:8080 -duration 5s  # drive a running advisord
//	loadgen -url ... -batch 100                      # 100 decisions per round trip
//	loadgen -url ... -trace-sample 0.01 -out runs/lg # distributed tracing: inject
//	                                                 # traceparent, keep 1% of traces
//	                                                 # (plus errors/slow) in traces.jsonl
//	loadgen -duration 2s -workers 8 -out runs/lg     # persist run artifacts, including
//	                                                 # histograms.json for `report latency`
//	loadgen -duration 2s -precision 9 -progress      # finer quantile error, live ETA
//
// Each worker records latencies into its own histogram shard (no cross-CPU
// contention on the measurement itself); shards merge at exit into the
// run-level snapshots persisted as histograms.json. Quantiles carry the
// bucket scheme's relative error bound of 2^-precision (0.79% at the
// default 7). `report latency <rundir>` renders them; `report latency base
// new` gates p99 regressions between two runs.
//
// In HTTP mode only successful (2xx) round trips land in the latency
// histograms; non-2xx answers and transport failures are counted
// separately and reported in the summary, the loadgen_summary event, and
// the loadgen.errors_* counters in metrics.json. In-process request errors
// stay fatal — they mean the harness itself is broken.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hamlet"
	"hamlet/internal/obs"
	"hamlet/internal/pool"
	"hamlet/internal/registry"
	"hamlet/internal/server"
)

// Histogram names persisted to histograms.json. The run-level merge is
// always present; per-dataset entries appear only when the run drove more
// than one dataset.
const latencyHist = "request_latency_ns"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests drive the full CLI —
// flags, the load loop, and artifact persistence — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("dataset", "Walmart", "dataset mimic name or \"all\" (requests round-robin across datasets)")
		scale     = fs.Float64("scale", 0.1, "mimic scale in (0,1]")
		seed      = fs.Uint64("seed", 1, "generation seed")
		rule      = fs.String("rule", "TR", "decision rule: TR or ROR")
		mode      = fs.String("mode", "decide", "request body: decide (advisor rules over cached stats) or analyze (full JoinAll-vs-JoinOpt pipeline)")
		method    = fs.String("method", "forward", "feature selection method for -mode analyze")
		url       = fs.String("url", "", "base URL of a running advisord (e.g. http://127.0.0.1:8080); empty = in-process")
		reqBatch  = fs.Int("batch", 1, "decisions per HTTP request in -url mode")
		ready     = fs.Duration("ready", 5*time.Second, "how long to wait for the server's /readyz in -url mode (0 = don't wait)")
		duration  = fs.Duration("duration", 2*time.Second, "how long to drive load")
		workers   = fs.Int("workers", 0, "concurrent request workers (0 = GOMAXPROCS)")
		rate      = fs.Float64("rate", 0, "target total requests/sec (0 = unthrottled)")
		precision = fs.Int("precision", obs.DefaultPrecision, "histogram sub-bucket bits; quantile error ≤ 2^-precision")
		sample    = fs.Float64("trace-sample", 0, "distributed-trace head-sampling probability in [0,1] for -url mode (0 = tracing off)")
		traceCap  = fs.Float64("trace-cap", 100, "max kept traces per second (0 = uncapped)")
		traceSlow = fs.Duration("trace-slow", 0, "always keep traces for requests at or over this latency (0 = off)")
		outDir    = fs.String("out", "", "write run artifacts (manifest, events, metrics, trace, histograms.json) to this directory")
		progress  = fs.Bool("progress", false, "report live throughput/ETA to stderr")
		prof      obs.ProfileFlags
	)
	prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *duration <= 0 {
		fmt.Fprintln(stderr, "loadgen: -duration must be positive")
		return 2
	}
	if *url != "" && *mode != "decide" {
		fmt.Fprintln(stderr, "loadgen: -url supports only -mode decide (the HTTP service has no analyze endpoint)")
		return 2
	}
	if *reqBatch < 1 {
		fmt.Fprintln(stderr, "loadgen: -batch must be at least 1")
		return 2
	}
	if *sample < 0 || *sample > 1 {
		fmt.Fprintln(stderr, "loadgen: -trace-sample must be in [0,1]")
		return 2
	}
	if (*sample > 0 || *traceSlow > 0) && *url == "" {
		fmt.Fprintln(stderr, "loadgen: tracing (-trace-sample/-trace-slow) requires -url (traces cross the HTTP boundary)")
		return 2
	}

	adv := hamlet.NewAdvisor()
	switch strings.ToUpper(*rule) {
	case "TR":
		adv.Rule = hamlet.TRRule
	case "ROR":
		adv.Rule = hamlet.RORRule
	default:
		fmt.Fprintf(stderr, "loadgen: unknown rule %q (want TR or ROR)\n", *rule)
		return 2
	}
	var sel hamlet.FeatureSelector
	switch *mode {
	case "decide":
	case "analyze":
		switch *method {
		case "forward":
			sel = hamlet.ForwardSelection()
		case "backward":
			sel = hamlet.BackwardSelection()
		case "filter-MI":
			sel = hamlet.MIFilter()
		case "filter-IGR":
			sel = hamlet.IGRFilter()
		default:
			fmt.Fprintf(stderr, "loadgen: unknown method %q\n", *method)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "loadgen: unknown mode %q (want decide or analyze)\n", *mode)
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "loadgen: profiling: %v\n", err)
		}
	}()

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("loadgen", fs))
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	root := obs.StartSpan("loadgen")

	// Tracing (HTTP mode): every request gets a trace context and a client
	// span; the tail sampler decides which land in traces.jsonl. The same
	// trace ID reaches the server via traceparent, so a kept trace has both
	// halves — the client span (includes queue + transport) and the server
	// span tree nested inside it.
	var sampler *obs.Sampler
	if *sample > 0 || *traceSlow > 0 {
		sampler = obs.NewSampler(*sample, *traceCap, *traceSlow)
	}
	traces := runDir.Traces()

	nWorkers := pool.Workers(*workers)

	// Warm the transport before the clock starts. In-process runs pay
	// generation and the sufficient-statistics scan here; HTTP runs wait
	// for the server's readiness, pre-marshal one request body per dataset,
	// and send one probe each so the server's cold path (its own registry
	// fill) is setup cost too, not request latency.
	setup := root.Child("setup(transport)")
	names := []string{*name}
	if *name == "all" {
		names = registry.Names()
	}
	var (
		entries   []*registry.Entry
		bodies    [][]byte
		client    *http.Client
		decideURL string
	)
	if *url == "" {
		reg := registry.New()
		entries = make([]*registry.Entry, len(names))
		for i, n := range names {
			if entries[i], err = reg.Get(n, *scale, *seed); err != nil {
				setup.End()
				fmt.Fprintf(stderr, "loadgen: %v\n", err)
				_ = runDir.Close(root, err)
				return 1
			}
		}
	} else {
		base := strings.TrimRight(*url, "/")
		decideURL = base + "/v1/decide"
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        nWorkers + 2,
			MaxIdleConnsPerHost: nWorkers + 2, // every worker keeps its connection
		}}
		if *ready > 0 {
			waitReady(client, base+"/readyz", *ready, stderr)
		}
		bodies = make([][]byte, len(names))
		for i, n := range names {
			qs := make([]server.Query, *reqBatch)
			for j := range qs {
				qs[j] = server.Query{Dataset: n, Scale: *scale, Seed: *seed, Rule: strings.ToUpper(*rule)}
			}
			if bodies[i], err = json.Marshal(server.DecideRequest{V: server.RequestSchemaVersion, Requests: qs}); err != nil {
				setup.End()
				fmt.Fprintf(stderr, "loadgen: %v\n", err)
				_ = runDir.Close(root, err)
				return 1
			}
			status, perr := httpDecide(client, decideURL, "loadgen-warmup-"+n, "", bodies[i])
			if perr != nil {
				// No transport at all is a harness failure, not a measurement.
				setup.End()
				fmt.Fprintf(stderr, "loadgen: warmup probe for %s: %v\n", n, perr)
				_ = runDir.Close(root, perr)
				return 1
			}
			if status < 200 || status >= 300 {
				// A reachable server answering non-2xx is measurable: warn and
				// let the run count the errors (and fail if nothing succeeds).
				fmt.Fprintf(stderr, "loadgen: warmup probe for %s: HTTP %d\n", n, status)
			}
		}
	}
	setup.End()
	var prog *obs.Progress // nil no-ops through every method
	if *progress {
		prog = obs.NewProgress(stderr, "loadgen", time.Second)
		prog.AttachEvents(runDir.Events())
		if *rate > 0 {
			prog.AddTotal(int64(*rate * duration.Seconds()))
		}
	}

	// One histogram shard per (worker, dataset): the measurement itself must
	// not serialize the workers it measures. Shards merge after the run.
	// HTTP error counts shard the same way.
	shards := make([][]*obs.Histogram, nWorkers)
	for w := range shards {
		shards[w] = make([]*obs.Histogram, len(names))
		for d := range shards[w] {
			shards[w][d] = obs.NewHistogram(*precision)
		}
	}
	type errCount struct{ non2xx, transport int64 }
	errShards := make([]errCount, nWorkers)

	// Per-worker pacing interval for a global -rate target; worker start
	// offsets stagger so the aggregate stream is evenly spaced.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(nWorkers) / *rate * float64(time.Second))
	}

	drive := root.Child(fmt.Sprintf("drive(mode=%s)", *mode))
	started := time.Now()
	deadline := started.Add(*duration)
	perr := pool.Run(nWorkers, nWorkers, func(w int) error {
		// Progress batching: decide-mode requests run in hundreds of
		// nanoseconds, so stepping the shared reporter per request would
		// serialize the workers on its mutex.
		batch := int64(512)
		if *mode == "analyze" {
			batch = 1
		}
		next := started.Add(time.Duration(float64(interval) * float64(w) / float64(nWorkers)))
		var pending int64
		for i := 0; ; i++ {
			now := time.Now()
			if !now.Before(deadline) {
				break
			}
			if interval > 0 {
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				next = next.Add(interval)
				if now.Sub(next) > 64*interval {
					next = now // cap pacing debt after a stall; don't burst unbounded
				}
			}
			d := i % len(names)
			start := time.Now()
			if client != nil {
				id := "loadgen-" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				var tc obs.TraceContext
				var hdr string
				var sp *obs.Span
				if sampler != nil {
					tc = obs.NewTraceContext()
					tc = tc.WithSampled(sampler.Sampled(tc))
					hdr = tc.Traceparent()
					sp = obs.StartSpan("client(decide)")
				}
				// HTTP errors are measurements, not harness failures: count
				// them and keep driving. Only 2xx round trips enter the
				// latency histogram — an error's timing measures the failure
				// path, not the service.
				status, herr := httpDecide(client, decideURL, id, hdr, bodies[d])
				sp.End()
				elapsed := time.Since(start)
				switch {
				case herr != nil:
					errShards[w].transport++
				case status < 200 || status >= 300:
					errShards[w].non2xx++
				default:
					shards[w][d].Observe(elapsed.Nanoseconds())
				}
				isErr := herr != nil || status < 200 || status >= 300
				if sampler.Keep(tc.Sampled(), elapsed, isErr) {
					// Append errors are telemetry loss, not a failed run.
					_ = traces.Append(obs.TraceRecord{
						TraceID:   tc.TraceIDString(),
						SpanID:    tc.SpanIDString(),
						Kind:      obs.TraceKindClient,
						RequestID: id,
						Span:      sp,
					})
				}
			} else {
				e := entries[d]
				var err error
				if *mode == "decide" {
					_, err = e.Decide(adv)
				} else {
					_, err = hamlet.Analyze(e.Dataset, sel, adv, *seed)
				}
				shards[w][d].Observe(time.Since(start).Nanoseconds())
				if err != nil {
					return fmt.Errorf("loadgen: %s request on %s: %w", *mode, e.Dataset.Name, err)
				}
			}
			if pending++; pending == batch {
				prog.Step(pending)
				pending = 0
			}
		}
		prog.Step(pending)
		return nil
	})
	elapsed := time.Since(started)
	drive.End()
	prog.Flush()
	if perr != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", perr)
		_ = runDir.Close(root, perr)
		return 1
	}

	// Merge the shards: across workers into per-dataset snapshots, then
	// across datasets into the run-level histogram.
	var total obs.HistogramSnapshot
	hists := make(map[string]obs.HistogramSnapshot)
	for d, n := range names {
		var per obs.HistogramSnapshot
		for w := range shards {
			if err := per.Merge(shards[w][d].Snapshot()); err != nil {
				fmt.Fprintf(stderr, "loadgen: %v\n", err)
				return 1
			}
		}
		if len(names) > 1 {
			hists[latencyHist+"."+n] = per
		}
		if err := total.Merge(per); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	var non2xx, transport int64
	for _, ec := range errShards {
		non2xx += ec.non2xx
		transport += ec.transport
	}
	nErrors := non2xx + transport
	if total.Count == 0 {
		// Merge skips empty shards, so adopt the precision explicitly: even a
		// zero-request run writes a well-formed artifact.
		total.Precision = shards[0][0].Snapshot().Precision
	}
	hists[latencyHist] = total
	drive.Add("requests", total.Count)

	rps := float64(total.Count) / elapsed.Seconds()
	fmt.Fprintf(stdout, "loadgen: mode %s, datasets %s, %d workers, %v", *mode, strings.Join(names, ","), nWorkers, duration.Round(time.Millisecond))
	if *rate > 0 {
		fmt.Fprintf(stdout, ", target %.0f req/s", *rate)
	}
	if *url != "" {
		fmt.Fprintf(stdout, ", url %s, batch %d", *url, *reqBatch)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "requests: %d in %v (%.1f req/s)\n", total.Count, elapsed.Round(time.Millisecond), rps)
	if *url != "" {
		fmt.Fprintf(stdout, "errors:   %d (%d non-2xx, %d transport)\n", nErrors, non2xx, transport)
	}
	if sampler != nil {
		fmt.Fprintf(stdout, "traces:   %d kept (sample %g, cap %g/s, slow %v)\n",
			traces.Len(), *sample, *traceCap, *traceSlow)
	}
	fmt.Fprintf(stdout, "latency:  p50 %v  p90 %v  p99 %v  p99.9 %v  (min %v  mean %v  max %v)\n",
		ns(total.Quantile(0.50)), ns(total.Quantile(0.90)), ns(total.Quantile(0.99)), ns(total.Quantile(0.999)),
		ns(total.Min), ns(int64(total.Mean())), ns(total.Max))
	fmt.Fprintf(stdout, "precision: %d sub-bucket bits (quantile error ≤ %.2f%%)\n", total.Precision, 100*total.MaxQuantileError())

	attrs := []slog.Attr{
		slog.String("mode", *mode),
		slog.Int("workers", nWorkers),
		slog.Int64("requests", total.Count),
		slog.Float64("req_per_sec", rps),
		slog.Int64("p50_ns", total.Quantile(0.50)),
		slog.Int64("p99_ns", total.Quantile(0.99)),
		slog.Int64("p999_ns", total.Quantile(0.999)),
	}
	if *url != "" {
		attrs = append(attrs,
			slog.String("url", *url),
			slog.Int("batch", *reqBatch),
			slog.Int64("errors_non2xx", non2xx),
			slog.Int64("errors_transport", transport),
		)
		obs.C("loadgen.errors_non2xx").Add(non2xx)
		obs.C("loadgen.errors_transport").Add(transport)
	}
	if sampler != nil {
		attrs = append(attrs, slog.Int64("traces_kept", traces.Len()))
		obs.C("loadgen.traces_kept").Add(traces.Len())
	}
	runDir.Events().Emit("loadgen_summary", attrs...)
	if err := runDir.WriteHistograms(hists); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	root.End()
	if total.Count == 0 && nErrors > 0 {
		err := fmt.Errorf("all %d requests failed (%d non-2xx, %d transport)", nErrors, non2xx, transport)
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		_ = runDir.Close(root, err)
		return 1
	}
	if err := runDir.Close(root, nil); err != nil {
		fmt.Fprintf(stderr, "loadgen: run artifacts: %v\n", err)
		return 1
	}
	return 0
}

// ns renders a nanosecond latency as a duration string.
func ns(v int64) time.Duration { return time.Duration(v) }

// httpDecide POSTs one pre-marshaled decide request and fully drains the
// response body so the connection returns to the client's pool. A non-nil
// error is a transport failure; otherwise the status code is the verdict.
// The id travels as X-Request-ID, so a slow-request exemplar or request-log
// line on the server names the exact loadgen worker and iteration that sent
// it (and the server skips minting its own). A non-empty traceparent rides
// along, making the server's span tree part of this request's trace.
func httpDecide(client *http.Client, url, id, traceparent string, body []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.RequestIDHeader, id)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// waitReady polls the server's readiness endpoint until it answers 200 or
// the wait elapses. A timeout only warns: the run proceeds and measures
// whatever the server does, which is the honest answer for a server that
// never becomes ready.
func waitReady(client *http.Client, url string, wait time.Duration, stderr io.Writer) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if !time.Now().Before(deadline) {
			fmt.Fprintf(stderr, "loadgen: %s not ready after %v; proceeding anyway\n", url, wait)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
