package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hamlet/internal/obs"
	"hamlet/internal/server"
)

// drive runs the CLI in-process.
func drive(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunWritesHistogramsArtifact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	code, out, errOut := drive(t,
		"-duration", "50ms", "-workers", "2", "-scale", "0.02", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{"requests:", "latency:", "p50", "p99.9", "precision:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// The run dir holds the standard artifacts plus histograms.json.
	for _, f := range []string{obs.ManifestFile, obs.EventsFile, obs.MetricsFile, obs.TraceFile, obs.HistogramsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, obs.HistogramsFile))
	if err != nil {
		t.Fatal(err)
	}
	var art obs.HistogramsArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.SchemaVersion != obs.SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", art.SchemaVersion, obs.SchemaVersion)
	}
	h, ok := art.Histograms["request_latency_ns"]
	if !ok {
		t.Fatalf("histograms = %v, want request_latency_ns", art.Histograms)
	}
	if h.Count == 0 {
		t.Fatal("recorded zero requests in 50ms")
	}
	if h.Precision != obs.DefaultPrecision {
		t.Errorf("Precision = %d, want %d", h.Precision, obs.DefaultPrecision)
	}
	// Quantiles are monotone and bracketed by the exact extremes.
	qs := []int64{h.Min, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999), h.Max}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}

func TestRunAllDatasetsRecordsPerDatasetHistograms(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	code, _, errOut := drive(t,
		"-duration", "50ms", "-dataset", "all", "-scale", "0.02", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	data, err := os.ReadFile(filepath.Join(dir, obs.HistogramsFile))
	if err != nil {
		t.Fatal(err)
	}
	var art obs.HistogramsArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	total, ok := art.Histograms["request_latency_ns"]
	if !ok {
		t.Fatal("missing run-level histogram")
	}
	var sum int64
	var perDataset int
	for name, h := range art.Histograms {
		if strings.HasPrefix(name, "request_latency_ns.") {
			perDataset++
			sum += h.Count
		}
	}
	if perDataset < 2 {
		t.Fatalf("per-dataset histograms = %d, want several for -dataset all", perDataset)
	}
	if sum != total.Count {
		t.Errorf("per-dataset counts sum to %d, run-level count is %d", sum, total.Count)
	}
}

// TestRunHTTPModeDrivesServer points -url at an in-process internal/server
// and checks the full HTTP leg: readiness wait, batched requests, a clean
// error line, and the same histograms.json shape as an in-process run.
func TestRunHTTPModeDrivesServer(t *testing.T) {
	s := server.New(server.Config{Scale: 0.02, Seed: 1})
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "run")
	code, out, errOut := drive(t,
		"-url", ts.URL, "-batch", "3", "-duration", "100ms", "-workers", "2",
		"-scale", "0.02", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{"url " + ts.URL, "batch 3", "errors:   0 (0 non-2xx, 0 transport)", "latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, obs.HistogramsFile))
	if err != nil {
		t.Fatal(err)
	}
	var art obs.HistogramsArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	h, ok := art.Histograms["request_latency_ns"]
	if !ok || h.Count == 0 {
		t.Fatalf("run-level histogram = %+v (ok=%v), want nonzero count", h, ok)
	}
	// The server saw the traffic: its own decide histogram must cover at
	// least the round trips the client measured (plus the warmup probe).
	srvHists := s.Histograms()
	if sh := srvHists[server.LatencyHist+".decide"]; sh.Count < h.Count {
		t.Errorf("server decide count = %d, client measured %d", sh.Count, h.Count)
	}
	events, err := os.ReadFile(filepath.Join(dir, obs.EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"url":"` + ts.URL + `"`, `"batch":3`, `"errors_non2xx":0`, `"errors_transport":0`} {
		if !bytes.Contains(events, []byte(want)) {
			t.Errorf("events.jsonl missing %s", want)
		}
	}
}

// TestRunHTTPModeSendsRequestIDs: every loadgen request — warmup probe and
// driven load alike — names itself with an X-Request-ID, so server-side
// slow-request exemplars and request logs attribute back to the exact
// worker and iteration that sent them.
func TestRunHTTPModeSendsRequestIDs(t *testing.T) {
	var mu sync.Mutex
	ids := make(map[string]bool)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids[r.Header.Get(server.RequestIDHeader)] = true
		mu.Unlock()
	}))
	defer ts.Close()

	code, _, errOut := drive(t,
		"-url", ts.URL, "-ready", "0", "-duration", "50ms", "-workers", "2", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errOut)
	}
	mu.Lock()
	defer mu.Unlock()
	if !ids["loadgen-warmup-Walmart"] {
		t.Error("warmup probe carried no request ID")
	}
	var driven int
	for id := range ids {
		if id == "" {
			t.Fatal("a request arrived without X-Request-ID")
		}
		if strings.HasPrefix(id, "loadgen-") && !strings.HasPrefix(id, "loadgen-warmup-") {
			driven++
		}
	}
	if driven == 0 {
		t.Errorf("no driven request carried a worker/iteration ID: %v", ids)
	}
}

// TestRunHTTPModeAllErrorsFails drives a server that always answers 500:
// the run must finish, report the error counts, and exit 1 because nothing
// succeeded.
func TestRunHTTPModeAllErrorsFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	code, out, errOut := drive(t,
		"-url", ts.URL, "-ready", "0", "-duration", "50ms", "-workers", "2", "-scale", "0.02")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "all") || !strings.Contains(errOut, "failed") {
		t.Errorf("stderr does not report total failure:\n%s", errOut)
	}
	if !strings.Contains(out, "errors:") || strings.Contains(out, "errors:   0 (") {
		t.Errorf("summary does not carry nonzero error counts:\n%s", out)
	}
}

// TestRunHTTPModeUnreachableServerFails: no listener at all is a harness
// failure caught by the warmup probe, before any load is driven.
func TestRunHTTPModeUnreachableServerFails(t *testing.T) {
	// Grab a port that is then closed again, so nothing listens on it.
	ts := httptest.NewServer(http.NotFoundHandler())
	deadURL := ts.URL
	ts.Close()

	code, _, errOut := drive(t,
		"-url", deadURL, "-ready", "0", "-duration", "50ms", "-scale", "0.02")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "warmup probe") {
		t.Errorf("stderr does not mention the warmup probe:\n%s", errOut)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-duration", "0s"},
		{"-rule", "nope"},
		{"-mode", "nope"},
		{"-mode", "analyze", "-method", "nope"},
		{"-url", "http://localhost:1", "-mode", "analyze"},
		{"-url", "http://localhost:1", "-batch", "0"},
		{"-trace-sample", "0.5"}, // tracing without -url
		{"-trace-slow", "1ms"},   // tracing without -url
		{"-url", "http://localhost:1", "-trace-sample", "1.5"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if code, _, _ := drive(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

// readTraceLines decodes a run dir's traces.jsonl (nil when absent).
func readTraceLines(t *testing.T, dir string) []obs.TraceRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, obs.TracesFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var out []obs.TraceRecord
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec obs.TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad traces.jsonl line %s: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestRunHTTPModeTracing is the cross-process contract end to end: with
// tracing on both sides, a sampled request's trace ID appears in the client
// run dir AND the server run dir, client half pointing at the server half.
func TestRunHTTPModeTracing(t *testing.T) {
	srvDir := filepath.Join(t.TempDir(), "srv")
	srvRun, err := obs.OpenRunDir(srvDir, &obs.RunInfo{Tool: "test-server"})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{
		Scale:   0.02,
		Seed:    1,
		Sampler: obs.NewSampler(1, 0, 0),
		Traces:  srvRun.Traces(),
	})
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "run")
	code, out, errOut := drive(t,
		"-url", ts.URL, "-duration", "100ms", "-workers", "2",
		"-trace-sample", "1", "-trace-cap", "0",
		"-scale", "0.02", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "traces:") {
		t.Errorf("summary missing the traces line:\n%s", out)
	}

	clientRecs := readTraceLines(t, dir)
	if len(clientRecs) == 0 {
		t.Fatal("client kept no traces at -trace-sample 1")
	}
	serverRecs := readTraceLines(t, srvDir)
	if len(serverRecs) == 0 {
		t.Fatal("server kept no traces for sampled inbound requests")
	}
	// Index the server half by trace ID; every client record's ID must have
	// a server record whose parent is the client's span.
	srvByTrace := make(map[string]obs.TraceRecord, len(serverRecs))
	for _, rec := range serverRecs {
		if rec.Kind != obs.TraceKindServer {
			t.Fatalf("server record kind %q", rec.Kind)
		}
		srvByTrace[rec.TraceID] = rec
	}
	joined := 0
	for _, rec := range clientRecs {
		if rec.Kind != obs.TraceKindClient {
			t.Fatalf("client record kind %q", rec.Kind)
		}
		srec, ok := srvByTrace[rec.TraceID]
		if !ok {
			continue
		}
		joined++
		if srec.ParentSpanID != rec.SpanID {
			t.Fatalf("trace %s: server parent %s, client span %s", rec.TraceID, srec.ParentSpanID, rec.SpanID)
		}
		if srec.RequestID != rec.RequestID {
			t.Errorf("trace %s: request IDs diverge (%q vs %q)", rec.TraceID, srec.RequestID, rec.RequestID)
		}
	}
	if joined == 0 {
		t.Fatal("no trace ID appears in both run dirs")
	}
}

// TestRunTraceRateCapRespected: at -trace-sample 1 with a tight cap, kept
// traces stay bounded by cap·(duration+burst) even though thousands of
// requests are all head-sampled.
func TestRunTraceRateCapRespected(t *testing.T) {
	s := server.New(server.Config{Scale: 0.02, Seed: 1})
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "run")
	const capPerSec = 10.0
	code, _, errOut := drive(t,
		"-url", ts.URL, "-duration", "200ms", "-workers", "4",
		"-trace-sample", "1", "-trace-cap", "10",
		"-scale", "0.02", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	recs := readTraceLines(t, dir)
	// Budget: one-second burst (= the cap) plus refill over the 0.2s run,
	// with slack for scheduling. Anything near the request count means the
	// cap did nothing.
	if n := len(recs); n == 0 || float64(n) > 3*capPerSec {
		t.Errorf("kept %d traces under a %g/s cap in 200ms, want (0, %g]", n, capPerSec, 3*capPerSec)
	}
}

func TestRunUnknownDatasetFails(t *testing.T) {
	code, _, errOut := drive(t, "-duration", "50ms", "-dataset", "NoSuchDataset")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "NoSuchDataset") {
		t.Errorf("stderr does not name the dataset:\n%s", errOut)
	}
}
