// Command report reads run artifacts — the directories the other CLIs
// write under -out — back into answers. It is the consumer the write side
// (internal/obs) was built for: tables regenerated from persisted results,
// an accuracy-drift gate between two runs, and a profile of where the wall
// clock went.
//
// Usage:
//
//	report tables <rundir>                    # rebuild the experiment tables
//	                                          # from results.jsonl
//	report tables -format csv <rundir>        # ...as csv (long form) or json
//	report diff <base-rundir> <new-rundir>    # accudiff: gate on accuracy
//	                                          # drift between two runs
//	report diff -tol 0.002 -alpha 0.01 -q base new
//	report trace <rundir>                     # span profile: per-path
//	                                          # total/self, hot path,
//	                                          # counters, worker utilization
//	report trace -top 10 <rundir>
//	report trace -folded <rundir>             # folded stacks for
//	                                          # flamegraph.pl / speedscope
//	report trace <client-rundir> <server-rundir>  # cross-process assembly:
//	                                          # join sampled traces.jsonl
//	                                          # halves by W3C trace ID and
//	                                          # render the merged trees
//	report latency <rundir>                   # quantile tables from a
//	                                          # loadgen run's histograms.json
//	report latency -format csv <rundir>       # ...as csv or json rows
//	report latency <base-rundir> <new-rundir> # latdiff: gate on a quantile
//	                                          # regression between two runs
//	report latency -quantile 0.999 -tol 0.25 base new
//	report slo -availability 0.999 <rundir>   # SLO compliance + error budget
//	report slo -latency-objective 100ms -latency-target 0.99 <rundir>
//	report watch http://127.0.0.1:8080        # live rate/p50/p99 view from a
//	                                          # running advisord's /metrics
//	report watch -count 30 -p99-budget 5ms http://...  # served-latency gate
//	report watch -format json http://...      # one JSON object per poll
//
// `report diff` and `report latency base new` mirror cmd/benchdiff's
// exit-status convention (see internal/exitcode): 0 when the runs agree
// within tolerance, 1 on a significant regression (accuracy drift beyond
// -tol or a rule-verdict flip for diff; a gated-quantile regression beyond
// -tol plus the histograms' bucket error for latency), 2 on usage or parse
// errors, and 3 when the comparison is vacuous — the base run directory is
// missing or the two runs share zero aligned entries. CI gates on it the
// same way it gates on benchdiff: both 1 and 3 fail the job, but 3 tells
// the operator to fix the baseline, not the code. Read-only subcommands
// (tables, trace, one-run latency) also exit 3 when pointed at a missing
// run directory or one whose artifacts cannot answer the question — the
// directory is not evidence of anything, which is vacuous, not a usage
// mistake.
//
// Artifacts carry a schema version (manifest schema_version, per-line "v");
// report refuses versions newer than it understands instead of misreading
// them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"hamlet/internal/exitcode"
	"hamlet/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the full CLI —
// subcommand routing, flags, rendering, and exit-code policy — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return exitcode.Usage
	}
	switch args[0] {
	case "tables":
		return runTables(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "trace":
		return runTrace(args[1:], stdout, stderr)
	case "latency":
		return runLatency(args[1:], stdout, stderr)
	case "slo":
		return runSLO(args[1:], stdout, stderr)
	case "watch":
		return runWatch(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return exitcode.OK
	default:
		fmt.Fprintf(stderr, "report: unknown subcommand %q\n", args[0])
		usage(stderr)
		return exitcode.Usage
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: report <subcommand> [flags] <args>

subcommands:
  tables  <rundir>          rebuild experiment tables from results.jsonl
                            (-format text|csv|json)
  diff    <base> <new>      gate on accuracy drift between two run dirs
                            (exit 0 clean, 1 drift, 3 vacuous — as benchdiff)
  trace   <rundir>          profile the span tree: per-path total/self time,
                            hot path, counter rollups, worker utilization
                            (-folded emits flamegraph.pl/speedscope stacks)
  trace   <client> <server> cross-process assembly: join the two runs'
                            sampled traces.jsonl by W3C trace ID and render
                            the merged client+server trees with skew and
                            net+queue time
  latency <rundir>          quantile tables from a loadgen run's histograms
                            (-format text|csv|json)
  latency <base> <new>      gate a latency quantile between two loadgen runs
                            (-quantile Q -tol T; exit codes as diff)
  slo     <rundir>          SLO compliance and error-budget burn from a
                            run's telemetry (-availability T,
                            -latency-objective D -latency-target T;
                            multi-window 5m/1h burn rates when the run has
                            per-request events; exit 1 when a budget is
                            exhausted, 3 when no SLI could be computed)
  watch   <url|rundir>      live rate/p50/p99 view polled from an advisord
                            /metrics endpoint or a run directory
                            (-interval D -count N -p99-budget D -k K
                            -format text|json; exit 1 when the budget
                            breaches K consecutive polls, 3 when every poll
                            fails)
`)
}

// loadRun loads a run directory for a read-only subcommand, mapping the two
// non-answers to the gate convention: a missing directory (or one missing
// its manifest) is vacuous — there is nothing to report on — while a
// present-but-unreadable one is a usage/parse error.
func loadRun(dir string, stderr io.Writer) (*report.Run, int) {
	r, err := report.Load(dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			fmt.Fprintf(stderr, "report: %s is not a run directory (missing or no %s); nothing to report\n", dir, "manifest.json")
			return nil, exitcode.Vacuous
		}
		fmt.Fprintf(stderr, "report: %v\n", err)
		return nil, exitcode.Usage
	}
	return r, exitcode.OK
}

func runTables(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text, csv (long form), or json")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: report tables [-format text|csv|json] <rundir>")
		return exitcode.Usage
	}
	r, code := loadRun(fs.Arg(0), stderr)
	if code != exitcode.OK {
		return code
	}
	var err error
	switch *format {
	case "text":
		err = r.WriteTables(stdout)
	case "csv":
		err = r.WriteTablesCSV(stdout)
	case "json":
		err = r.WriteTablesJSON(stdout)
	default:
		fmt.Fprintf(stderr, "report: unknown -format %q (want text, csv, or json)\n", *format)
		return exitcode.Usage
	}
	if err != nil {
		// The run loaded but carries no result rows: a real run directory
		// from a non-experiments tool. That is "nothing to render", not a
		// usage mistake.
		fmt.Fprintf(stderr, "report: %v\n", err)
		return exitcode.Vacuous
	}
	return exitcode.OK
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opt := report.DefaultDiffOptions
	fs.Float64Var(&opt.Tol, "tol", opt.Tol, "absolute tolerance on a measure column's mean delta")
	fs.Float64Var(&opt.Alpha, "alpha", opt.Alpha, "Welch significance level when both sides carry repeated samples")
	quiet := fs.Bool("q", false, "print only drifts and the summary line")
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: report diff [-tol T] [-alpha A] [-q] <base-rundir> <new-rundir>")
		return exitcode.Usage
	}
	base, err := report.Load(fs.Arg(0))
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			fmt.Fprintf(stderr, "report: baseline run dir %s does not exist; nothing to gate against (generate it with `experiments -out`, or commit a baseline run dir)\n", fs.Arg(0))
			return exitcode.Vacuous
		}
		fmt.Fprintf(stderr, "report: %v\n", err)
		return exitcode.Usage
	}
	next, code := loadRun(fs.Arg(1), stderr)
	if code != exitcode.OK {
		return code
	}
	rep := report.Diff(base, next, opt)
	if rep.AlignedKeys == 0 {
		fmt.Fprintf(stderr, "report: no aligned result keys between %s (%d rows) and %s (%d rows); the comparison is vacuous, not a pass\n",
			fs.Arg(0), len(base.Results), fs.Arg(1), len(next.Results))
		return exitcode.Vacuous
	}
	if !*quiet {
		fmt.Fprintf(stdout, "accudiff %s vs %s\n", fs.Arg(0), fs.Arg(1))
	}
	fmt.Fprintf(stdout, "aligned %d keys, compared %d cells (tol=%g, alpha=%g)", rep.AlignedKeys, rep.ComparedCells, opt.Tol, opt.Alpha)
	if len(rep.OnlyBase) > 0 || len(rep.OnlyNew) > 0 {
		fmt.Fprintf(stdout, " (%d only in base, %d only in new)", len(rep.OnlyBase), len(rep.OnlyNew))
	}
	fmt.Fprintln(stdout)
	if !*quiet {
		for _, k := range rep.OnlyBase {
			fmt.Fprintf(stdout, "only in base: %s\n", k)
		}
		for _, k := range rep.OnlyNew {
			fmt.Fprintf(stdout, "only in new: %s\n", k)
		}
	}
	if len(rep.Drifts) == 0 {
		fmt.Fprintln(stdout, "no accuracy drift")
		return exitcode.OK
	}
	fmt.Fprintf(stdout, "DRIFT: %d cell(s) beyond tolerance:\n", len(rep.Drifts))
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	for _, d := range rep.Drifts {
		kind := "measure"
		if d.Decision {
			kind = "VERDICT FLIP"
		}
		where := d.Table
		if d.Key != "" {
			where += " [" + d.Key + "]"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s -> %s\t%s\t%s\n",
			d.Experiment, where, d.Column, d.Old, d.New, kind, pNote(d))
	}
	tw.Flush()
	return exitcode.Failed
}

// pNote renders a drift's statistical backing.
func pNote(d report.Drift) string {
	if d.Decision || math.IsNaN(d.P) {
		return ""
	}
	return fmt.Sprintf("p=%.3f", d.P)
}

func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 15, "show the top N paths by self time (0 = all)")
	folded := fs.Bool("folded", false, "emit folded stacks (path;path;leaf self_µs) for flamegraph.pl or speedscope instead of the profile")
	if err := fs.Parse(args); err != nil || fs.NArg() < 1 || fs.NArg() > 2 {
		fmt.Fprintln(stderr, "usage: report trace [-top N] [-folded] <rundir> [<server-rundir>]")
		return exitcode.Usage
	}
	if fs.NArg() == 2 {
		if *folded {
			fmt.Fprintln(stderr, "report: -folded applies to the single-run profile, not the cross-process assembly")
			return exitcode.Usage
		}
		return runTraceAssembly(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}
	r, code := loadRun(fs.Arg(0), stderr)
	if code != exitcode.OK {
		return code
	}
	tree := r.Trace
	source := "trace.json"
	if tree == nil {
		tree = report.TreeFromEvents(r.Events)
		source = "events.jsonl (no start times; utilization unavailable)"
	}
	p := report.NewProfile(tree)
	if p == nil {
		fmt.Fprintf(stderr, "report: %s carries no span tree (run with -trace or any -out to record one)\n", fs.Arg(0))
		return exitcode.Vacuous
	}
	if *folded {
		if err := p.WriteFolded(stdout); err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return exitcode.Usage
		}
		return exitcode.OK
	}
	fmt.Fprintf(stdout, "trace profile: %s — %.1fms wall, %d spans (from %s)\n\n", p.Root, p.RootMS, p.Spans, source)

	fmt.Fprintln(stdout, "hot path (longest child at each level):")
	for i, h := range p.Hot {
		fmt.Fprintf(stdout, "  %*s%s  %.1fms  %.1f%%\n", 2*i, "", h.Name, h.DurationMS, 100*h.FracRoot)
	}
	fmt.Fprintln(stdout)

	paths := p.Paths
	if *top > 0 && len(paths) > *top {
		paths = paths[:*top]
	}
	fmt.Fprintf(stdout, "top %d paths by self time (of %d):\n", len(paths), len(p.Paths))
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  path\tcount\ttotal\tself\tself%")
	for _, ps := range paths {
		frac := 0.0
		if p.RootMS > 0 {
			frac = ps.SelfMS / p.RootMS
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1fms\t%.1fms\t%.1f%%\n", ps.Path, ps.Count, ps.TotalMS, ps.SelfMS, 100*frac)
	}
	tw.Flush()
	fmt.Fprintln(stdout)

	if len(p.Counters) > 0 {
		fmt.Fprintln(stdout, "counter rollups:")
		ctw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		for _, c := range p.Counters {
			fmt.Fprintf(ctw, "  %s\t%d\n", c.Name, c.Total)
		}
		ctw.Flush()
		fmt.Fprintln(stdout)
	}

	if p.Util != nil {
		fmt.Fprintf(stdout, "workers: avg %.2f concurrent (busy %.1fms over %.1fms wall), peak %d, %d leaf spans\n",
			p.Util.Avg, p.Util.BusyMS, p.Util.WallMS, p.Util.Peak, p.Util.Leaves)
	}
	return exitcode.OK
}

// runTraceAssembly joins two runs' sampled traces.jsonl halves by trace ID
// — typically a loadgen client dir and the advisord server dir it drove —
// and renders the merged cross-process trees.
func runTraceAssembly(clientDir, serverDir string, stdout, stderr io.Writer) int {
	client, code := loadRun(clientDir, stderr)
	if code != exitcode.OK {
		return code
	}
	server, code := loadRun(serverDir, stderr)
	if code != exitcode.OK {
		return code
	}
	asm := report.AssembleTraces(client, server)
	if err := asm.Write(stdout); err != nil {
		// Both runs loaded but neither kept a sampled trace: nothing to
		// assemble is vacuous, not a usage mistake.
		fmt.Fprintf(stderr, "%v\n", err)
		return exitcode.Vacuous
	}
	return exitcode.OK
}

// runSLO evaluates SLO compliance and error-budget burn for one run dir.
func runSLO(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	avail := fs.Float64("availability", 0, "availability target in [0,1) (0.999 = three nines; 0 = skip)")
	latObj := fs.Duration("latency-objective", 0, "latency objective the latency SLO bounds (0 = skip)")
	latTgt := fs.Float64("latency-target", 0.99, "fraction of requests that must meet -latency-objective")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: report slo [-availability T] [-latency-objective D] [-latency-target T] <rundir>")
		return exitcode.Usage
	}
	if *avail < 0 || *avail >= 1 {
		fmt.Fprintln(stderr, "report: -availability must be in [0, 1)")
		return exitcode.Usage
	}
	if *latTgt <= 0 || *latTgt >= 1 {
		fmt.Fprintln(stderr, "report: -latency-target must be in (0, 1)")
		return exitcode.Usage
	}
	if *avail == 0 && *latObj == 0 {
		fmt.Fprintln(stderr, "report: configure at least one SLO (-availability and/or -latency-objective)")
		return exitcode.Usage
	}
	r, code := loadRun(fs.Arg(0), stderr)
	if code != exitcode.OK {
		return code
	}
	rep := r.SLO(report.SLOOptions{
		Availability:     *avail,
		LatencyObjective: *latObj,
		LatencyTarget:    *latTgt,
	})
	rep.Write(stdout, fs.Arg(0))
	switch {
	case rep.Vacuous():
		fmt.Fprintf(stderr, "report: %s carries no telemetry for the configured SLOs; nothing to gate\n", fs.Arg(0))
		return exitcode.Vacuous
	case rep.Exhausted():
		return exitcode.Failed
	default:
		return exitcode.OK
	}
}

// runLatency renders one loadgen run's quantile tables, or gates a latency
// quantile between two runs ("latdiff").
func runLatency(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report latency", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opt := report.DefaultLatencyDiffOptions
	fs.Float64Var(&opt.Quantile, "quantile", opt.Quantile, "quantile the two-run gate compares (0.99 = p99)")
	fs.Float64Var(&opt.Tol, "tol", opt.Tol, "relative regression tolerance on the gated quantile (0.10 = +10%); the histograms' bucket error is added on top")
	format := fs.String("format", "text", "single-run output format: text, csv, or json")
	if err := fs.Parse(args); err != nil || fs.NArg() < 1 || fs.NArg() > 2 {
		fmt.Fprintln(stderr, "usage: report latency [-quantile Q] [-tol T] [-format text|csv|json] <rundir> [<new-rundir>]")
		return exitcode.Usage
	}
	if fs.NArg() == 2 && *format != "text" {
		fmt.Fprintln(stderr, "report: -format applies to the single-run table, not the two-run gate")
		return exitcode.Usage
	}
	base, code := loadRun(fs.Arg(0), stderr)
	if code != exitcode.OK {
		return code
	}

	if fs.NArg() == 1 {
		var err error
		switch *format {
		case "text":
			err = base.WriteLatency(stdout)
		case "csv":
			err = base.WriteLatencyCSV(stdout)
		case "json":
			err = base.WriteLatencyJSON(stdout)
		default:
			fmt.Fprintf(stderr, "report: unknown -format %q (want text, csv, or json)\n", *format)
			return exitcode.Usage
		}
		if err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return exitcode.Vacuous
		}
		return exitcode.OK
	}

	next, code := loadRun(fs.Arg(1), stderr)
	if code != exitcode.OK {
		return code
	}
	rep := report.LatencyDiff(base, next, opt)
	if len(rep.Deltas) == 0 {
		fmt.Fprintf(stderr, "report: no aligned histograms between %s (%d) and %s (%d); the comparison is vacuous, not a pass\n",
			fs.Arg(0), len(base.Histograms), fs.Arg(1), len(next.Histograms))
		return exitcode.Vacuous
	}
	fmt.Fprintf(stdout, "latdiff %s vs %s — p%g, tol +%.0f%% (+ bucket error)\n",
		fs.Arg(0), fs.Arg(1), 100*rep.Quantile, 100*opt.Tol)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "histogram\tbase\tnew\tdelta\tverdict")
	for _, d := range rep.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%\t%s\n", d.Name, ns(d.Base), ns(d.New), 100*d.Rel, verdict)
	}
	tw.Flush()
	for _, name := range rep.OnlyBase {
		fmt.Fprintf(stdout, "only in base: %s\n", name)
	}
	for _, name := range rep.OnlyNew {
		fmt.Fprintf(stdout, "only in new: %s\n", name)
	}
	if n := rep.Regressions(); n > 0 {
		fmt.Fprintf(stdout, "REGRESSION: %d histogram(s) beyond tolerance\n", n)
		return exitcode.Failed
	}
	fmt.Fprintln(stdout, "no latency regression")
	return exitcode.OK
}

// ns renders a nanosecond latency as a duration string.
func ns(v int64) time.Duration { return time.Duration(v) }

// runWatch polls a live /metrics endpoint (http[s]:// target) or a run
// directory and renders the rolling rate/quantile view; with -p99-budget it
// gates on served tail latency.
func runWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	interval := fs.Duration("interval", time.Second, "poll period")
	count := fs.Int("count", 0, "number of polls (0 = watch until interrupted, or until the budget breaches)")
	budget := fs.Duration("p99-budget", 0, "fail when the served p99 exceeds this for -k consecutive polls (0 = no gate)")
	k := fs.Int("k", report.DefaultBreachPolls, "consecutive over-budget polls that trip the gate")
	format := fs.String("format", "text", "output format: text, or json (one object per poll plus a summary object)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: report watch [-interval D] [-count N] [-p99-budget D] [-k K] [-format text|json] <url|rundir>")
		return exitcode.Usage
	}
	if *k <= 0 {
		fmt.Fprintln(stderr, "report: -k must be positive")
		return exitcode.Usage
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "report: unknown -format %q (want text or json)\n", *format)
		return exitcode.Usage
	}
	target := fs.Arg(0)
	var src report.WatchSource
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		url := target
		if !strings.Contains(url, "/metrics") {
			url = strings.TrimRight(url, "/") + "/metrics"
		}
		src = report.MetricsSource(nil, url)
	} else {
		src = report.RunDirSource(target)
	}
	res := report.Watch(stdout, src, report.WatchOptions{
		Target:      target,
		Interval:    *interval,
		Polls:       *count,
		P99Budget:   *budget,
		BreachPolls: *k,
		Format:      *format,
	})
	switch {
	case res.Breached:
		return exitcode.Failed
	case res.Failures == res.Polls:
		// Nothing answered: there is no evidence either way.
		return exitcode.Vacuous
	default:
		return exitcode.OK
	}
}
