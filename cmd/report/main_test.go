package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hamlet/internal/exitcode"
)

// fixture resolves a committed run directory under internal/report/testdata.
func fixture(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "internal", "report", "testdata", name)
	if name != "missing" {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
	}
	return path
}

// drive runs the CLI in-process and returns (exit code, stdout, stderr).
func drive(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestTablesRendersGolden(t *testing.T) {
	code, out, errOut := drive(t, "tables", fixture(t, "base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	want, err := os.ReadFile(fixture(t, "tables.golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("tables output diverged from golden:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestDiffExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		base, new string
		want      int
	}{
		{"identical runs pass", "base", "base", exitcode.OK},
		{"seeded drift fails", "base", "drift", exitcode.Failed},
		{"disjoint keys vacuous", "base", "disjoint", exitcode.Vacuous},
		{"missing baseline vacuous", "missing", "base", exitcode.Vacuous},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, out, errOut := drive(t, "diff", fixture(t, c.base), fixture(t, c.new))
			if code != c.want {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, c.want, out, errOut)
			}
		})
	}
}

func TestDiffNamesTheSeededDrift(t *testing.T) {
	code, out, _ := drive(t, "diff", fixture(t, "base"), fixture(t, "drift"))
	if code != exitcode.Failed {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"DRIFT", "dErr", "0.0047 -> 0.0647", "safeROR(C)", "VERDICT FLIP"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffQuietAndTolerance(t *testing.T) {
	// tol=1 silences the measure drift; the verdict flip still gates.
	code, out, _ := drive(t, "diff", "-q", "-tol", "1", fixture(t, "base"), fixture(t, "drift"))
	if code != exitcode.Failed {
		t.Fatalf("exit = %d, want %d", code, exitcode.Failed)
	}
	if strings.Contains(out, "dErr") || !strings.Contains(out, "VERDICT FLIP") {
		t.Errorf("tol=1 output: %s", out)
	}
}

func TestTraceProfile(t *testing.T) {
	code, out, errOut := drive(t, "trace", fixture(t, "base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"trace profile: experiments", "hot path", "self", "workers: avg", "counter rollups", "models_trained"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyRendersFixture(t *testing.T) {
	code, out, errOut := drive(t, "latency", fixture(t, "latency_base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"request_latency_ns", "p50", "p99.9", "100000", "precision 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyDiffExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"identical runs pass", []string{"latency", "latency_base", "latency_base"}, exitcode.OK},
		{"seeded p99 regression fails", []string{"latency", "latency_base", "latency_regress"}, exitcode.Failed},
		{"improvement passes", []string{"latency", "latency_regress", "latency_base"}, exitcode.OK},
		{"generous tolerance passes", []string{"latency", "-tol", "9", "latency_base", "latency_regress"}, exitcode.OK},
		{"p50 gate ignores tail-only regression", []string{"latency", "-quantile", "0.5", "latency_base", "latency_regress"}, exitcode.OK},
		{"missing baseline vacuous", []string{"latency", "missing", "latency_base"}, exitcode.Vacuous},
		{"histogram-less run vacuous", []string{"latency", "base"}, exitcode.Vacuous},
		{"no aligned histograms vacuous", []string{"latency", "base", "drift"}, exitcode.Vacuous},
	}
	fixtures := map[string]bool{"latency_base": true, "latency_regress": true, "base": true, "drift": true, "missing": true}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := append([]string{}, c.args...)
			for i, a := range args {
				if fixtures[a] {
					args[i] = fixture(t, a)
				}
			}
			code, out, errOut := drive(t, args...)
			if code != c.want {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, c.want, out, errOut)
			}
		})
	}
}

func TestLatencyDiffNamesTheRegression(t *testing.T) {
	code, out, _ := drive(t, "latency", fixture(t, "latency_base"), fixture(t, "latency_regress"))
	if code != exitcode.Failed {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"latdiff", "request_latency_ns", "REGRESSED", "REGRESSION: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("latdiff output missing %q:\n%s", want, out)
		}
	}
}

func TestTablesFormats(t *testing.T) {
	code, out, errOut := drive(t, "tables", "-format", "csv", fixture(t, "base"))
	if code != exitcode.OK || !strings.HasPrefix(out, "experiment,table,row,column,value\n") {
		t.Errorf("csv: exit %d, stderr %s, out:\n%.100s", code, errOut, out)
	}
	code, out, errOut = drive(t, "tables", "-format", "json", fixture(t, "base"))
	if code != exitcode.OK || !strings.HasPrefix(out, "[") {
		t.Errorf("json: exit %d, stderr %s, out:\n%.100s", code, errOut, out)
	}
	if code, _, _ := drive(t, "tables", "-format", "yaml", fixture(t, "base")); code != exitcode.Usage {
		t.Errorf("unknown format: exit %d, want %d", code, exitcode.Usage)
	}
}

func TestLatencyFormats(t *testing.T) {
	code, out, errOut := drive(t, "latency", "-format", "csv", fixture(t, "latency_base"))
	if code != exitcode.OK || !strings.HasPrefix(out, "histogram,count,min_ns,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,mean_ns,precision\n") {
		t.Errorf("csv: exit %d, stderr %s, out:\n%.200s", code, errOut, out)
	}
	code, out, errOut = drive(t, "latency", "-format", "json", fixture(t, "latency_base"))
	if code != exitcode.OK || !strings.HasPrefix(out, "[") || !strings.Contains(out, `"p99_ns"`) {
		t.Errorf("json: exit %d, stderr %s, out:\n%.200s", code, errOut, out)
	}
	if code, _, _ = drive(t, "latency", "-format", "yaml", fixture(t, "latency_base")); code != exitcode.Usage {
		t.Errorf("unknown format: exit %d, want %d", code, exitcode.Usage)
	}
	// -format is a single-run rendering concern; the two-run gate refuses it.
	if code, _, _ = drive(t, "latency", "-format", "csv", fixture(t, "latency_base"), fixture(t, "latency_regress")); code != exitcode.Usage {
		t.Errorf("two-run -format: exit %d, want %d", code, exitcode.Usage)
	}
}

func TestWatchRunDir(t *testing.T) {
	code, out, errOut := drive(t, "watch", "-count", "2", "-interval", "0s", fixture(t, "latency_base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"watch ", "p99", "100000", "watched 2 polls"} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

func TestWatchBudgetGate(t *testing.T) {
	// The fixture's p99 is microseconds; a 1ns budget must breach, a 1h
	// budget must pass.
	code, out, _ := drive(t, "watch", "-count", "5", "-interval", "0s", "-p99-budget", "1ns", "-k", "2", fixture(t, "latency_base"))
	if code != exitcode.Failed {
		t.Errorf("breach exit = %d, want %d\n%s", code, exitcode.Failed, out)
	}
	if !strings.Contains(out, "OVER BUDGET") {
		t.Errorf("breach output:\n%s", out)
	}
	code, _, _ = drive(t, "watch", "-count", "1", "-interval", "0s", "-p99-budget", "1h", fixture(t, "latency_base"))
	if code != exitcode.OK {
		t.Errorf("generous budget exit = %d, want %d", code, exitcode.OK)
	}
}

// TestWatchHTTPTarget: an http:// target is polled as a /metrics endpoint
// (the path is appended when absent).
func TestWatchHTTPTarget(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "advisord_requests_total 7\nadvisord_request_latency_seconds{quantile=\"0.99\"} 0.000001\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	code, out, errOut := drive(t, "watch", "-count", "1", "-interval", "0s", ts.URL)
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "7") || !strings.Contains(out, "1µs") {
		t.Errorf("watch output:\n%s", out)
	}
}

func TestWatchMissingTargetVacuous(t *testing.T) {
	code, _, _ := drive(t, "watch", "-count", "2", "-interval", "0s", fixture(t, "missing"))
	if code != exitcode.Vacuous {
		t.Errorf("all-polls-failed exit = %d, want %d", code, exitcode.Vacuous)
	}
}

func TestWatchUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"watch"},
		{"watch", "-k", "0", "x"},
		{"watch", "-not-a-flag", "x"},
	} {
		if code, _, _ := drive(t, args...); code != exitcode.Usage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitcode.Usage)
		}
	}
}

func TestTraceFolded(t *testing.T) {
	code, out, errOut := drive(t, "trace", "-folded", fixture(t, "base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		stack, _, ok := strings.Cut(line, " ")
		if !ok || !strings.HasPrefix(stack, "experiments") {
			t.Fatalf("bad folded line %q", line)
		}
	}
}

// TestVacuousRunDirs pins the exit-3 policy for read-only subcommands: a
// missing run dir or one whose artifacts cannot answer the question is
// vacuous, not a usage error.
func TestVacuousRunDirs(t *testing.T) {
	cases := [][]string{
		{"tables", "missing"},
		{"trace", "missing"},
		{"latency", "missing"},
		{"tables", "latency_base"},  // loads, but has no results.jsonl
		{"trace", "latency_base"},   // loads, but carries no span tree
		{"latency", "base"},         // loads, but has no histograms.json
		{"diff", "base", "missing"}, // new side missing
	}
	for _, args := range cases {
		full := append([]string{args[0]}, args[1:]...)
		for i := 1; i < len(full); i++ {
			full[i] = fixture(t, full[i])
		}
		code, _, errOut := drive(t, full...)
		if code != exitcode.Vacuous {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", args, code, exitcode.Vacuous, errOut)
		}
		if errOut == "" {
			t.Errorf("run(%v) exited vacuous with no explanation", args)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"tables"},
		{"tables", "a", "b"},
		{"diff", "only-one"},
		{"trace"},
		{"latency"},
		{"latency", "a", "b", "c"},
	}
	for _, args := range cases {
		if code, _, _ := drive(t, args...); code != exitcode.Usage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitcode.Usage)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	code, _, errOut := drive(t, "help")
	if code != exitcode.OK || !strings.Contains(errOut, "subcommands") {
		t.Errorf("help: exit %d, stderr %s", code, errOut)
	}
}

// tracedRunDir writes a run dir holding one traces.jsonl record.
func tracedRunDir(t *testing.T, record string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"manifest.json": `{"schema_version":1,"tool":"test"}`,
		"traces.jsonl":  record + "\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestTraceCrossProcess: the two-dir trace mode joins a client and a server
// run by trace ID and renders the merged tree.
func TestTraceCrossProcess(t *testing.T) {
	clientDir := tracedRunDir(t, `{"v":1,"trace_id":"0af7651916cd43dd8448eb211c80319c","span_id":"b7ad6b7169203331","kind":"client","request_id":"r-9","span":{"name":"client(decide)","start":"2026-08-08T12:00:00Z","duration_ms":5}}`)
	serverDir := tracedRunDir(t, `{"v":1,"trace_id":"0af7651916cd43dd8448eb211c80319c","span_id":"00f067aa0ba902b7","parent_span_id":"b7ad6b7169203331","kind":"server","request_id":"r-9","span":{"name":"server(decide)","start":"2026-08-08T12:00:00.001Z","duration_ms":3.5,"children":[{"name":"decode","start":"2026-08-08T12:00:00.001Z","duration_ms":0.1}]}}`)
	code, out, errOut := drive(t, "trace", clientDir, serverDir)
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"1 complete", "trace 0af7651916cd43dd8448eb211c80319c (request r-9)",
		"client(decide)", "server(decide)", "[server]", "net+queue 1.50ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cross-process trace missing %q:\n%s", want, out)
		}
	}
	// The server tree must be nested under the client span.
	ci := strings.Index(out, "client(decide)")
	si := strings.Index(out, "server(decide)")
	if ci < 0 || si < ci {
		t.Errorf("server span not rendered under the client span:\n%s", out)
	}

	// Two traceless runs: vacuous, not a pass.
	code, _, errOut = drive(t, "trace", fixture(t, "base"), fixture(t, "base"))
	if code != exitcode.Vacuous || !strings.Contains(errOut, "no sampled traces") {
		t.Errorf("traceless assembly: exit %d, stderr %s", code, errOut)
	}

	// -folded is a single-run flag.
	if code, _, _ := drive(t, "trace", "-folded", clientDir, serverDir); code != exitcode.Usage {
		t.Errorf("-folded with two dirs: exit %d, want %d", code, exitcode.Usage)
	}
}

func TestSLOExitCodes(t *testing.T) {
	// The served_base fixture (histograms only) meets a 5ms objective and
	// busts a 2µs one; with no latency SLO configured it is vacuous.
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"generous objective passes", []string{"slo", "-latency-objective", "5ms", "served_base"}, exitcode.OK},
		{"tight objective exhausts", []string{"slo", "-latency-objective", "2us", "served_base"}, exitcode.Failed},
		{"availability-only has no data", []string{"slo", "-availability", "0.999", "served_base"}, exitcode.Vacuous},
		{"missing run dir", []string{"slo", "-latency-objective", "5ms", "missing"}, exitcode.Vacuous},
		{"no SLO configured", []string{"slo", "served_base"}, exitcode.Usage},
		{"bad availability", []string{"slo", "-availability", "1", "served_base"}, exitcode.Usage},
		{"bad latency target", []string{"slo", "-latency-objective", "5ms", "-latency-target", "1", "served_base"}, exitcode.Usage},
	}
	if code, _, _ := drive(t, "slo", "-availability", "0.999"); code != exitcode.Usage {
		t.Errorf("slo with no rundir: exit %d, want %d", code, exitcode.Usage)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			full := append([]string{}, c.args...)
			full[len(full)-1] = fixture(t, full[len(full)-1])
			code, out, errOut := drive(t, full...)
			if code != c.want {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, c.want, out, errOut)
			}
		})
	}

	code, out, _ := drive(t, "slo", "-latency-objective", "5ms", fixture(t, "served_base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"latency: target 99% under 5ms", "100000 requests", "within budget", "histograms.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("slo output missing %q:\n%s", want, out)
		}
	}
}

// TestWatchJSONFormat: -format json emits JSONL a machine can consume.
func TestWatchJSONFormat(t *testing.T) {
	code, out, errOut := drive(t, "watch", "-count", "2", "-interval", "0s", "-format", "json", fixture(t, "latency_base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 2 polls + summary:\n%s", len(lines), out)
	}
	var sum struct {
		Summary  bool  `json:"summary"`
		Polls    int   `json:"polls"`
		Requests int64 `json:"requests"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &sum); err != nil {
		t.Fatalf("summary line %q: %v", lines[2], err)
	}
	if !sum.Summary || sum.Polls != 2 || sum.Requests != 100_000 {
		t.Errorf("summary = %+v", sum)
	}

	if code, _, _ := drive(t, "watch", "-format", "yaml", fixture(t, "latency_base")); code != exitcode.Usage {
		t.Errorf("-format yaml: exit %d, want %d", code, exitcode.Usage)
	}
}
