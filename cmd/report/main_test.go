package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hamlet/internal/exitcode"
)

// fixture resolves a committed run directory under internal/report/testdata.
func fixture(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "internal", "report", "testdata", name)
	if name != "missing" {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
	}
	return path
}

// drive runs the CLI in-process and returns (exit code, stdout, stderr).
func drive(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestTablesRendersGolden(t *testing.T) {
	code, out, errOut := drive(t, "tables", fixture(t, "base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	want, err := os.ReadFile(fixture(t, "tables.golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("tables output diverged from golden:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestDiffExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		base, new string
		want      int
	}{
		{"identical runs pass", "base", "base", exitcode.OK},
		{"seeded drift fails", "base", "drift", exitcode.Failed},
		{"disjoint keys vacuous", "base", "disjoint", exitcode.Vacuous},
		{"missing baseline vacuous", "missing", "base", exitcode.Vacuous},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, out, errOut := drive(t, "diff", fixture(t, c.base), fixture(t, c.new))
			if code != c.want {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, c.want, out, errOut)
			}
		})
	}
}

func TestDiffNamesTheSeededDrift(t *testing.T) {
	code, out, _ := drive(t, "diff", fixture(t, "base"), fixture(t, "drift"))
	if code != exitcode.Failed {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"DRIFT", "dErr", "0.0047 -> 0.0647", "safeROR(C)", "VERDICT FLIP"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffQuietAndTolerance(t *testing.T) {
	// tol=1 silences the measure drift; the verdict flip still gates.
	code, out, _ := drive(t, "diff", "-q", "-tol", "1", fixture(t, "base"), fixture(t, "drift"))
	if code != exitcode.Failed {
		t.Fatalf("exit = %d, want %d", code, exitcode.Failed)
	}
	if strings.Contains(out, "dErr") || !strings.Contains(out, "VERDICT FLIP") {
		t.Errorf("tol=1 output: %s", out)
	}
}

func TestTraceProfile(t *testing.T) {
	code, out, errOut := drive(t, "trace", fixture(t, "base"))
	if code != exitcode.OK {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"trace profile: experiments", "hot path", "self", "workers: avg", "counter rollups", "models_trained"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"tables"},
		{"tables", "a", "b"},
		{"diff", "only-one"},
		{"trace"},
	}
	for _, args := range cases {
		if code, _, _ := drive(t, args...); code != exitcode.Usage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitcode.Usage)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	code, _, errOut := drive(t, "help")
	if code != exitcode.OK || !strings.Contains(errOut, "subcommands") {
		t.Errorf("help: exit %d, stderr %s", code, errOut)
	}
}
