// Command simulate runs a single Monte Carlo bias–variance study (the
// machinery behind the paper's Figures 3, 10, 11, and 13) for an arbitrary
// simulation configuration, printing the Domingos decomposition of the three
// model classes UseAll, NoJoin, and NoFK, together with the configuration's
// ROR and tuple ratio.
//
// Usage:
//
//	simulate -scenario OneXr -ntrain 1000 -nr 40
//	simulate -scenario AllXsXr -ntrain 500 -nr 100 -ds 4 -dr 4
//	simulate -scenario OneXr -skew needle -needle 0.5   # malign FK skew
//	simulate -worlds 100 -L 100 -progress               # progress/ETA on stderr
//	simulate -worlds 100 -L 100 -workers 8              # parallel Monte Carlo sweep
//	simulate -trace -cpuprofile cpu.out -http :6060     # span tree + profiling
//	simulate -out runs/onexr                            # persist run artifacts
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"text/tabwriter"
	"time"

	"hamlet"
	"hamlet/internal/obs"
)

func main() {
	var (
		scenario = flag.String("scenario", "OneXr", "true distribution: OneXr, AllXsXr, XsFkOnly")
		nTrain   = flag.Int("ntrain", 1000, "training examples n_S")
		nTest    = flag.Int("ntest", 1000, "test examples")
		nr       = flag.Int("nr", 40, "attribute table size n_R = |D_FK|")
		ds       = flag.Int("ds", 2, "entity-table features d_S")
		dr       = flag.Int("dr", 4, "attribute-table features d_R")
		p        = flag.Float64("p", 0.1, "scenario noise parameter")
		skew     = flag.String("skew", "none", "FK skew: none, zipf, needle")
		zipfS    = flag.Float64("zipf", 2, "Zipf exponent for -skew zipf")
		needle   = flag.Float64("needle", 0.5, "needle probability for -skew needle")
		worlds   = flag.Int("worlds", 10, "world realizations")
		l        = flag.Int("L", 24, "training sets per world")
		seed     = flag.Uint64("seed", 1, "seed")
		workers  = flag.Int("workers", 0, "worker goroutines for the Monte Carlo fan-out (0 = GOMAXPROCS); results are identical at any count")
		progress = flag.Bool("progress", false, "print periodic progress/ETA lines to stderr")
		trace    = flag.Bool("trace", false, "print the Monte Carlo span tree to stderr on completion")
		outDir   = flag.String("out", "", "write run artifacts (manifest.json, events.jsonl, metrics.json, trace.json) to this directory")
		prof     obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "simulate: profiling: %v\n", err)
		}
	}()

	cfg := hamlet.SimConfig{DS: *ds, DR: *dr, NR: *nr, P: *p, ZipfS: *zipfS, NeedleP: *needle}
	switch *scenario {
	case "OneXr":
		cfg.Scenario = hamlet.ScenarioOneXr
	case "AllXsXr":
		cfg.Scenario = hamlet.ScenarioAllXsXr
	case "XsFkOnly":
		cfg.Scenario = hamlet.ScenarioXsFkOnly
	default:
		fatal("unknown scenario %q", *scenario)
	}
	switch *skew {
	case "none":
	case "zipf":
		cfg.Skew = 1
	case "needle":
		cfg.Skew = 2
	default:
		fatal("unknown skew %q", *skew)
	}

	runDir, err := obs.OpenRunDir(*outDir, obs.CollectRunInfo("simulate", flag.CommandLine))
	if err != nil {
		fatal("%v", err)
	}

	bvCfg := hamlet.BiasVarConfig{
		NTrain: *nTrain, NTest: *nTest, L: *l, Worlds: *worlds, Seed: *seed,
		Workers: *workers, Learner: hamlet.NaiveBayes(),
	}
	if *progress || runDir != nil {
		w := io.Writer(io.Discard)
		if *progress {
			w = os.Stderr
		}
		bvCfg.Progress = obs.NewProgress(w, "simulate", 2*time.Second)
		bvCfg.Progress.AttachEvents(runDir.Events())
	}
	var root *obs.Span
	if *trace || runDir != nil {
		root = obs.StartSpan(fmt.Sprintf("simulate(%s, n_S=%d, |D_FK|=%d)", *scenario, *nTrain, *nr))
		bvCfg.Span = root
	}
	out, err := hamlet.BiasVariance(cfg, bvCfg)
	root.End()
	bvCfg.Progress.Flush()
	if err != nil {
		fatal("%v", err)
	}
	if *trace {
		if err := root.WriteText(os.Stderr); err != nil {
			fatal("trace: %v", err)
		}
	}
	ror, err := hamlet.ROR(*nTrain, *nr, 2, hamlet.DefaultDelta)
	if err != nil {
		fatal("%v", err)
	}
	tr, err := hamlet.TupleRatio(*nTrain, *nr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("scenario %s: n_S=%d |D_FK|=%d d_S=%d d_R=%d p=%.2f skew=%s\n",
		*scenario, *nTrain, *nr, *ds, *dr, *p, *skew)
	fmt.Printf("rules: TR=%.2f (τ=20 → avoid=%v), worst-case ROR=%.3f (ρ=2.5 → avoid=%v)\n\n",
		tr, tr >= hamlet.DefaultThresholds.Tau, ror, ror <= hamlet.DefaultThresholds.Rho)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model class\ttest error\tbias\tnet variance\tnoise")
	for _, name := range []string{"UseAll", "NoJoin", "NoFK"} {
		d := out[name]
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.4f\n", name, d.TestError, d.Bias, d.NetVariance, d.Noise)
		runDir.Events().Emit("decomposition",
			slog.String("model", name),
			slog.String("scenario", *scenario),
			slog.Float64("test_error", d.TestError),
			slog.Float64("bias", d.Bias),
			slog.Float64("net_variance", d.NetVariance),
			slog.Float64("noise", d.Noise),
		)
	}
	tw.Flush()
	if err := runDir.Close(root, nil); err != nil {
		fatal("run artifacts: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
	os.Exit(1)
}
