package hamlet_test

import (
	"fmt"

	"hamlet"
)

// ExampleROR evaluates the worst-case Risk Of Representation for the
// paper's Walmart/Indicators join: 210785 training rows, 2340 indicator
// records, smallest foreign-feature domain 2.
func ExampleROR() {
	ror, err := hamlet.ROR(210785, 2340, 2, hamlet.DefaultDelta)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ROR = %.2f, avoid = %v\n", ror, ror <= hamlet.DefaultThresholds.Rho)
	// Output:
	// ROR = 1.77, avoid = true
}

// ExampleTupleRatio shows the TR rule on the paper's Flights airport
// tables: 33274 training rows over 3182 airports is below τ = 20, so the
// join is conservatively kept.
func ExampleTupleRatio() {
	tr, err := hamlet.TupleRatio(33274, 3182)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TR = %.1f, avoid = %v\n", tr, tr >= hamlet.DefaultThresholds.Tau)
	// Output:
	// TR = 10.5, avoid = false
}

// ExampleAdvisor runs the full decision pipeline on a small normalized
// dataset: orders referencing products through a closed-domain foreign key.
func ExampleAdvisor() {
	products := hamlet.NewTable("Products")
	products.MustAddColumn(&hamlet.Column{Name: "Category", Card: 2, Data: []int32{0, 1, 0, 1}})
	orders := hamlet.NewTable("Orders")
	n := 400
	returned := make([]int32, n)
	productID := make([]int32, n)
	for i := 0; i < n; i++ {
		productID[i] = int32(i % 4)
		returned[i] = int32((i % 4) / 2)
	}
	orders.MustAddColumn(&hamlet.Column{Name: "Returned", Card: 2, Data: returned})
	orders.MustAddColumn(&hamlet.Column{Name: "ProductID", Card: 4, Data: productID})
	ds := &hamlet.Dataset{
		Name:   "Returns",
		Entity: orders,
		Target: "Returned",
		Attrs: []hamlet.AttributeTable{
			{Table: products, FK: "ProductID", ClosedDomain: true},
		},
	}
	decisions, err := hamlet.NewAdvisor().Decide(ds)
	if err != nil {
		panic(err)
	}
	for _, d := range decisions {
		fmt.Printf("%s: TR=%.0f avoid=%v\n", d.Attr, d.TR, d.Avoid)
	}
	// Output:
	// Products: TR=50 avoid=true
}

// ExampleRedundantFeatures applies Corollary C.1 to a declared FD set: the
// dependent-side features are droppable a priori.
func ExampleRedundantFeatures() {
	fds := []hamlet.FD{
		{Det: []string{"EmployerID"}, Dep: []string{"Country", "Revenue"}},
		{Det: []string{"Country"}, Dep: []string{"Continent"}},
	}
	redundant, err := hamlet.RedundantFeatures(fds)
	if err != nil {
		panic(err)
	}
	fmt.Println(redundant)
	// Output:
	// [Continent Country Revenue]
}

// ExampleDecomposeBCNF recovers the normalized schema of the paper's joined
// table T: SID is the key of T and FK functionally determines the foreign
// features, so the decomposition splits off the attribute table.
func ExampleDecomposeBCNF() {
	all := []string{"SID", "Y", "XS", "FK", "XR1", "XR2"}
	fds := []hamlet.FD{
		{Det: []string{"SID"}, Dep: []string{"Y", "XS", "FK"}},
		{Det: []string{"FK"}, Dep: []string{"XR1", "XR2"}},
	}
	schemas, err := hamlet.DecomposeBCNF("T", all, fds)
	if err != nil {
		panic(err)
	}
	for _, s := range schemas {
		fmt.Println(s.Name, s.Attrs)
	}
	// Output:
	// T_1 [FK SID XS Y]
	// T_2 [FK XR1 XR2]
}

// ExampleEqualWidthBins discretizes a numeric series the way the paper
// preprocesses numeric features.
func ExampleEqualWidthBins() {
	col, err := hamlet.EqualWidthBins("Price", []float64{1, 2, 9, 10}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(col.Name, col.Card, col.Data)
	// Output:
	// Price 2 [0 0 1 1]
}
