// Churn: the paper's running example (§2.1). Customers(CustomerID, Churn,
// Gender, Age, EmployerID) references Employers(EmployerID, Country,
// Revenue). We reproduce the paper's §3.2 thought experiment — "all
// customers with employers based in 'The Shire' churn and they are the only
// ones who churn" — and show the bias–variance dichotomy directly: with few
// training examples, using EmployerID as a representative of the employer
// features (NoJoin) inflates the variance; with many, it is harmless. We
// also show why dropping the FK entirely (the NoFK ablation of Figure 8(C))
// is safe *here* but avoid-the-join is safer in general.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"hamlet"
)

func main() {
	// The scenario: one foreign feature (Country, X_r) carries the whole
	// concept; EmployerID has a much larger domain than Country.
	cfg := hamlet.SimConfig{
		Scenario: hamlet.ScenarioOneXr,
		DS:       2,   // Gender, Age (noise here)
		DR:       2,   // Country (the concept), Revenue (noise)
		NR:       200, // 200 employers
		P:        0.1, // 10% label noise
	}
	fmt.Println("churn study: concept lives in one employer feature (Country);")
	fmt.Println("EmployerID (|D_FK|=200) can represent it, but at what variance cost?")
	fmt.Println()
	for _, nTrain := range []int{500, 2000, 8000} {
		out, err := hamlet.BiasVariance(cfg, hamlet.BiasVarConfig{
			NTrain: nTrain, NTest: 1000, L: 16, Worlds: 6, Seed: 11,
			Learner: hamlet.NaiveBayes(),
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, _ := hamlet.TupleRatio(nTrain, cfg.NR)
		ror, _ := hamlet.ROR(nTrain, cfg.NR, 2, hamlet.DefaultDelta)
		verdict := "KEEP (join)"
		if tr >= hamlet.DefaultThresholds.Tau {
			verdict = "AVOID join"
		}
		fmt.Printf("n_train=%-5d TR=%-6.1f ROR=%-5.2f rule says %-11s | test error: UseAll %.4f  NoJoin %.4f  NoFK %.4f | NoJoin net var %.4f\n",
			nTrain, tr, ror, verdict,
			out["UseAll"].TestError, out["NoJoin"].TestError, out["NoFK"].TestError,
			out["NoJoin"].NetVariance)
	}
	fmt.Println()
	fmt.Println("reading: at small n_train the rule keeps the join and NoJoin's error is")
	fmt.Println("visibly above UseAll's (pure net variance — the paper's §3.2 danger);")
	fmt.Println("once TR clears τ=20 the rule avoids the join and NoJoin matches UseAll.")
}
