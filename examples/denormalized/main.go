// Denormalized: the Appendix C generalization. Analysts often receive one
// wide, already-joined table plus knowledge of its functional dependencies
// (from documentation or profiling). Corollary C.1 says every feature on
// the dependent side of an acyclic FD set is redundant and can be dropped a
// priori, with the determinants as representatives — the same trick as
// avoiding a KFK join, without any base tables in sight. This example
// builds a wide sales table with numeric columns (binned, as the paper
// prescribes), declares its FDs, verifies they hold, drops the redundant
// features, and compares feature selection on the wide versus the reduced
// table. It also demonstrates cold-start handling with a reserved Others
// record.
//
//	go run ./examples/denormalized
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"hamlet"
)

func main() {
	const nStores, n = 30, 24000
	rng := rand.New(rand.NewPCG(5, 5))

	// Per-store attributes (functionally determined by StoreID).
	region := make([]int32, nStores)
	sqftRaw := make([]float64, nStores)
	for i := range region {
		region[i] = int32(rng.IntN(4))
		sqftRaw[i] = 5000 + rng.Float64()*45000
	}
	// Bin the numeric square footage the way the paper does (§5).
	sqftCol, err := hamlet.EqualWidthBins("SqftBand", sqftRaw, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The wide table: one row per sale, store attributes denormalized in.
	storeID := make([]int32, n)
	regionCol := make([]int32, n)
	sqftBand := make([]int32, n)
	promo := make([]int32, n)
	hot := make([]int32, n)
	for i := 0; i < n; i++ {
		s := int32(rng.IntN(nStores))
		storeID[i] = s
		regionCol[i] = region[s]
		sqftBand[i] = sqftCol.Data[s]
		promo[i] = int32(rng.IntN(2))
		// Concept: stores in region 0 with a promo sell hot.
		p := 0.15
		if region[s] == 0 && promo[i] == 1 {
			p = 0.85
		}
		if rng.Float64() < p {
			hot[i] = 1
		}
	}
	wide := hamlet.NewTable("Sales")
	wide.MustAddColumn(&hamlet.Column{Name: "Hot", Card: 2, Data: hot})
	wide.MustAddColumn(&hamlet.Column{Name: "Promo", Card: 2, Data: promo})
	wide.MustAddColumn(&hamlet.Column{Name: "StoreID", Card: nStores, Data: storeID})
	wide.MustAddColumn(&hamlet.Column{Name: "Region", Card: 4, Data: regionCol})
	wide.MustAddColumn(&hamlet.Column{Name: "SqftBand", Card: 8, Data: sqftBand})

	// Declare and verify the FDs, then apply Corollary C.1.
	fds := []hamlet.FD{{Det: []string{"StoreID"}, Dep: []string{"Region", "SqftBand"}}}
	holds, err := hamlet.HoldsFDSet(wide, fds)
	if err != nil || !holds {
		log.Fatalf("declared FDs do not hold: %v", err)
	}
	redundant, err := hamlet.RedundantFeatures(fds)
	if err != nil {
		log.Fatal(err)
	}
	reps, err := hamlet.Representatives(fds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FDs hold; redundant features: %s\n", strings.Join(redundant, ", "))
	for _, r := range redundant {
		fmt.Printf("  %s is represented by %s\n", r, strings.Join(reps[r], ", "))
	}

	// Re-express the wide table as a normalized dataset so the advisor and
	// the end-to-end pipeline apply: the redundant columns become the
	// attribute table keyed by StoreID.
	stores := hamlet.NewTable("Stores")
	stores.MustAddColumn(&hamlet.Column{Name: "Region", Card: 4, Data: region})
	stores.MustAddColumn(sqftCol)
	entity := hamlet.NewTable("SalesEntity")
	entity.MustAddColumn(&hamlet.Column{Name: "Hot", Card: 2, Data: hot})
	entity.MustAddColumn(&hamlet.Column{Name: "Promo", Card: 2, Data: promo})
	entity.MustAddColumn(&hamlet.Column{Name: "StoreID", Card: nStores, Data: storeID})
	ds := &hamlet.Dataset{
		Name:         "Sales",
		Entity:       entity,
		Target:       "Hot",
		HomeFeatures: []string{"Promo"},
		Attrs:        []hamlet.AttributeTable{{Table: stores, FK: "StoreID", ClosedDomain: true}},
	}
	rep, err := hamlet.Analyze(ds, hamlet.ForwardSelection(), nil, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwide table (JoinAll): %d features, test error %.4f\n",
		rep.JoinAll.InputFeatures, rep.JoinAll.TestError)
	fmt.Printf("reduced (JoinOpt):    %d features, test error %.4f, selected %s\n",
		rep.JoinOpt.InputFeatures, rep.JoinOpt.TestError, strings.Join(rep.JoinOpt.Selected, ", "))

	// Cold start: prepare an Others record so sales from stores opened
	// after training still classify.
	if err := hamlet.AddOthersRecord(ds, "StoreID"); err != nil {
		log.Fatal(err)
	}
	incoming := []int32{3, 17, 55, 99} // two unseen store IDs
	hamlet.MapUnseenRIDs(incoming, hamlet.OthersRID(ds.Attrs[0].Table))
	fmt.Printf("\ncold start: incoming store IDs map to %v (Others RID = %d)\n",
		incoming, hamlet.OthersRID(ds.Attrs[0].Table))
}
