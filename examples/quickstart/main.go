// Quickstart: build a tiny normalized dataset by hand, ask the advisor
// whether the join is safe to avoid, and run the end-to-end JoinAll vs
// JoinOpt comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"hamlet"
)

func main() {
	// A normalized dataset: Orders (the entity table) references Products
	// (an attribute table) through a closed-domain foreign key. The label
	// — will the order be returned? — depends on the product.
	const nProducts, nOrders = 50, 20000
	rng := rand.New(rand.NewPCG(7, 7))

	// Products(ProductID, Category, PriceBand): ProductID is the row index.
	category := make([]int32, nProducts)
	priceBand := make([]int32, nProducts)
	for i := range category {
		category[i] = int32(rng.IntN(5))
		priceBand[i] = int32(rng.IntN(4))
	}
	products := hamlet.NewTable("Products")
	products.MustAddColumn(&hamlet.Column{Name: "Category", Card: 5, Data: category})
	products.MustAddColumn(&hamlet.Column{Name: "PriceBand", Card: 4, Data: priceBand})

	// Orders(Returned, Quantity, ProductID): products in category 0 get
	// returned 80% of the time, everything else 15%.
	returned := make([]int32, nOrders)
	quantity := make([]int32, nOrders)
	productID := make([]int32, nOrders)
	for i := range returned {
		pid := int32(rng.IntN(nProducts))
		productID[i] = pid
		quantity[i] = int32(rng.IntN(3))
		p := 0.15
		if category[pid] == 0 {
			p = 0.80
		}
		if rng.Float64() < p {
			returned[i] = 1
		}
	}
	orders := hamlet.NewTable("Orders")
	orders.MustAddColumn(&hamlet.Column{Name: "Returned", Card: 2, Data: returned})
	orders.MustAddColumn(&hamlet.Column{Name: "Quantity", Card: 3, Data: quantity})
	orders.MustAddColumn(&hamlet.Column{Name: "ProductID", Card: nProducts, Data: productID})

	ds := &hamlet.Dataset{
		Name:         "Returns",
		Entity:       orders,
		Target:       "Returned",
		HomeFeatures: []string{"Quantity"},
		Attrs: []hamlet.AttributeTable{
			{Table: products, FK: "ProductID", ClosedDomain: true},
		},
	}

	// Ask the advisor: is the join with Products even needed?
	adv := hamlet.NewAdvisor()
	decisions, err := adv.Decide(ds)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decisions {
		fmt.Printf("join with %s: TR=%.1f ROR=%.2f → avoid=%v\n", d.Attr, d.TR, d.ROR, d.Avoid)
	}

	// End to end: feature selection over both plans.
	rep, err := hamlet.Analyze(ds, hamlet.ForwardSelection(), adv, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JoinAll: %d candidate features, test error %.4f\n",
		rep.JoinAll.InputFeatures, rep.JoinAll.TestError)
	fmt.Printf("JoinOpt: %d candidate features, test error %.4f (selected: %s)\n",
		rep.JoinOpt.InputFeatures, rep.JoinOpt.TestError, strings.Join(rep.JoinOpt.Selected, ", "))
	fmt.Printf("feature selection speedup: %.1fx\n", rep.Speedup)
}
