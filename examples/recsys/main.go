// Recsys: join avoidance on a recommender-style dataset. The MovieLens1M
// mimic has ratings referencing Movies and Users through closed-domain
// foreign keys — the exact setting where the paper found both joins safe to
// avoid with the largest speedups (up to 186x for backward selection). This
// example runs all four feature selection methods over JoinAll and JoinOpt
// and prints the error/runtime comparison.
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"hamlet"
)

func main() {
	spec, err := hamlet.MimicByName("MovieLens1M")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := spec.Generate(0.05, 3) // 50k ratings
	if err != nil {
		log.Fatal(err)
	}
	adv := hamlet.NewAdvisor()
	decisions, err := adv.Decide(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at 5%% scale: %d ratings\n", ds.Name, ds.NumRows())
	for _, d := range decisions {
		fmt.Printf("  %s (FK %s): TR=%.1f → avoid=%v\n", d.Attr, d.FK, d.TR, d.Avoid)
	}
	fmt.Println()

	methods := map[string]hamlet.FeatureSelector{
		"forward":    hamlet.ForwardSelection(),
		"backward":   hamlet.BackwardSelection(),
		"filter-MI":  hamlet.MIFilter(),
		"filter-IGR": hamlet.IGRFilter(),
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tJoinAll RMSE\tJoinOpt RMSE\tspeedup\tJoinOpt selected")
	for _, name := range []string{"forward", "backward", "filter-MI", "filter-IGR"} {
		rep, err := hamlet.Analyze(ds, methods[name], adv, 17)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.1fx\t%s\n",
			name, rep.JoinAll.TestError, rep.JoinOpt.TestError, rep.Speedup,
			strings.Join(rep.JoinOpt.Selected, " "))
	}
	tw.Flush()
	fmt.Println()
	fmt.Println("both joins avoided: MovieID and UserID represent the movie and user")
	fmt.Println("features losslessly, so feature selection runs on 2 columns, not 27.")
}
