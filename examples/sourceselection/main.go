// Source selection: the paper's §5.4/§7 use case. Analysts with many
// candidate attribute tables (often purchased data) want to know which
// tables are worth joining *before* paying for joins, exploration, or the
// data itself. The TR rule needs only row counts; the ROR rule additionally
// reads the candidate tables' feature domains — neither looks at a single
// data value of X_R. This example ranks every attribute table of every
// dataset mimic by its risk of representation and prints a buy/skip sheet.
//
//	go run ./examples/sourceselection
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"hamlet"
)

type candidate struct {
	dataset, table string
	dec            hamlet.Decision
}

func main() {
	adv := hamlet.NewAdvisor()
	var cands []candidate
	for _, spec := range hamlet.Mimics() {
		ds, err := spec.Generate(0.05, 9)
		if err != nil {
			log.Fatal(err)
		}
		decisions, err := adv.Decide(ds)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range decisions {
			if !d.Considered {
				continue // open-domain FK or guard: always joined
			}
			cands = append(cands, candidate{spec.Name, d.Attr, d})
		}
	}
	// Rank by ROR ascending: the lower the risk of representation, the
	// less the table's features can add over its foreign key — the
	// stronger the case for skipping it.
	sort.Slice(cands, func(i, j int) bool { return cands[i].dec.ROR < cands[j].dec.ROR })

	fmt.Println("source selection sheet: attribute tables ranked by join-avoidance risk")
	fmt.Println("(low ROR / high TR → the FK already carries the table's information)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tdataset\ttable\tTR\tROR\tadvice")
	for i, c := range cands {
		advice := "JOIN IT — features may be indispensable"
		if c.dec.Avoid {
			advice = "skip — FK suffices"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f\t%.2f\t%s\n", i+1, c.dataset, c.table, c.dec.TR, c.dec.ROR, advice)
	}
	tw.Flush()
}
