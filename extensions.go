package hamlet

import (
	"hamlet/internal/core"
	"hamlet/internal/dataset"
	"hamlet/internal/fs"
	"hamlet/internal/ml/nb"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// This file exposes the extension surface: the paper's appendix machinery
// (general FDs and Corollary C.1, the fine-grained skew diagnostic) and its
// explicitly deferred future work (joint multi-table decisions, multi-class
// risk), plus the preprocessing every production deployment needs (numeric
// binning, k-fold cross-validation, cold-start Others records) and the FCBF
// instance-based-redundancy baseline.

// General functional dependencies (Appendix C, Corollary C.1).
type (
	// FD is a functional dependency Det → Dep over table columns.
	FD = relational.FD
	// SkewDiagnostic is the per-FK malign-skew report (Appendix D).
	SkewDiagnostic = core.SkewDiagnostic
	// ClassSkew is the per-class component of a SkewDiagnostic.
	ClassSkew = core.ClassSkew
	// KFold is k-fold cross-validation over a design matrix.
	KFold = dataset.KFold
)

// AcyclicFDs reports whether an FD set is acyclic (Definition C.1).
func AcyclicFDs(fds []FD) (bool, error) { return relational.AcyclicFDs(fds) }

// RedundantFeatures applies Corollary C.1: the dependent-side features of an
// acyclic FD set are redundant and may be dropped a priori.
func RedundantFeatures(fds []FD) ([]string, error) { return relational.RedundantFeatures(fds) }

// Representatives maps each redundant feature to the non-redundant
// determinant features that represent it.
func Representatives(fds []FD) (map[string][]string, error) {
	return relational.Representatives(fds)
}

// HoldsFDSet checks a set of FDs against a table instance.
func HoldsFDSet(t *Table, fds []FD) (bool, error) { return relational.HoldsFDSet(t, fds) }

// KFKAsFDs expresses the dependencies a set of KFK joins materializes as an
// FD list (the bridge from the schema view to Corollary C.1's FD view).
func KFKAsFDs(fks []ForeignKey, attrs map[string]*Table) ([]FD, error) {
	return relational.KFKAsFDs(fks, attrs)
}

// JointROR bounds the combined risk of avoiding several attribute tables at
// once (the §4.2 future-work extension; see also Advisor.JointJoinOptPlan).
func JointROR(nTrain int, dFKs, qRStars []int, delta float64) (float64, error) {
	return core.JointROR(nTrain, dFKs, qRStars, delta)
}

// RORMultiClass generalizes the worst-case ROR to C-class targets via the
// softmax parameter-count surrogate; it reduces to ROR at C = 2.
func RORMultiClass(nTrain, dFK, qRStar, numClasses int, delta float64) (float64, error) {
	return core.RORMultiClass(nTrain, dFK, qRStar, numClasses, delta)
}

// DiagnoseSkew computes the fine-grained Appendix D skew diagnostic of a
// closed-domain FK: per-class H(FK|Y) and effective examples per FK value.
func DiagnoseSkew(d *Dataset, fkName string) (SkewDiagnostic, error) {
	return core.DiagnoseSkew(d, fkName)
}

// FCBFSelector returns the FCBF redundancy-aware filter (Yu & Liu 2004), the
// instance-based counterpart of schema-based join avoidance.
func FCBFSelector() FeatureSelector { return fs.FCBF{} }

// CrossValidatedSelection wraps ForwardSelection or BackwardSelection so
// subset evaluations use k-fold cross-validation instead of the holdout
// protocol (the §2.2 alternative).
func CrossValidatedSelection(inner FeatureSelector, k int, seed uint64) FeatureSelector {
	return fs.CrossValidated{Inner: inner, K: k, Seed: seed}
}

// SymmetricUncertainty is SU(A;B) = 2·I(A;B)/(H(A)+H(B)), FCBF's score.
var SymmetricUncertainty = fs.SymmetricUncertainty

// EqualWidthBins discretizes a numeric series into equal-width bins — the
// paper's preprocessing for numeric features (§2.1 fn. 1, §5).
func EqualWidthBins(name string, values []float64, bins int) (*Column, error) {
	return dataset.EqualWidthBins(name, values, bins)
}

// EqualFrequencyBins discretizes a numeric series into equal-count bins.
func EqualFrequencyBins(name string, values []float64, bins int) (*Column, error) {
	return dataset.EqualFrequencyBins(name, values, bins)
}

// NewKFold draws a k-fold cross-validation partition of [0, n) — the §2.2
// alternative to holdout validation.
func NewKFold(n, k int, seed uint64) (*KFold, error) {
	return dataset.NewKFold(n, k, stats.NewRNG(seed))
}

// AddOthersRecord prepares an attribute table for cold starts (§2.1): a
// reserved Others record absorbs RIDs unseen at training time.
func AddOthersRecord(d *Dataset, fkName string) error { return dataset.AddOthersRecord(d, fkName) }

// MapUnseenRIDs routes out-of-domain foreign keys to the Others record.
func MapUnseenRIDs(rids []int32, othersRID int32) { dataset.MapUnseenRIDs(rids, othersRID) }

// OthersRID returns the reserved Others RID of a prepared attribute table.
func OthersRID(attr *Table) int32 { return dataset.OthersRID(attr) }

// FitNaiveBayesFactorized trains Naive Bayes over the normalized dataset's
// full JoinAll feature set without materializing any join: sufficient
// statistics factor through the foreign keys (the avoided-materialization
// optimization of the paper's companion work, Kumar et al. SIGMOD 2015).
// The model predicts on designs materialized with JoinAllPlan.
func FitNaiveBayesFactorized(d *Dataset) (Model, error) {
	return nb.New().FitFactorized(d)
}
