package hamlet

import (
	"math"
	"testing"
)

func TestPublicFDAPI(t *testing.T) {
	fds := []FD{
		{Det: []string{"FK"}, Dep: []string{"Country", "Revenue"}},
	}
	ok, err := AcyclicFDs(fds)
	if err != nil || !ok {
		t.Fatalf("AcyclicFDs: %v %v", ok, err)
	}
	red, err := RedundantFeatures(fds)
	if err != nil || len(red) != 2 {
		t.Fatalf("RedundantFeatures: %v %v", red, err)
	}
	reps, err := Representatives(fds)
	if err != nil || reps["Country"][0] != "FK" {
		t.Fatalf("Representatives: %v %v", reps, err)
	}
	// Round trip through a real join.
	r := NewTable("R")
	r.MustAddColumn(&Column{Name: "Country", Card: 2, Data: []int32{0, 1}})
	s := NewTable("S")
	s.MustAddColumn(&Column{Name: "FK", Card: 2, Data: []int32{1, 0, 1}})
	joined, err := Join(s, "FK", r)
	if err != nil {
		t.Fatal(err)
	}
	kfds, err := KFKAsFDs([]ForeignKey{{Column: "FK", Refs: "R"}}, map[string]*Table{"R": r})
	if err != nil {
		t.Fatal(err)
	}
	holds, err := HoldsFDSet(joined, kfds)
	if err != nil || !holds {
		t.Fatalf("HoldsFDSet: %v %v", holds, err)
	}
}

func TestPublicJointAndMultiClass(t *testing.T) {
	j, err := JointROR(5000, []int{50, 80}, []int{2, 2}, DefaultDelta)
	if err != nil || j <= 0 {
		t.Fatalf("JointROR: %v %v", j, err)
	}
	single, _ := ROR(5000, 50, 2, DefaultDelta)
	if j < single {
		t.Fatal("joint risk below individual")
	}
	mc, err := RORMultiClass(5000, 50, 2, 2, DefaultDelta)
	if err != nil || math.Abs(mc-single) > 1e-12 {
		t.Fatalf("RORMultiClass binary: %v vs %v (%v)", mc, single, err)
	}
}

func TestPublicSkewDiagnostic(t *testing.T) {
	d := exampleDataset(t)
	sd, err := DiagnoseSkew(d, d.Attrs[0].FK)
	if err != nil {
		t.Fatal(err)
	}
	if sd.HY <= 0 || len(sd.PerClass) != d.NumClasses() {
		t.Fatalf("diagnostic = %+v", sd)
	}
	// Uniform mimic FKs: no malign skew at τ=... use a loose bound.
	if sd.Malign(0.5) {
		t.Fatal("uniform FK flagged malign at a tiny threshold")
	}
}

func TestPublicBinning(t *testing.T) {
	c, err := EqualWidthBins("x", []float64{0, 5, 10}, 2)
	if err != nil || c.Data[0] != 0 || c.Data[2] != 1 {
		t.Fatalf("EqualWidthBins: %v %v", c, err)
	}
	c, err = EqualFrequencyBins("x", []float64{3, 1, 2, 4}, 2)
	if err != nil || c.Card != 2 {
		t.Fatalf("EqualFrequencyBins: %v %v", c, err)
	}
}

func TestPublicKFold(t *testing.T) {
	cv, err := NewKFold(100, 5, 3)
	if err != nil || cv.K() != 5 {
		t.Fatalf("NewKFold: %v %v", cv, err)
	}
	train, val, err := cv.Fold(0)
	if err != nil || len(train)+len(val) != 100 {
		t.Fatalf("Fold: %d+%d (%v)", len(train), len(val), err)
	}
}

func TestPublicColdStart(t *testing.T) {
	d := exampleDataset(t)
	attr := d.Attrs[0]
	before := attr.Table.NumRows()
	if err := AddOthersRecord(d, attr.FK); err != nil {
		t.Fatal(err)
	}
	if OthersRID(d.Attrs[0].Table) != int32(before) {
		t.Fatal("OthersRID wrong")
	}
	rids := []int32{0, int32(before), int32(before + 5)}
	MapUnseenRIDs(rids, int32(before))
	if rids[1] != int32(before) || rids[2] != int32(before) {
		t.Fatal("MapUnseenRIDs wrong")
	}
}

func TestPublicFCBF(t *testing.T) {
	sel := FCBFSelector()
	if sel.Name() != "fcbf" {
		t.Fatal("FCBFSelector name")
	}
	y := []int32{0, 1, 0, 1}
	if su := SymmetricUncertainty(y, 2, y, 2); math.Abs(su-1) > 1e-12 {
		t.Fatalf("SU re-export: %v", su)
	}
	d := exampleDataset(t)
	out, err := EvaluatePlan(d, d.JoinAllPlan(), sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Selected) == 0 {
		t.Fatal("FCBF selected nothing on a dataset with planted signal")
	}
}

func TestPublicJointJoinOptPlanViaAdvisor(t *testing.T) {
	d := exampleDataset(t)
	adv := NewAdvisor()
	plan, decs, err := adv.JointJoinOptPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatalf("decisions = %d", len(decs))
	}
	if _, err := d.Materialize(plan); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFactorizedNB(t *testing.T) {
	d := exampleDataset(t)
	mod, err := FitNaiveBayesFactorized(d)
	if err != nil {
		t.Fatal(err)
	}
	design, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	pred := mod.Predict(design, 0)
	if pred < 0 || int(pred) >= d.NumClasses() {
		t.Fatalf("prediction out of range: %d", pred)
	}
}
