module hamlet

go 1.22
