// Package hamlet is a from-scratch Go implementation of the join-avoidance
// system from Kumar, Naughton, Patel & Zhu, "To Join or Not to Join?
// Thinking Twice about Joins before Feature Selection" (SIGMOD 2016).
//
// Normalized datasets keep features across an entity table S(SID, Y, X_S,
// FK_1..FK_k) and attribute tables R_i(RID_i, X_Ri). Because a key–foreign-
// key join materializes the functional dependency FK → X_R, the foreign key
// is an information-theoretically lossless representative of all foreign
// features — so many joins can be avoided before feature selection with no
// significant accuracy loss and large speedups. The risk is variance: with
// few training examples per FK value, the FK-as-representative model
// overfits. Hamlet's decision rules predict a priori, from schema-level
// statistics alone, when a join is safe to avoid:
//
//   - the TR rule: avoid when the tuple ratio n_train/n_R ≥ τ (default 20);
//   - the ROR rule: avoid when the worst-case Risk Of Representation ≤ ρ
//     (default 2.5), a bound derived from the VC-dimension generalization
//     bound.
//
// Basic use:
//
//	ds := &hamlet.Dataset{ ... entity + attribute tables ... }
//	report, err := hamlet.Analyze(ds, hamlet.ForwardSelection(), 42)
//	// report.Decisions: which joins were avoided and why
//	// report.JoinAll / report.JoinOpt: test error + runtime of both plans
//
// The package re-exports the full substrate so downstream users can compose
// the pieces directly: the relational layer (Table, Column, Join), the
// dataset layer (Dataset, Plan, Design, holdout splits), the classifiers
// (Naive Bayes, L1/L2 logistic regression, TAN), the feature selection
// methods (forward, backward, MI/IGR filters, embedded), the decision rules
// (ROR, TupleRatio, Advisor), the bias–variance Monte Carlo harness, the
// simulation worlds, and the experiment runners that regenerate every table
// and figure of the paper (see internal/experiments and EXPERIMENTS.md).
package hamlet

import (
	"hamlet/internal/biasvar"
	"hamlet/internal/core"
	"hamlet/internal/dataset"
	"hamlet/internal/fs"
	"hamlet/internal/ml"
	"hamlet/internal/ml/logreg"
	"hamlet/internal/ml/nb"
	"hamlet/internal/ml/tan"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// Relational substrate.
type (
	// Table is a columnar table of nominal features (see internal/relational).
	Table = relational.Table
	// Column is one nominal feature column with a closed domain.
	Column = relational.Column
	// ForeignKey describes a KFK reference for the generic join operator.
	ForeignKey = relational.ForeignKey
)

// NewTable creates an empty relational table.
func NewTable(name string) *Table { return relational.NewTable(name) }

// Join materializes the KFK equi-join of an entity table with an attribute
// table through the named foreign-key column.
func Join(s *Table, fkName string, r *Table) (*Table, error) {
	return relational.Join(s, fkName, r)
}

// Dataset layer.
type (
	// Dataset is a normalized dataset: entity table plus attribute tables.
	Dataset = dataset.Dataset
	// AttributeTable pairs an attribute table with its referencing FK.
	AttributeTable = dataset.AttributeTable
	// Plan selects which joins to perform and which FKs to keep.
	Plan = dataset.Plan
	// Design is a materialized single-table design matrix.
	Design = dataset.Design
	// Feature is one design-matrix column with provenance.
	Feature = dataset.Feature
	// Split is the paper's 50/25/25 train/validation/test partition.
	Split = dataset.Split
)

// Decision rules (the paper's contribution).
type (
	// Advisor applies the join-avoidance rules to a dataset.
	Advisor = core.Advisor
	// Decision is the advisor's per-attribute-table verdict.
	Decision = core.Decision
	// Thresholds pairs ρ (ROR rule) and τ (TR rule).
	Thresholds = core.Thresholds
	// ScatterPoint is a (ROR, TR, ΔError) observation for threshold tuning.
	ScatterPoint = core.ScatterPoint
	// Rule selects the TR or ROR rule.
	Rule = core.Rule
)

// Rule and threshold constants re-exported from internal/core.
const (
	// TRRule thresholds the tuple ratio n_train/n_R.
	TRRule = core.TRRule
	// RORRule thresholds the worst-case risk of representation.
	RORRule = core.RORRule
	// DefaultDelta is Theorem 3.2's failure probability δ = 0.1.
	DefaultDelta = core.DefaultDelta
)

// DefaultThresholds are the paper's ρ = 2.5, τ = 20 (error tolerance 0.001);
// RelaxedThresholds are ρ = 4.2, τ = 10 (tolerance 0.01).
var (
	DefaultThresholds = core.DefaultThresholds
	RelaxedThresholds = core.RelaxedThresholds
)

// NewAdvisor returns an advisor with the paper's defaults.
func NewAdvisor() *Advisor { return core.NewAdvisor() }

// ROR returns the worst-case Risk Of Representation of avoiding a join
// (paper §4.2): nTrain training examples, FK domain size dFK, smallest
// foreign-feature domain qRStar, failure probability delta.
func ROR(nTrain, dFK, qRStar int, delta float64) (float64, error) {
	return core.ROR(nTrain, dFK, qRStar, delta)
}

// TupleRatio returns n_train / n_R.
func TupleRatio(nTrain, nR int) (float64, error) { return core.TupleRatio(nTrain, nR) }

// TuneThresholds derives rule thresholds from simulation scatter at a given
// error tolerance, as the paper does from Figure 4.
func TuneThresholds(points []ScatterPoint, tolerance float64) (Thresholds, error) {
	return core.TuneThresholds(points, tolerance)
}

// Machine learning layer.
type (
	// Learner trains models on a feature subset of a design matrix.
	Learner = ml.Learner
	// Model is a trained classifier.
	Model = ml.Model
	// FeatureSelector is a feature selection method.
	FeatureSelector = fs.Method
	// SelectionResult is the outcome of one feature selection run.
	SelectionResult = fs.Result
)

// NaiveBayes returns the Laplace-smoothed Naive Bayes learner.
func NaiveBayes() Learner { return nb.New() }

// LogisticRegressionL1 returns the L1-regularized softmax learner.
func LogisticRegressionL1() Learner { return logreg.New(logreg.L1) }

// LogisticRegressionL2 returns the L2-regularized softmax learner.
func LogisticRegressionL2() Learner { return logreg.New(logreg.L2) }

// TAN returns the tree-augmented Naive Bayes learner (Appendix E).
func TAN() Learner { return tan.New() }

// ForwardSelection returns the sequential greedy forward wrapper.
func ForwardSelection() FeatureSelector { return fs.Forward{} }

// BackwardSelection returns the sequential greedy backward wrapper.
func BackwardSelection() FeatureSelector { return fs.Backward{} }

// MIFilter returns the mutual-information filter with validation-tuned k.
func MIFilter() FeatureSelector { return fs.MIFilter() }

// IGRFilter returns the information-gain-ratio filter.
func IGRFilter() FeatureSelector { return fs.IGRFilter() }

// EmbeddedL1 returns the embedded L1 logistic regression selector.
func EmbeddedL1() FeatureSelector { return fs.Embedded{Penalty: logreg.L1} }

// EmbeddedL2 returns the embedded L2 logistic regression selector.
func EmbeddedL2() FeatureSelector { return fs.Embedded{Penalty: logreg.L2} }

// DefaultSplit draws the paper's 50/25/25 holdout split over n rows.
func DefaultSplit(n int, seed uint64) (*Split, error) {
	return dataset.DefaultSplit(n, stats.NewRNG(seed))
}

// Information theory re-exports used by filters and diagnostics.
var (
	// MutualInformation is the empirical I(A;B) in bits.
	MutualInformation = stats.MutualInformation
	// InformationGainRatio is IGR(F;Y) = I(F;Y)/H(F).
	InformationGainRatio = stats.InformationGainRatio
	// Entropy is the empirical Shannon entropy in bits.
	Entropy = stats.Entropy
)

// Simulation and bias–variance study re-exports.
type (
	// SimConfig describes one simulation setting (paper §4.1).
	SimConfig = synth.SimConfig
	// World is one realization of a simulation setting.
	World = synth.World
	// BiasVarConfig drives a Monte Carlo bias–variance run.
	BiasVarConfig = biasvar.Config
	// Decomp is the Domingos bias–variance decomposition of a model class.
	Decomp = biasvar.Decomp
	// MimicSpec describes one of the seven real-dataset mimics.
	MimicSpec = synth.MimicSpec
)

// Simulation scenario and skew constants.
const (
	// ScenarioOneXr plants the concept in a lone foreign feature.
	ScenarioOneXr = synth.OneXr
	// ScenarioAllXsXr plants the concept in all of X_S and X_R.
	ScenarioAllXsXr = synth.AllXsXr
	// ScenarioXsFkOnly plants the concept in X_S and FK only.
	ScenarioXsFkOnly = synth.XsFkOnly
)

// NewWorld realizes a simulation world.
func NewWorld(cfg SimConfig, seed uint64) (*World, error) { return synth.NewWorld(cfg, seed) }

// BiasVariance runs the Monte Carlo decomposition for a simulation config,
// returning one Decomp per model class (UseAll, NoJoin, NoFK).
func BiasVariance(sim SimConfig, cfg BiasVarConfig) (map[string]Decomp, error) {
	return biasvar.Run(sim, cfg)
}

// Mimics returns the seven dataset mimics of the paper's Figure 6.
func Mimics() []MimicSpec { return synth.Mimics() }

// MimicByName returns one mimic spec by dataset name.
func MimicByName(name string) (MimicSpec, error) { return synth.MimicByName(name) }
