package hamlet

import (
	"testing"
)

// exampleDataset builds a small normalized dataset with one safe-to-avoid
// attribute table (high TR, FK-level concept) and plenty of rows.
func exampleDataset(t *testing.T) *Dataset {
	t.Helper()
	spec, err := MimicByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicRelationalAPI(t *testing.T) {
	r := NewTable("Employers")
	r.MustAddColumn(&Column{Name: "Country", Card: 3, Data: []int32{0, 1, 2}})
	s := NewTable("Customers")
	s.MustAddColumn(&Column{Name: "Churn", Card: 2, Data: []int32{0, 1}})
	s.MustAddColumn(&Column{Name: "EmployerID", Card: 3, Data: []int32{2, 0}})
	joined, err := Join(s, "EmployerID", r)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Column("Country").Data[0] != 2 {
		t.Fatal("public Join broken")
	}
}

func TestPublicRules(t *testing.T) {
	ror, err := ROR(1000, 100, 2, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if ror <= 0 {
		t.Fatal("ROR should be positive here")
	}
	tr, err := TupleRatio(1000, 50)
	if err != nil || tr != 20 {
		t.Fatalf("TupleRatio = %v (%v)", tr, err)
	}
	th, err := TuneThresholds([]ScatterPoint{
		{ROR: 1, TR: 50, DeltaError: 0},
		{ROR: 3, TR: 5, DeltaError: 0.05},
	}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if th.Rho != 1 || th.Tau != 50 {
		t.Fatalf("tuned = %+v", th)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	d := exampleDataset(t)
	rep, err := Analyze(d, ForwardSelection(), nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dataset != "Walmart" || rep.Metric != "RMSE" {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(rep.Decisions))
	}
	for _, dec := range rep.Decisions {
		if !dec.Avoid {
			t.Fatalf("Walmart joins should be avoided: %+v", dec)
		}
	}
	// JoinOpt must use fewer candidate features and not blow up the error.
	if rep.JoinOpt.InputFeatures >= rep.JoinAll.InputFeatures {
		t.Fatal("JoinOpt should shrink the input")
	}
	if rep.JoinOpt.TestError-rep.JoinAll.TestError > 0.08 {
		t.Fatalf("JoinOpt error blew up: %v vs %v", rep.JoinOpt.TestError, rep.JoinAll.TestError)
	}
	if rep.JoinAll.Evaluations <= rep.JoinOpt.Evaluations {
		t.Log("note: JoinAll did not need more evaluations on this seed")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, ForwardSelection(), nil, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d := exampleDataset(t)
	if _, err := Analyze(d, nil, nil, 1); err == nil {
		t.Fatal("nil method accepted")
	}
}

func TestEvaluatePlanPublic(t *testing.T) {
	d := exampleDataset(t)
	out, err := EvaluatePlan(d, d.NoJoinsPlan(), MIFilter(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.InputFeatures != 3 { // Dept + 2 FKs
		t.Fatalf("NoJoins input features = %d", out.InputFeatures)
	}
	if out.TestError <= 0 {
		t.Fatalf("test error = %v", out.TestError)
	}
}

func TestPublicLearners(t *testing.T) {
	names := map[string]Learner{
		"naive-bayes": NaiveBayes(),
		"logreg-L1":   LogisticRegressionL1(),
		"logreg-L2":   LogisticRegressionL2(),
		"tan":         TAN(),
	}
	for want, l := range names {
		if l.Name() != want {
			t.Errorf("learner name = %q, want %q", l.Name(), want)
		}
	}
	sels := []FeatureSelector{ForwardSelection(), BackwardSelection(), MIFilter(), IGRFilter(), EmbeddedL1(), EmbeddedL2()}
	seen := map[string]bool{}
	for _, s := range sels {
		if seen[s.Name()] {
			t.Errorf("duplicate selector name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestPublicSimulationAPI(t *testing.T) {
	w, err := NewWorld(SimConfig{Scenario: ScenarioOneXr, DS: 2, DR: 2, NR: 20, P: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := BiasVariance(w.Cfg, BiasVarConfig{NTrain: 200, NTest: 100, L: 4, Worlds: 2, Seed: 1, Learner: NaiveBayes()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["NoJoin"]; !ok {
		t.Fatal("missing NoJoin decomposition")
	}
}

func TestPublicStatsAPI(t *testing.T) {
	y := []int32{0, 1, 0, 1}
	if Entropy(y, 2) != 1 {
		t.Fatal("Entropy re-export broken")
	}
	if MutualInformation(y, 2, y, 2) != 1 {
		t.Fatal("MutualInformation re-export broken")
	}
	if InformationGainRatio(y, 2, y, 2) != 1 {
		t.Fatal("InformationGainRatio re-export broken")
	}
}

func TestMimicsPublic(t *testing.T) {
	if len(Mimics()) != 7 {
		t.Fatal("Mimics re-export broken")
	}
	if _, err := MimicByName("Yelp"); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSplitPublic(t *testing.T) {
	s, err := DefaultSplit(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train) != 50 {
		t.Fatal("DefaultSplit broken")
	}
}
