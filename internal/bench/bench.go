// Package bench parses and compares benchmark snapshots for perf-regression
// tracking (cmd/benchdiff). It understands three input shapes:
//
//   - the current scripts/bench.sh format: a JSON object
//     {"meta": {...}, "benchmarks": [...]} where meta pins commit, date, Go
//     version, benchtime, pattern, and sample count;
//   - the legacy bench.sh format: a bare JSON array of benchmark objects
//     (what PR 1 emitted), so the trajectory's oldest snapshots stay
//     diffable;
//   - raw `go test -bench` text, so a fresh local run can be compared
//     without snapshotting first.
//
// Comparison aligns benchmarks by name, averages repeated samples (go test
// -count N yields N lines per benchmark), and attaches a Welch t-test
// p-value from internal/stats when both sides carry enough samples.
package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"

	"hamlet/internal/stats"
)

// Meta describes how a snapshot was produced (bench.sh writes it; legacy
// and raw-text inputs leave it zero).
type Meta struct {
	// Commit is the git SHA the suite ran at.
	Commit string `json:"commit,omitempty"`
	// Date is the snapshot date (YYYY-MM-DD).
	Date string `json:"date,omitempty"`
	// GoVersion is the toolchain used.
	GoVersion string `json:"go_version,omitempty"`
	// Benchtime is the -benchtime value.
	Benchtime string `json:"benchtime,omitempty"`
	// Pattern is the -bench pattern.
	Pattern string `json:"pattern,omitempty"`
	// Count is the -count value (samples per benchmark).
	Count int `json:"count,omitempty"`
}

// Sample is one benchmark result line. BytesPerOp and AllocsPerOp are
// pointers because -benchmem may be off (bench.sh emits null).
type Sample struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// Snapshot is one parsed benchmark suite run: optional meta plus samples
// (repeated names mean repeated -count samples).
type Snapshot struct {
	Meta       Meta     `json:"meta"`
	Benchmarks []Sample `json:"benchmarks"`
}

// ParseFile reads and parses one snapshot file in any supported format.
func ParseFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse detects the input format by its first non-space byte: '{' is the
// meta-wrapped format, '[' the legacy bare array, anything else raw
// `go test -bench` output.
func Parse(data []byte) (*Snapshot, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case len(trimmed) == 0:
		return nil, fmt.Errorf("bench: empty input")
	case trimmed[0] == '{':
		var s Snapshot
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return nil, fmt.Errorf("bench: parse snapshot: %w", err)
		}
		return &s, nil
	case trimmed[0] == '[':
		var samples []Sample
		if err := json.Unmarshal(trimmed, &samples); err != nil {
			return nil, fmt.Errorf("bench: parse legacy array: %w", err)
		}
		return &Snapshot{Benchmarks: samples}, nil
	default:
		samples, err := parseBenchText(data)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Benchmarks: samples}, nil
	}
}

// benchLine matches one `go test -bench` result line:
// BenchmarkName-8   123   4567 ns/op [  89 B/op   1 allocs/op ]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchText extracts benchmark lines from raw `go test -bench` output,
// ignoring goos/pkg headers, PASS/ok trailers, and anything else.
func parseBenchText(data []byte) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Name: m[1], Iterations: iters}
		fields := bytes.Fields([]byte(m[3]))
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(string(fields[i-1]), 64)
			if err != nil {
				continue
			}
			switch string(fields[i]) {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				b := v
				s.BytesPerOp = &b
			case "allocs/op":
				a := v
				s.AllocsPerOp = &a
			}
		}
		if s.NsPerOp == 0 {
			continue // not a timing line (e.g. a custom metric only)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: scan text: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: no benchmark lines found in text input")
	}
	return out, nil
}

// Delta is one aligned benchmark's old-vs-new comparison. Means are over
// the available samples; P is the Welch two-sided p-value for the ns/op
// means (NaN when either side has fewer than two samples — the caller then
// gates on the threshold alone). The memory metrics (B/op, allocs/op) carry
// their own deltas and p-values so callers can gate on peak-allocation
// regressions independently of time: a streaming operator that silently
// re-materializes shows up in B/op long before ns/op moves. Memory fields
// are NaN when either snapshot lacks -benchmem data.
type Delta struct {
	Name      string
	OldNs     float64 // mean ns/op, old
	NewNs     float64 // mean ns/op, new
	Ratio     float64 // NewNs / OldNs
	Delta     float64 // Ratio - 1 (positive = slower)
	P         float64
	NOld      int // samples on the old side
	NNew      int
	OldAllocs float64 // mean allocs/op (NaN when not recorded)
	NewAllocs float64
	// AllocsDelta is the allocs/op ratio - 1; 0 -> n regressions are +Inf
	// (a previously allocation-free path now allocates).
	AllocsDelta float64
	// PAllocs is the Welch p-value over the allocs/op samples.
	PAllocs float64
	// OldBytes and NewBytes are the mean B/op (NaN when not recorded).
	OldBytes float64
	NewBytes float64
	// BytesDelta is the B/op ratio - 1, with the same +Inf convention.
	BytesDelta float64
	// PBytes is the Welch p-value over the B/op samples.
	PBytes float64
}

// Report is the aligned comparison of two snapshots.
type Report struct {
	// Deltas holds one entry per benchmark present in both snapshots,
	// sorted by name.
	Deltas []Delta
	// OnlyOld and OnlyNew name benchmarks present on one side only.
	OnlyOld, OnlyNew []string
	// Geomean is the geometric mean of the per-benchmark ns/op ratios
	// (1.0 = unchanged, >1 = slower overall); NaN with no aligned pairs.
	Geomean float64
}

// group collects the per-metric sample series of one benchmark name.
type group struct {
	ns     []float64
	bytes  []float64
	allocs []float64
}

func groupByName(samples []Sample) map[string]*group {
	out := make(map[string]*group)
	for _, s := range samples {
		g := out[s.Name]
		if g == nil {
			g = &group{}
			out[s.Name] = g
		}
		g.ns = append(g.ns, s.NsPerOp)
		if s.BytesPerOp != nil {
			g.bytes = append(g.bytes, *s.BytesPerOp)
		}
		if s.AllocsPerOp != nil {
			g.allocs = append(g.allocs, *s.AllocsPerOp)
		}
	}
	return out
}

// memDelta returns ratio-1 for a memory metric's old/new means, with the
// zero-baseline convention: 0 -> 0 is unchanged, 0 -> anything positive is
// +Inf (a previously allocation-free path now allocates — always a gate-
// worthy regression), and NaN propagates when either side is unrecorded.
func memDelta(oldMean, newMean float64) float64 {
	switch {
	case math.IsNaN(oldMean) || math.IsNaN(newMean):
		return math.NaN()
	case oldMean == 0 && newMean == 0:
		return 0
	case oldMean == 0:
		return math.Inf(1)
	}
	return newMean/oldMean - 1
}

// meanOrNaN returns the mean of xs, or NaN when empty.
func meanOrNaN(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Mean(xs)
}

// Diff aligns two snapshots by benchmark name and compares them.
func Diff(before, after *Snapshot) *Report {
	og, ng := groupByName(before.Benchmarks), groupByName(after.Benchmarks)
	rep := &Report{}
	var logSum float64
	for name, o := range og {
		n, ok := ng[name]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
			continue
		}
		d := Delta{
			Name:      name,
			OldNs:     stats.Mean(o.ns),
			NewNs:     stats.Mean(n.ns),
			NOld:      len(o.ns),
			NNew:      len(n.ns),
			OldAllocs: meanOrNaN(o.allocs),
			NewAllocs: meanOrNaN(n.allocs),
			OldBytes:  meanOrNaN(o.bytes),
			NewBytes:  meanOrNaN(n.bytes),
		}
		d.Ratio = d.NewNs / d.OldNs
		d.Delta = d.Ratio - 1
		_, _, d.P = stats.WelchTTest(o.ns, n.ns)
		d.AllocsDelta = memDelta(d.OldAllocs, d.NewAllocs)
		_, _, d.PAllocs = stats.WelchTTest(o.allocs, n.allocs)
		d.BytesDelta = memDelta(d.OldBytes, d.NewBytes)
		_, _, d.PBytes = stats.WelchTTest(o.bytes, n.bytes)
		rep.Deltas = append(rep.Deltas, d)
		logSum += math.Log(d.Ratio)
	}
	for name := range ng {
		if _, ok := og[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	if len(rep.Deltas) > 0 {
		rep.Geomean = math.Exp(logSum / float64(len(rep.Deltas)))
	} else {
		rep.Geomean = math.NaN()
	}
	return rep
}

// Significant reports whether the delta's ns/op difference is statistically
// distinguishable at level alpha. With too few samples for a test (P is
// NaN), it returns true: a lone sample can't be exonerated by statistics,
// so the threshold alone decides.
func (d Delta) Significant(alpha float64) bool {
	if math.IsNaN(d.P) {
		return true
	}
	return d.P < alpha
}

// Regressions returns the deltas that got slower by more than threshold
// (0.10 = 10%) and are Significant at alpha, sorted worst first.
func (r *Report) Regressions(threshold, alpha float64) []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Delta > threshold && d.Significant(alpha) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

// significantAt applies the Significant NaN rule to an arbitrary p-value.
func significantAt(p, alpha float64) bool {
	if math.IsNaN(p) {
		return true
	}
	return p < alpha
}

// BytesRegressed reports whether the B/op metric regressed beyond threshold
// with significance alpha; false when either snapshot lacks B/op data.
func (d Delta) BytesRegressed(threshold, alpha float64) bool {
	return !math.IsNaN(d.BytesDelta) && d.BytesDelta > threshold && significantAt(d.PBytes, alpha)
}

// AllocsRegressed is BytesRegressed for the allocs/op metric.
func (d Delta) AllocsRegressed(threshold, alpha float64) bool {
	return !math.IsNaN(d.AllocsDelta) && d.AllocsDelta > threshold && significantAt(d.PAllocs, alpha)
}

// MemRegressions returns the deltas whose B/op or allocs/op grew by more
// than threshold (with the same significance machinery as Regressions),
// sorted worst first by their larger memory delta. Benchmarks where either
// snapshot lacks -benchmem data never qualify: the memory gate only fires
// when both sides actually measured memory.
func (r *Report) MemRegressions(threshold, alpha float64) []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.BytesRegressed(threshold, alpha) || d.AllocsRegressed(threshold, alpha) {
			out = append(out, d)
		}
	}
	worst := func(d Delta) float64 {
		w := math.Inf(-1)
		if !math.IsNaN(d.BytesDelta) && d.BytesDelta > w {
			w = d.BytesDelta
		}
		if !math.IsNaN(d.AllocsDelta) && d.AllocsDelta > w {
			w = d.AllocsDelta
		}
		return w
	}
	sort.Slice(out, func(i, j int) bool { return worst(out[i]) > worst(out[j]) })
	return out
}
