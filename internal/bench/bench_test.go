package bench

import (
	"math"
	"testing"
)

func TestParseMetaFormat(t *testing.T) {
	s, err := ParseFile("../../cmd/benchdiff/testdata/old.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta.Count != 3 || s.Meta.Benchtime != "1s" || s.Meta.GoVersion != "go1.24.0" {
		t.Errorf("meta = %+v", s.Meta)
	}
	if len(s.Benchmarks) != 9 {
		t.Fatalf("got %d samples, want 9", len(s.Benchmarks))
	}
	if s.Benchmarks[0].Name != "BenchmarkForwardSelection" || s.Benchmarks[0].NsPerOp != 1000000 {
		t.Errorf("first sample = %+v", s.Benchmarks[0])
	}
	if s.Benchmarks[0].AllocsPerOp == nil || *s.Benchmarks[0].AllocsPerOp != 1200 {
		t.Errorf("allocs not parsed: %+v", s.Benchmarks[0])
	}
}

func TestParseLegacyArray(t *testing.T) {
	s, err := ParseFile("testdata/legacy_array.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta != (Meta{}) {
		t.Errorf("legacy format should have zero meta, got %+v", s.Meta)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("got %d samples, want 3", len(s.Benchmarks))
	}
	join := s.Benchmarks[1]
	if join.Name != "BenchmarkKFKJoin" || join.BytesPerOp != nil || join.AllocsPerOp != nil {
		t.Errorf("null bytes/allocs should parse as nil pointers: %+v", join)
	}
	if s.Benchmarks[2].NsPerOp != 520.5 {
		t.Errorf("fractional ns/op lost: %+v", s.Benchmarks[2])
	}
}

func TestParseRawBenchText(t *testing.T) {
	s, err := ParseFile("testdata/raw_bench.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"BenchmarkForwardSelection": 2,
		"BenchmarkKFKJoin":          1,
		"BenchmarkROR":              1,
		"BenchmarkNilSpanOps":       1,
	}
	got := map[string]int{}
	for _, b := range s.Benchmarks {
		got[b.Name]++
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s: %d samples, want %d (all: %v)", name, got[name], n, got)
		}
	}
	for _, b := range s.Benchmarks {
		if b.Name == "BenchmarkKFKJoin" {
			if b.NsPerOp != 255000 || b.BytesPerOp != nil {
				t.Errorf("KFKJoin without -benchmem: %+v", b)
			}
		}
		if b.Name == "BenchmarkNilSpanOps" && b.NsPerOp != 0.25 {
			t.Errorf("sub-ns benchmark: %+v", b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("bad JSON object should error")
	}
	if _, err := Parse([]byte("[{]")); err == nil {
		t.Error("bad JSON array should error")
	}
	if _, err := Parse([]byte("no benchmarks here\njust prose\n")); err == nil {
		t.Error("text without benchmark lines should error")
	}
}

// snap builds a snapshot of repeated samples per name for diff tests.
func snap(nsByName map[string][]float64) *Snapshot {
	s := &Snapshot{}
	for name, series := range nsByName {
		for _, v := range series {
			s.Benchmarks = append(s.Benchmarks, Sample{Name: name, Iterations: 1, NsPerOp: v})
		}
	}
	return s
}

func TestDiffAlignmentAndGeomean(t *testing.T) {
	before := snap(map[string][]float64{
		"BenchmarkA":    {100, 100},
		"BenchmarkB":    {200, 200},
		"BenchmarkGone": {50},
	})
	after := snap(map[string][]float64{
		"BenchmarkA":   {200, 200}, // 2x slower
		"BenchmarkB":   {100, 100}, // 2x faster
		"BenchmarkNew": {10},
	})
	rep := Diff(before, after)
	if len(rep.Deltas) != 2 {
		t.Fatalf("aligned %d, want 2: %+v", len(rep.Deltas), rep.Deltas)
	}
	if rep.Deltas[0].Name != "BenchmarkA" || rep.Deltas[1].Name != "BenchmarkB" {
		t.Errorf("deltas not sorted by name: %+v", rep.Deltas)
	}
	if rep.Deltas[0].Ratio != 2 || rep.Deltas[1].Ratio != 0.5 {
		t.Errorf("ratios = %v, %v; want 2, 0.5", rep.Deltas[0].Ratio, rep.Deltas[1].Ratio)
	}
	// Geomean of {2, 0.5} is exactly 1.
	if math.Abs(rep.Geomean-1) > 1e-12 {
		t.Errorf("geomean = %v, want 1", rep.Geomean)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}
}

func TestRegressionsThresholdAndSignificance(t *testing.T) {
	before := snap(map[string][]float64{
		"BenchmarkClear":  {1000, 1010, 990}, // +25%, tight: regression
		"BenchmarkNoisy":  {1000, 2000, 500}, // +25% but huge variance: insignificant
		"BenchmarkSmall":  {1000, 1001, 999}, // +2%: under threshold
		"BenchmarkSingle": {1000},            // +50%, one sample: threshold-only gate
	})
	after := snap(map[string][]float64{
		"BenchmarkClear":  {1250, 1260, 1240},
		"BenchmarkNoisy":  {1250, 2400, 800},
		"BenchmarkSmall":  {1020, 1021, 1019},
		"BenchmarkSingle": {1500},
	})
	rep := Diff(before, after)
	regs := rep.Regressions(0.10, 0.05)
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name] = true
	}
	if !names["BenchmarkClear"] {
		t.Error("tight +25% regression not flagged")
	}
	if names["BenchmarkNoisy"] {
		t.Error("statistically insignificant delta flagged as regression")
	}
	if names["BenchmarkSmall"] {
		t.Error("+2% delta flagged despite 10% threshold")
	}
	if !names["BenchmarkSingle"] {
		t.Error("single-sample +50% regression not flagged (threshold-only gate)")
	}
	if len(regs) != 2 {
		t.Errorf("got %d regressions, want 2: %v", len(regs), names)
	}
	// Worst first.
	if regs[0].Name != "BenchmarkSingle" {
		t.Errorf("regressions not sorted worst-first: %+v", regs)
	}
	// Raising the threshold above both deltas clears the gate.
	if got := rep.Regressions(0.60, 0.05); len(got) != 0 {
		t.Errorf("threshold 60%%: got %+v, want none", got)
	}
}

func TestDiffAllocs(t *testing.T) {
	a1200, a1500 := 1200.0, 1500.0
	before := &Snapshot{Benchmarks: []Sample{{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: &a1200}}}
	after := &Snapshot{Benchmarks: []Sample{{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: &a1500}}}
	rep := Diff(before, after)
	if rep.Deltas[0].OldAllocs != 1200 || rep.Deltas[0].NewAllocs != 1500 {
		t.Errorf("allocs means = %v -> %v", rep.Deltas[0].OldAllocs, rep.Deltas[0].NewAllocs)
	}
	// Without -benchmem the alloc means are NaN, not zero.
	rep = Diff(snap(map[string][]float64{"BenchmarkX": {100}}), snap(map[string][]float64{"BenchmarkX": {100}}))
	if !math.IsNaN(rep.Deltas[0].OldAllocs) {
		t.Errorf("missing allocs should be NaN, got %v", rep.Deltas[0].OldAllocs)
	}
}

// memSnap builds a snapshot where every sample carries the same ns/op but
// per-name B/op and allocs/op series.
func memSnap(byName map[string][2][]float64) *Snapshot {
	s := &Snapshot{}
	for name, series := range byName {
		bytes, allocs := series[0], series[1]
		for i := range bytes {
			b, a := bytes[i], allocs[i]
			s.Benchmarks = append(s.Benchmarks, Sample{
				Name: name, Iterations: 1, NsPerOp: 100,
				BytesPerOp: &b, AllocsPerOp: &a,
			})
		}
	}
	return s
}

func TestMemDelta(t *testing.T) {
	if got := memDelta(100, 125); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("memDelta(100,125) = %v, want 0.25", got)
	}
	if got := memDelta(0, 0); got != 0 {
		t.Errorf("memDelta(0,0) = %v, want 0", got)
	}
	if got := memDelta(0, 1); !math.IsInf(got, 1) {
		t.Errorf("memDelta(0,1) = %v, want +Inf", got)
	}
	if got := memDelta(math.NaN(), 5); !math.IsNaN(got) {
		t.Errorf("memDelta(NaN,5) = %v, want NaN", got)
	}
	if got := memDelta(5, math.NaN()); !math.IsNaN(got) {
		t.Errorf("memDelta(5,NaN) = %v, want NaN", got)
	}
}

func TestMemRegressions(t *testing.T) {
	before := memSnap(map[string][2][]float64{
		"BenchmarkBytes":  {{1000, 1000, 1000}, {10, 10, 10}},
		"BenchmarkAllocs": {{500, 500, 500}, {10, 10, 10}},
		"BenchmarkFlat":   {{500, 500, 500}, {10, 10, 10}},
		"BenchmarkZero":   {{0, 0, 0}, {0, 0, 0}},
	})
	after := memSnap(map[string][2][]float64{
		"BenchmarkBytes":  {{1250, 1250, 1250}, {10, 10, 10}}, // B/op +25%
		"BenchmarkAllocs": {{500, 500, 500}, {15, 15, 15}},    // allocs/op +50%
		"BenchmarkFlat":   {{510, 510, 510}, {10, 10, 10}},    // +2%, under threshold
		"BenchmarkZero":   {{64, 64, 64}, {1, 1, 1}},          // 0 -> positive: +Inf
	})
	rep := Diff(before, after)
	regs := rep.MemRegressions(0.10, 0.05)
	names := map[string]Delta{}
	for _, d := range regs {
		names[d.Name] = d
	}
	if _, ok := names["BenchmarkBytes"]; !ok {
		t.Error("+25% B/op regression not flagged")
	}
	if _, ok := names["BenchmarkAllocs"]; !ok {
		t.Error("+50% allocs/op regression not flagged")
	}
	if _, ok := names["BenchmarkFlat"]; ok {
		t.Error("+2% delta flagged despite 10% threshold")
	}
	if _, ok := names["BenchmarkZero"]; !ok {
		t.Error("0 -> positive regression not flagged (+Inf convention)")
	}
	if len(regs) != 3 {
		t.Errorf("got %d mem regressions, want 3: %v", len(regs), regs)
	}
	// Sorted worst first: +Inf, then +50% allocs, then +25% bytes.
	if regs[0].Name != "BenchmarkZero" || regs[1].Name != "BenchmarkAllocs" || regs[2].Name != "BenchmarkBytes" {
		t.Errorf("mem regressions not sorted worst-first: %+v", regs)
	}
	// Benchmarks without -benchmem data never fire the mem gate.
	rep = Diff(snap(map[string][]float64{"BenchmarkX": {100, 100}}), snap(map[string][]float64{"BenchmarkX": {100, 100}}))
	if got := rep.MemRegressions(0.0, 0.05); len(got) != 0 {
		t.Errorf("NaN memory metrics fired the gate: %+v", got)
	}
}
