// Package biasvar implements the bias–variance decomposition of Domingos
// (ICML 2000) that the paper uses to measure the effects of avoiding joins
// (§4.1, Definitions 4.1–4.2, Eq. 1), together with the Monte Carlo harness
// that drives it over simulation worlds.
//
// For each test point x, the harness trains one model per training set in a
// collection S (|S| = L), collects the L predictions, and computes:
//
//   - the optimal prediction t(x) = argmax_y P(y|x) (the true conditional is
//     known exactly in simulation);
//   - the noise N(x) = P(Y ≠ t(x) | x);
//   - the main prediction y_m = the mode of the L predictions;
//   - the bias B(x) = 1[y_m ≠ t(x)];
//   - the variance V(x) = (1/L) Σ_l 1[pred_l ≠ y_m];
//   - the net variance (1 − 2B(x))·V(x), which captures variance helping on
//     biased points and hurting on unbiased ones;
//   - the expected test error E(x) = (1/L) Σ_l (1 − P(pred_l | x)), exact in
//     the true distribution rather than estimated from sampled test labels.
//
// For binary targets these satisfy the exact identity
// E = N + (1 − 2N)·(B + (1 − 2B)·V), which tests verify numerically; the
// reported aggregate quantities (average test error, average bias, average
// net variance) are the ones plotted in the paper's Figures 3, 10, 11, 13.
package biasvar

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/obs"
	"hamlet/internal/pool"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// Monte Carlo instrumentation: worlds realized and models trained across
// all bias–variance runs in the process.
var (
	worldsRun     = obs.C("biasvar.worlds")
	modelsTrained = obs.C("biasvar.models_trained")
)

// Decomp aggregates the decomposition over a test set.
type Decomp struct {
	// TestError is the average expected zero-one test error.
	TestError float64
	// Bias is the average bias.
	Bias float64
	// NetVariance is the average net variance (1−2B)·V.
	NetVariance float64
	// Variance is the average raw variance V.
	Variance float64
	// Noise is the average noise.
	Noise float64
}

// ModelClass names a feature subset under comparison (the paper's UseAll,
// NoJoin, NoFK).
type ModelClass struct {
	// Name labels the class in reports.
	Name string
	// Features are design-matrix column indices.
	Features []int
}

// StandardClasses returns the paper's three model classes for a world.
func StandardClasses(w *synth.World) []ModelClass {
	return []ModelClass{
		{Name: "UseAll", Features: w.UseAllFeatures()},
		{Name: "NoJoin", Features: w.NoJoinFeatures()},
		{Name: "NoFK", Features: w.NoFKFeatures()},
	}
}

// Config drives one Monte Carlo run.
type Config struct {
	// NTrain is the training-set size n_S.
	NTrain int
	// NTest is the test-set size; the paper uses n_S/4.
	NTest int
	// L is the number of training sets per world (the paper's |S| = 100).
	L int
	// Worlds is the number of independent world realizations (the paper's
	// 100 seeds); results are averaged across worlds.
	Worlds int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the worker goroutines of the Monte Carlo fan-out
	// (worlds in Run, training-set fits in RunWorld); <= 0 means
	// GOMAXPROCS. Results are bitwise-identical at every worker count:
	// each (world, trial) task receives an RNG split off the seed stream
	// in index order before dispatch, so what a task computes never
	// depends on scheduling, and the floating-point reductions happen in
	// index order after the pool drains.
	Workers int
	// Learner trains the models; nil means Naive Bayes is supplied by the
	// caller (Run requires it non-nil). The learner's Fit is called from
	// multiple goroutines when Workers > 1, so it must be safe for
	// concurrent use (the Naive Bayes and TAN learners are stateless).
	Learner ml.Learner
	// Progress, when non-nil, receives one unit of total per (world,
	// training set) pair and one step as each completes, driving the CLIs'
	// -progress ETA lines. Nil disables reporting at zero cost.
	Progress *obs.Progress
	// Span, when non-nil, accumulates per-run counters (worlds, models
	// trained) under the caller's trace. Nil disables tracing.
	Span *obs.Span
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NTrain <= 0 || c.NTest <= 0 {
		return fmt.Errorf("biasvar: need positive train/test sizes, got %d/%d", c.NTrain, c.NTest)
	}
	if c.L < 2 {
		return fmt.Errorf("biasvar: need at least 2 training sets per world, got %d", c.L)
	}
	if c.Worlds < 1 {
		return fmt.Errorf("biasvar: need at least 1 world, got %d", c.Worlds)
	}
	if c.Learner == nil {
		return fmt.Errorf("biasvar: nil learner")
	}
	return nil
}

// Run executes the Monte Carlo study for one simulation configuration and
// returns one aggregate decomposition per model class, averaged over worlds.
//
// Worlds are dispatched to a bounded worker pool (cfg.Workers); the output
// is bitwise-identical at every worker count because every world's seed and
// RNG stream are split off the root stream in world order *before* dispatch
// and the per-world decompositions are reduced in world order afterwards.
// When cfg.Span is set, each world records its own child span; the children
// are adopted in world order after the pool drains, so the trace tree is
// deterministic too (only the spans' wall-clock timings vary run to run).
func Run(simCfg synth.SimConfig, cfg Config) (map[string]Decomp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := simCfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	cfg.Progress.AddTotal(int64(cfg.Worlds) * int64(cfg.L))
	// Pre-split every world's randomness in world order: one seed word for
	// the world realization, one child stream for its sampling. This is the
	// whole determinism argument — after this loop, no task consumes from a
	// shared stream.
	type worldRand struct {
		seed uint64
		rng  *stats.RNG
	}
	wrand := make([]worldRand, cfg.Worlds)
	for wi := range wrand {
		wrand[wi] = worldRand{seed: rng.Uint64(), rng: rng.Split()}
	}
	workers := pool.Workers(cfg.Workers)
	worldWorkers := workers
	if worldWorkers > cfg.Worlds {
		worldWorkers = cfg.Worlds
	}
	// Leftover parallelism goes to the L training-set fits inside each
	// world, so small-world sweeps still saturate the pool budget.
	innerWorkers := workers / worldWorkers
	perWorld := make([]map[string]Decomp, cfg.Worlds)
	spans := make([]*obs.Span, cfg.Worlds)
	err := pool.Run(cfg.Worlds, worldWorkers, func(wi int) error {
		world, err := synth.NewWorld(simCfg, wrand[wi].seed)
		if err != nil {
			return fmt.Errorf("biasvar: world %d: %w", wi, err)
		}
		worldsRun.Inc()
		wcfg := cfg
		wcfg.Workers = innerWorkers
		if cfg.Span != nil {
			spans[wi] = obs.StartSpan(fmt.Sprintf("world[%d]", wi))
			wcfg.Span = spans[wi]
		}
		out, err := RunWorld(world, StandardClasses(world), wcfg, wrand[wi].rng)
		spans[wi].End()
		if err != nil {
			return fmt.Errorf("biasvar: world %d: %w", wi, err)
		}
		perWorld[wi] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	cfg.Span.AdoptAll(spans)
	cfg.Span.Add("worlds", int64(cfg.Worlds))
	// Reduce in world order so the float sums are scheduling-independent.
	acc := make(map[string]*Decomp, len(perWorld[0]))
	for name := range perWorld[0] {
		acc[name] = &Decomp{}
	}
	for _, d := range perWorld {
		for name, w := range d {
			a := acc[name]
			a.TestError += w.TestError
			a.Bias += w.Bias
			a.NetVariance += w.NetVariance
			a.Variance += w.Variance
			a.Noise += w.Noise
		}
	}
	cfg.Span.Add("models_trained", int64(cfg.Worlds)*int64(cfg.L)*int64(len(acc)))
	out := make(map[string]Decomp, len(acc))
	for name, a := range acc {
		out[name] = Decomp{
			TestError:   a.TestError / float64(cfg.Worlds),
			Bias:        a.Bias / float64(cfg.Worlds),
			NetVariance: a.NetVariance / float64(cfg.Worlds),
			Variance:    a.Variance / float64(cfg.Worlds),
			Noise:       a.Noise / float64(cfg.Worlds),
		}
	}
	return out, nil
}

// RunWorld performs the decomposition within a single world: it samples one
// test set and L training sets, trains each model class on every training
// set, and aggregates the pointwise decomposition over the test set.
//
// The L fits are independent and run on cfg.Workers goroutines; each trial
// draws its training set from an RNG split off rng in trial order before
// dispatch (after the test set is sampled), so the decomposition is
// bitwise-identical at every worker count.
func RunWorld(world *synth.World, classes []ModelClass, cfg Config, rng *stats.RNG) (map[string]Decomp, error) {
	test := world.Sample(cfg.NTest, rng)
	trialRNG := make([]*stats.RNG, cfg.L)
	for l := range trialRNG {
		trialRNG[l] = rng.Split()
	}
	// preds[class][l] is the prediction vector of model l on the test set.
	// Concurrent trials write disjoint elements of these shared slices.
	preds := make(map[string][][]int32, len(classes))
	for _, mc := range classes {
		preds[mc.Name] = make([][]int32, cfg.L)
	}
	err := pool.Run(cfg.L, cfg.Workers, func(l int) error {
		train := world.Sample(cfg.NTrain, trialRNG[l])
		for _, mc := range classes {
			mod, err := cfg.Learner.Fit(train, mc.Features)
			if err != nil {
				return fmt.Errorf("biasvar: class %s: %w", mc.Name, err)
			}
			preds[mc.Name][l] = ml.PredictAll(mod, test)
		}
		modelsTrained.Add(int64(len(classes)))
		cfg.Span.Add("models_trained", int64(len(classes)))
		cfg.Progress.Step(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]Decomp, len(classes))
	for _, mc := range classes {
		out[mc.Name] = decompose(world, test, preds[mc.Name])
	}
	return out, nil
}

// decompose computes the pointwise Domingos decomposition and averages it
// over the test set.
func decompose(world *synth.World, test *dataset.Design, preds [][]int32) Decomp {
	n := test.NumRows()
	l := len(preds)
	var d Decomp
	for i := 0; i < n; i++ {
		p1 := world.TrueConditional(test, i)
		// Optimal prediction and noise.
		var t int32
		noise := p1
		if p1 >= 0.5 {
			t, noise = 1, 1-p1
		}
		// Main prediction: mode of the L predictions (binary target).
		ones := 0
		for _, pl := range preds {
			ones += int(pl[i])
		}
		var ym int32
		if 2*ones > l {
			ym = 1
		}
		bias := 0.0
		if ym != t {
			bias = 1
		}
		// Variance: disagreement with the main prediction.
		disagree := ones
		if ym == 1 {
			disagree = l - ones
		}
		variance := float64(disagree) / float64(l)
		// Expected test error of each model, exact in P(Y|x).
		errSum := 0.0
		for _, pl := range preds {
			if pl[i] == 1 {
				errSum += 1 - p1
			} else {
				errSum += p1
			}
		}
		d.TestError += errSum / float64(l)
		d.Bias += bias
		d.Variance += variance
		d.NetVariance += (1 - 2*bias) * variance
		d.Noise += noise
	}
	fn := float64(n)
	d.TestError /= fn
	d.Bias /= fn
	d.Variance /= fn
	d.NetVariance /= fn
	d.Noise /= fn
	return d
}
