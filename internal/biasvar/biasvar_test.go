package biasvar

import (
	"math"
	"testing"

	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

func simCfg() synth.SimConfig {
	return synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}
}

func runCfg(nTrain int) Config {
	return Config{NTrain: nTrain, NTest: nTrain / 4, L: 12, Worlds: 4, Seed: 7, Learner: nb.New()}
}

func TestConfigValidate(t *testing.T) {
	good := runCfg(400)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{NTrain: 0, NTest: 10, L: 5, Worlds: 1, Learner: nb.New()},
		{NTrain: 10, NTest: 0, L: 5, Worlds: 1, Learner: nb.New()},
		{NTrain: 10, NTest: 10, L: 1, Worlds: 1, Learner: nb.New()},
		{NTrain: 10, NTest: 10, L: 5, Worlds: 0, Learner: nb.New()},
		{NTrain: 10, NTest: 10, L: 5, Worlds: 1, Learner: nil},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestRunProducesAllClasses(t *testing.T) {
	out, err := Run(simCfg(), runCfg(400))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"UseAll", "NoJoin", "NoFK"} {
		d, ok := out[name]
		if !ok {
			t.Fatalf("missing class %s", name)
		}
		if d.TestError < 0 || d.TestError > 1 || d.Bias < 0 || d.Bias > 1 ||
			d.Variance < 0 || d.Variance > 1 || d.Noise < 0 || d.Noise > 0.5 {
			t.Fatalf("%s decomposition out of range: %+v", name, d)
		}
	}
}

func TestNoiseMatchesP(t *testing.T) {
	// In the OneXr scenario the noise is exactly p everywhere.
	out, err := Run(simCfg(), runCfg(400))
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range out {
		if math.Abs(d.Noise-0.1) > 1e-9 {
			t.Fatalf("%s noise = %v, want exactly 0.1", name, d.Noise)
		}
	}
}

// TestDecompositionIdentity verifies the exact binary-target identity
// E = N + (1−2N)·(B + (1−2B)·V) pointwise (here in aggregate per world,
// where it also holds because N is constant across test points in OneXr).
func TestDecompositionIdentity(t *testing.T) {
	world, err := synth.NewWorld(simCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := runCfg(200)
	out, err := RunWorld(world, StandardClasses(world), cfg, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range out {
		// With constant noise N=p, averaging preserves the identity:
		// E = N + (1−2N)·avg(B + (1−2B)V).
		lhs := d.TestError
		rhs := d.Noise + (1-2*d.Noise)*(d.Bias+d.NetVariance)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("%s: identity violated: E=%v vs %v", name, lhs, rhs)
		}
	}
}

// TestDichotomySmallVsLargeN reproduces the paper's central simulation
// finding (Figure 3(A)): with abundant data NoJoin matches UseAll, and with
// scarce data NoJoin's error and net variance rise above UseAll's.
func TestDichotomySmallVsLargeN(t *testing.T) {
	sim := simCfg()
	large, err := Run(sim, Config{NTrain: 4000, NTest: 1000, L: 10, Worlds: 4, Seed: 11, Learner: nb.New()})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(sim, Config{NTrain: 150, NTest: 200, L: 10, Worlds: 4, Seed: 11, Learner: nb.New()})
	if err != nil {
		t.Fatal(err)
	}
	// Large n: NoJoin ≈ UseAll (FK is a fine representative).
	gapLarge := large["NoJoin"].TestError - large["UseAll"].TestError
	if gapLarge > 0.02 {
		t.Fatalf("large-n gap = %v, want ≈0", gapLarge)
	}
	// Small n: NoJoin must be visibly worse than UseAll, driven by net
	// variance.
	gapSmall := small["NoJoin"].TestError - small["UseAll"].TestError
	if gapSmall < 0.01 {
		t.Fatalf("small-n gap = %v, want > 0.01", gapSmall)
	}
	if small["NoJoin"].NetVariance <= large["NoJoin"].NetVariance {
		t.Fatalf("NoJoin net variance should rise as n falls: %v vs %v",
			small["NoJoin"].NetVariance, large["NoJoin"].NetVariance)
	}
}

// TestVarianceGrowsWithFKDomain reproduces Figure 3(B): at fixed n, larger
// |D_FK| hurts NoJoin.
func TestVarianceGrowsWithFKDomain(t *testing.T) {
	smallFK := simCfg()
	smallFK.NR = 10
	bigFK := simCfg()
	bigFK.NR = 300
	cfg := Config{NTrain: 600, NTest: 300, L: 10, Worlds: 4, Seed: 13, Learner: nb.New()}
	a, err := Run(smallFK, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(bigFK, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b["NoJoin"].TestError <= a["NoJoin"].TestError {
		t.Fatalf("NoJoin error should grow with |D_FK|: %v vs %v",
			b["NoJoin"].TestError, a["NoJoin"].TestError)
	}
	// UseAll barely moves (it has X_r directly).
	if math.Abs(b["UseAll"].TestError-a["UseAll"].TestError) > 0.05 {
		t.Fatalf("UseAll should be insensitive to |D_FK|: %v vs %v",
			b["UseAll"].TestError, a["UseAll"].TestError)
	}
}

func TestRunWorldDeterministic(t *testing.T) {
	world, err := synth.NewWorld(simCfg(), 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := runCfg(200)
	a, err := RunWorld(world, StandardClasses(world), cfg, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorld(world, StandardClasses(world), cfg, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	for name := range a {
		if a[name] != b[name] {
			t.Fatalf("same-seed decompositions differ for %s", name)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(simCfg(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := simCfg()
	bad.NR = 0
	if _, err := Run(bad, runCfg(100)); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func TestDecomposeHandlesUnanimousModels(t *testing.T) {
	// All models identical → variance 0 and net variance 0.
	world, err := synth.NewWorld(simCfg(), 15)
	if err != nil {
		t.Fatal(err)
	}
	test := world.Sample(50, stats.NewRNG(1))
	pred := make([]int32, 50)
	for i := range pred {
		pred[i] = 1
	}
	d := decompose(world, test, [][]int32{pred, pred, pred})
	if d.Variance != 0 || d.NetVariance != 0 {
		t.Fatalf("unanimous models should have zero variance: %+v", d)
	}
}
