package biasvar

import (
	"errors"
	"fmt"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/obs"
	"hamlet/internal/pool"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// TestDeterminismAcrossWorkers is the acceptance gate for the parallel
// Monte Carlo engine: the same seed must produce bitwise-identical Decomp
// maps at every worker count. Cases are quick-budget-sized sweep points of
// the kinds the figure runners dispatch (fig3/fig11-class simulation
// points, plus a skewed configuration).
func TestDeterminismAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		sim  synth.SimConfig
		cfg  Config
	}{
		{
			name: "fig3-point-OneXr",
			sim:  synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1},
			cfg:  Config{NTrain: 300, NTest: 150, L: 8, Worlds: 3, Seed: 1, Learner: nb.New()},
		},
		{
			name: "fig11-point-AllXsXr",
			sim:  synth.SimConfig{Scenario: synth.AllXsXr, DS: 4, DR: 4, NR: 40, P: 0.1},
			cfg:  Config{NTrain: 250, NTest: 100, L: 6, Worlds: 4, Seed: 9, Learner: nb.New()},
		},
		{
			name: "fig13-point-needle-skew",
			sim:  synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1, Skew: synth.NeedleThreadSkew, NeedleP: 0.5},
			cfg:  Config{NTrain: 200, NTest: 100, L: 5, Worlds: 2, Seed: 42, Learner: nb.New()},
		},
		{
			name: "single-world-trial-parallelism-only",
			sim:  synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 25, P: 0.1},
			cfg:  Config{NTrain: 200, NTest: 100, L: 9, Worlds: 1, Seed: 5, Learner: nb.New()},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.Workers = 1
			want, err := Run(tc.sim, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8, 0} {
				par := tc.cfg
				par.Workers = workers
				got, err := Run(tc.sim, par)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: class sets differ: %v vs %v", workers, got, want)
				}
				for name, w := range want {
					g, ok := got[name]
					if !ok {
						t.Fatalf("workers=%d: missing class %s", workers, name)
					}
					// Struct equality is exact float64 equality: the parallel
					// path must be bitwise-identical, not merely close.
					if g != w {
						t.Errorf("workers=%d: %s decomposition differs:\nserial:   %+v\nparallel: %+v", workers, name, w, g)
					}
				}
			}
		})
	}
}

// TestRunWorldDeterministicAcrossWorkers pins the inner (training-set)
// fan-out on its own: same world, same RNG seed, any worker count.
func TestRunWorldDeterministicAcrossWorkers(t *testing.T) {
	world, err := synth.NewWorld(synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NTrain: 200, NTest: 100, L: 12, Worlds: 1, Seed: 7, Learner: nb.New(), Workers: 1}
	want, err := RunWorld(world, StandardClasses(world), cfg, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 12, 0} {
		cfg.Workers = workers
		got, err := RunWorld(world, StandardClasses(world), cfg, stats.NewRNG(21))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("workers=%d: %s differs: %+v vs %+v", workers, name, got[name], want[name])
			}
		}
	}
}

// failingLearner errors on every fit after a threshold trial count, to
// exercise error propagation out of the parallel fan-out.
type failingLearner struct{}

func (failingLearner) Name() string { return "failing" }

func (failingLearner) Fit(m *dataset.Design, features []int) (ml.Model, error) {
	return nil, errors.New("synthetic fit failure")
}

// TestRunPropagatesWorkerErrors verifies a failing fit surfaces as an error
// (not a panic or a hang) at serial and parallel worker counts.
func TestRunPropagatesWorkerErrors(t *testing.T) {
	sim := synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 20, P: 0.1}
	for _, workers := range []int{1, 4} {
		cfg := Config{NTrain: 100, NTest: 50, L: 4, Worlds: 3, Seed: 3, Learner: failingLearner{}, Workers: workers}
		_, err := Run(sim, cfg)
		if err == nil {
			t.Fatalf("workers=%d: failing learner produced no error", workers)
		}
	}
}

// panickyLearner panics inside a worker, which the pool must capture and
// convert into an error rather than crashing the process.
type panickyLearner struct{}

func (panickyLearner) Name() string { return "panicky" }

func (panickyLearner) Fit(m *dataset.Design, features []int) (ml.Model, error) {
	panic("learner exploded")
}

func TestRunRecoversWorkerPanics(t *testing.T) {
	sim := synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 20, P: 0.1}
	for _, workers := range []int{1, 4} {
		cfg := Config{NTrain: 100, NTest: 50, L: 4, Worlds: 2, Seed: 3, Learner: panickyLearner{}, Workers: workers}
		_, err := Run(sim, cfg)
		var pe *pool.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T (%v), want *pool.PanicError", workers, err, err)
		}
		if pe.Value != "learner exploded" {
			t.Fatalf("workers=%d: wrong panic value: %v", workers, pe.Value)
		}
	}
}

// TestParallelSpanTreeIsDeterministic checks the obs contract: the span
// children (one per world, in world order) and the rolled-up counters must
// not depend on the worker count.
func TestParallelSpanTreeIsDeterministic(t *testing.T) {
	sim := synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 20, P: 0.1}
	shape := func(workers int) []string {
		sp := obs.StartSpan("test")
		cfg := Config{NTrain: 100, NTest: 50, L: 4, Worlds: 5, Seed: 3, Learner: nb.New(), Workers: workers, Span: sp}
		if _, err := Run(sim, cfg); err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, c := range sp.Children() {
			names = append(names, fmt.Sprintf("%s[models_trained=%d]", c.Name(), c.Counter("models_trained")))
		}
		names = append(names, fmt.Sprintf("root[worlds=%d models_trained=%d]", sp.Counter("worlds"), sp.Counter("models_trained")))
		return names
	}
	want := shape(1)
	for _, workers := range []int{2, 5, 0} {
		got := shape(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: span shape %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: span child %d = %s, want %s", workers, i, got[i], want[i])
			}
		}
	}
}
