package core

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/stats"
)

// Rule selects which decision rule the advisor applies.
type Rule int

const (
	// TRRule thresholds the tuple ratio; it needs only row counts and is
	// the rule the paper recommends to analysts first.
	TRRule Rule = iota
	// RORRule thresholds the worst-case ROR; it additionally inspects the
	// foreign features' domain sizes (but never the data values).
	RORRule
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	if r == RORRule {
		return "ROR"
	}
	return "TR"
}

// Decision is the advisor's verdict for one attribute table.
type Decision struct {
	// FK names the foreign key, Attr the attribute table.
	FK, Attr string
	// Considered is false when the rule's preconditions fail (open-domain
	// FK, or the malign-skew entropy guard tripped); the join is then
	// always performed.
	Considered bool
	// Reason explains a Considered=false or keep verdict.
	Reason string
	// Avoid is the verdict: true means the join is predicted safe to
	// avoid.
	Avoid bool
	// TR is the tuple ratio n_train/n_R.
	TR float64
	// ROR is the worst-case risk of representation.
	ROR float64
	// QRStar is min_F |D_F| over the attribute table's features.
	QRStar int
	// DFK is the foreign key's domain size (= n_R).
	DFK int
}

// Advisor applies the join-avoidance rules to a normalized dataset.
type Advisor struct {
	// Rule selects TR or ROR; both use the same conservative guards.
	Rule Rule
	// Thresholds holds ρ and τ; zero value means DefaultThresholds.
	Thresholds Thresholds
	// Delta is Theorem 3.2's failure probability; zero means DefaultDelta.
	Delta float64
	// TrainFraction is the share of entity rows used for training under
	// the holdout protocol; zero means the paper's 0.5. The rules use
	// n_train = TrainFraction·n_S, matching the paper's reported tuple
	// ratios (e.g. Flights' airport tables at TR ≈ 10.5).
	TrainFraction float64
	// DisableEntropyGuard turns off the Appendix D H(Y) skew guard;
	// intended for ablations only.
	DisableEntropyGuard bool
}

// NewAdvisor returns an advisor with the paper's defaults: TR rule, ρ = 2.5,
// τ = 20, δ = 0.1, 50% training fraction, entropy guard on.
func NewAdvisor() *Advisor { return &Advisor{} }

func (a *Advisor) thresholds() Thresholds {
	if a.Thresholds == (Thresholds{}) {
		return DefaultThresholds
	}
	return a.Thresholds
}

func (a *Advisor) delta() float64 {
	if a.Delta == 0 {
		return DefaultDelta
	}
	return a.Delta
}

func (a *Advisor) trainFraction() float64 {
	if a.TrainFraction == 0 {
		return 0.5
	}
	return a.TrainFraction
}

// Decide evaluates every attribute table of the dataset and returns one
// Decision per table, in declaration order.
func (a *Advisor) Decide(d *dataset.Dataset) ([]Decision, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nTrain := int(a.trainFraction() * float64(d.NumRows()))
	if nTrain <= 0 {
		return nil, fmt.Errorf("core: dataset %q leaves no training rows", d.Name)
	}
	th := a.thresholds()

	// Appendix D guard: refuse all avoidance under malign target skew.
	guardTripped := false
	if !a.DisableEntropyGuard {
		y := d.Entity.Column(d.Target)
		hy := stats.Entropy(y.Data, y.Card)
		guardTripped = hy < EntropyGuardBits
	}

	decisions := make([]Decision, 0, len(d.Attrs))
	for _, at := range d.Attrs {
		dec := Decision{FK: at.FK, Attr: at.Table.Name, DFK: at.Table.NumRows()}
		qrs := math.MaxInt
		for _, c := range at.Table.Columns() {
			if c.Card < qrs {
				qrs = c.Card
			}
		}
		if at.Table.NumCols() == 0 {
			qrs = 1
		}
		dec.QRStar = qrs
		if tr, err := TupleRatio(nTrain, at.Table.NumRows()); err == nil {
			dec.TR = tr
		}
		if ror, err := ROR(nTrain, dec.DFK, min(qrs, dec.DFK), a.delta()); err == nil {
			dec.ROR = ror
		}
		switch {
		case !at.ClosedDomain:
			dec.Considered = false
			dec.Reason = "foreign key domain is not closed; FK cannot represent the foreign features"
		case guardTripped:
			dec.Considered = false
			dec.Reason = fmt.Sprintf("H(Y) below %.2g bits: conservative malign-skew guard (Appendix D)", EntropyGuardBits)
		default:
			dec.Considered = true
			switch a.Rule {
			case TRRule:
				dec.Avoid = dec.TR >= th.Tau
				if !dec.Avoid {
					dec.Reason = fmt.Sprintf("TR %.2f < τ %.2f", dec.TR, th.Tau)
				}
			case RORRule:
				dec.Avoid = dec.ROR <= th.Rho
				if !dec.Avoid {
					dec.Reason = fmt.Sprintf("ROR %.2f > ρ %.2f", dec.ROR, th.Rho)
				}
			default:
				return nil, fmt.Errorf("core: unknown rule %d", a.Rule)
			}
		}
		decisions = append(decisions, dec)
	}
	return decisions, nil
}

// JoinOptPlan returns the paper's JoinOpt plan: join exactly the attribute
// tables the rules did not clear for avoidance, along with the per-table
// decisions backing it.
func (a *Advisor) JoinOptPlan(d *dataset.Dataset) (dataset.Plan, []Decision, error) {
	decisions, err := a.Decide(d)
	if err != nil {
		return dataset.Plan{}, nil, err
	}
	var p dataset.Plan
	for _, dec := range decisions {
		if !(dec.Considered && dec.Avoid) {
			p.JoinFKs = append(p.JoinFKs, dec.FK)
		}
	}
	return p, decisions, nil
}
