package core

import (
	"hamlet/internal/dataset"
)

// Rule selects which decision rule the advisor applies.
type Rule int

const (
	// TRRule thresholds the tuple ratio; it needs only row counts and is
	// the rule the paper recommends to analysts first.
	TRRule Rule = iota
	// RORRule thresholds the worst-case ROR; it additionally inspects the
	// foreign features' domain sizes (but never the data values).
	RORRule
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	if r == RORRule {
		return "ROR"
	}
	return "TR"
}

// Decision is the advisor's verdict for one attribute table.
type Decision struct {
	// FK names the foreign key, Attr the attribute table.
	FK, Attr string
	// Considered is false when the rule's preconditions fail (open-domain
	// FK, or the malign-skew entropy guard tripped); the join is then
	// always performed.
	Considered bool
	// Reason explains a Considered=false or keep verdict.
	Reason string
	// Avoid is the verdict: true means the join is predicted safe to
	// avoid.
	Avoid bool
	// TR is the tuple ratio n_train/n_R.
	TR float64
	// ROR is the worst-case risk of representation.
	ROR float64
	// QRStar is min_F |D_F| over the attribute table's features.
	QRStar int
	// DFK is the foreign key's domain size (= n_R).
	DFK int
}

// Advisor applies the join-avoidance rules to a normalized dataset.
type Advisor struct {
	// Rule selects TR or ROR; both use the same conservative guards.
	Rule Rule
	// Thresholds holds ρ and τ; zero value means DefaultThresholds.
	Thresholds Thresholds
	// Delta is Theorem 3.2's failure probability; zero means DefaultDelta.
	Delta float64
	// TrainFraction is the share of entity rows used for training under
	// the holdout protocol; zero means the paper's 0.5. The rules use
	// n_train = TrainFraction·n_S, matching the paper's reported tuple
	// ratios (e.g. Flights' airport tables at TR ≈ 10.5).
	TrainFraction float64
	// DisableEntropyGuard turns off the Appendix D H(Y) skew guard;
	// intended for ablations only.
	DisableEntropyGuard bool
}

// NewAdvisor returns an advisor with the paper's defaults: TR rule, ρ = 2.5,
// τ = 20, δ = 0.1, 50% training fraction, entropy guard on.
func NewAdvisor() *Advisor { return &Advisor{} }

func (a *Advisor) thresholds() Thresholds {
	if a.Thresholds == (Thresholds{}) {
		return DefaultThresholds
	}
	return a.Thresholds
}

func (a *Advisor) delta() float64 {
	if a.Delta == 0 {
		return DefaultDelta
	}
	return a.Delta
}

func (a *Advisor) trainFraction() float64 {
	if a.TrainFraction == 0 {
		return 0.5
	}
	return a.TrainFraction
}

// Decide evaluates every attribute table of the dataset and returns one
// Decision per table, in declaration order. It is CollectStats followed by
// DecideFromStats; callers answering many decision requests over the same
// dataset (cmd/loadgen, a decision service) should collect once and call
// DecideFromStats directly.
func (a *Advisor) Decide(d *dataset.Dataset) ([]Decision, error) {
	s, err := CollectStats(d)
	if err != nil {
		return nil, err
	}
	return a.DecideFromStats(s)
}

// JoinOptPlan returns the paper's JoinOpt plan: join exactly the attribute
// tables the rules did not clear for avoidance, along with the per-table
// decisions backing it.
func (a *Advisor) JoinOptPlan(d *dataset.Dataset) (dataset.Plan, []Decision, error) {
	decisions, err := a.Decide(d)
	if err != nil {
		return dataset.Plan{}, nil, err
	}
	var p dataset.Plan
	for _, dec := range decisions {
		if !(dec.Considered && dec.Avoid) {
			p.JoinFKs = append(p.JoinFKs, dec.FK)
		}
	}
	return p, decisions, nil
}
