package core

import (
	"strings"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// fixture builds a two-attribute-table dataset where R1 has a high tuple
// ratio (safe) and R2 a low one (not safe).
func fixture(nS, nR1, nR2 int, skewY bool) *dataset.Dataset {
	r := stats.NewRNG(7)
	mk := func(name string, rows int) *relational.Table {
		t := relational.NewTable(name)
		a := make([]int32, rows)
		b := make([]int32, rows)
		for i := 0; i < rows; i++ {
			a[i] = int32(r.IntN(3))
			b[i] = int32(r.IntN(5))
		}
		t.MustAddColumn(&relational.Column{Name: name + "_a", Card: 3, Data: a})
		t.MustAddColumn(&relational.Column{Name: name + "_b", Card: 5, Data: b})
		return t
	}
	r1 := mk("R1", nR1)
	r2 := mk("R2", nR2)
	s := relational.NewTable("S")
	y := make([]int32, nS)
	xs := make([]int32, nS)
	fk1 := make([]int32, nS)
	fk2 := make([]int32, nS)
	for i := 0; i < nS; i++ {
		if skewY {
			if r.Bernoulli(0.95) {
				y[i] = 0
			} else {
				y[i] = 1
			}
		} else {
			y[i] = int32(r.IntN(2))
		}
		xs[i] = int32(r.IntN(4))
		fk1[i] = int32(r.IntN(nR1))
		fk2[i] = int32(r.IntN(nR2))
	}
	s.MustAddColumn(&relational.Column{Name: "Y", Card: 2, Data: y})
	s.MustAddColumn(&relational.Column{Name: "XS", Card: 4, Data: xs})
	s.MustAddColumn(&relational.Column{Name: "FK1", Card: nR1, Data: fk1})
	s.MustAddColumn(&relational.Column{Name: "FK2", Card: nR2, Data: fk2})
	return &dataset.Dataset{
		Name:         "Fixture",
		Entity:       s,
		Target:       "Y",
		HomeFeatures: []string{"XS"},
		Attrs: []dataset.AttributeTable{
			{Table: r1, FK: "FK1", ClosedDomain: true},
			{Table: r2, FK: "FK2", ClosedDomain: true},
		},
	}
}

func TestAdvisorTRSplitsSafeAndUnsafe(t *testing.T) {
	// n_train = 2000; TR1 = 2000/40 = 50 ≥ 20 (avoid), TR2 = 2000/500 = 4 (keep).
	d := fixture(4000, 40, 500, false)
	decs, err := NewAdvisor().Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatalf("decisions = %d", len(decs))
	}
	if !decs[0].Considered || !decs[0].Avoid {
		t.Fatalf("R1 should be safe to avoid: %+v", decs[0])
	}
	if !decs[1].Considered || decs[1].Avoid {
		t.Fatalf("R2 should be kept: %+v", decs[1])
	}
	if decs[1].Reason == "" {
		t.Fatal("keep verdict should carry a reason")
	}
}

func TestAdvisorRORRuleAgreesHere(t *testing.T) {
	d := fixture(4000, 40, 500, false)
	a := NewAdvisor()
	a.Rule = RORRule
	decs, err := a.Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Avoid || decs[1].Avoid {
		t.Fatalf("ROR rule disagrees: %+v", decs)
	}
	if decs[0].ROR > DefaultThresholds.Rho || decs[1].ROR <= DefaultThresholds.Rho {
		t.Fatalf("ROR values inconsistent: %v vs %v", decs[0].ROR, decs[1].ROR)
	}
}

func TestAdvisorEntropyGuard(t *testing.T) {
	d := fixture(4000, 40, 500, true) // 95:5 target split → H(Y) < 0.5 bits
	decs, err := NewAdvisor().Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range decs {
		if dec.Considered || dec.Avoid {
			t.Fatalf("entropy guard should veto all avoidance: %+v", dec)
		}
		if !strings.Contains(dec.Reason, "guard") {
			t.Fatalf("reason should mention the guard: %q", dec.Reason)
		}
	}
	// Ablation switch restores the decisions.
	a := NewAdvisor()
	a.DisableEntropyGuard = true
	decs, err = a.Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Avoid {
		t.Fatal("guard ablation should re-enable avoidance")
	}
}

func TestAdvisorOpenDomainFK(t *testing.T) {
	d := fixture(4000, 40, 500, false)
	d.Attrs[0].ClosedDomain = false
	decs, err := NewAdvisor().Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Considered || decs[0].Avoid {
		t.Fatalf("open-domain FK must not be considered: %+v", decs[0])
	}
	if !strings.Contains(decs[0].Reason, "closed") {
		t.Fatalf("reason = %q", decs[0].Reason)
	}
}

func TestJoinOptPlan(t *testing.T) {
	d := fixture(4000, 40, 500, false)
	plan, decs, err := NewAdvisor().JoinOptPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatal("missing decisions")
	}
	// Only FK2's table is joined.
	if len(plan.JoinFKs) != 1 || plan.JoinFKs[0] != "FK2" {
		t.Fatalf("JoinOpt plan = %+v", plan)
	}
	// The plan must materialize: avoided table's features absent, FK present.
	m, err := d.Materialize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureIndex("R1_a") >= 0 {
		t.Fatal("avoided table's features leaked into the design")
	}
	if m.FeatureIndex("FK1") < 0 {
		t.Fatal("FK of avoided table must stay as representative")
	}
	if m.FeatureIndex("R2_a") < 0 {
		t.Fatal("kept table's features missing")
	}
}

func TestAdvisorCustomThresholdsAndFraction(t *testing.T) {
	d := fixture(4000, 150, 500, false)
	// Default: TR1 = 2000/150 ≈ 13.3 < 20 → keep.
	decs, err := NewAdvisor().Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Avoid {
		t.Fatal("TR 13.3 should not pass τ=20")
	}
	// Relaxed τ=10 admits it (the paper's 0.01-tolerance setting).
	a := NewAdvisor()
	a.Thresholds = RelaxedThresholds
	decs, err = a.Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Avoid {
		t.Fatal("TR 13.3 should pass τ=10")
	}
	// A larger training fraction raises n_train and hence the TR.
	b := NewAdvisor()
	b.TrainFraction = 0.9
	decs, err = b.Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Avoid {
		t.Fatalf("TR %v with 0.9 train fraction should pass τ=20", decs[0].TR)
	}
}

func TestAdvisorValidatesDataset(t *testing.T) {
	d := fixture(100, 10, 20, false)
	d.Target = "Nope"
	if _, err := NewAdvisor().Decide(d); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestAdvisorQRStar(t *testing.T) {
	d := fixture(4000, 40, 500, false)
	decs, err := NewAdvisor().Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	// Attribute tables have features of card 3 and 5: q_R* = 3.
	if decs[0].QRStar != 3 {
		t.Fatalf("qR* = %d, want 3", decs[0].QRStar)
	}
}

func TestRuleString(t *testing.T) {
	if TRRule.String() != "TR" || RORRule.String() != "ROR" {
		t.Fatal("Rule.String broken")
	}
}

func TestTuneThresholds(t *testing.T) {
	points := []ScatterPoint{
		{ROR: 0.5, TR: 100, DeltaError: 0.0001},
		{ROR: 1.0, TR: 60, DeltaError: 0.0002},
		{ROR: 2.0, TR: 30, DeltaError: 0.0006},
		{ROR: 2.6, TR: 18, DeltaError: 0.0030},
		{ROR: 4.0, TR: 8, DeltaError: 0.0200},
		{ROR: 6.0, TR: 3, DeltaError: 0.0900},
	}
	th, err := TuneThresholds(points, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if th.Rho != 2.0 || th.Tau != 30 {
		t.Fatalf("tuned thresholds = %+v, want ρ=2.0 τ=30", th)
	}
	// Relaxing the tolerance moves both thresholds outward.
	th2, err := TuneThresholds(points, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if th2.Rho <= th.Rho || th2.Tau >= th.Tau {
		t.Fatalf("relaxed thresholds did not widen: %+v vs %+v", th2, th)
	}
}

func TestTuneThresholdsErrors(t *testing.T) {
	if _, err := TuneThresholds(nil, 0.001); err == nil {
		t.Fatal("empty scatter accepted")
	}
	if _, err := TuneThresholds([]ScatterPoint{{ROR: 1, TR: 10, DeltaError: 0}}, 0); err == nil {
		t.Fatal("nonpositive tolerance accepted")
	}
	bad := []ScatterPoint{{ROR: 1, TR: 10, DeltaError: 0.5}}
	if _, err := TuneThresholds(bad, 0.001); err == nil {
		t.Fatal("all-unsafe scatter should not produce thresholds")
	}
}
