package core

import (
	"fmt"
	"math"
	"sort"

	"hamlet/internal/dataset"
)

// The paper's §4.2 makes each attribute table's avoidance decision
// independently and flags joint decisions as future work. Independent
// decisions bound the risk of each substitution in isolation; when several
// joins are avoided at once, the kept foreign keys' domains add up in the
// model the classifier actually trains, so the combined representation risk
// exceeds any single table's. JointROR bounds that combined risk, and the
// advisor's joint mode greedily admits tables (lowest individual ROR first)
// while the joint bound stays under ρ — never avoiding a set whose combined
// risk the independent rule would not have accepted table by table.

// JointROR returns the worst-case risk of representation of avoiding a set
// of attribute tables at once: v_Yes sums the avoided FK domains (the VC
// dimension of a linear model over all of them), while the no-avoid
// comparator keeps the per-table minimum foreign-feature domains.
func JointROR(nTrain int, dFKs, qRStars []int, delta float64) (float64, error) {
	if len(dFKs) == 0 {
		return 0, nil
	}
	if len(dFKs) != len(qRStars) {
		return 0, fmt.Errorf("core: %d FK domains vs %d feature domains", len(dFKs), len(qRStars))
	}
	if nTrain <= 0 {
		return 0, fmt.Errorf("core: joint ROR needs positive training count, got %d", nTrain)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("core: delta must lie in (0,1), got %v", delta)
	}
	vYes, vNo := 0, 0
	for i := range dFKs {
		if dFKs[i] <= 0 || qRStars[i] <= 0 {
			return 0, fmt.Errorf("core: nonpositive domain at %d", i)
		}
		if qRStars[i] > dFKs[i] {
			return 0, fmt.Errorf("core: qR*=%d exceeds |D_FK|=%d at %d", qRStars[i], dFKs[i], i)
		}
		vYes += dFKs[i]
		vNo += qRStars[i]
	}
	n := float64(nTrain)
	ror := (vcTerm(float64(vYes), n) - vcTerm(float64(vNo), n)) / (delta * math.Sqrt(2*n))
	if ror < 0 {
		ror = 0
	}
	return ror, nil
}

// JointJoinOptPlan computes a JoinOpt plan under the joint rule: candidate
// tables are the ones the independent rule already cleared; they are
// admitted to the avoid set in increasing individual-ROR order while the
// joint ROR of the admitted set stays within ρ. The returned decisions are
// the independent ones with Avoid revised to the joint verdict (a table
// demoted by the joint bound keeps its statistics and gains a reason).
func (a *Advisor) JointJoinOptPlan(d *dataset.Dataset) (dataset.Plan, []Decision, error) {
	decisions, err := a.Decide(d)
	if err != nil {
		return dataset.Plan{}, nil, err
	}
	nTrain := int(a.trainFraction() * float64(d.NumRows()))
	th := a.thresholds()

	// Candidates: independently cleared tables, by increasing ROR.
	type cand struct {
		idx int
		ror float64
	}
	var cands []cand
	for i, dec := range decisions {
		if dec.Considered && dec.Avoid {
			cands = append(cands, cand{i, dec.ROR})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ror < cands[j].ror })

	var dFKs, qRStars []int
	admitted := make(map[int]bool)
	for _, c := range cands {
		dec := decisions[c.idx]
		q := dec.QRStar
		if q > dec.DFK {
			q = dec.DFK
		}
		tryD := append(append([]int(nil), dFKs...), dec.DFK)
		tryQ := append(append([]int(nil), qRStars...), q)
		jror, err := JointROR(nTrain, tryD, tryQ, a.delta())
		if err != nil {
			return dataset.Plan{}, nil, err
		}
		if jror <= th.Rho {
			dFKs, qRStars = tryD, tryQ
			admitted[c.idx] = true
		}
	}
	for i := range decisions {
		if decisions[i].Considered && decisions[i].Avoid && !admitted[i] {
			decisions[i].Avoid = false
			decisions[i].Reason = fmt.Sprintf("joint ROR of the avoid set would exceed ρ %.2f", th.Rho)
		}
	}
	var p dataset.Plan
	for _, dec := range decisions {
		if !(dec.Considered && dec.Avoid) {
			p.JoinFKs = append(p.JoinFKs, dec.FK)
		}
	}
	return p, decisions, nil
}

// RORMultiClass generalizes the worst-case ROR to C-class targets. The VC
// dimension is defined for binary classification; for multi-class "linear"
// models the Natarajan/graph dimensions are bounded log-linearly in the
// product of the total number of feature values and the number of classes
// (§4.2, citing Daniely et al.). We use the parameter-count surrogate of a
// softmax model — every domain size scales by (C−1) — which reduces
// exactly to ROR when C = 2 and grows the risk estimate with C, keeping
// the rule conservative for multi-class tasks.
func RORMultiClass(nTrain, dFK, qRStar, numClasses int, delta float64) (float64, error) {
	if numClasses < 2 {
		return 0, fmt.Errorf("core: need at least 2 classes, got %d", numClasses)
	}
	scale := numClasses - 1
	return ROR(nTrain, dFK*scale, qRStar*scale, delta)
}
