package core

import (
	"math"
	"strings"
	"testing"
)

func TestJointRORReducesToSingleTable(t *testing.T) {
	single, err := ROR(5000, 100, 2, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := JointROR(5000, []int{100}, []int{2}, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single-joint) > 1e-12 {
		t.Fatalf("single-table joint ROR %v != ROR %v", joint, single)
	}
}

func TestJointRORExceedsMaxIndividual(t *testing.T) {
	// The combined risk of avoiding two tables is at least each table's own.
	a, _ := ROR(5000, 100, 2, DefaultDelta)
	b, _ := ROR(5000, 150, 3, DefaultDelta)
	joint, err := JointROR(5000, []int{100, 150}, []int{2, 3}, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if joint < a || joint < b {
		t.Fatalf("joint %v below individual %v / %v", joint, a, b)
	}
}

func TestJointROREmptySet(t *testing.T) {
	joint, err := JointROR(5000, nil, nil, DefaultDelta)
	if err != nil || joint != 0 {
		t.Fatalf("empty avoid set: %v %v", joint, err)
	}
}

func TestJointRORValidation(t *testing.T) {
	cases := []struct {
		n      int
		dFKs   []int
		qs     []int
		delta  float64
		reason string
	}{
		{0, []int{10}, []int{2}, 0.1, "n"},
		{100, []int{10}, []int{2, 3}, 0.1, "length mismatch"},
		{100, []int{0}, []int{2}, 0.1, "zero domain"},
		{100, []int{10}, []int{11}, 0.1, "q>d"},
		{100, []int{10}, []int{2}, 0, "delta"},
	}
	for _, c := range cases {
		if _, err := JointROR(c.n, c.dFKs, c.qs, c.delta); err == nil {
			t.Errorf("%s accepted", c.reason)
		}
	}
}

func TestJointJoinOptPlanAtMostIndependent(t *testing.T) {
	// Joint mode never avoids a table the independent rule kept, and may
	// demote some.
	d := fixture(4000, 40, 500, false)
	adv := NewAdvisor()
	adv.Rule = RORRule
	indep, _, err := adv.JoinOptPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	joint, decs, err := adv.JointJoinOptPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	// Joined FKs under joint mode ⊇ joined FKs under independent mode.
	indepSet := map[string]bool{}
	for _, fk := range indep.JoinFKs {
		indepSet[fk] = true
	}
	for _, fk := range indep.JoinFKs {
		found := false
		for _, jfk := range joint.JoinFKs {
			if jfk == fk {
				found = true
			}
		}
		if !found {
			t.Fatalf("joint mode avoided %s which independent mode kept", fk)
		}
	}
	if len(decs) != 2 {
		t.Fatal("missing decisions")
	}
}

func TestJointJoinOptPlanDemotesWhenCombinedRiskHigh(t *testing.T) {
	// Two tables individually under ρ but jointly over it: with n_train =
	// 14000 and two 400-row tables (q_R* = 3), each individual ROR ≈ 2.41
	// ≤ ρ = 2.5 while the joint bound over both ≈ 3.16 > ρ.
	d := fixture(28000, 400, 400, false)
	adv := NewAdvisor()
	adv.Rule = RORRule
	indep, err := adv.Decide(d)
	if err != nil {
		t.Fatal(err)
	}
	if !indep[0].Avoid || !indep[1].Avoid {
		t.Fatalf("fixture not individually cleared: %+v", indep)
	}
	_, decs, err := adv.JointJoinOptPlan(d)
	if err != nil {
		t.Fatal(err)
	}
	demoted := 0
	for _, dec := range decs {
		if !dec.Avoid {
			demoted++
			if !strings.Contains(dec.Reason, "joint") {
				t.Fatalf("demotion reason = %q", dec.Reason)
			}
		}
	}
	if demoted == 0 {
		t.Fatal("expected the joint bound to demote at least one table")
	}
	if demoted == 2 {
		t.Fatal("joint bound should keep at least the lowest-risk table")
	}
}

func TestRORMultiClass(t *testing.T) {
	binary, err := RORMultiClass(5000, 100, 2, 2, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := ROR(5000, 100, 2, DefaultDelta)
	if math.Abs(binary-plain) > 1e-12 {
		t.Fatalf("C=2 should reduce to ROR: %v vs %v", binary, plain)
	}
	five, err := RORMultiClass(5000, 100, 2, 5, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if five <= binary {
		t.Fatalf("multi-class risk should grow with C: %v vs %v", five, binary)
	}
	if _, err := RORMultiClass(5000, 100, 2, 1, DefaultDelta); err == nil {
		t.Fatal("C=1 accepted")
	}
}
