// Package core implements the paper's primary contribution: the a-priori
// decision rules that predict whether a key–foreign-key join is safe to
// avoid before feature selection (§4.2).
//
// Two rules are provided. The ROR rule thresholds the computable worst-case
// upper bound on the Risk Of Representation — the increase in Theorem 3.2's
// test-train error bound incurred by letting the foreign key represent the
// foreign features. The TR rule thresholds the tuple ratio n_train/n_R, a
// conservative simplification of the ROR that needs only table row counts.
// Both rules are deliberately conservative: a missed opportunity (performing
// an avoidable join) is acceptable; avoiding a join that blows up the test
// error is not.
package core

import (
	"fmt"
	"math"
)

// DefaultDelta is the failure probability δ in Theorem 3.2's bound; the
// paper fixes it at 0.1 (footnote 8).
const DefaultDelta = 0.1

// Thresholds pairs the decision thresholds of the two rules: avoid the join
// when ROR ≤ Rho, or (TR rule) when TR ≥ Tau.
type Thresholds struct {
	// Rho is the ROR-rule threshold ρ.
	Rho float64
	// Tau is the TR-rule threshold τ.
	Tau float64
	// Tolerance is the test-error increase the thresholds were tuned for.
	Tolerance float64
}

// DefaultThresholds are the paper's settings for a "significant increase"
// tolerance of 0.001 absolute test error: ρ = 2.5 and τ = 20 (§4.2).
var DefaultThresholds = Thresholds{Rho: 2.5, Tau: 20, Tolerance: 0.001}

// RelaxedThresholds are the paper's settings for a 0.01 tolerance (§5.2.2):
// ρ = 4.2 and τ = 10, which admit two more joins on Flights.
var RelaxedThresholds = Thresholds{Rho: 4.2, Tau: 10, Tolerance: 0.01}

// vcTerm computes sqrt(v·log(2en/v)), the VC-dimension contribution to
// Theorem 3.2's bound, guarding the degenerate v ≥ 2en region where the
// logarithm would go nonpositive.
func vcTerm(v, n float64) float64 {
	if v <= 0 || n <= 0 {
		return 0
	}
	arg := 2 * math.E * n / v
	if arg <= 1 {
		return 0
	}
	return math.Sqrt(v * math.Log(arg))
}

// ROR returns the worst-case Risk Of Representation of §4.2:
//
//	ROR = ( √(|D_FK|·log(2en/|D_FK|)) − √(q_R*·log(2en/q_R*)) ) / (δ·√(2n))
//
// where nTrain is the number of training examples, dFK = |D_FK| is the
// foreign key's domain size (= n_R), qRStar = min_{F∈X_R} |D_F| is the
// smallest foreign-feature domain, and delta is the failure probability.
// This upper-bounds the exact (incomputable) ROR; it corresponds to the
// worst case where U_S is empty and U_R is the lone smallest-domain foreign
// feature.
func ROR(nTrain, dFK, qRStar int, delta float64) (float64, error) {
	if nTrain <= 0 {
		return 0, fmt.Errorf("core: ROR needs positive training count, got %d", nTrain)
	}
	if dFK <= 0 || qRStar <= 0 {
		return 0, fmt.Errorf("core: ROR needs positive domain sizes, got dFK=%d qR*=%d", dFK, qRStar)
	}
	if qRStar > dFK {
		// |D_FK| ≥ q_R ≥ q_R* always holds for real schemas (RID is a key);
		// reject impossible inputs rather than return a negative risk.
		return 0, fmt.Errorf("core: qR*=%d exceeds |D_FK|=%d, impossible under a KFK schema", qRStar, dFK)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("core: delta must lie in (0,1), got %v", delta)
	}
	n := float64(nTrain)
	num := vcTerm(float64(dFK), n) - vcTerm(float64(qRStar), n)
	ror := num / (delta * math.Sqrt(2*n))
	if ror < 0 {
		// Possible only in the degenerate clamped-log region; the risk of
		// representation is never negative.
		ror = 0
	}
	return ror, nil
}

// TupleRatio returns TR = n_train / n_R, the paper's simplest join-avoidance
// statistic: the number of training examples per attribute-table tuple
// (equivalently, per foreign-key value, since the FK domain equals the set
// of RID values).
func TupleRatio(nTrain, nR int) (float64, error) {
	if nTrain <= 0 || nR <= 0 {
		return 0, fmt.Errorf("core: tuple ratio needs positive counts, got nTrain=%d nR=%d", nTrain, nR)
	}
	return float64(nTrain) / float64(nR), nil
}

// RORApprox is the large-|D_FK| approximation of §4.2 used to relate the ROR
// to the TR: ROR ≈ √(log(2en/n_R)) / (δ·√(2·TR)); it is approximately linear
// in 1/√TR for reasonably large TR.
func RORApprox(nTrain, nR int, delta float64) (float64, error) {
	tr, err := TupleRatio(nTrain, nR)
	if err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("core: delta must lie in (0,1), got %v", delta)
	}
	arg := 2 * math.E * float64(nTrain) / float64(nR)
	if arg <= 1 {
		return 0, nil
	}
	return math.Sqrt(math.Log(arg)) / (delta * math.Sqrt(2*tr)), nil
}

// SafeToAvoidROR applies the ROR rule: the join is predicted safe to avoid
// when the worst-case ROR is at most rho.
func SafeToAvoidROR(nTrain, dFK, qRStar int, delta, rho float64) (bool, float64, error) {
	r, err := ROR(nTrain, dFK, qRStar, delta)
	if err != nil {
		return false, 0, err
	}
	return r <= rho, r, nil
}

// SafeToAvoidTR applies the TR rule: the join is predicted safe to avoid
// when the tuple ratio is at least tau.
func SafeToAvoidTR(nTrain, nR int, tau float64) (bool, float64, error) {
	tr, err := TupleRatio(nTrain, nR)
	if err != nil {
		return false, 0, err
	}
	return tr >= tau, tr, nil
}

// EntropyGuardBits is the paper's Appendix D conservative guard against
// malign foreign-key skew: if H(Y) is below this many bits (roughly a
// 90%:10% class split for a binary target), do not avoid any join.
const EntropyGuardBits = 0.5
