package core

import (
	"math"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func TestRORZeroWhenDomainsEqual(t *testing.T) {
	// q_R* = |D_FK| means the FK has no extra capacity: risk must be 0.
	r, err := ROR(1000, 40, 40, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("ROR with q_R* = |D_FK| = %v, want 0", r)
	}
}

func TestRORKnownValue(t *testing.T) {
	// Hand-computed: n=1000, dFK=100, qR*=2, δ=0.1.
	// t1 = sqrt(100·ln(2e·10)) = sqrt(100·3.9957) ≈ 19.98924
	// t2 = sqrt(2·ln(2e·500)) = sqrt(2·7.9108) ≈ 3.97763
	// ROR = (t1−t2)/(0.1·sqrt(2000)) ≈ 16.0116/4.47214 ≈ 3.58032
	r, err := ROR(1000, 100, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	t1 := math.Sqrt(100 * math.Log(2*math.E*1000/100))
	t2 := math.Sqrt(2 * math.Log(2*math.E*1000/2))
	want := (t1 - t2) / (0.1 * math.Sqrt(2000))
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("ROR = %v, want %v", r, want)
	}
	if math.Abs(r-3.5803) > 0.001 {
		t.Fatalf("ROR = %v, want ≈3.5803", r)
	}
}

func TestRORMonotoneInDFK(t *testing.T) {
	// Larger FK domains mean more representation risk (n fixed).
	prev := -1.0
	for _, dFK := range []int{4, 8, 16, 32, 64, 128, 256} {
		r, err := ROR(10000, dFK, 2, DefaultDelta)
		if err != nil {
			t.Fatal(err)
		}
		if r < prev {
			t.Fatalf("ROR decreased at dFK=%d: %v < %v", dFK, r, prev)
		}
		prev = r
	}
}

func TestRORMonotoneDecreasingInQRStar(t *testing.T) {
	prev := math.Inf(1)
	for _, q := range []int{2, 4, 8, 16, 32, 64} {
		r, err := ROR(10000, 64, q, DefaultDelta)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Fatalf("ROR increased at qR*=%d: %v > %v", q, r, prev)
		}
		prev = r
	}
}

func TestRORDecreasesWithMoreData(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{200, 500, 1000, 5000, 20000, 100000} {
		r, err := ROR(n, 100, 2, DefaultDelta)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Fatalf("ROR increased with more data at n=%d: %v > %v", n, r, prev)
		}
		prev = r
	}
}

func TestRORPropertyNonnegativeAndOrdered(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		n := 10 + rr.IntN(100000)
		dFK := 2 + rr.IntN(5000)
		q := 1 + rr.IntN(dFK)
		r, err := ROR(n, dFK, q, DefaultDelta)
		if err != nil || r < 0 {
			return false
		}
		// Shrinking q can only increase the risk.
		r2, err := ROR(n, dFK, 1, DefaultDelta)
		return err == nil && r2 >= r-1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRORValidation(t *testing.T) {
	cases := []struct {
		n, dFK, q int
		delta     float64
	}{
		{0, 10, 2, 0.1},
		{100, 0, 2, 0.1},
		{100, 10, 0, 0.1},
		{100, 10, 11, 0.1}, // qR* > |D_FK| impossible
		{100, 10, 2, 0},
		{100, 10, 2, 1},
	}
	for _, c := range cases {
		if _, err := ROR(c.n, c.dFK, c.q, c.delta); err == nil {
			t.Errorf("ROR(%+v) accepted invalid input", c)
		}
	}
}

func TestTupleRatio(t *testing.T) {
	tr, err := TupleRatio(210785, 2340)
	if err != nil {
		t.Fatal(err)
	}
	// Walmart's Indicators table: TR ≈ 90 (paper Figure 6 with 50% train).
	if math.Abs(tr-90.08) > 0.1 {
		t.Fatalf("Walmart TR = %v, want ≈90", tr)
	}
	if _, err := TupleRatio(0, 5); err == nil {
		t.Fatal("zero train count accepted")
	}
	if _, err := TupleRatio(5, 0); err == nil {
		t.Fatal("zero attribute rows accepted")
	}
}

// TestPaperTupleRatios checks the TR rule against every closed-domain FK of
// the paper's Figure 6 datasets (n_train = 0.5·n_S, τ = 20) and verifies it
// reproduces the avoid/keep split reported in §5.
func TestPaperTupleRatios(t *testing.T) {
	cases := []struct {
		dataset string
		nS, nR  int
		avoid   bool
	}{
		{"Walmart/Indicators", 421570, 2340, true},
		{"Walmart/Stores", 421570, 45, true},
		{"Expedia/Hotels", 942142, 11939, true},
		{"Flights/Airlines", 66548, 540, true},
		{"Flights/SrcAirports", 66548, 3182, false},
		{"Flights/DestAirports", 66548, 3182, false},
		{"Yelp/Businesses", 215879, 11537, false},
		{"Yelp/Users", 215879, 43873, false},
		{"MovieLens1M/Movies", 1000209, 3706, true},
		{"MovieLens1M/Users", 1000209, 6040, true},
		{"LastFM/Artists", 343747, 4999, true},
		{"LastFM/Users", 343747, 50000, false},
		{"BookCrossing/Users", 253120, 49972, false},
		{"BookCrossing/Books", 253120, 27876, false},
	}
	for _, c := range cases {
		nTrain := c.nS / 2
		avoid, tr, err := SafeToAvoidTR(nTrain, c.nR, DefaultThresholds.Tau)
		if err != nil {
			t.Fatal(err)
		}
		if avoid != c.avoid {
			t.Errorf("%s: TR=%.1f predicted avoid=%v, paper says %v", c.dataset, tr, avoid, c.avoid)
		}
	}
}

// TestRelaxedThresholdAdmitsFlights checks §5.2.2: with tolerance 0.01
// (τ = 10), the two Flights airport joins flip to avoidable.
func TestRelaxedThresholdAdmitsFlights(t *testing.T) {
	nTrain := 66548 / 2
	avoid, tr, err := SafeToAvoidTR(nTrain, 3182, RelaxedThresholds.Tau)
	if err != nil {
		t.Fatal(err)
	}
	if !avoid {
		t.Fatalf("Flights airports TR=%.2f should be avoidable at τ=10", tr)
	}
	avoid, _, err = SafeToAvoidTR(nTrain, 3182, DefaultThresholds.Tau)
	if err != nil {
		t.Fatal(err)
	}
	if avoid {
		t.Fatal("Flights airports must not be avoidable at τ=20")
	}
}

func TestSafeToAvoidROR(t *testing.T) {
	// Small risk: huge n, small FK domain.
	avoid, r, err := SafeToAvoidROR(100000, 50, 2, DefaultDelta, DefaultThresholds.Rho)
	if err != nil {
		t.Fatal(err)
	}
	if !avoid || r > DefaultThresholds.Rho {
		t.Fatalf("low-risk case not avoidable: ROR=%v", r)
	}
	// High risk: small n, large FK domain.
	avoid, r, err = SafeToAvoidROR(1000, 900, 2, DefaultDelta, DefaultThresholds.Rho)
	if err != nil {
		t.Fatal(err)
	}
	if avoid {
		t.Fatalf("high-risk case avoidable: ROR=%v", r)
	}
}

// TestRORLinearInInverseSqrtTR verifies the paper's Figure 4(C) relationship
// on a parameter sweep: Pearson correlation between ROR and 1/√TR ≥ 0.9.
func TestRORLinearInInverseSqrtTR(t *testing.T) {
	var rors, invSqrtTR []float64
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		for _, nR := range []int{10, 20, 40, 80, 160, 320} {
			if nR*2 >= n {
				continue
			}
			r, err := ROR(n, nR, 2, DefaultDelta)
			if err != nil {
				t.Fatal(err)
			}
			tr, _ := TupleRatio(n, nR)
			rors = append(rors, r)
			invSqrtTR = append(invSqrtTR, 1/math.Sqrt(tr))
		}
	}
	if corr := stats.Pearson(rors, invSqrtTR); corr < 0.9 {
		t.Fatalf("Pearson(ROR, 1/sqrt(TR)) = %v, want ≥ 0.9 (paper reports ≈0.97)", corr)
	}
}

func TestRORApproxTracksROR(t *testing.T) {
	// For |D_FK| ≫ q_R* the approximation should be close to the bound.
	r, err := ROR(10000, 500, 2, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RORApprox(10000, 500, DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-ra) > 0.35*r {
		t.Fatalf("approximation too far: ROR=%v approx=%v", r, ra)
	}
	if _, err := RORApprox(100, 10, 0); err == nil {
		t.Fatal("invalid delta accepted")
	}
	if _, err := RORApprox(0, 10, 0.1); err == nil {
		t.Fatal("invalid counts accepted")
	}
}

func TestVCTermDegenerate(t *testing.T) {
	if v := vcTerm(0, 100); v != 0 {
		t.Fatalf("vcTerm(0, ·) = %v", v)
	}
	if v := vcTerm(1000, 1); v != 0 {
		t.Fatalf("vcTerm in clamped region = %v, want 0", v)
	}
}
