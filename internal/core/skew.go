package core

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/stats"
)

// Appendix D observes that foreign-key skew per se is harmless ("benign");
// what hurts is "malign" skew, where a rare target class is diffused across
// many rare FK values, leaving too few examples per (class, FK value) pair
// for the FK to represent the foreign features. The paper's shipped guard
// is the blunt H(Y) < 0.5-bit check (EntropyGuardBits); it also notes the
// finer H(FK|Y) diagnostic. This file implements that finer diagnostic.
//
// For each class y, 2^H(FK|Y=y) is the effective number of distinct FK
// values carrying class y, so n_y / 2^H(FK|Y=y) is the class-conditional
// analogue of the tuple ratio: the effective number of training examples
// per FK value *within the class*. Malign skew is exactly the situation
// where this ratio collapses for a rare class even though the overall TR
// looks healthy.

// ClassSkew is the skew diagnostic for one target class.
type ClassSkew struct {
	// Class is the class label.
	Class int32
	// Count is the number of entity rows with this label.
	Count int
	// CondEntropy is H(FK | Y=class) in bits.
	CondEntropy float64
	// EffectiveTR is Count / 2^CondEntropy: the effective examples per FK
	// value within the class.
	EffectiveTR float64
}

// SkewDiagnostic is the per-FK skew report.
type SkewDiagnostic struct {
	// FK names the diagnosed foreign key.
	FK string
	// HY is the target entropy in bits.
	HY float64
	// HFK is the FK's marginal entropy in bits.
	HFK float64
	// PerClass holds one entry per target class.
	PerClass []ClassSkew
	// MinEffectiveTR is the smallest per-class effective tuple ratio.
	MinEffectiveTR float64
}

// Malign reports whether the diagnostic indicates malign skew at the given
// threshold: some class has fewer than tau effective examples per FK value.
// Passing the TR rule's τ keeps the two rules on the same scale.
func (sd SkewDiagnostic) Malign(tau float64) bool {
	return sd.MinEffectiveTR < tau
}

// DiagnoseSkew computes the skew diagnostic of one closed-domain FK over
// the full entity table.
func DiagnoseSkew(d *dataset.Dataset, fkName string) (SkewDiagnostic, error) {
	if err := d.Validate(); err != nil {
		return SkewDiagnostic{}, err
	}
	fk := d.Entity.Column(fkName)
	if fk == nil {
		return SkewDiagnostic{}, fmt.Errorf("core: no FK column %q in dataset %q", fkName, d.Name)
	}
	y := d.Entity.Column(d.Target)
	out := SkewDiagnostic{
		FK:  fkName,
		HY:  stats.Entropy(y.Data, y.Card),
		HFK: stats.Entropy(fk.Data, fk.Card),
	}
	out.MinEffectiveTR = math.Inf(1)
	for c := int32(0); int(c) < y.Card; c++ {
		var sub []int32
		for i, yv := range y.Data {
			if yv == c {
				sub = append(sub, fk.Data[i])
			}
		}
		cs := ClassSkew{Class: c, Count: len(sub)}
		if len(sub) > 0 {
			cs.CondEntropy = stats.Entropy(sub, fk.Card)
			cs.EffectiveTR = float64(len(sub)) / math.Exp2(cs.CondEntropy)
		}
		if cs.Count > 0 && cs.EffectiveTR < out.MinEffectiveTR {
			out.MinEffectiveTR = cs.EffectiveTR
		}
		out.PerClass = append(out.PerClass, cs)
	}
	if math.IsInf(out.MinEffectiveTR, 1) {
		out.MinEffectiveTR = 0
	}
	return out, nil
}
