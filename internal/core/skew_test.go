package core

import (
	"math"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// skewDataset builds a binary-target dataset whose FK distribution is
// either benign (rare class concentrated on few FK values) or malign (rare
// class diffused over many rare FK values).
func skewDataset(nS, nR int, malign bool) *dataset.Dataset {
	r := stats.NewRNG(3)
	attr := relational.NewTable("R")
	f := make([]int32, nR)
	for i := range f {
		f[i] = int32(r.IntN(2))
	}
	attr.MustAddColumn(&relational.Column{Name: "F", Card: 2, Data: f})
	y := make([]int32, nS)
	fk := make([]int32, nS)
	for i := 0; i < nS; i++ {
		rare := r.Bernoulli(0.1)
		if rare {
			y[i] = 1
			if malign {
				// Rare class spread uniformly over all but one FK value.
				fk[i] = 1 + int32(r.IntN(nR-1))
			} else {
				// Rare class concentrated on a single FK value.
				fk[i] = 0
			}
		} else {
			y[i] = 0
			if malign {
				fk[i] = 0
			} else {
				fk[i] = 1 + int32(r.IntN(nR-1))
			}
		}
	}
	s := relational.NewTable("S")
	s.MustAddColumn(&relational.Column{Name: "Y", Card: 2, Data: y})
	s.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	return &dataset.Dataset{
		Name:   "Skew",
		Entity: s,
		Target: "Y",
		Attrs:  []dataset.AttributeTable{{Table: attr, FK: "FK", ClosedDomain: true}},
	}
}

func TestDiagnoseSkewMalignVsBenign(t *testing.T) {
	benign, err := DiagnoseSkew(skewDataset(20000, 200, false), "FK")
	if err != nil {
		t.Fatal(err)
	}
	malign, err := DiagnoseSkew(skewDataset(20000, 200, true), "FK")
	if err != nil {
		t.Fatal(err)
	}
	// In the benign dataset the rare class sits on one FK value: its
	// conditional entropy is ≈0 and its effective TR is huge. In the
	// malign dataset the rare class diffuses over ~199 values: its
	// effective TR collapses.
	if benign.MinEffectiveTR < DefaultThresholds.Tau {
		t.Fatalf("benign min effective TR = %v, expected large", benign.MinEffectiveTR)
	}
	if malign.MinEffectiveTR >= DefaultThresholds.Tau {
		t.Fatalf("malign min effective TR = %v, expected collapse", malign.MinEffectiveTR)
	}
	if benign.Malign(DefaultThresholds.Tau) {
		t.Fatal("benign dataset flagged malign")
	}
	if !malign.Malign(DefaultThresholds.Tau) {
		t.Fatal("malign dataset not flagged")
	}
}

func TestDiagnoseSkewFields(t *testing.T) {
	sd, err := DiagnoseSkew(skewDataset(1000, 50, true), "FK")
	if err != nil {
		t.Fatal(err)
	}
	if sd.FK != "FK" || len(sd.PerClass) != 2 {
		t.Fatalf("diagnostic shape: %+v", sd)
	}
	if sd.HY <= 0 || sd.HFK <= 0 {
		t.Fatal("entropies should be positive")
	}
	total := 0
	for _, cs := range sd.PerClass {
		total += cs.Count
		if cs.Count > 0 && cs.EffectiveTR <= 0 {
			t.Fatalf("class %d effective TR = %v", cs.Class, cs.EffectiveTR)
		}
	}
	if total != 1000 {
		t.Fatalf("class counts sum to %d", total)
	}
}

func TestDiagnoseSkewErrors(t *testing.T) {
	d := skewDataset(100, 10, false)
	if _, err := DiagnoseSkew(d, "Nope"); err == nil {
		t.Fatal("unknown FK accepted")
	}
	d.Target = "Nope"
	if _, err := DiagnoseSkew(d, "FK"); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestDiagnoseSkewOnNeedleAndThread(t *testing.T) {
	// The paper's malign construction: needle FK value carries one class,
	// the thread spreads the other class over n_R−1 values. The *thread*
	// class is the diffused one here; with both classes ~50/50 the H(Y)
	// guard would NOT trip, but the fine-grained diagnostic must.
	r := stats.NewRNG(9)
	nS, nR := 2000, 200
	attr := relational.NewTable("R")
	f := make([]int32, nR)
	f[0] = 0
	for i := 1; i < nR; i++ {
		f[i] = 1
	}
	attr.MustAddColumn(&relational.Column{Name: "F", Card: 2, Data: f})
	y := make([]int32, nS)
	fk := make([]int32, nS)
	for i := 0; i < nS; i++ {
		if r.Bernoulli(0.5) {
			y[i], fk[i] = 0, 0
		} else {
			y[i] = 1
			fk[i] = 1 + int32(r.IntN(nR-1))
		}
	}
	s := relational.NewTable("S")
	s.MustAddColumn(&relational.Column{Name: "Y", Card: 2, Data: y})
	s.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	d := &dataset.Dataset{Name: "NT", Entity: s, Target: "Y",
		Attrs: []dataset.AttributeTable{{Table: attr, FK: "FK", ClosedDomain: true}}}
	sd, err := DiagnoseSkew(d, "FK")
	if err != nil {
		t.Fatal(err)
	}
	// H(Y) ≈ 1 bit: the blunt guard does not trip.
	if sd.HY < EntropyGuardBits {
		t.Fatalf("H(Y) = %v should be above the blunt guard", sd.HY)
	}
	// But the thread class has ~1000 examples over ~199 effective values:
	// effective TR ≈ 5 < τ = 20 → malign.
	if !sd.Malign(DefaultThresholds.Tau) {
		t.Fatalf("needle-and-thread not flagged: min effective TR = %v", sd.MinEffectiveTR)
	}
	if math.Abs(sd.PerClass[1].EffectiveTR-5) > 2 {
		t.Fatalf("thread effective TR = %v, want ≈5", sd.PerClass[1].EffectiveTR)
	}
}
