package core

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// This file splits the advisor into its two natural halves: a one-time
// data scan (CollectStats) and a pure decision function over schema-level
// sufficient statistics (DecideFromStats). The paper's pitch is that the
// TR/ROR rules are a cheap, always-on check before feature selection — but
// Decide as originally written re-derived H(Y) and every per-table domain
// minimum on each call, an O(data) cost that dominates the O(1) rules. A
// service (and cmd/loadgen, which measures the service hot path) collects
// DatasetStats once per dataset and then answers decision requests from the
// cached statistics alone.

// AttrStats is the sufficient statistics of one attribute table: everything
// the TR and ROR rules inspect, and nothing else.
type AttrStats struct {
	// FK names the referencing foreign key; Attr the attribute table.
	FK, Attr string
	// NR is the attribute table's row count n_R (= the FK's domain size
	// |D_FK| under the KFK constraint).
	NR int
	// QRStar is min_F |D_F| over the table's feature columns (1 when the
	// table has no feature columns).
	QRStar int
	// ClosedDomain mirrors the dataset's declaration: false means the FK
	// cannot represent the foreign features and the join is never avoided.
	ClosedDomain bool
}

// DatasetStats is the advisor's complete view of a normalized dataset:
// entity-side counts, the target entropy feeding the Appendix D guard, and
// per-attribute-table statistics. Collect once, decide many times.
type DatasetStats struct {
	// Name is the dataset name (carried into Decision output and logs).
	Name string
	// NumRows is the entity table's row count n_S.
	NumRows int
	// TargetEntropy is H(Y) in bits over the entity rows.
	TargetEntropy float64
	// Attrs holds one entry per attribute table, in declaration order.
	Attrs []AttrStats
}

// CollectStats scans the dataset once and returns its sufficient
// statistics. This is the only advisor step that touches data values (the
// target column, for H(Y)) or column metadata. It is CollectStatsChunked at
// the default chunk size; the result is identical at any size.
func CollectStats(d *dataset.Dataset) (*DatasetStats, error) {
	return CollectStatsChunked(d, 0)
}

// CollectStatsChunked is CollectStats with the target scan executed through
// the streaming operator layer: the entropy counts accumulate over
// chunkSize-row chunks (relational.DefaultChunkSize when <= 0) via a
// relational.RowSource instead of one whole-column pass, so the advisor-side
// scan composes with out-of-core entity sources the same way the streamed
// sufficient-statistics paths do. Because Shannon entropy is a function of
// the class counts alone, the result is bit-identical to the unchunked scan
// at every chunk size (pinned by tests).
func CollectStatsChunked(d *dataset.Dataset, chunkSize int) (*DatasetStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	y := d.Entity.Column(d.Target)
	counts := make([]int, y.Card)
	src := relational.NewTableSource(d.Entity, chunkSize)
	yIdx := -1
	for i, ci := range src.Schema() {
		if ci.Name == d.Target {
			yIdx = i
			break
		}
	}
	for {
		ch, err := src.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		for _, v := range ch.Cols[yIdx] {
			counts[v]++
		}
	}
	s := &DatasetStats{
		Name:          d.Name,
		NumRows:       d.NumRows(),
		TargetEntropy: stats.EntropyCounts(counts),
		Attrs:         make([]AttrStats, 0, len(d.Attrs)),
	}
	for _, at := range d.Attrs {
		qrs := math.MaxInt
		for _, c := range at.Table.Columns() {
			if c.Card < qrs {
				qrs = c.Card
			}
		}
		if at.Table.NumCols() == 0 {
			qrs = 1
		}
		s.Attrs = append(s.Attrs, AttrStats{
			FK:           at.FK,
			Attr:         at.Table.Name,
			NR:           at.Table.NumRows(),
			QRStar:       qrs,
			ClosedDomain: at.ClosedDomain,
		})
	}
	return s, nil
}

// DecideFromStats evaluates the advisor's rules over pre-collected
// sufficient statistics, returning one Decision per attribute table in
// declaration order. It never touches data: this is the decision-service
// hot path, O(#attribute tables) arithmetic per call.
func (a *Advisor) DecideFromStats(s *DatasetStats) ([]Decision, error) {
	nTrain := int(a.trainFraction() * float64(s.NumRows))
	if nTrain <= 0 {
		return nil, fmt.Errorf("core: dataset %q leaves no training rows", s.Name)
	}
	th := a.thresholds()

	// Appendix D guard: refuse all avoidance under malign target skew.
	guardTripped := !a.DisableEntropyGuard && s.TargetEntropy < EntropyGuardBits

	decisions := make([]Decision, 0, len(s.Attrs))
	for _, at := range s.Attrs {
		dec := Decision{FK: at.FK, Attr: at.Attr, DFK: at.NR, QRStar: at.QRStar}
		if tr, err := TupleRatio(nTrain, at.NR); err == nil {
			dec.TR = tr
		}
		if ror, err := ROR(nTrain, dec.DFK, min(at.QRStar, dec.DFK), a.delta()); err == nil {
			dec.ROR = ror
		}
		switch {
		case !at.ClosedDomain:
			dec.Considered = false
			dec.Reason = "foreign key domain is not closed; FK cannot represent the foreign features"
		case guardTripped:
			dec.Considered = false
			dec.Reason = fmt.Sprintf("H(Y) below %.2g bits: conservative malign-skew guard (Appendix D)", EntropyGuardBits)
		default:
			dec.Considered = true
			switch a.Rule {
			case TRRule:
				dec.Avoid = dec.TR >= th.Tau
				if !dec.Avoid {
					dec.Reason = fmt.Sprintf("TR %.2f < τ %.2f", dec.TR, th.Tau)
				}
			case RORRule:
				dec.Avoid = dec.ROR <= th.Rho
				if !dec.Avoid {
					dec.Reason = fmt.Sprintf("ROR %.2f > ρ %.2f", dec.ROR, th.Rho)
				}
			default:
				return nil, fmt.Errorf("core: unknown rule %d", a.Rule)
			}
		}
		decisions = append(decisions, dec)
	}
	return decisions, nil
}
