package core

import (
	"reflect"
	"testing"
)

// TestDecideFromStatsMatchesDecide pins the refactor invariant: collecting
// sufficient statistics once and deciding from them must be observationally
// identical to the original single-pass Decide, across rules, thresholds,
// the entropy guard, and open-domain FKs.
func TestDecideFromStatsMatchesDecide(t *testing.T) {
	advisors := []*Advisor{
		{},
		{Rule: RORRule},
		{Thresholds: RelaxedThresholds, TrainFraction: 0.8},
		{DisableEntropyGuard: true},
	}
	for _, skewY := range []bool{false, true} {
		d := fixture(2000, 40, 400, skewY)
		stats, err := CollectStats(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, adv := range advisors {
			direct, err := adv.Decide(d)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := adv.DecideFromStats(stats)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct, cached) {
				t.Errorf("advisor %+v (skewY=%v): cached decisions diverge:\n%+v\n%+v", adv, skewY, direct, cached)
			}
		}
	}
}

func TestCollectStatsShape(t *testing.T) {
	d := fixture(2000, 40, 400, false)
	s, err := CollectStats(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != d.Name || s.NumRows != d.NumRows() || len(s.Attrs) != len(d.Attrs) {
		t.Fatalf("stats header = %+v", s)
	}
	if s.TargetEntropy <= 0 {
		t.Errorf("TargetEntropy = %v, want > 0 for a balanced target", s.TargetEntropy)
	}
	for i, at := range d.Attrs {
		got := s.Attrs[i]
		if got.FK != at.FK || got.Attr != at.Table.Name || got.NR != at.Table.NumRows() {
			t.Errorf("attr %d stats = %+v", i, got)
		}
		if got.QRStar < 1 {
			t.Errorf("attr %d QRStar = %d", i, got.QRStar)
		}
	}
}

func TestDecideFromStatsValidates(t *testing.T) {
	if _, err := (&Advisor{}).DecideFromStats(&DatasetStats{Name: "empty"}); err == nil {
		t.Error("zero-row stats did not error")
	}
	s := &DatasetStats{Name: "x", NumRows: 100, TargetEntropy: 1,
		Attrs: []AttrStats{{FK: "fk", Attr: "r", NR: 10, QRStar: 2, ClosedDomain: true}}}
	if _, err := (&Advisor{Rule: Rule(42)}).DecideFromStats(s); err == nil {
		t.Error("unknown rule did not error")
	}
}

// TestCollectStatsChunkedBitIdentical pins the chunked-scan refactor:
// because H(Y) is a function of the class counts alone, CollectStatsChunked
// must return a bit-identical DatasetStats (entropy float included) at every
// chunk size, including sizes larger than the table and the default.
func TestCollectStatsChunkedBitIdentical(t *testing.T) {
	for _, skewY := range []bool{false, true} {
		d := fixture(2000, 40, 400, skewY)
		want, err := CollectStats(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []int{1, 7, 500, 100000, 0} {
			got, err := CollectStatsChunked(d, cs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("chunk %d (skewY=%v): chunked stats diverge:\n%+v\n%+v", cs, skewY, want, got)
			}
		}
	}
}
