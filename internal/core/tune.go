package core

import (
	"fmt"
	"sort"
)

// ScatterPoint is one simulation outcome used to tune rule thresholds
// (Figure 4): the rule statistics of a configuration together with the
// measured increase in test error caused by avoiding the join there.
type ScatterPoint struct {
	// ROR is the worst-case risk of representation of the configuration.
	ROR float64
	// TR is its tuple ratio.
	TR float64
	// DeltaError is the measured test-error increase of NoJoin over
	// UseAll (asymmetric: negative values mean avoiding helped).
	DeltaError float64
}

// TuneThresholds derives rule thresholds from simulation scatter the way the
// paper does by inspection of Figure 4: ρ is the largest observed ROR such
// that every configuration with ROR ≤ ρ stays within the error tolerance,
// and τ is the smallest observed TR such that every configuration with
// TR ≥ τ stays within it. This encodes the conservatism principle — the
// thresholds admit no observed violation at all.
func TuneThresholds(points []ScatterPoint, tolerance float64) (Thresholds, error) {
	if len(points) == 0 {
		return Thresholds{}, fmt.Errorf("core: no scatter points to tune on")
	}
	if tolerance <= 0 {
		return Thresholds{}, fmt.Errorf("core: tolerance must be positive, got %v", tolerance)
	}
	// ρ: sort by ROR ascending; walk up while all points so far are safe.
	byROR := append([]ScatterPoint(nil), points...)
	sort.Slice(byROR, func(i, j int) bool { return byROR[i].ROR < byROR[j].ROR })
	rho := 0.0
	ok := false
	for _, p := range byROR {
		if p.DeltaError > tolerance {
			break
		}
		rho, ok = p.ROR, true
	}
	if !ok {
		return Thresholds{}, fmt.Errorf("core: no safe region exists for tolerance %v under the ROR rule", tolerance)
	}
	// τ: sort by TR descending; walk down while all points so far are safe.
	byTR := append([]ScatterPoint(nil), points...)
	sort.Slice(byTR, func(i, j int) bool { return byTR[i].TR > byTR[j].TR })
	tau := 0.0
	ok = false
	for _, p := range byTR {
		if p.DeltaError > tolerance {
			break
		}
		tau, ok = p.TR, true
	}
	if !ok {
		return Thresholds{}, fmt.Errorf("core: no safe region exists for tolerance %v under the TR rule", tolerance)
	}
	return Thresholds{Rho: rho, Tau: tau, Tolerance: tolerance}, nil
}
