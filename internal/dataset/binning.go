package dataset

import (
	"fmt"
	"math"
	"sort"

	"hamlet/internal/relational"
)

// The paper assumes all features are nominal; numeric features "are assumed
// to have been discretized to a finite set of categories, say, using
// binning" (§2.1 footnote 1), and its evaluation uses "a standard
// unsupervised binning technique (equal-length histograms)" (§5). This file
// provides that preprocessing step for users bringing numeric columns.

// EqualWidthBins discretizes a numeric series into the given number of
// equal-width bins over [min, max], returning a nominal column. Non-finite
// values are rejected; a constant series maps everything to bin 0.
func EqualWidthBins(name string, values []float64, bins int) (*relational.Column, error) {
	if bins < 1 {
		return nil, fmt.Errorf("dataset: need at least one bin, got %d", bins)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("dataset: binning an empty series")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: non-finite value at row %d", i)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	data := make([]int32, len(values))
	if lo == hi {
		return &relational.Column{Name: name, Card: bins, Data: data}, nil
	}
	width := (hi - lo) / float64(bins)
	for i, v := range values {
		b := int((v - lo) / width)
		if b >= bins { // v == hi lands exactly on the upper edge
			b = bins - 1
		}
		data[i] = int32(b)
	}
	return &relational.Column{Name: name, Card: bins, Data: data}, nil
}

// EqualFrequencyBins discretizes a numeric series into (approximately)
// equal-count bins by rank — the quantile alternative to equal-width
// histograms, useful for heavy-tailed features. Equal values always land in
// the same bin (that of their earliest rank).
func EqualFrequencyBins(name string, values []float64, bins int) (*relational.Column, error) {
	if bins < 1 {
		return nil, fmt.Errorf("dataset: need at least one bin, got %d", bins)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("dataset: binning an empty series")
	}
	order := make([]int, len(values))
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: non-finite value at row %d", i)
		}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
	data := make([]int32, len(values))
	n := len(values)
	prevV := math.NaN()
	prevBin := int32(0)
	for rank, idx := range order {
		b := int32(rank * bins / n)
		if values[idx] == prevV {
			b = prevBin
		}
		data[idx] = b
		prevV, prevBin = values[idx], b
	}
	return &relational.Column{Name: name, Card: bins, Data: data}, nil
}
