package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func TestEqualWidthBinsBasic(t *testing.T) {
	c, err := EqualWidthBins("x", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Card != 5 || c.Name != "x" {
		t.Fatalf("column = %+v", c)
	}
	want := []int32{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("bin[%d] = %d, want %d (all %v)", i, c.Data[i], want[i], c.Data)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualWidthBinsUpperEdge(t *testing.T) {
	c, err := EqualWidthBins("x", []float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Data[1] != 3 {
		t.Fatalf("max value should land in the last bin, got %d", c.Data[1])
	}
}

func TestEqualWidthBinsConstantSeries(t *testing.T) {
	c, err := EqualWidthBins("x", []float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("constant series should bin to 0")
		}
	}
}

func TestEqualWidthBinsErrors(t *testing.T) {
	if _, err := EqualWidthBins("x", []float64{1}, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := EqualWidthBins("x", nil, 3); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := EqualWidthBins("x", []float64{1, math.NaN()}, 3); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := EqualWidthBins("x", []float64{1, math.Inf(1)}, 3); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestEqualWidthBinsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.IntN(300)
		bins := 1 + rng.IntN(12)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*200 - 100
		}
		c, err := EqualWidthBins("x", vals, bins)
		if err != nil {
			return false
		}
		// All codes in range, and binning is monotone: vi ≤ vj ⇒ bin_i ≤ bin_j.
		for i := range vals {
			if c.Data[i] < 0 || int(c.Data[i]) >= bins {
				return false
			}
			for j := range vals {
				if vals[i] < vals[j] && c.Data[i] > c.Data[j] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualFrequencyBinsBalanced(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i * i) // heavily skewed
	}
	c, err := EqualFrequencyBins("x", vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, v := range c.Data {
		counts[v]++
	}
	for b, cnt := range counts {
		if cnt != 25 {
			t.Fatalf("bin %d has %d values, want 25 (%v)", b, cnt, counts)
		}
	}
}

func TestEqualFrequencyBinsTiesShareBin(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 2, 3, 4, 5}
	c, err := EqualFrequencyBins("x", vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := c.Data[0]
	for i := 1; i < 4; i++ {
		if c.Data[i] != first {
			t.Fatalf("tied values split across bins: %v", c.Data)
		}
	}
}

func TestEqualFrequencyBinsMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.IntN(200)
		bins := 1 + rng.IntN(8)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.IntN(30)) // many ties
		}
		c, err := EqualFrequencyBins("x", vals, bins)
		if err != nil {
			return false
		}
		for i := range vals {
			if c.Data[i] < 0 || int(c.Data[i]) >= bins {
				return false
			}
			for j := range vals {
				if vals[i] < vals[j] && c.Data[i] > c.Data[j] {
					return false
				}
				if vals[i] == vals[j] && c.Data[i] != c.Data[j] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualFrequencyBinsErrors(t *testing.T) {
	if _, err := EqualFrequencyBins("x", []float64{1}, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := EqualFrequencyBins("x", nil, 2); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := EqualFrequencyBins("x", []float64{math.NaN()}, 2); err == nil {
		t.Fatal("NaN accepted")
	}
}
