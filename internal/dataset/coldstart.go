package dataset

import (
	"fmt"

	"hamlet/internal/relational"
)

// Cold start (§2.1): closed FK domains are revised periodically; between
// revisions, entities referencing attribute-table rows that did not exist at
// training time (new employers, new movies) are routed to a reserved
// "Others" record. This file implements that standard practice so deployed
// models survive unseen RIDs: the attribute table gains one placeholder row
// whose features take a reserved "unknown" category, the FK domain grows by
// one, and incoming data maps unseen RIDs to it.

// OthersRID returns the RID of the reserved Others record for an attribute
// table prepared with AddOthersRecord: always the last row.
func OthersRID(attr *relational.Table) int32 {
	return int32(attr.NumRows() - 1)
}

// AddOthersRecord rewrites the dataset in place so the attribute table
// referenced by fkName carries a reserved Others record: every feature
// column of the table gains one category ("unknown", the new last code) and
// one row holding it, and the FK column's domain grows by one. Existing
// rows and codes are unchanged, so models trained before and after agree on
// all previously seen values. It is an error to call it twice for the same
// FK (detectable only by the caller; the table grows each time).
func AddOthersRecord(d *Dataset, fkName string) error {
	at := d.AttrByFK(fkName)
	if at == nil {
		return fmt.Errorf("dataset %q: no attribute table for FK %q", d.Name, fkName)
	}
	fk := d.Entity.Column(fkName)
	if fk == nil {
		return fmt.Errorf("dataset %q: FK column %q missing", d.Name, fkName)
	}
	// Rebuild the attribute table with card+1 columns and the Others row.
	rebuilt := relational.NewTable(at.Table.Name)
	for _, c := range at.Table.Columns() {
		data := make([]int32, c.Len()+1)
		copy(data, c.Data)
		data[c.Len()] = int32(c.Card) // the new "unknown" category
		if err := rebuilt.AddColumn(&relational.Column{Name: c.Name, Card: c.Card + 1, Data: data}); err != nil {
			return err
		}
	}
	at.Table = rebuilt
	fk.Card++
	return nil
}

// MapUnseenRIDs replaces every code in rids that falls outside the
// attribute table's pre-Others domain [0, othersRID) with othersRID. Use it
// on incoming (serving-time) foreign keys before prediction.
func MapUnseenRIDs(rids []int32, othersRID int32) {
	for i, v := range rids {
		if v < 0 || v >= othersRID {
			rids[i] = othersRID
		}
	}
}
