package dataset

import (
	"testing"
)

func TestAddOthersRecord(t *testing.T) {
	d := churn()
	attr := d.Attrs[0].Table
	origRows := attr.NumRows()
	origCards := make([]int, attr.NumCols())
	for i, c := range attr.Columns() {
		origCards[i] = c.Card
	}
	if err := AddOthersRecord(d, "EmployerID"); err != nil {
		t.Fatal(err)
	}
	attr = d.Attrs[0].Table
	if attr.NumRows() != origRows+1 {
		t.Fatalf("rows = %d, want %d", attr.NumRows(), origRows+1)
	}
	for i, c := range attr.Columns() {
		if c.Card != origCards[i]+1 {
			t.Fatalf("column %s card = %d, want %d", c.Name, c.Card, origCards[i]+1)
		}
		// The Others row holds the reserved unknown category.
		if c.Data[origRows] != int32(origCards[i]) {
			t.Fatalf("Others row of %s = %d, want %d", c.Name, c.Data[origRows], origCards[i])
		}
		// Existing rows untouched.
		for r := 0; r < origRows; r++ {
			if int(c.Data[r]) >= origCards[i] {
				t.Fatalf("existing row %d of %s changed", r, c.Name)
			}
		}
	}
	// The FK domain grew and the dataset still validates.
	if d.Entity.Column("EmployerID").Card != origRows+1 {
		t.Fatalf("FK card = %d", d.Entity.Column("EmployerID").Card)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if OthersRID(attr) != int32(origRows) {
		t.Fatalf("OthersRID = %d", OthersRID(attr))
	}
}

func TestAddOthersRecordJoinStillWorks(t *testing.T) {
	d := churn()
	if err := AddOthersRecord(d, "EmployerID"); err != nil {
		t.Fatal(err)
	}
	// Route one entity row to the Others record and materialize.
	others := OthersRID(d.Attrs[0].Table)
	d.Entity.Column("EmployerID").Data[0] = others
	m, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	ci := m.FeatureIndex("Country")
	if m.Features[ci].Data[0] != int32(m.Features[ci].Card-1) {
		t.Fatal("Others row should gather the reserved unknown category")
	}
}

func TestAddOthersRecordErrors(t *testing.T) {
	d := churn()
	if err := AddOthersRecord(d, "Nope"); err == nil {
		t.Fatal("unknown FK accepted")
	}
}

func TestMapUnseenRIDs(t *testing.T) {
	rids := []int32{0, 3, 4, 99, -1, 2}
	MapUnseenRIDs(rids, 4)
	want := []int32{0, 3, 4, 4, 4, 2}
	for i := range want {
		if rids[i] != want[i] {
			t.Fatalf("rids = %v, want %v", rids, want)
		}
	}
}
