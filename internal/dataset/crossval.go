package dataset

import (
	"fmt"

	"hamlet/internal/stats"
)

// KFold is k-fold cross-validation, the alternative to holdout validation
// the paper mentions in §2.2 for wrapper search. The n rows are shuffled and
// partitioned into k folds; fold i serves as the validation set of round i
// while the remaining folds train.
type KFold struct {
	folds [][]int
}

// NewKFold shuffles [0, n) and cuts it into k folds of near-equal size
// (the first n mod k folds get one extra row).
func NewKFold(n, k int, rng *stats.RNG) (*KFold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k-fold needs k ≥ 2, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("dataset: %d rows cannot fill %d folds", n, k)
	}
	perm := rng.Perm(n)
	cv := &KFold{folds: make([][]int, k)}
	base := n / k
	extra := n % k
	at := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		cv.folds[i] = perm[at : at+size]
		at += size
	}
	return cv, nil
}

// K returns the number of folds.
func (cv *KFold) K() int { return len(cv.folds) }

// Fold returns round i's training and validation row-index sets. The
// returned training slice is freshly allocated; the validation slice aliases
// the fold.
func (cv *KFold) Fold(i int) (train, val []int, err error) {
	if i < 0 || i >= len(cv.folds) {
		return nil, nil, fmt.Errorf("dataset: fold %d out of range [0,%d)", i, len(cv.folds))
	}
	val = cv.folds[i]
	train = make([]int, 0, capSum(cv.folds)-len(val))
	for j, f := range cv.folds {
		if j != i {
			train = append(train, f...)
		}
	}
	return train, val, nil
}

func capSum(folds [][]int) int {
	n := 0
	for _, f := range folds {
		n += len(f)
	}
	return n
}

// CrossValidate computes the k-fold cross-validation error of a scoring
// callback: score(train, val) must return the validation error of a model
// trained on the train rows of m. The result is the average over folds.
func (cv *KFold) CrossValidate(m *Design, score func(train, val *Design) (float64, error)) (float64, error) {
	total := 0.0
	for i := 0; i < cv.K(); i++ {
		trIdx, vaIdx, err := cv.Fold(i)
		if err != nil {
			return 0, err
		}
		e, err := score(m.SelectRows(trIdx), m.SelectRows(vaIdx))
		if err != nil {
			return 0, fmt.Errorf("dataset: fold %d: %w", i, err)
		}
		total += e
	}
	return total / float64(cv.K()), nil
}
