package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func TestKFoldPartition(t *testing.T) {
	cv, err := NewKFold(103, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if cv.K() != 5 {
		t.Fatalf("K = %d", cv.K())
	}
	seen := make([]bool, 103)
	sizes := make([]int, 5)
	for i := 0; i < 5; i++ {
		_, val, err := cv.Fold(i)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = len(val)
		for _, r := range val {
			if seen[r] {
				t.Fatalf("row %d in two folds", r)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("row %d missing", r)
		}
	}
	// 103 = 3 folds of 21 + 2 of 20.
	if sizes[0] != 21 || sizes[1] != 21 || sizes[2] != 21 || sizes[3] != 20 || sizes[4] != 20 {
		t.Fatalf("fold sizes = %v", sizes)
	}
}

func TestKFoldTrainValDisjoint(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 20 + rng.IntN(200)
		k := 2 + rng.IntN(5)
		cv, err := NewKFold(n, k, rng)
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			train, val, err := cv.Fold(i)
			if err != nil {
				return false
			}
			if len(train)+len(val) != n {
				return false
			}
			inVal := make(map[int]bool, len(val))
			for _, r := range val {
				inVal[r] = true
			}
			for _, r := range train {
				if inVal[r] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKFoldErrors(t *testing.T) {
	rng := stats.NewRNG(2)
	if _, err := NewKFold(10, 1, rng); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewKFold(3, 5, rng); err == nil {
		t.Fatal("n<k accepted")
	}
	cv, _ := NewKFold(10, 2, rng)
	if _, _, err := cv.Fold(-1); err == nil {
		t.Fatal("negative fold accepted")
	}
	if _, _, err := cv.Fold(2); err == nil {
		t.Fatal("out-of-range fold accepted")
	}
}

func TestCrossValidateAverages(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	cv, err := NewKFold(m.NumRows(), 4, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	got, err := cv.CrossValidate(m, func(train, val *Design) (float64, error) {
		calls++
		return float64(calls), nil // 1, 2, 3, 4 → mean 2.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("cv error = %v after %d calls", got, calls)
	}
}

func TestCrossValidatePropagatesErrors(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	cv, _ := NewKFold(m.NumRows(), 2, stats.NewRNG(4))
	_, err := cv.CrossValidate(m, func(train, val *Design) (float64, error) {
		return 0, errSentinel
	})
	if err == nil {
		t.Fatal("callback error swallowed")
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }
