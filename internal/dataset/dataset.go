// Package dataset provides Hamlet-Go's normalized-dataset abstraction: an
// entity table S(SID, Y, X_S, FK_1..FK_k) plus attribute tables R_i(RID_i,
// X_Ri) connected by key–foreign-key references, exactly the schema setting
// of the paper's §2.1. It materializes the design matrices that the ML and
// feature-selection layers consume under the paper's four join plans
// (JoinAll, JoinOpt, NoJoins, JoinAllNoFK), performs the 50/25/25 holdout
// split used throughout the evaluation, and one-hot encodes nominal features
// for the linear models.
package dataset

import (
	"fmt"

	"hamlet/internal/relational"
)

// AttributeTable pairs an attribute table R_i with the entity-table FK that
// references it.
type AttributeTable struct {
	// Table is R_i; its row index is the primary key RID_i.
	Table *relational.Table
	// FK names the referencing column in the entity table.
	FK string
	// ClosedDomain records whether the FK's domain is closed with respect
	// to the prediction task (§2.1). Open-domain FKs (e.g. Expedia's
	// SearchID) are never usable as features and never considered by the
	// join-avoidance rules; their joins are always performed.
	ClosedDomain bool
}

// Dataset is a normalized dataset: the entity table with target and home
// features, plus k attribute tables reachable through foreign keys.
type Dataset struct {
	// Name identifies the dataset (e.g. "Walmart").
	Name string
	// Entity is S. It must contain Target, every feature in HomeFeatures,
	// and every FK column named by Attrs.
	Entity *relational.Table
	// Target names the label column Y in the entity table.
	Target string
	// HomeFeatures names the X_S columns in the entity table.
	HomeFeatures []string
	// Attrs lists the attribute tables R_1..R_k in declaration order.
	Attrs []AttributeTable
}

// Validate checks structural integrity: the target and home features exist,
// every FK exists and satisfies referential integrity against its attribute
// table, and all tables have valid domains.
func (d *Dataset) Validate() error {
	if d.Entity == nil {
		return fmt.Errorf("dataset %q: nil entity table", d.Name)
	}
	if err := d.Entity.Validate(); err != nil {
		return fmt.Errorf("dataset %q: %w", d.Name, err)
	}
	if d.Entity.Column(d.Target) == nil {
		return fmt.Errorf("dataset %q: target column %q missing", d.Name, d.Target)
	}
	for _, f := range d.HomeFeatures {
		if d.Entity.Column(f) == nil {
			return fmt.Errorf("dataset %q: home feature %q missing", d.Name, f)
		}
		if f == d.Target {
			return fmt.Errorf("dataset %q: target %q listed as a home feature", d.Name, f)
		}
	}
	for i, at := range d.Attrs {
		if at.Table == nil {
			return fmt.Errorf("dataset %q: attribute table %d is nil", d.Name, i)
		}
		if err := at.Table.Validate(); err != nil {
			return fmt.Errorf("dataset %q: %w", d.Name, err)
		}
		fk := d.Entity.Column(at.FK)
		if fk == nil {
			return fmt.Errorf("dataset %q: FK column %q missing from entity table", d.Name, at.FK)
		}
		if err := relational.CheckRef(fk, at.Table); err != nil {
			return fmt.Errorf("dataset %q: %w", d.Name, err)
		}
	}
	return nil
}

// NumClasses returns the cardinality of the target.
func (d *Dataset) NumClasses() int {
	c := d.Entity.Column(d.Target)
	if c == nil {
		return 0
	}
	return c.Card
}

// NumRows returns the number of entity-table rows (labeled examples).
func (d *Dataset) NumRows() int { return d.Entity.NumRows() }

// AttrByFK returns the attribute table referenced by the named FK, or nil.
func (d *Dataset) AttrByFK(fk string) *AttributeTable {
	for i := range d.Attrs {
		if d.Attrs[i].FK == fk {
			return &d.Attrs[i]
		}
	}
	return nil
}

// Feature is one column of a design matrix: a nominal feature with its
// provenance recorded so experiment reports can attribute selected features
// to base tables.
type Feature struct {
	// Name is the feature's column name.
	Name string
	// Card is its domain size.
	Card int
	// Data holds one category code per example.
	Data []int32
	// Source names the base table the feature came from ("S" for entity
	// home features and FKs, or the attribute table's name).
	Source string
	// IsFK marks foreign-key columns used as features.
	IsFK bool
}

// Design is a single-table design matrix: the features under some join plan
// plus the label column. It is the input to every classifier and feature
// selection method in Hamlet-Go.
type Design struct {
	// Features holds the candidate feature columns, X.
	Features []Feature
	// Y holds the labels, one per example.
	Y []int32
	// NumClasses is the cardinality of the target.
	NumClasses int
}

// NumRows returns the number of examples.
func (m *Design) NumRows() int { return len(m.Y) }

// NumFeatures returns the number of candidate features.
func (m *Design) NumFeatures() int { return len(m.Features) }

// FeatureIndex returns the index of the named feature, or -1.
func (m *Design) FeatureIndex(name string) int {
	for i := range m.Features {
		if m.Features[i].Name == name {
			return i
		}
	}
	return -1
}

// FeatureNames returns the feature names in order.
func (m *Design) FeatureNames() []string {
	names := make([]string, len(m.Features))
	for i := range m.Features {
		names[i] = m.Features[i].Name
	}
	return names
}

// Subset returns a view of the design matrix restricted to the feature
// indices in keep (shared column storage, same labels).
func (m *Design) Subset(keep []int) *Design {
	out := &Design{Y: m.Y, NumClasses: m.NumClasses}
	out.Features = make([]Feature, len(keep))
	for j, i := range keep {
		out.Features[j] = m.Features[i]
	}
	return out
}

// SelectRows materializes a new design matrix containing only the rows at the
// given indices. Feature data is copied.
func (m *Design) SelectRows(idx []int) *Design {
	out := &Design{NumClasses: m.NumClasses}
	out.Y = make([]int32, len(idx))
	for j, i := range idx {
		out.Y[j] = m.Y[i]
	}
	out.Features = make([]Feature, len(m.Features))
	for fi := range m.Features {
		src := &m.Features[fi]
		data := make([]int32, len(idx))
		for j, i := range idx {
			data[j] = src.Data[i]
		}
		out.Features[fi] = Feature{Name: src.Name, Card: src.Card, Data: data, Source: src.Source, IsFK: src.IsFK}
	}
	return out
}
