package dataset

import (
	"testing"

	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// churn builds the paper's running example dataset:
// Customers(Churn, Age, Gender, EmployerID) ⋈ Employers(Country, Revenue).
func churn() *Dataset {
	employers := relational.NewTable("Employers")
	employers.MustAddColumn(&relational.Column{Name: "Country", Card: 3, Data: []int32{0, 1, 2, 0}})
	employers.MustAddColumn(&relational.Column{Name: "Revenue", Card: 2, Data: []int32{1, 0, 1, 1}})
	customers := relational.NewTable("Customers")
	customers.MustAddColumn(&relational.Column{Name: "Churn", Card: 2, Data: []int32{0, 1, 1, 0, 1, 0, 1, 0}})
	customers.MustAddColumn(&relational.Column{Name: "Age", Card: 4, Data: []int32{0, 1, 2, 3, 1, 2, 0, 3}})
	customers.MustAddColumn(&relational.Column{Name: "Gender", Card: 2, Data: []int32{0, 1, 0, 1, 0, 1, 0, 1}})
	customers.MustAddColumn(&relational.Column{Name: "EmployerID", Card: 4, Data: []int32{0, 1, 2, 3, 1, 0, 2, 3}})
	return &Dataset{
		Name:         "Churn",
		Entity:       customers,
		Target:       "Churn",
		HomeFeatures: []string{"Age", "Gender"},
		Attrs: []AttributeTable{
			{Table: employers, FK: "EmployerID", ClosedDomain: true},
		},
	}
}

func TestValidateGood(t *testing.T) {
	if err := churn().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dataset)
	}{
		{"nil entity", func(d *Dataset) { d.Entity = nil }},
		{"missing target", func(d *Dataset) { d.Target = "Nope" }},
		{"missing home feature", func(d *Dataset) { d.HomeFeatures = []string{"Nope"} }},
		{"target as feature", func(d *Dataset) { d.HomeFeatures = []string{"Churn"} }},
		{"missing FK", func(d *Dataset) { d.Attrs[0].FK = "Nope" }},
		{"nil attribute table", func(d *Dataset) { d.Attrs[0].Table = nil }},
		{"dangling FK", func(d *Dataset) { d.Entity.Column("EmployerID").Data[0] = 9 }},
	}
	for _, tc := range cases {
		d := churn()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken dataset", tc.name)
		}
	}
}

func TestBasicAccessors(t *testing.T) {
	d := churn()
	if d.NumClasses() != 2 {
		t.Fatalf("classes = %d", d.NumClasses())
	}
	if d.NumRows() != 8 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	if d.AttrByFK("EmployerID") == nil || d.AttrByFK("Nope") != nil {
		t.Fatal("AttrByFK broken")
	}
}

func TestJoinAllPlanMaterialize(t *testing.T) {
	d := churn()
	m, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	// Age, Gender, EmployerID(FK), Country, Revenue.
	want := []string{"Age", "Gender", "EmployerID", "Country", "Revenue"}
	got := m.FeatureNames()
	if len(got) != len(want) {
		t.Fatalf("features = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Row 4: EmployerID 1 → Country 1, Revenue 0.
	if m.Features[3].Data[4] != 1 || m.Features[4].Data[4] != 0 {
		t.Fatal("foreign features gathered incorrectly")
	}
	if !m.Features[2].IsFK || m.Features[2].Source != "S" || m.Features[3].Source != "Employers" {
		t.Fatal("provenance wrong")
	}
	if m.NumClasses != 2 || m.NumRows() != 8 {
		t.Fatal("design shape wrong")
	}
}

func TestNoJoinsPlan(t *testing.T) {
	d := churn()
	m, err := d.Materialize(d.NoJoinsPlan())
	if err != nil {
		t.Fatal(err)
	}
	got := m.FeatureNames()
	want := []string{"Age", "Gender", "EmployerID"}
	if len(got) != len(want) {
		t.Fatalf("NoJoins features = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature[%d] = %q", i, got[i])
		}
	}
}

func TestJoinAllNoFKPlan(t *testing.T) {
	d := churn()
	m, err := d.Materialize(d.JoinAllNoFKPlan())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Features {
		if f.IsFK {
			t.Fatal("JoinAllNoFK must drop FK features")
		}
	}
	if m.FeatureIndex("Country") < 0 || m.FeatureIndex("Revenue") < 0 {
		t.Fatal("JoinAllNoFK must still join foreign features")
	}
}

func TestOpenDomainFKAlwaysJoinedNeverFeature(t *testing.T) {
	d := churn()
	d.Attrs[0].ClosedDomain = false
	// NoJoins must still join the open-domain table.
	m, err := d.Materialize(d.NoJoinsPlan())
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureIndex("Country") < 0 {
		t.Fatal("open-domain attribute table must be joined under NoJoins")
	}
	if m.FeatureIndex("EmployerID") >= 0 {
		t.Fatal("open-domain FK must never be a feature")
	}
}

func TestMaterializeUnknownFKs(t *testing.T) {
	d := churn()
	if _, err := d.Materialize(Plan{JoinFKs: []string{"Nope"}}); err == nil {
		t.Fatal("unknown join FK accepted")
	}
	if _, err := d.Materialize(Plan{DropFKs: []string{"Nope"}}); err == nil {
		t.Fatal("unknown drop FK accepted")
	}
}

func TestMaterializeMatchesMaterializeVia(t *testing.T) {
	d := churn()
	for _, p := range []Plan{d.JoinAllPlan(), d.NoJoinsPlan(), d.JoinAllNoFKPlan()} {
		a, err := d.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.MaterializeVia(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Features) != len(b.Features) {
			t.Fatalf("feature counts differ: %v vs %v", a.FeatureNames(), b.FeatureNames())
		}
		for i := range a.Features {
			fa, fb := a.Features[i], b.Features[i]
			if fa.Name != fb.Name || fa.Card != fb.Card {
				t.Fatalf("feature %d schema differs: %+v vs %+v", i, fa, fb)
			}
			for r := range fa.Data {
				if fa.Data[r] != fb.Data[r] {
					t.Fatalf("feature %q row %d differs", fa.Name, r)
				}
			}
		}
	}
}

func TestDesignSubsetAndSelectRows(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	sub := m.Subset([]int{0, 2})
	if sub.NumFeatures() != 2 || sub.Features[1].Name != "EmployerID" {
		t.Fatalf("subset features = %v", sub.FeatureNames())
	}
	rows := m.SelectRows([]int{1, 3})
	if rows.NumRows() != 2 || rows.Y[0] != 1 || rows.Y[1] != 0 {
		t.Fatal("SelectRows labels wrong")
	}
	rows.Features[0].Data[0] = 3
	if m.Features[0].Data[1] == 3 && m.Features[0].Data[1] != 1 {
		t.Fatal("SelectRows must copy feature data")
	}
}

func TestSplitPartition(t *testing.T) {
	rng := stats.NewRNG(1)
	s, err := DefaultSplit(1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train) != 500 || len(s.Validation) != 250 || len(s.Test) != 250 {
		t.Fatalf("split sizes = %d/%d/%d", len(s.Train), len(s.Validation), len(s.Test))
	}
	seen := make([]bool, 1000)
	for _, part := range [][]int{s.Train, s.Validation, s.Test} {
		for _, i := range part {
			if seen[i] {
				t.Fatalf("row %d in two parts", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("row %d missing from split", i)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	rng := stats.NewRNG(2)
	if _, err := DefaultSplit(0, rng); err == nil {
		t.Fatal("zero-row split accepted")
	}
	if _, err := NewSplit(100, [3]float64{0.5, 0.6, 0.3}, rng); err == nil {
		t.Fatal("fractions summing > 1 accepted")
	}
	if _, err := NewSplit(100, [3]float64{0.5, -0.25, 0.75}, rng); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := NewSplit(2, DefaultFractions, rng); err == nil {
		t.Fatal("split leaving empty part accepted")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, _ := DefaultSplit(100, stats.NewRNG(7))
	b, _ := DefaultSplit(100, stats.NewRNG(7))
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("same-seed splits differ")
		}
	}
}

func TestSplitApply(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	s, err := NewSplit(m.NumRows(), [3]float64{0.5, 0.25, 0.25}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, va, te := s.Apply(m)
	if tr.NumRows()+va.NumRows()+te.NumRows() != m.NumRows() {
		t.Fatal("Apply lost rows")
	}
	if tr.NumFeatures() != m.NumFeatures() {
		t.Fatal("Apply lost features")
	}
}

func TestOneHotEncoding(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	// Encode Age (card 4 → 3 dims) and Gender (card 2 → 1 dim).
	e := NewOneHot(m, []int{0, 1})
	if e.Dims != 4 {
		t.Fatalf("dims = %d, want 4", e.Dims)
	}
	row := make([]float64, e.Dims)
	// Row 0: Age=0 → [1,0,0]; Gender=0 → [1].
	e.Row(0, row)
	want := []float64{1, 0, 0, 1}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row0 = %v", row)
		}
	}
	// Row 3: Age=3 (last category → zeros); Gender=1 (last → zero).
	e.Row(3, row)
	for i, v := range row {
		if v != 0 {
			t.Fatalf("last-category encoding nonzero at %d: %v", i, row)
		}
	}
	mat := e.Matrix()
	if len(mat) != m.NumRows() || len(mat[0]) != e.Dims {
		t.Fatal("Matrix shape wrong")
	}
}

func TestVCDimensionLinear(t *testing.T) {
	d := churn()
	m, _ := d.Materialize(d.JoinAllPlan())
	// All 5 features: 1 + (4-1)+(2-1)+(4-1)+(3-1)+(2-1) = 1+3+1+3+2+1 = 11.
	all := []int{0, 1, 2, 3, 4}
	if v := VCDimensionLinear(m, all); v != 11 {
		t.Fatalf("VC dim = %d, want 11", v)
	}
	if v := VCDimensionLinear(m, nil); v != 1 {
		t.Fatalf("VC dim of empty set = %d, want 1", v)
	}
}
