package dataset

// OneHot encodes a feature subset of a design matrix into dense float64 rows
// using the paper's §3.2 recoding: a nominal feature F becomes a 0/1 vector
// with |D_F|−1 dimensions, the last category mapping to the all-zero vector.
// This is the representation under which the VC dimension of Naive Bayes and
// logistic regression is 1 + Σ_F (|D_F|−1), the expression the ROR uses.
type OneHot struct {
	// Dims is the total encoded dimensionality (without intercept).
	Dims int
	// offsets[j] is the first output dimension of feature j.
	offsets []int
	// cards[j] is the cardinality of feature j.
	cards []int
	// features indexes into the source design's feature columns.
	features []int
	src      *Design
}

// NewOneHot prepares an encoder for the given feature indices of m.
func NewOneHot(m *Design, featureIdx []int) *OneHot {
	e := &OneHot{src: m, features: featureIdx}
	e.offsets = make([]int, len(featureIdx))
	e.cards = make([]int, len(featureIdx))
	dims := 0
	for j, fi := range featureIdx {
		e.offsets[j] = dims
		e.cards[j] = m.Features[fi].Card
		dims += m.Features[fi].Card - 1
	}
	e.Dims = dims
	return e
}

// Row writes the encoded representation of example i into dst, which must
// have length Dims; it returns dst. Positions are 1 for the example's
// category (if not the last) and 0 elsewhere.
func (e *OneHot) Row(i int, dst []float64) []float64 {
	for k := range dst {
		dst[k] = 0
	}
	for j, fi := range e.features {
		v := int(e.src.Features[fi].Data[i])
		if v < e.cards[j]-1 {
			dst[e.offsets[j]+v] = 1
		}
	}
	return dst
}

// Matrix materializes the full encoded matrix, one row per example. Intended
// for tests and small inputs; the linear models stream rows instead.
func (e *OneHot) Matrix() [][]float64 {
	n := e.src.NumRows()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = e.Row(i, make([]float64, e.Dims))
	}
	return out
}

// VCDimensionLinear returns 1 + Σ_F (|D_F|−1) over the given feature indices:
// the VC dimension of a "linear" classifier (Naive Bayes, logistic
// regression) on those nominal features under the binary recoding (§3.2).
func VCDimensionLinear(m *Design, featureIdx []int) int {
	v := 1
	for _, fi := range featureIdx {
		v += m.Features[fi].Card - 1
	}
	return v
}
