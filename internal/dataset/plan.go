package dataset

import (
	"fmt"

	"hamlet/internal/obs"
	"hamlet/internal/relational"
)

// Materialization instrumentation: designs built, rows and cells gathered
// into design matrices, and the per-design row-count distribution.
var (
	materializeCount = obs.C("dataset.materializations")
	materializeRows  = obs.C("dataset.rows_materialized")
	materializeCells = obs.C("dataset.cells_materialized")
	materializeHist  = obs.H("dataset.design_rows")
)

// Plan describes which attribute-table joins to perform and whether
// closed-domain foreign keys are kept as features, i.e. one point in the
// paper's comparison space (JoinAll, JoinOpt, NoJoins, JoinAllNoFK, and the
// per-subset plans of Figure 8(A)).
type Plan struct {
	// JoinFKs lists the FKs whose attribute tables are joined (their
	// foreign features enter the design matrix). FKs not listed are
	// avoided: their X_R never enters, and the FK column itself represents
	// the attribute table (if the FK has a closed domain).
	JoinFKs []string
	// DropFKs lists closed-domain FK columns to exclude from the feature
	// set entirely (the paper's JoinAllNoFK ablation). Open-domain FKs are
	// always excluded regardless.
	DropFKs []string
}

// contains reports membership of name in names.
func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// JoinAllPlan joins every attribute table and keeps closed-domain FKs: the
// analyst's default that the paper calls JoinAll.
func (d *Dataset) JoinAllPlan() Plan {
	p := Plan{}
	for _, at := range d.Attrs {
		p.JoinFKs = append(p.JoinFKs, at.FK)
	}
	return p
}

// NoJoinsPlan avoids every avoidable join. Attribute tables referenced by
// open-domain FKs are still joined, because their FK cannot act as a
// representative feature (the rule's precondition fails).
func (d *Dataset) NoJoinsPlan() Plan {
	p := Plan{}
	for _, at := range d.Attrs {
		if !at.ClosedDomain {
			p.JoinFKs = append(p.JoinFKs, at.FK)
		}
	}
	return p
}

// JoinAllNoFKPlan joins every attribute table but drops all closed-domain FK
// features: the paper's Figure 8(C) ablation modeling analysts who discard
// "uninterpretable" ID features.
func (d *Dataset) JoinAllNoFKPlan() Plan {
	p := d.JoinAllPlan()
	for _, at := range d.Attrs {
		if at.ClosedDomain {
			p.DropFKs = append(p.DropFKs, at.FK)
		}
	}
	return p
}

// Materialize builds the design matrix for the given plan: home features
// first, then (usable) FK features, then foreign features of each joined
// attribute table, in declaration order. It validates the plan's FKs.
func (d *Dataset) Materialize(p Plan) (*Design, error) {
	y := d.Entity.Column(d.Target)
	if y == nil {
		return nil, fmt.Errorf("dataset %q: target %q missing", d.Name, d.Target)
	}
	for _, fk := range p.JoinFKs {
		if d.AttrByFK(fk) == nil {
			return nil, fmt.Errorf("dataset %q: plan joins unknown FK %q", d.Name, fk)
		}
	}
	for _, fk := range p.DropFKs {
		if d.AttrByFK(fk) == nil {
			return nil, fmt.Errorf("dataset %q: plan drops unknown FK %q", d.Name, fk)
		}
	}
	out := &Design{NumClasses: y.Card, Y: y.Data}
	for _, name := range d.HomeFeatures {
		c := d.Entity.Column(name)
		out.Features = append(out.Features, Feature{Name: c.Name, Card: c.Card, Data: c.Data, Source: "S"})
	}
	for _, at := range d.Attrs {
		if at.ClosedDomain && !contains(p.DropFKs, at.FK) {
			fk := d.Entity.Column(at.FK)
			out.Features = append(out.Features, Feature{Name: fk.Name, Card: fk.Card, Data: fk.Data, Source: "S", IsFK: true})
		}
	}
	for _, at := range d.Attrs {
		if !contains(p.JoinFKs, at.FK) {
			continue
		}
		fk := d.Entity.Column(at.FK)
		for _, rc := range at.Table.Columns() {
			gathered := make([]int32, fk.Len())
			for i, rid := range fk.Data {
				gathered[i] = rc.Data[rid]
			}
			out.Features = append(out.Features, Feature{Name: rc.Name, Card: rc.Card, Data: gathered, Source: at.Table.Name})
		}
	}
	materializeCount.Inc()
	materializeRows.Add(int64(out.NumRows()))
	materializeCells.Add(int64(out.NumRows()) * int64(out.NumFeatures()))
	materializeHist.Observe(int64(out.NumRows()))
	return out, nil
}

// MaterializeVia builds the same design matrix as Materialize but goes
// through the generic relational.JoinAll operator instead of the fused
// gather; it exists so tests can cross-check the two paths. Feature order
// matches Materialize.
func (d *Dataset) MaterializeVia(p Plan) (*Design, error) {
	var fks []relational.ForeignKey
	attrs := make(map[string]*relational.Table)
	for _, at := range d.Attrs {
		if contains(p.JoinFKs, at.FK) {
			fks = append(fks, relational.ForeignKey{Column: at.FK, Refs: at.Table.Name, ClosedDomain: at.ClosedDomain})
			attrs[at.Table.Name] = at.Table
		}
	}
	joined, err := relational.JoinAll(d.Entity, fks, attrs)
	if err != nil {
		return nil, err
	}
	y := joined.Column(d.Target)
	out := &Design{NumClasses: y.Card, Y: y.Data}
	appendCol := func(name, source string, isFK bool) error {
		c := joined.Column(name)
		if c == nil {
			return fmt.Errorf("dataset %q: column %q missing after join", d.Name, name)
		}
		out.Features = append(out.Features, Feature{Name: c.Name, Card: c.Card, Data: c.Data, Source: source, IsFK: isFK})
		return nil
	}
	for _, name := range d.HomeFeatures {
		if err := appendCol(name, "S", false); err != nil {
			return nil, err
		}
	}
	for _, at := range d.Attrs {
		if at.ClosedDomain && !contains(p.DropFKs, at.FK) {
			if err := appendCol(at.FK, "S", true); err != nil {
				return nil, err
			}
		}
	}
	for _, at := range d.Attrs {
		if !contains(p.JoinFKs, at.FK) {
			continue
		}
		for _, rc := range at.Table.Columns() {
			if err := appendCol(rc.Name, at.Table.Name, false); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
