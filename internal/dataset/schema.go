package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hamlet/internal/relational"
)

// SchemaSpec is the on-disk description of a normalized dataset: which CSV
// holds the entity table, the target column, and the KFK references. It is
// the declarative input that lets the hamlet CLI run the decision rules on
// user data.
//
// Example (walmart.json):
//
//	{
//	  "name": "Walmart",
//	  "entity": "sales.csv",
//	  "target": "SalesLevel",
//	  "homeFeatures": ["Dept"],
//	  "numericBins": 10,
//	  "attributes": [
//	    {"table": "indicators.csv", "fk": "IndicatorID", "closedDomain": true},
//	    {"table": "stores.csv",     "fk": "StoreID",     "closedDomain": true}
//	  ]
//	}
//
// Foreign-key columns must contain the attribute table's key values; rows
// are matched by value (the attribute CSV's key column must share the FK's
// column name), then re-encoded to RID indices.
type SchemaSpec struct {
	// Name labels the dataset.
	Name string `json:"name"`
	// Entity is the entity table's CSV path, relative to the spec file.
	Entity string `json:"entity"`
	// Target names the label column in the entity CSV.
	Target string `json:"target"`
	// HomeFeatures lists the X_S columns in the entity CSV.
	HomeFeatures []string `json:"homeFeatures"`
	// NumericBins, when positive, bins all-numeric columns into this many
	// equal-width categories (the paper's preprocessing).
	NumericBins int `json:"numericBins"`
	// Attributes lists the KFK references.
	Attributes []AttrSpec `json:"attributes"`
}

// AttrSpec describes one attribute table.
type AttrSpec struct {
	// Table is the attribute table's CSV path, relative to the spec file.
	Table string `json:"table"`
	// FK names both the FK column in the entity CSV and the key column in
	// the attribute CSV.
	FK string `json:"fk"`
	// ClosedDomain declares whether the FK domain is closed w.r.t. the
	// prediction task (§2.1) — only such FKs are usable as features.
	ClosedDomain bool `json:"closedDomain"`
}

// ParseSchemaSpec decodes a spec from JSON.
func ParseSchemaSpec(r io.Reader) (*SchemaSpec, error) {
	var spec SchemaSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("dataset: parsing schema spec: %w", err)
	}
	if spec.Name == "" || spec.Entity == "" || spec.Target == "" {
		return nil, fmt.Errorf("dataset: schema spec needs name, entity, and target")
	}
	return &spec, nil
}

// LoadDataset reads the spec file and materializes the dataset from its
// CSVs. Paths inside the spec resolve relative to the spec file's directory.
func LoadDataset(specPath string) (*Dataset, error) {
	f, err := os.Open(specPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := ParseSchemaSpec(f)
	if err != nil {
		return nil, err
	}
	return spec.Load(filepath.Dir(specPath))
}

// Load materializes the dataset, resolving CSV paths against dir.
func (spec *SchemaSpec) Load(dir string) (*Dataset, error) {
	opts := relational.ReadCSVOptions{NumericBins: spec.NumericBins}
	entityRaw, entityDicts, err := readCSVFile(filepath.Join(dir, spec.Entity), spec.Name+"_S", opts)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: spec.Name, Target: spec.Target, HomeFeatures: spec.HomeFeatures}

	// Rebuild the entity table so FK columns can be re-encoded as RIDs.
	entity := relational.NewTable(spec.Name + "_S")
	fkSpecs := make(map[string]AttrSpec, len(spec.Attributes))
	for _, as := range spec.Attributes {
		fkSpecs[as.FK] = as
	}
	for _, c := range entityRaw.Columns() {
		if _, isFK := fkSpecs[c.Name]; isFK {
			continue // handled below, after the attribute table loads
		}
		if err := entity.AddColumn(c); err != nil {
			return nil, err
		}
	}

	for _, as := range spec.Attributes {
		attrRaw, attrDicts, err := readCSVFile(filepath.Join(dir, as.Table), as.Table, opts)
		if err != nil {
			return nil, err
		}
		keyCol := attrRaw.Column(as.FK)
		if keyCol == nil {
			return nil, fmt.Errorf("dataset: attribute csv %q lacks key column %q", as.Table, as.FK)
		}
		keyDict := attrDicts[as.FK]
		if keyDict == nil {
			return nil, fmt.Errorf("dataset: key column %q of %q must be categorical, not numeric", as.FK, as.Table)
		}
		// Key label → row index; reject duplicate keys.
		ridOf := make(map[string]int32, attrRaw.NumRows())
		for row := 0; row < attrRaw.NumRows(); row++ {
			label := keyDict.Label(keyCol.Data[row])
			if _, dup := ridOf[label]; dup {
				return nil, fmt.Errorf("dataset: duplicate key %q in %q", label, as.Table)
			}
			ridOf[label] = int32(row)
		}
		// Attribute table features = everything except the key column.
		attr := relational.NewTable(trimCSVName(as.Table))
		for _, c := range attrRaw.Columns() {
			if c.Name == as.FK {
				continue
			}
			if err := attr.AddColumn(c); err != nil {
				return nil, err
			}
		}
		// Re-encode the entity FK column against the key labels.
		fkRaw := entityRaw.Column(as.FK)
		if fkRaw == nil {
			return nil, fmt.Errorf("dataset: entity csv lacks FK column %q", as.FK)
		}
		fkDict := entityDicts[as.FK]
		if fkDict == nil {
			return nil, fmt.Errorf("dataset: FK column %q must be categorical, not numeric", as.FK)
		}
		data := make([]int32, fkRaw.Len())
		for i, code := range fkRaw.Data {
			label := fkDict.Label(code)
			rid, ok := ridOf[label]
			if !ok {
				return nil, fmt.Errorf("dataset: entity row %d references %s=%q absent from %q (load-time referential integrity)", i, as.FK, label, as.Table)
			}
			data[i] = rid
		}
		if err := entity.AddColumn(&relational.Column{Name: as.FK, Card: attrRaw.NumRows(), Data: data}); err != nil {
			return nil, err
		}
		d.Attrs = append(d.Attrs, AttributeTable{Table: attr, FK: as.FK, ClosedDomain: as.ClosedDomain})
	}
	d.Entity = entity
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func readCSVFile(path, name string, opts relational.ReadCSVOptions) (*relational.Table, map[string]*relational.Dictionary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return relational.ReadCSV(name, f, opts)
}

func trimCSVName(p string) string {
	base := filepath.Base(p)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	return base
}
