package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture lays a small CSV dataset plus spec on disk.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"sales.csv": `SalesLevel,Dept,StoreID
high,toys,s1
low,food,s2
high,toys,s1
low,toys,s3
high,food,s2
`,
		"stores.csv": `StoreID,Type,Size
s1,a,100
s2,b,250
s3,a,300
`,
		"spec.json": `{
  "name": "MiniMart",
  "entity": "sales.csv",
  "target": "SalesLevel",
  "homeFeatures": ["Dept"],
  "numericBins": 2,
  "attributes": [
    {"table": "stores.csv", "fk": "StoreID", "closedDomain": true}
  ]
}`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDatasetFromCSVs(t *testing.T) {
	dir := writeFixture(t)
	d, err := LoadDataset(filepath.Join(dir, "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "MiniMart" || d.NumRows() != 5 || d.NumClasses() != 2 {
		t.Fatalf("dataset = %+v", d)
	}
	// FK re-encoded to RIDs: sales rows reference stores by row index.
	fk := d.Entity.Column("StoreID")
	if fk.Card != 3 {
		t.Fatalf("FK card = %d", fk.Card)
	}
	// Row 0 references s1 (store row 0); row 3 references s3 (row 2).
	if fk.Data[0] != 0 || fk.Data[3] != 2 {
		t.Fatalf("FK codes = %v", fk.Data)
	}
	// Attribute table lost its key column, kept Type and the binned Size.
	attr := d.Attrs[0].Table
	if attr.HasColumn("StoreID") || !attr.HasColumn("Type") || !attr.HasColumn("Size") {
		t.Fatalf("attr columns = %v", attr.ColumnNames())
	}
	if attr.Column("Size").Card != 2 {
		t.Fatalf("numeric Size should be binned to 2: %+v", attr.Column("Size"))
	}
	// End to end: the dataset materializes and joins correctly.
	m, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureIndex("Type") < 0 || m.FeatureIndex("StoreID") < 0 || m.FeatureIndex("Dept") < 0 {
		t.Fatalf("features = %v", m.FeatureNames())
	}
}

func TestLoadDatasetReferentialIntegrity(t *testing.T) {
	dir := writeFixture(t)
	// Add a sale referencing a store that does not exist.
	path := filepath.Join(dir, "sales.csv")
	content, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(content, []byte("low,toys,s9\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDataset(filepath.Join(dir, "spec.json"))
	if err == nil || !strings.Contains(err.Error(), "referential integrity") {
		t.Fatalf("dangling FK not rejected: %v", err)
	}
}

func TestLoadDatasetDuplicateKey(t *testing.T) {
	dir := writeFixture(t)
	path := filepath.Join(dir, "stores.csv")
	content, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(content, []byte("s1,b,500\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDataset(filepath.Join(dir, "spec.json"))
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("duplicate key not rejected: %v", err)
	}
}

func TestParseSchemaSpecErrors(t *testing.T) {
	cases := []string{
		`{`,                             // malformed
		`{"name":"x"}`,                  // missing entity/target
		`{"name":"x","entity":"e.csv"}`, // missing target
		`{"unknown":1,"name":"x","entity":"e","target":"y"}`, // unknown field
	}
	for i, c := range cases {
		if _, err := ParseSchemaSpec(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadDatasetMissingFiles(t *testing.T) {
	if _, err := LoadDataset("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing spec accepted")
	}
	dir := writeFixture(t)
	os.Remove(filepath.Join(dir, "stores.csv"))
	if _, err := LoadDataset(filepath.Join(dir, "spec.json")); err == nil {
		t.Fatal("missing attribute csv accepted")
	}
}

func TestLoadDatasetBadColumns(t *testing.T) {
	dir := writeFixture(t)
	spec := `{
  "name": "X", "entity": "sales.csv", "target": "SalesLevel",
  "attributes": [{"table": "stores.csv", "fk": "NoSuchFK", "closedDomain": true}]
}`
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(filepath.Join(dir, "bad.json")); err == nil {
		t.Fatal("unknown FK column accepted")
	}
}
