package dataset

import (
	"fmt"

	"hamlet/internal/stats"
)

// Split is the paper's holdout protocol (§2.2): the labeled data is divided
// 50%:25%:25% into a training set, a validation set used during feature
// selection, and a final holdout test set.
type Split struct {
	// Train, Validation, Test are row-index sets into the source design
	// matrix; they partition [0, n).
	Train, Validation, Test []int
}

// DefaultFractions are the paper's split fractions.
var DefaultFractions = [3]float64{0.5, 0.25, 0.25}

// NewSplit shuffles [0, n) with the given RNG and partitions it by the
// fractions, which must be positive and sum to 1 (within 1e-9). Remainder
// rows after flooring go to the test set.
func NewSplit(n int, fractions [3]float64, rng *stats.RNG) (*Split, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: split of %d rows", n)
	}
	sum := 0.0
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("dataset: nonpositive split fraction %v", f)
		}
		sum += f
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("dataset: split fractions sum to %v, want 1", sum)
	}
	perm := rng.Perm(n)
	nTrain := int(fractions[0] * float64(n))
	nVal := int(fractions[1] * float64(n))
	if nTrain == 0 || nVal == 0 || nTrain+nVal >= n {
		return nil, fmt.Errorf("dataset: split of %d rows leaves an empty part", n)
	}
	s := &Split{
		Train:      perm[:nTrain],
		Validation: perm[nTrain : nTrain+nVal],
		Test:       perm[nTrain+nVal:],
	}
	return s, nil
}

// DefaultSplit applies the paper's 50/25/25 fractions.
func DefaultSplit(n int, rng *stats.RNG) (*Split, error) {
	return NewSplit(n, DefaultFractions, rng)
}

// Apply materializes the three partitions of the design matrix.
func (s *Split) Apply(m *Design) (train, val, test *Design) {
	return m.SelectRows(s.Train), m.SelectRows(s.Validation), m.SelectRows(s.Test)
}
