package dataset

import (
	"fmt"

	"hamlet/internal/obs"
	"hamlet/internal/relational"
)

// Streaming materialization. Materialize builds the full design matrix —
// O(rows · features) memory — before any learner sees a single row, which is
// exactly the denormalized table the paper argues is redundant. StreamDesign
// executes the same plan as a streaming pipeline instead: a chunked scan of
// the entity table composed with one relational.StreamJoin per joined
// attribute table, projected into the plan's feature order. Consumers that
// only need aggregates over the design (Naive Bayes sufficient statistics,
// entropy counts, FD checks) fold over the chunks and never hold more than
// O(chunk · features) cells, so the feasible dataset size is bounded by the
// base tables, not by the denormalized output.
var (
	streamDesigns    = obs.C("dataset.stream_designs")
	streamDesignRows = obs.C("dataset.stream_design_rows")
)

// DesignChunk is one columnar batch of design-matrix rows: the feature
// columns in plan order plus the labels. Like relational.Chunk, the slices
// are views or reused buffers valid only until the next call to Next.
type DesignChunk struct {
	// Cols holds one slice per feature, aligned with DesignSource.Features.
	Cols [][]int32
	// Y holds the labels for this chunk's rows.
	Y []int32
	// Rows is the number of rows in this chunk.
	Rows int
}

// DesignSource streams the design matrix of a join plan in chunks. Features
// carries the same metadata (name, cardinality, source table, FK flag) in
// the same order as Materialize would produce, but with nil Data: the values
// flow through Next instead of being resident all at once.
type DesignSource struct {
	// Features describes the design columns in order; Data fields are nil.
	Features []Feature
	// NumClasses is the target cardinality.
	NumClasses int

	src     relational.RowSource
	yIdx    int
	featIdx []int
	chunk   DesignChunk
}

// StreamDesign builds the streaming pipeline for the given plan: home
// features first, then usable FK features, then the foreign features of each
// joined attribute table, exactly as Materialize orders them. The plan's FKs
// are validated up front; the data itself streams through chunkSize-row
// chunks (relational.DefaultChunkSize when chunkSize <= 0).
func (d *Dataset) StreamDesign(p Plan, chunkSize int) (*DesignSource, error) {
	y := d.Entity.Column(d.Target)
	if y == nil {
		return nil, fmt.Errorf("dataset %q: target %q missing", d.Name, d.Target)
	}
	for _, fk := range p.JoinFKs {
		if d.AttrByFK(fk) == nil {
			return nil, fmt.Errorf("dataset %q: plan joins unknown FK %q", d.Name, fk)
		}
	}
	for _, fk := range p.DropFKs {
		if d.AttrByFK(fk) == nil {
			return nil, fmt.Errorf("dataset %q: plan drops unknown FK %q", d.Name, fk)
		}
	}
	var src relational.RowSource = relational.NewTableSource(d.Entity, chunkSize)
	for _, at := range d.Attrs {
		if !contains(p.JoinFKs, at.FK) {
			continue
		}
		var err error
		src, err = relational.StreamJoin(src, at.FK, at.Table)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", d.Name, err)
		}
	}
	out := &DesignSource{NumClasses: y.Card, src: src}
	schema := src.Schema()
	addFeature := func(f Feature) error {
		idx, err := schemaIndex(schema, f.Name)
		if err != nil {
			return fmt.Errorf("dataset %q: %w", d.Name, err)
		}
		out.Features = append(out.Features, f)
		out.featIdx = append(out.featIdx, idx)
		return nil
	}
	var err error
	if out.yIdx, err = schemaIndex(schema, d.Target); err != nil {
		return nil, fmt.Errorf("dataset %q: %w", d.Name, err)
	}
	for _, name := range d.HomeFeatures {
		c := d.Entity.Column(name)
		if err := addFeature(Feature{Name: c.Name, Card: c.Card, Source: "S"}); err != nil {
			return nil, err
		}
	}
	for _, at := range d.Attrs {
		if at.ClosedDomain && !contains(p.DropFKs, at.FK) {
			fk := d.Entity.Column(at.FK)
			if err := addFeature(Feature{Name: fk.Name, Card: fk.Card, Source: "S", IsFK: true}); err != nil {
				return nil, err
			}
		}
	}
	for _, at := range d.Attrs {
		if !contains(p.JoinFKs, at.FK) {
			continue
		}
		for _, rc := range at.Table.Columns() {
			if err := addFeature(Feature{Name: rc.Name, Card: rc.Card, Source: at.Table.Name}); err != nil {
				return nil, err
			}
		}
	}
	out.chunk.Cols = make([][]int32, len(out.Features))
	streamDesigns.Inc()
	return out, nil
}

// schemaIndex resolves one column name to its schema position.
func schemaIndex(schema []relational.ColumnInfo, name string) (int, error) {
	for i, ci := range schema {
		if ci.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("column %q missing from streaming schema", name)
}

// NumFeatures returns the number of design columns.
func (s *DesignSource) NumFeatures() int { return len(s.Features) }

// Next returns the next design chunk, or nil when the stream is exhausted.
// The chunk is valid only until the following Next or Reset call.
func (s *DesignSource) Next() (*DesignChunk, error) {
	ch, err := s.src.Next()
	if err != nil || ch == nil {
		return nil, err
	}
	for i, j := range s.featIdx {
		s.chunk.Cols[i] = ch.Cols[j]
	}
	s.chunk.Y = ch.Cols[s.yIdx]
	s.chunk.Rows = ch.Rows
	streamDesignRows.Add(int64(ch.Rows))
	return &s.chunk, nil
}

// Reset rewinds the stream so the design can be drained again.
func (s *DesignSource) Reset() { s.src.Reset() }

// Materialize drains the stream into an ordinary Design. It is the bridge
// back to the batch world (and the equivalence-test reference); consumers
// that only need aggregates should fold over Next instead.
func (s *DesignSource) Materialize() (*Design, error) {
	out := &Design{NumClasses: s.NumClasses}
	out.Features = make([]Feature, len(s.Features))
	copy(out.Features, s.Features)
	for {
		ch, err := s.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		out.Y = append(out.Y, ch.Y[:ch.Rows]...)
		for i := range out.Features {
			out.Features[i].Data = append(out.Features[i].Data, ch.Cols[i][:ch.Rows]...)
		}
	}
	return out, nil
}
