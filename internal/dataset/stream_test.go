package dataset

import (
	"math/rand"
	"testing"

	"hamlet/internal/relational"
)

// randDataset builds a random normalized dataset: an entity table with a
// target, a few home features, and nAttrs attribute tables behind FKs with
// random closed/open domains.
func randDataset(rng *rand.Rand) *Dataset {
	nS := rng.Intn(120)
	entity := relational.NewTable("S")
	yCard := 2 + rng.Intn(3)
	yData := make([]int32, nS)
	for i := range yData {
		yData[i] = int32(rng.Intn(yCard))
	}
	entity.MustAddColumn(&relational.Column{Name: "Y", Card: yCard, Data: yData})
	var home []string
	for h := 0; h < 1+rng.Intn(3); h++ {
		card := 1 + rng.Intn(6)
		data := make([]int32, nS)
		for i := range data {
			data[i] = int32(rng.Intn(card))
		}
		name := "H" + string(rune('a'+h))
		entity.MustAddColumn(&relational.Column{Name: name, Card: card, Data: data})
		home = append(home, name)
	}
	d := &Dataset{Name: "Rand", Entity: entity, Target: "Y", HomeFeatures: home}
	for a := 0; a < rng.Intn(3); a++ {
		nR := 1 + rng.Intn(25)
		attr := relational.NewTable("R" + string(rune('0'+a)))
		for j := 0; j < 1+rng.Intn(3); j++ {
			card := 1 + rng.Intn(8)
			data := make([]int32, nR)
			for i := range data {
				data[i] = int32(rng.Intn(card))
			}
			attr.MustAddColumn(&relational.Column{Name: "F" + string(rune('0'+a)) + string(rune('a'+j)), Card: card, Data: data})
		}
		fk := make([]int32, nS)
		for i := range fk {
			fk[i] = int32(rng.Intn(nR))
		}
		fkName := "FK" + string(rune('0'+a))
		entity.MustAddColumn(&relational.Column{Name: fkName, Card: nR, Data: fk})
		d.Attrs = append(d.Attrs, AttributeTable{Table: attr, FK: fkName, ClosedDomain: rng.Intn(3) > 0})
	}
	return d
}

// randPlan picks a random valid plan over d's FKs.
func randPlan(rng *rand.Rand, d *Dataset) Plan {
	var p Plan
	for _, at := range d.Attrs {
		if !at.ClosedDomain || rng.Intn(2) == 0 {
			p.JoinFKs = append(p.JoinFKs, at.FK)
		}
		if at.ClosedDomain && rng.Intn(3) == 0 {
			p.DropFKs = append(p.DropFKs, at.FK)
		}
	}
	return p
}

// designsEqual compares metadata and every cell of two designs.
func designsEqual(t *testing.T, want, got *Design) {
	t.Helper()
	if got.NumClasses != want.NumClasses || got.NumFeatures() != want.NumFeatures() || got.NumRows() != want.NumRows() {
		t.Fatalf("shape: got (%d classes, %d feats, %d rows), want (%d, %d, %d)",
			got.NumClasses, got.NumFeatures(), got.NumRows(), want.NumClasses, want.NumFeatures(), want.NumRows())
	}
	for i := range want.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("Y[%d]: got %d, want %d", i, got.Y[i], want.Y[i])
		}
	}
	for f := range want.Features {
		wf, gf := &want.Features[f], &got.Features[f]
		if gf.Name != wf.Name || gf.Card != wf.Card || gf.Source != wf.Source || gf.IsFK != wf.IsFK {
			t.Fatalf("feature %d metadata: got %+v, want %+v", f,
				Feature{Name: gf.Name, Card: gf.Card, Source: gf.Source, IsFK: gf.IsFK},
				Feature{Name: wf.Name, Card: wf.Card, Source: wf.Source, IsFK: wf.IsFK})
		}
		for i := range wf.Data {
			if gf.Data[i] != wf.Data[i] {
				t.Fatalf("feature %q row %d: got %d, want %d", wf.Name, i, gf.Data[i], wf.Data[i])
			}
		}
	}
}

// TestStreamDesignMatchesMaterialize is the dataset-level equivalence
// property: for random datasets, plans, and chunk sizes, draining the
// streaming pipeline reproduces Materialize bit for bit — same feature
// order, metadata, labels, and cells.
func TestStreamDesignMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		d := randDataset(rng)
		p := randPlan(rng, d)
		want, err := d.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []int{1, 3, 17, 1000, 0} {
			src, err := d.StreamDesign(p, cs)
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			got, err := src.Materialize()
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			designsEqual(t, want, got)
		}
	}
}

func TestStreamDesignNamedPlans(t *testing.T) {
	d := churn()
	for _, p := range []Plan{d.JoinAllPlan(), d.NoJoinsPlan(), d.JoinAllNoFKPlan()} {
		want, err := d.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		src, err := d.StreamDesign(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := src.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		designsEqual(t, want, got)
	}
}

func TestStreamDesignReset(t *testing.T) {
	d := churn()
	src, err := d.StreamDesign(d.JoinAllPlan(), 3)
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	second, err := src.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	designsEqual(t, first, second)
}

func TestStreamDesignRejectsUnknownFKs(t *testing.T) {
	d := churn()
	if _, err := d.StreamDesign(Plan{JoinFKs: []string{"Nope"}}, 8); err == nil {
		t.Fatal("unknown join FK not rejected")
	}
	if _, err := d.StreamDesign(Plan{DropFKs: []string{"Nope"}}, 8); err == nil {
		t.Fatal("unknown drop FK not rejected")
	}
}
