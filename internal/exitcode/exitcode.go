// Package exitcode pins the exit-status convention shared by the repo's
// gate commands — cmd/benchdiff (perf regressions between benchmark
// snapshots) and cmd/report's diff subcommand (accuracy drift between run
// directories). Both are CI gates, and CI must be able to distinguish
// "the gate ran and passed" from "the gate ran and failed" from "the gate
// never really ran"; keeping the codes in one place keeps the two commands
// from drifting apart.
package exitcode

const (
	// OK: the comparison ran and found nothing beyond threshold.
	OK = 0
	// Failed: the gate tripped — at least one significant regression
	// (benchdiff) or accuracy drift (report diff). CI fails the job.
	Failed = 1
	// Usage: bad flags, missing arguments, or unparseable *new* input.
	// Conventionally Go CLIs use 2 for usage errors; both gates keep it.
	Usage = 2
	// Vacuous: the comparison never meaningfully happened — the baseline
	// side is missing, or the two sides share zero aligned entries. A
	// distinct code stops a broken or mis-wired gate from masquerading as
	// a clean pass: CI treats it as failure, but the message tells the
	// operator to fix the baseline, not the code under test.
	Vacuous = 3
)
