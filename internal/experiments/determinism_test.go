package experiments

import "testing"

// TestRunnerDeterminismAcrossWorkers pins the end-to-end property the
// -workers flag promises: a figure runner renders cell-for-cell identical
// tables at any worker count, so parallelism is purely a wall-time knob.
func TestRunnerDeterminismAcrossWorkers(t *testing.T) {
	for _, id := range []string{"fig3", "xsfk"} {
		t.Run(id, func(t *testing.T) {
			serial := Quick
			serial.Workers = 1
			want, err := Run(id, serial)
			if err != nil {
				t.Fatal(err)
			}
			parallel := Quick
			parallel.Workers = 4
			got, err := Run(id, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Tables) != len(want.Tables) {
				t.Fatalf("table counts differ: %d vs %d", len(got.Tables), len(want.Tables))
			}
			for ti, wt := range want.Tables {
				gt := got.Tables[ti]
				if gt.Title != wt.Title || len(gt.Rows) != len(wt.Rows) {
					t.Fatalf("table %d shape differs: %q/%d vs %q/%d", ti, gt.Title, len(gt.Rows), wt.Title, len(wt.Rows))
				}
				for ri, wr := range wt.Rows {
					for ci, wc := range wr {
						if gt.Rows[ri][ci] != wc {
							t.Errorf("%s row %d col %s: workers=4 got %q, workers=1 got %q",
								wt.Title, ri, wt.Columns[ci], gt.Rows[ri][ci], wc)
						}
					}
				}
			}
		})
	}
}
