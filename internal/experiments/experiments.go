// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.1, §5, and the appendix): one runner per artifact, each
// returning the same rows/series the paper plots. Runners are deterministic
// in their seed and take a Budget so tests, benches, and the full CLI run
// can trade Monte Carlo depth for time.
//
// Absolute numbers differ from the paper (Hamlet-Go runs on synthetic
// mimics, not the authors' original data and hardware); the targets are the
// shapes: who wins, where errors blow up, where crossovers fall, and which
// joins the rules avoid. EXPERIMENTS.md records paper-vs-measured for every
// artifact.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"hamlet/internal/obs"
)

// Budget controls experiment sizes.
type Budget struct {
	// Worlds is the number of world realizations per simulation point
	// (the paper uses 100).
	Worlds int
	// L is the number of training sets per world (the paper uses 100).
	L int
	// NTest is the simulation test-set size.
	NTest int
	// MimicScale scales the real-dataset mimics (1 = the paper's sizes).
	MimicScale float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the Monte Carlo worker pool of the simulation-backed
	// runners (biasvar fan-out over worlds and training sets); <= 0 means
	// GOMAXPROCS. Results are identical at every worker count — the flag
	// trades wall time only (the -workers flag of cmd/experiments).
	Workers int
	// Progress, when non-nil, receives progress/ETA updates as the runner's
	// Monte Carlo loops execute (the -progress flag of cmd/experiments).
	// Nil disables reporting; it does not affect results.
	Progress *obs.Progress
	// Trace, when non-nil, is the parent span under which the runner
	// records per-stage child spans (the -trace flag of cmd/experiments).
	// Nil disables tracing; it does not affect results.
	Trace *obs.Span
}

// Quick is the test/bench budget: small but large enough that every trend
// the tests assert is visible.
var Quick = Budget{Worlds: 3, L: 8, NTest: 300, MimicScale: 0.02, Seed: 1}

// Full is the cmd-line default: deep enough for smooth curves on one core
// in minutes.
var Full = Budget{Worlds: 10, L: 24, NTest: 1000, MimicScale: 0.1, Seed: 1}

// Validate checks the budget.
func (b Budget) Validate() error {
	if b.Worlds < 1 || b.L < 2 || b.NTest < 10 {
		return fmt.Errorf("experiments: budget too small: %+v", b)
	}
	if b.MimicScale <= 0 || b.MimicScale > 1 {
		return fmt.Errorf("experiments: mimic scale %v outside (0,1]", b.MimicScale)
	}
	return nil
}

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	// Title identifies the artifact, e.g. "Figure 3(A1): test error vs n_S".
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the cells, one row per slice.
	Rows [][]string
}

// Add appends a row; the cell count must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row of %d cells in table %q with %d columns", len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cell looks up a cell by row index and column name; it returns "" when the
// column is absent or the row is out of range. Tests use this to assert on
// artifact content without caring about column positions.
func (t *Table) Cell(row int, column string) string {
	if row < 0 || row >= len(t.Rows) {
		return ""
	}
	for i, c := range t.Columns {
		if c == column {
			return t.Rows[row][i]
		}
	}
	return ""
}

// FindRow returns the index of the first row whose cell in the given column
// equals value, or -1.
func (t *Table) FindRow(column, value string) int {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return -1
	}
	for ri, row := range t.Rows {
		if row[ci] == value {
			return ri
		}
	}
	return -1
}

// f formats a float for table cells.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// d formats an int for table cells.
func d(v int) string { return fmt.Sprintf("%d", v) }

// Result is a named collection of tables produced by one runner.
type Result struct {
	// ID is the experiment identifier (e.g. "fig3").
	ID string
	// Tables are the artifact's tables in presentation order.
	Tables []*Table
}

// WriteText renders every table.
func (r *Result) WriteText(w io.Writer) error {
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// TableByTitle returns the first table whose title contains the substring,
// or nil.
func (r *Result) TableByTitle(sub string) *Table {
	for _, t := range r.Tables {
		if strings.Contains(t.Title, sub) {
			return t
		}
	}
	return nil
}
