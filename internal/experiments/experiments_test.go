package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testBudget is deliberately small; the assertions below only check shapes
// that are robust at this depth.
var testBudget = Budget{Worlds: 2, L: 6, NTest: 200, MimicScale: 0.02, Seed: 1}

func cellF(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := tab.Cell(row, col)
	if s == "" {
		t.Fatalf("table %q: empty cell (%d, %s)", tab.Title, row, col)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("table %q cell (%d,%s) = %q: %v", tab.Title, row, col, s, err)
	}
	return v
}

func TestBudgetValidate(t *testing.T) {
	if err := Quick.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Full.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Quick
	bad.Worlds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("empty budget accepted")
	}
	bad = Quick
	bad.MimicScale = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.Add("1", "2")
	tab.Add("3", "4")
	if tab.Cell(0, "b") != "2" || tab.Cell(1, "a") != "3" {
		t.Fatal("Cell broken")
	}
	if tab.Cell(5, "a") != "" || tab.Cell(0, "zz") != "" {
		t.Fatal("Cell should return empty for misses")
	}
	if tab.FindRow("a", "3") != 1 || tab.FindRow("a", "9") != -1 || tab.FindRow("zz", "1") != -1 {
		t.Fatal("FindRow broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong arity should panic")
		}
	}()
	tab.Add("only-one")
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Demo", Columns: []string{"x", "y"}}
	tab.Add("1", "2")
	var txt bytes.Buffer
	if err := tab.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== Demo ==") || !strings.Contains(txt.String(), "1") {
		t.Fatalf("text output: %q", txt.String())
	}
	var csvb bytes.Buffer
	if err := tab.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	if csvb.String() != "x,y\n1,2\n" {
		t.Fatalf("csv output: %q", csvb.String())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"coldstart", "cv", "fcbf", "fig1", "fig10", "fig11", "fig12", "fig13", "fig3", "fig4", "fig6", "fig7", "fig8a", "fig8b", "fig8c", "fig9", "joint", "skewguard", "tan", "xsfk"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v", got)
		}
	}
	if _, err := Run("nope", testBudget); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig3Shapes(t *testing.T) {
	res, err := RunFig3(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	errA := res.TableByTitle("3(A): average test error")
	if errA == nil {
		t.Fatal("missing fig3A error table")
	}
	// NoJoin at the smallest n_S must exceed NoJoin at the largest, and
	// must exceed UseAll at the smallest n_S.
	first, last := 0, len(errA.Rows)-1
	if cellF(t, errA, first, "NoJoin") <= cellF(t, errA, last, "NoJoin") {
		t.Fatal("NoJoin error should fall as n_S grows")
	}
	if cellF(t, errA, first, "NoJoin") <= cellF(t, errA, first, "UseAll")+0.005 {
		t.Fatal("NoJoin should be worse than UseAll at small n_S")
	}
	// At large n_S, NoJoin converges to UseAll.
	if cellF(t, errA, last, "NoJoin")-cellF(t, errA, last, "UseAll") > 0.01 {
		t.Fatal("NoJoin should match UseAll at large n_S")
	}
	// Figure 3(B): NoJoin error grows with |D_FK|; UseAll stays flat.
	errB := res.TableByTitle("3(B): average test error")
	first, last = 0, len(errB.Rows)-1
	if cellF(t, errB, last, "NoJoin") <= cellF(t, errB, first, "NoJoin") {
		t.Fatal("NoJoin error should grow with |D_FK|")
	}
	if cellF(t, errB, last, "UseAll")-cellF(t, errB, first, "UseAll") > 0.01 {
		t.Fatal("UseAll should be flat in |D_FK|")
	}
	// Net variance drives the error gap.
	nvB := res.TableByTitle("3(B): average net variance")
	if cellF(t, nvB, last, "NoJoin") <= cellF(t, nvB, first, "NoJoin") {
		t.Fatal("NoJoin net variance should grow with |D_FK|")
	}
}

func TestFig4ScatterAndThresholds(t *testing.T) {
	res, err := RunFig4(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.TableByTitle("summary")
	if sum == nil {
		t.Fatal("missing summary table")
	}
	r := sum.FindRow("quantity", "Pearson(ROR, 1/sqrt(TR))")
	if r < 0 {
		t.Fatal("missing Pearson row")
	}
	if v := cellF(t, sum, r, "value"); v < 0.9 {
		t.Fatalf("Pearson = %v, want ≥ 0.9", v)
	}
	// The tuned thresholds must be in the right ballpark of the paper's
	// (ρ=2.5, τ=20) and ordered correctly with the relaxed tolerance.
	rhoTight := cellF(t, sum, sum.FindRow("quantity", "rho@0.001"), "value")
	tauTight := cellF(t, sum, sum.FindRow("quantity", "tau@0.001"), "value")
	rhoLoose := cellF(t, sum, sum.FindRow("quantity", "rho@0.010"), "value")
	tauLoose := cellF(t, sum, sum.FindRow("quantity", "tau@0.010"), "value")
	if rhoTight < 1 || rhoTight > 4 {
		t.Fatalf("rho@0.001 = %v, want ≈2.5", rhoTight)
	}
	if tauTight < 8 || tauTight > 45 {
		t.Fatalf("tau@0.001 = %v, want ≈20", tauTight)
	}
	if rhoLoose < rhoTight || tauLoose > tauTight {
		t.Fatalf("relaxed thresholds not wider: rho %v→%v tau %v→%v", rhoTight, rhoLoose, tauTight, tauLoose)
	}
}

func TestFig6MatchesPaperAtScaleOne(t *testing.T) {
	b := testBudget
	b.MimicScale = 1
	res, err := RunFig6(b)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	r := tab.FindRow("Dataset", "Walmart")
	if tab.Cell(r, "n_S") != "421570" || tab.Cell(r, "#Y") != "7" || tab.Cell(r, "k'") != "2" {
		t.Fatalf("Walmart row wrong: %v", tab.Rows[r])
	}
	r = tab.FindRow("Dataset", "Expedia")
	if tab.Cell(r, "k'") != "1" {
		t.Fatal("Expedia should have one closed-domain FK")
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d datasets, want 7", len(tab.Rows))
	}
}

func TestFig7EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second mimic sweep; run without -short (CI covers it on the full-race leg)")
	}
	res, err := RunFig7(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	errT := res.TableByTitle("7(A)")
	if errT == nil || len(errT.Rows) != 28 {
		t.Fatalf("fig7A should have 7×4 rows, got %d", len(errT.Rows))
	}
	// JoinOpt's error must never blow up: bounded increase over JoinAll.
	for i := range errT.Rows {
		all := cellF(t, errT, i, "JoinAll")
		opt := cellF(t, errT, i, "JoinOpt")
		if opt-all > 0.08 {
			t.Errorf("row %v: JoinOpt blew up: %v vs %v", errT.Rows[i], opt, all)
		}
	}
	// Table counts: Walmart and MovieLens1M avoid both joins (1 input
	// table); Yelp and BookCrossing avoid none.
	for _, c := range []struct {
		ds   string
		tabs string
	}{{"Walmart", "1"}, {"MovieLens1M", "1"}, {"Yelp", "3"}, {"BookCrossing", "3"}} {
		r := errT.FindRow("Dataset", c.ds)
		if errT.Cell(r, "TablesOpt") != c.tabs {
			t.Errorf("%s: TablesOpt = %s, want %s", c.ds, errT.Cell(r, "TablesOpt"), c.tabs)
		}
	}
	// Runtime: where both joins are avoided, feature selection must see
	// far fewer candidate features.
	rtT := res.TableByTitle("7(B)")
	r := rtT.FindRow("Dataset", "MovieLens1M")
	featsAll := cellF(t, rtT, r, "FeatsAll")
	featsOpt := cellF(t, rtT, r, "FeatsOpt")
	if featsOpt*3 > featsAll {
		t.Fatalf("MovieLens1M: JoinOpt features %v vs %v, expected big reduction", featsOpt, featsAll)
	}
}

func TestFig8ARobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second mimic sweep; run without -short (CI covers it on the full-race leg)")
	}
	res, err := RunFig8A(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Yelp: NoJoins must blow up versus JoinAll under forward selection.
	yNo := tab.Rows[tab.FindRow("Plan", "NoJoins")]
	_ = yNo
	findPlan := func(ds, plan string) int {
		for i, row := range tab.Rows {
			if row[0] == ds && row[1] == plan {
				return i
			}
		}
		return -1
	}
	yelpNo := findPlan("Yelp", "NoJoins")
	yelpAll := findPlan("Yelp", "JoinAll")
	if cellF(t, tab, yelpNo, "FS")-cellF(t, tab, yelpAll, "FS") < 0.05 {
		t.Fatal("Yelp NoJoins should blow up the error")
	}
	// Walmart: NoJoins is fine and is the chosen plan.
	wNo := findPlan("Walmart", "NoJoins")
	wAll := findPlan("Walmart", "JoinAll")
	if cellF(t, tab, wNo, "FS")-cellF(t, tab, wAll, "FS") > 0.02 {
		t.Fatal("Walmart NoJoins should be safe")
	}
	if tab.Cell(wNo, "ChosenByJoinOpt") != "*" {
		t.Fatal("Walmart NoJoins should be the JoinOpt plan")
	}
	// Expedia is omitted (single closed-domain FK).
	if tab.FindRow("Dataset", "Expedia") >= 0 {
		t.Fatal("Expedia should be absent from fig8a")
	}
	// BookCrossing: avoiding UserID blows up; avoiding BookID does not
	// (the missed opportunity).
	bcU := findPlan("BookCrossing", "avoid{UserID}")
	bcB := findPlan("BookCrossing", "avoid{BookID}")
	bcAll := findPlan("BookCrossing", "JoinAll")
	if cellF(t, tab, bcU, "FS")-cellF(t, tab, bcAll, "FS") < 0.05 {
		t.Fatal("BookCrossing avoid{UserID} should blow up")
	}
	if cellF(t, tab, bcB, "FS")-cellF(t, tab, bcAll, "FS") > 0.02 {
		t.Fatal("BookCrossing avoid{BookID} should be harmless")
	}
}

func TestFig8BSensitivity(t *testing.T) {
	res, err := RunFig8B(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// 14 closed-domain FKs across the 7 datasets.
	if len(tab.Rows) != 14 {
		t.Fatalf("fig8b has %d rows, want 14", len(tab.Rows))
	}
	// Relaxed thresholds must admit the two Flights airport tables.
	admitted := 0
	for i, row := range tab.Rows {
		if row[0] == "Flights" && (row[1] == "SrcAirports" || row[1] == "DestAirports") {
			if tab.Cell(i, "avoid@default") != "false" {
				t.Fatal("Flights airports must be kept at default thresholds")
			}
			if tab.Cell(i, "avoid@relaxed") == "true" {
				admitted++
			}
		}
	}
	if admitted != 2 {
		t.Fatalf("relaxed thresholds admitted %d Flights airport joins, want 2", admitted)
	}
	sum := res.TableByTitle("summary")
	if v := cellF(t, sum, 0, "value"); v < 0.85 {
		t.Fatalf("real-data ROR↔TR Pearson = %v, want ≥ 0.85", v)
	}
}

func TestFig8CDroppingFKsHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second mimic sweep; run without -short (CI covers it on the full-race leg)")
	}
	res, err := RunFig8C(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Dropping FKs must be catastrophic where concepts live at FK level:
	// MovieLens1M and LastFM.
	hurt := 0
	for i, row := range tab.Rows {
		if row[0] == "MovieLens1M" || row[0] == "LastFM" {
			if cellF(t, tab, i, "JoinAllNoFK")-cellF(t, tab, i, "JoinOpt") > 0.1 {
				hurt++
			}
		}
	}
	if hurt < 3 {
		t.Fatalf("JoinAllNoFK should blow up on FK-level concepts, only %d of 4 rows did", hurt)
	}
}

func TestFig9LogregShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second mimic sweep; run without -short (CI covers it on the full-race leg)")
	}
	res, err := RunFig9(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("fig9 has %d rows", len(tab.Rows))
	}
	// L1: JoinOpt must stay close to JoinAll on every dataset.
	for i := range tab.Rows {
		gap := cellF(t, tab, i, "L1_JoinOpt") - cellF(t, tab, i, "L1_JoinAll")
		if gap > 0.08 {
			t.Errorf("%s: L1 JoinOpt blew up by %v", tab.Rows[i][0], gap)
		}
	}
}

func TestFig13SkewShapes(t *testing.T) {
	res, err := RunFig13(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	// Malign skew: the NoJoin gap at the smallest n_S must exceed the gap
	// at the largest (the gap closes as n grows).
	b2 := res.TableByTitle("B2")
	first, last := 0, len(b2.Rows)-1
	if cellF(t, b2, first, "dErr") <= cellF(t, b2, last, "dErr") {
		t.Fatal("malign-skew gap should close as n_S grows")
	}
	// Benign skew: no blow-up anywhere.
	a2 := res.TableByTitle("A2")
	for i := range a2.Rows {
		if cellF(t, a2, i, "dErr") > 0.02 {
			t.Fatalf("benign skew blew up NoJoin at row %d", i)
		}
	}
}

func TestTANNeverBeatsNBHere(t *testing.T) {
	res, err := RunTAN(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for i := range tab.Rows {
		if cellF(t, tab, i, "TAN-NB") < -0.01 {
			t.Fatalf("TAN beat NB at row %d, contradicting Appendix E", i)
		}
	}
}

func TestResultWriteText(t *testing.T) {
	res, err := RunFig6(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Walmart") {
		t.Fatal("WriteText lost content")
	}
	if res.TableByTitle("no-such-title") != nil {
		t.Fatal("TableByTitle should return nil on miss")
	}
}

func TestRunnersRejectBadBudget(t *testing.T) {
	var bad Budget
	for _, id := range IDs() {
		if _, err := Run(id, bad); err == nil {
			t.Errorf("%s accepted an empty budget", id)
		}
	}
}
