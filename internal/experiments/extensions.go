package experiments

import (
	"fmt"

	"hamlet/internal/biasvar"
	"hamlet/internal/core"
	"hamlet/internal/fs"
	"hamlet/internal/ml"
	"hamlet/internal/synth"
)

// This file holds experiments beyond the paper's figures: ablations for the
// design choices DESIGN.md calls out and the paper's explicitly deferred
// extensions (§4.2 joint decisions, Appendix D's fine-grained skew
// diagnostic, the third simulation scenario the appendix summarizes in
// prose, and the FCBF instance-based-redundancy baseline from the related
// work).

// RunXsFk regenerates the appendix's third simulation scenario (only X_S
// and FK carry the concept; X_R is noise). The paper reports it "did not
// reveal any interesting new insights": NoJoin should match UseAll at every
// n_S since dropping X_R loses nothing, while NoFK gets steadily worse
// because FK is irreplaceable.
func RunXsFk(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	errT, nvT := sweepTables("Scenario XsFkOnly", "n_S")
	for _, nS := range NSSweep {
		sim := synth.SimConfig{Scenario: synth.XsFkOnly, DS: 2, DR: 4, NR: 40, P: 0.1}
		out, err := simPoint(sim, nS, b, b.Seed+130)
		if err != nil {
			return nil, err
		}
		addSweepRow(errT, nvT, d(nS), out)
	}
	return &Result{ID: "xsfk", Tables: []*Table{errT, nvT}}, nil
}

// RunFCBF is the instance-vs-schema redundancy ablation: FCBF (Yu & Liu's
// redundancy-aware filter, cited by the paper as [45]) discovers from the
// data instance the same FK → X_R redundancy that Proposition 3.1 hands the
// decision rules for free from the schema. On datasets whose joins are safe
// to avoid, FCBF over JoinAll should reach JoinOpt-like feature sets — at
// full-instance cost — while FCBF over JoinOpt's already-reduced input pays
// far less.
func RunFCBF(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Ablation: FCBF (instance-based redundancy) vs schema-based JoinOpt",
		Columns: []string{"Dataset", "Metric", "FCBF_JoinAll", "FCBF_JoinOpt", "FeatsAll", "FeatsOpt", "KeptAll", "KeptOpt"}}
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+140+uint64(si))
		if err != nil {
			return nil, err
		}
		optPlan, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		all, err := p.runFS(p.data.JoinAllPlan(), fs.FCBF{})
		if err != nil {
			return nil, err
		}
		opt, err := p.runFS(optPlan, fs.FCBF{})
		if err != nil {
			return nil, err
		}
		t.Add(spec.Name, ml.MetricName(spec.Classes), f(all.testErr), f(opt.testErr),
			d(all.features), d(opt.features), d(len(all.selected)), d(len(opt.selected)))
	}
	return &Result{ID: "fcbf", Tables: []*Table{t}}, nil
}

// RunJoint is the §4.2 future-work ablation: independent versus joint
// avoidance decisions on the dataset mimics. The joint rule bounds the
// *combined* risk of all avoided tables, so it avoids a subset of what the
// independent rule avoids; the table reports both plans and their test
// errors under forward selection.
func RunJoint(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Ablation: independent vs joint avoidance decisions",
		Columns: []string{"Dataset", "AvoidedIndep", "AvoidedJoint", "ErrIndep", "ErrJoint"}}
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+150+uint64(si))
		if err != nil {
			return nil, err
		}
		adv := core.NewAdvisor()
		indepPlan, indepDecs, err := adv.JoinOptPlan(p.data)
		if err != nil {
			return nil, err
		}
		jointPlan, jointDecs, err := adv.JointJoinOptPlan(p.data)
		if err != nil {
			return nil, err
		}
		indep, err := p.runFS(indepPlan, fs.Forward{})
		if err != nil {
			return nil, err
		}
		joint, err := p.runFS(jointPlan, fs.Forward{})
		if err != nil {
			return nil, err
		}
		t.Add(spec.Name, d(countAvoided(indepDecs)), d(countAvoided(jointDecs)),
			f(indep.testErr), f(joint.testErr))
	}
	return &Result{ID: "joint", Tables: []*Table{t}}, nil
}

func countAvoided(decs []core.Decision) int {
	n := 0
	for _, d := range decs {
		if d.Considered && d.Avoid {
			n++
		}
	}
	return n
}

// RunSkewGuard is the Appendix D ablation: the blunt H(Y) guard versus the
// fine-grained per-class effective-TR diagnostic on simulated benign and
// malign FK skews, with the measured NoJoin error increase alongside.
func RunSkewGuard(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Ablation: skew guards vs actual NoJoin damage (n_S=500, n_R=40)",
		Columns: []string{"skew", "H(Y)", "bluntGuardTrips", "minEffectiveTR", "fineGuardTrips", "dErr"}}
	cases := []struct {
		label string
		cfg   synth.SimConfig
	}{
		{"none", synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}},
		{"zipf(s=2)", synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1, Skew: synth.ZipfSkew, ZipfS: 2}},
		{"needle(0.5)", synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1, Skew: synth.NeedleThreadSkew, NeedleP: 0.5}},
		{"needle(0.8)", synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1, Skew: synth.NeedleThreadSkew, NeedleP: 0.8}},
	}
	const nS = 500
	for _, c := range cases {
		out, err := biasvar.Run(c.cfg, biasvar.Config{
			NTrain: nS, NTest: b.NTest, L: b.L, Worlds: b.Worlds, Seed: b.Seed + 160,
			Workers: b.Workers, Learner: nbLearner(),
		})
		if err != nil {
			return nil, err
		}
		world, err := synth.NewWorld(c.cfg, b.Seed+161)
		if err != nil {
			return nil, err
		}
		ds, err := world.Dataset("skew", nS, rngFor(b.Seed+162))
		if err != nil {
			return nil, err
		}
		sd, err := core.DiagnoseSkew(ds, "FK")
		if err != nil {
			return nil, err
		}
		blunt := sd.HY < core.EntropyGuardBits
		fine := sd.Malign(core.DefaultThresholds.Tau)
		t.Add(c.label, f(sd.HY), fmt.Sprintf("%v", blunt), f(sd.MinEffectiveTR),
			fmt.Sprintf("%v", fine), f(out["NoJoin"].TestError-out["UseAll"].TestError))
	}
	return &Result{ID: "skewguard", Tables: []*Table{t}}, nil
}
