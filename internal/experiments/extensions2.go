package experiments

import (
	"hamlet/internal/dataset"
	"hamlet/internal/fs"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// RunColdStart measures the §2.1 cold-start mechanism: models are trained on
// a dataset whose attribute table carries a reserved Others record, then
// evaluated on serving data in which a growing fraction of foreign keys
// reference RIDs unseen at training time (remapped to Others). The baseline
// "clamp" strategy — map unseen RIDs to an arbitrary existing one — shows
// why a dedicated placeholder matters as drift grows.
func RunColdStart(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Extension: cold-start — Others record vs clamping unseen FKs",
		Columns: []string{"unseenFrac", "errOthers", "errClamp", "errNoDrift"}}
	sim := synth.SimConfig{Scenario: synth.XsFkOnly, DS: 2, DR: 2, NR: 50, P: 0.1}
	rng := stats.NewRNG(b.Seed + 170)
	world, err := synth.NewWorld(sim, rng.Uint64())
	if err != nil {
		return nil, err
	}
	const nTrain = 4000
	ds, err := world.Dataset("cold", nTrain, rng.Split())
	if err != nil {
		return nil, err
	}
	if err := dataset.AddOthersRecord(ds, "FK"); err != nil {
		return nil, err
	}
	others := dataset.OthersRID(ds.Attrs[0].Table)
	design, err := ds.Materialize(ds.NoJoinsPlan())
	if err != nil {
		return nil, err
	}
	feats := make([]int, design.NumFeatures())
	for i := range feats {
		feats[i] = i
	}
	mod, err := nb.New().Fit(design, feats)
	if err != nil {
		return nil, err
	}
	metric := ml.MetricFor(2)
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		// Serving data from the same world; a fraction of rows get RIDs
		// outside the training domain.
		test := world.Sample(b.NTest, rng.Split())
		fkIdx := test.FeatureIndex("FK")
		unseen := append([]int32(nil), test.Features[fkIdx].Data...)
		for i := range unseen {
			if rng.Float64() < frac {
				unseen[i] = int32(sim.NR) + int32(rng.IntN(10)) // brand-new RIDs
			}
		}
		mk := func(handle func([]int32)) *dataset.Design {
			cp := test.Subset(feats) // same columns, shared storage
			fks := append([]int32(nil), unseen...)
			handle(fks)
			out := &dataset.Design{NumClasses: 2, Y: test.Y}
			out.Features = append([]dataset.Feature(nil), cp.Features...)
			f := out.Features[fkIdx]
			f.Data = fks
			f.Card = int(others) + 1
			out.Features[fkIdx] = f
			return out
		}
		withOthers := mk(func(fks []int32) { dataset.MapUnseenRIDs(fks, others) })
		clamped := mk(func(fks []int32) {
			for i, v := range fks {
				if v >= int32(sim.NR) {
					fks[i] = 0 // arbitrary existing RID
				}
			}
		})
		clean := mk(func(fks []int32) {
			copy(fks, test.Features[fkIdx].Data)
		})
		t.Add(f(frac),
			f(metric(ml.PredictAll(mod, withOthers), test.Y)),
			f(metric(ml.PredictAll(mod, clamped), test.Y)),
			f(metric(ml.PredictAll(mod, clean), test.Y)))
	}
	return &Result{ID: "coldstart", Tables: []*Table{t}}, nil
}

// RunCV is the §2.2 holdout-vs-cross-validation ablation: forward selection
// under the paper's holdout protocol versus 5-fold cross-validation on the
// dataset mimics, comparing final test error and subset-evaluation counts
// (CV pays k× per evaluation).
func RunCV(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Extension: holdout vs 5-fold CV wrapper search (forward selection, JoinOpt)",
		Columns: []string{"Dataset", "Metric", "errHoldout", "errCV", "evalsHoldout", "evalsCV"}}
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+180+uint64(si))
		if err != nil {
			return nil, err
		}
		plan, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		hold, err := p.runFS(plan, fs.Forward{})
		if err != nil {
			return nil, err
		}
		cv, err := p.runFS(plan, fs.CrossValidated{Inner: fs.Forward{}, K: 5, Seed: b.Seed})
		if err != nil {
			return nil, err
		}
		t.Add(spec.Name, ml.MetricName(spec.Classes),
			f(hold.testErr), f(cv.testErr), d(hold.evals), d(cv.evals))
	}
	return &Result{ID: "cv", Tables: []*Table{t}}, nil
}
