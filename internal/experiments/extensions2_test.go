package experiments

import "testing"

func TestColdStartExperiment(t *testing.T) {
	res, err := RunColdStart(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("coldstart rows = %d", len(tab.Rows))
	}
	// With no drift the three strategies coincide.
	if cellF(t, tab, 0, "errOthers") != cellF(t, tab, 0, "errClamp") {
		t.Fatal("strategies should agree at zero drift")
	}
	// At the heaviest drift, the Others record must not be worse than
	// clamping to an arbitrary RID.
	last := len(tab.Rows) - 1
	if cellF(t, tab, last, "errOthers") > cellF(t, tab, last, "errClamp")+1e-9 {
		t.Fatalf("Others (%v) worse than clamping (%v) at heavy drift",
			cellF(t, tab, last, "errOthers"), cellF(t, tab, last, "errClamp"))
	}
}

func TestCVExperiment(t *testing.T) {
	res, err := RunCV(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("cv rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		// CV and holdout must land close (neither protocol blows up).
		gap := cellF(t, tab, i, "errCV") - cellF(t, tab, i, "errHoldout")
		if gap > 0.08 || gap < -0.08 {
			t.Errorf("%s: CV vs holdout gap %v", tab.Rows[i][0], gap)
		}
	}
}
