package experiments

import (
	"strings"
	"testing"
)

func TestXsFkScenarioShapes(t *testing.T) {
	res, err := RunXsFk(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	errT := res.TableByTitle("test error")
	if errT == nil {
		t.Fatal("missing error table")
	}
	last := len(errT.Rows) - 1
	// NoJoin matches UseAll at large n_S (dropping X_R loses nothing).
	if gap := cellF(t, errT, last, "NoJoin") - cellF(t, errT, last, "UseAll"); gap > 0.01 {
		t.Fatalf("NoJoin should match UseAll when X_R is noise, gap %v", gap)
	}
	// NoFK is strictly worse: FK is irreplaceable in this scenario.
	if cellF(t, errT, last, "NoFK") <= cellF(t, errT, last, "NoJoin")+0.01 {
		t.Fatal("NoFK should be clearly worse than NoJoin in XsFkOnly")
	}
}

func TestFCBFAblation(t *testing.T) {
	res, err := RunFCBF(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("fcbf rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		// FCBF over JoinAll must land within tolerance of FCBF over
		// JoinOpt: the instance-based method discovers the same
		// redundancy the schema rule predicts.
		gap := cellF(t, tab, i, "FCBF_JoinAll") - cellF(t, tab, i, "FCBF_JoinOpt")
		if gap > 0.08 || gap < -0.08 {
			t.Errorf("%s: FCBF plans disagree by %v", tab.Rows[i][0], gap)
		}
		// And it must actually prune: far fewer kept than candidates.
		if cellF(t, tab, i, "KeptAll")*3 > cellF(t, tab, i, "FeatsAll") {
			t.Errorf("%s: FCBF barely pruned", tab.Rows[i][0])
		}
	}
}

func TestJointAblation(t *testing.T) {
	res, err := RunJoint(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for i := range tab.Rows {
		indep := cellF(t, tab, i, "AvoidedIndep")
		joint := cellF(t, tab, i, "AvoidedJoint")
		if joint > indep {
			t.Errorf("%s: joint mode avoided more tables than independent", tab.Rows[i][0])
		}
	}
}

func TestSkewGuardAblation(t *testing.T) {
	res, err := RunSkewGuard(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// The malign needle cases must trip the fine-grained guard.
	for i, row := range tab.Rows {
		if strings.HasPrefix(row[0], "needle") {
			if tab.Cell(i, "fineGuardTrips") != "true" {
				t.Errorf("%s: fine guard did not trip", row[0])
			}
		}
	}
	// The worst measured damage must be on a guarded (tripped) row.
	worst, worstIdx := -1.0, -1
	for i := range tab.Rows {
		if v := cellF(t, tab, i, "dErr"); v > worst {
			worst, worstIdx = v, i
		}
	}
	if tab.Cell(worstIdx, "fineGuardTrips") != "true" {
		t.Errorf("worst damage (%v on %s) was not guarded", worst, tab.Rows[worstIdx][0])
	}
}

func TestExtensionIDsRegistered(t *testing.T) {
	for _, id := range []string{"xsfk", "fcbf", "joint", "skewguard"} {
		if _, ok := Registry[id]; !ok {
			t.Errorf("extension %q missing from registry", id)
		}
	}
}

func TestFig1Containment(t *testing.T) {
	res, err := RunFig1(testBudget)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.TableByTitle("summary")
	if sum == nil {
		t.Fatal("missing summary")
	}
	// The operative guarantees: neither rule clears an unsafe join (allow
	// a single Monte Carlo noise flip at the test budget's depth).
	for _, q := range []string{
		"violations C⊄A (ROR cleared an unsafe join)",
		"violations D⊄A (TR cleared an unsafe join)",
	} {
		if v := cellF(t, sum, sum.FindRow("quantity", q), "value"); v > 1 {
			t.Fatalf("%s = %v", q, v)
		}
	}
	// Conservatism: both rules clear a nonempty subset of A.
	a := cellF(t, sum, sum.FindRow("quantity", "|A| actually safe"), "value")
	c := cellF(t, sum, sum.FindRow("quantity", "|C| ROR rule clears"), "value")
	d := cellF(t, sum, sum.FindRow("quantity", "|D| TR rule clears"), "value")
	if c == 0 || d == 0 || c > a+1 || d > a+1 {
		t.Fatalf("box sizes implausible: |A|=%v |C|=%v |D|=%v", a, c, d)
	}
	// Figure 5's gap must be visible: with q_R* = |D_FK| the ROR rule
	// clears configurations the TR rule refuses.
	if v := cellF(t, sum, sum.FindRow("quantity", "Figure-5 gap: C∖D when qR*=|D_FK| (ROR clears, TR refuses)"), "value"); v == 0 {
		t.Fatal("expected a nonempty Figure-5 gap")
	}
}
