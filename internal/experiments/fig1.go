package experiments

import (
	"fmt"

	"hamlet/internal/core"
	"hamlet/internal/synth"
)

// RunFig1 measures the relationships Figure 1 draws between the decision
// rules and actual safety. Over the simulation grid, every configuration is
// classified three ways: actually safe to avoid (box A: ΔErr ≤ tolerance),
// cleared by the ROR rule (box C), cleared by the TR rule (box D).
//
// The operative guarantees — the reason the rules exist — are C ⊆ A and
// D ⊆ A: neither rule may clear a join whose avoidance blows up the error.
// Those are asserted exactly. The containment D ⊆ C is conceptual: the TR
// is a conservative *simplification* of the ROR, but the published
// threshold pair (ρ = 2.5, τ = 20) interleaves the two boundaries inside
// the band where ROR ≈ ρ, because the ROR also depends on n through its log
// term. Where the gap genuinely opens is the paper's Figure 5 scenario —
// q_R* comparable to |D_FK| — which the TR cannot see: the second summary
// block evaluates both rules there (rule verdicts only; no simulation is
// needed since the comparison is between the rules themselves).
func RunFig1(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	const tolerance = 0.001
	th := core.DefaultThresholds
	grid := &Table{Title: "Figure 1: rule verdicts vs actual safety per configuration",
		Columns: []string{"n_S", "|D_FK|", "dErr", "safeActual(A)", "safeROR(C)", "safeTR(D)"}}
	var total, inA, inC, inD, violCA, violDA, missedCA, missedDA int
	for _, nS := range NSSweep {
		for _, nR := range FKSweep {
			if nR*4 >= nS {
				continue
			}
			sim := synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: nR, P: 0.1}
			out, err := simPoint(sim, nS, b, b.Seed+uint64(190+nS*3+nR))
			if err != nil {
				return nil, err
			}
			dErr := out["NoJoin"].TestError - out["UseAll"].TestError
			a := dErr <= tolerance
			ror, err := core.ROR(nS, nR, 2, core.DefaultDelta)
			if err != nil {
				return nil, err
			}
			c := ror <= th.Rho
			tr, err := core.TupleRatio(nS, nR)
			if err != nil {
				return nil, err
			}
			dd := tr >= th.Tau
			grid.Add(d(nS), d(nR), f(dErr), fmt.Sprintf("%v", a), fmt.Sprintf("%v", c), fmt.Sprintf("%v", dd))
			total++
			if a {
				inA++
			}
			if c {
				inC++
			}
			if dd {
				inD++
			}
			if c && !a {
				violCA++
			}
			if dd && !a {
				violDA++
			}
			if a && !c {
				missedCA++
			}
			if a && !dd {
				missedDA++
			}
		}
	}
	sum := &Table{Title: "Figure 1 summary: safety guarantees and conservatism",
		Columns: []string{"quantity", "value"}}
	sum.Add("configurations", d(total))
	sum.Add("|A| actually safe", d(inA))
	sum.Add("|C| ROR rule clears", d(inC))
	sum.Add("|D| TR rule clears", d(inD))
	sum.Add("violations C⊄A (ROR cleared an unsafe join)", d(violCA))
	sum.Add("violations D⊄A (TR cleared an unsafe join)", d(violDA))
	sum.Add("missed opportunities A∖C (conservatism of ROR)", d(missedCA))
	sum.Add("missed opportunities A∖D (conservatism of TR)", d(missedDA))

	// Figure 5's scenario: q_R* comparable to |D_FK| (every foreign
	// feature's domain as large as the FK's). The ROR collapses toward 0
	// and clears the join; the TR, blind to q_R*, still refuses low-TR
	// configurations — the true D ⊂ C gap.
	gap := &Table{Title: "Figure 5 scenario: q_R* = |D_FK| — where the ROR rule sees what the TR rule cannot",
		Columns: []string{"n_S", "|D_FK|", "TR", "ROR(qR*=2)", "ROR(qR*=|D_FK|)", "TRclears", "RORclears"}}
	gapCD := 0
	for _, nS := range NSSweep {
		for _, nR := range FKSweep {
			if nR*4 >= nS {
				continue
			}
			tr, err := core.TupleRatio(nS, nR)
			if err != nil {
				return nil, err
			}
			rorSmall, err := core.ROR(nS, nR, 2, core.DefaultDelta)
			if err != nil {
				return nil, err
			}
			rorEqual, err := core.ROR(nS, nR, nR, core.DefaultDelta)
			if err != nil {
				return nil, err
			}
			trClears := tr >= th.Tau
			rorClears := rorEqual <= th.Rho
			if rorClears && !trClears {
				gapCD++
			}
			gap.Add(d(nS), d(nR), f(tr), f(rorSmall), f(rorEqual),
				fmt.Sprintf("%v", trClears), fmt.Sprintf("%v", rorClears))
		}
	}
	sum.Add("Figure-5 gap: C∖D when qR*=|D_FK| (ROR clears, TR refuses)", d(gapCD))
	return &Result{ID: "fig1", Tables: []*Table{grid, sum, gap}}, nil
}
