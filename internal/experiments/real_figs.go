package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hamlet/internal/core"
	"hamlet/internal/dataset"
	"hamlet/internal/fs"
	"hamlet/internal/ml"
	"hamlet/internal/ml/logreg"
	"hamlet/internal/ml/nb"
	"hamlet/internal/obs"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// Methods returns the four feature selection methods of Figure 7 in the
// paper's order: two wrappers, two filters.
func Methods() []fs.Method {
	return []fs.Method{fs.Forward{}, fs.Backward{}, fs.MIFilter(), fs.IGRFilter()}
}

// prepared bundles a generated mimic with its holdout split, shared across
// all plans and methods of one dataset so comparisons are paired, plus the
// budget's observability hooks for per-run progress and spans.
type prepared struct {
	spec  synth.MimicSpec
	data  *dataset.Dataset
	split *dataset.Split
	prog  *obs.Progress
	trace *obs.Span
}

func prepare(spec synth.MimicSpec, b Budget, seed uint64) (*prepared, error) {
	sp := b.Trace.Child("generate(" + spec.Name + ")")
	ds, err := spec.Generate(b.MimicScale, seed)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp.Add("rows", int64(ds.NumRows()))
	split, err := dataset.DefaultSplit(ds.NumRows(), stats.NewRNG(seed+1))
	if err != nil {
		return nil, err
	}
	return &prepared{spec: spec, data: ds, split: split, prog: b.Progress, trace: b.Trace}, nil
}

// fsRun is one (plan, method) end-to-end outcome.
type fsRun struct {
	testErr  float64
	selected []string
	elapsed  time.Duration
	evals    int
	features int // candidate features in the input design
}

// runFS materializes the plan, runs the method over the holdout split with
// Naive Bayes, and reports the final test error of the selected subset.
func (p *prepared) runFS(plan dataset.Plan, method fs.Method) (fsRun, error) {
	defer p.prog.Step(1)
	sp := p.trace.Child(fmt.Sprintf("%s: select(%s, tables=%d)", p.spec.Name, method.Name(), tablesInPlan(plan)))
	defer sp.End()
	design, err := p.data.Materialize(plan)
	if err != nil {
		return fsRun{}, err
	}
	train, val, test := p.split.Apply(design)
	start := time.Now()
	res, err := method.Select(nb.New(), train, val)
	elapsed := time.Since(start)
	if err != nil {
		return fsRun{}, err
	}
	sp.Add("evaluations", int64(res.Evaluations))
	sp.Add("input_features", int64(design.NumFeatures()))
	sp.Add("selected", int64(len(res.Features)))
	testErr, err := ml.Evaluate(nb.New(), train, test, res.Features)
	if err != nil {
		return fsRun{}, err
	}
	return fsRun{
		testErr:  testErr,
		selected: res.FeatureNames(train),
		elapsed:  elapsed,
		evals:    res.Evaluations,
		features: design.NumFeatures(),
	}, nil
}

// joinOpt computes the paper's JoinOpt plan for the dataset via the TR rule.
func (p *prepared) joinOpt() (dataset.Plan, []core.Decision, error) {
	return core.NewAdvisor().JoinOptPlan(p.data)
}

// tablesInPlan counts the base tables feeding a plan's design (S plus the
// joined attribute tables), the "#Tables in input" of Figure 7.
func tablesInPlan(p dataset.Plan) int { return 1 + len(p.JoinFKs) }

// RunFig6 regenerates the Figure 6 dataset-statistics table for the mimics
// at the budget's scale (scale 1 reproduces the paper's counts exactly).
func RunFig6(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: dataset statistics (mimics at scale %g)", b.MimicScale),
		Columns: []string{"Dataset", "#Y", "n_S", "d_S", "k", "k'", "(n_Ri, d_Ri)"},
	}
	for _, spec := range synth.Mimics() {
		nS, dS, k, kPrime, attrs := spec.Stats(b.MimicScale)
		t.Add(spec.Name, d(spec.Classes), d(nS), d(dS), d(k), d(kPrime), strings.Join(attrs, ", "))
	}
	return &Result{ID: "fig6", Tables: []*Table{t}}, nil
}

// RunFig7 regenerates Figure 7: for every dataset and feature selection
// method, the holdout test error and feature-selection runtime of JoinAll
// versus JoinOpt, plus the number of input tables and the selected features.
func RunFig7(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	errT := &Table{Title: "Figure 7(A): holdout test error after feature selection",
		Columns: []string{"Dataset", "Method", "Metric", "JoinAll", "JoinOpt", "TablesAll", "TablesOpt"}}
	rtT := &Table{Title: "Figure 7(B): feature selection runtime",
		Columns: []string{"Dataset", "Method", "JoinAll_ms", "JoinOpt_ms", "Speedup", "EvalsAll", "EvalsOpt", "FeatsAll", "FeatsOpt"}}
	selT := &Table{Title: "Figure 7: output feature sets (appendix F)",
		Columns: []string{"Dataset", "Method", "Plan", "Selected"}}
	b.Progress.AddTotal(int64(len(synth.Mimics()) * len(Methods()) * 2))
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+20+uint64(si))
		if err != nil {
			return nil, err
		}
		joinAll := p.data.JoinAllPlan()
		joinOpt, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		for _, method := range Methods() {
			all, err := p.runFS(joinAll, method)
			if err != nil {
				return nil, err
			}
			opt, err := p.runFS(joinOpt, method)
			if err != nil {
				return nil, err
			}
			errT.Add(spec.Name, method.Name(), ml.MetricName(spec.Classes),
				f(all.testErr), f(opt.testErr), d(tablesInPlan(joinAll)), d(tablesInPlan(joinOpt)))
			speedup := float64(all.elapsed) / float64(maxDuration(opt.elapsed, time.Microsecond))
			rtT.Add(spec.Name, method.Name(),
				fmt.Sprintf("%.2f", float64(all.elapsed)/1e6),
				fmt.Sprintf("%.2f", float64(opt.elapsed)/1e6),
				fmt.Sprintf("%.1fx", speedup),
				d(all.evals), d(opt.evals), d(all.features), d(opt.features))
			selT.Add(spec.Name, method.Name(), "JoinAll", strings.Join(all.selected, " "))
			selT.Add(spec.Name, method.Name(), "JoinOpt", strings.Join(opt.selected, " "))
		}
	}
	return &Result{ID: "fig7", Tables: []*Table{errT, rtT, selT}}, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// subsetPlans enumerates every join-subset plan over the dataset's
// closed-domain FKs (open-domain tables are always joined), labeled the way
// Figure 8(A) labels them: "NoJoins", "JoinAll", or the avoided FK set.
func subsetPlans(ds *dataset.Dataset) []struct {
	Label string
	Plan  dataset.Plan
} {
	var closed, open []string
	for _, at := range ds.Attrs {
		if at.ClosedDomain {
			closed = append(closed, at.FK)
		} else {
			open = append(open, at.FK)
		}
	}
	n := len(closed)
	out := make([]struct {
		Label string
		Plan  dataset.Plan
	}, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var joined []string
		var avoided []string
		for i, fk := range closed {
			if mask&(1<<i) != 0 {
				joined = append(joined, fk)
			} else {
				avoided = append(avoided, fk)
			}
		}
		label := "avoid{" + strings.Join(avoided, ",") + "}"
		if len(avoided) == 0 {
			label = "JoinAll"
		} else if len(avoided) == n {
			label = "NoJoins"
		}
		out = append(out, struct {
			Label string
			Plan  dataset.Plan
		}{label, dataset.Plan{JoinFKs: append(append([]string(nil), joined...), open...)}})
	}
	return out
}

// RunFig8A regenerates Figure 8(A): the robustness study. For every dataset
// and every join-subset plan, the holdout test errors under forward and
// backward selection, with the plan JoinOpt chose marked.
func RunFig8A(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 8(A): robustness — test error of every join-subset plan",
		Columns: []string{"Dataset", "Plan", "FS", "BS", "ChosenByJoinOpt"}}
	for si, spec := range synth.Mimics() {
		if spec.Name == "Expedia" {
			// The paper omits Expedia here: it has only one closed-domain
			// FK, so Figure 7 already covers both plans.
			continue
		}
		p, err := prepare(spec, b, b.Seed+40+uint64(si))
		if err != nil {
			return nil, err
		}
		optPlan, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		optKey := planKey(optPlan)
		b.Progress.AddTotal(int64(2 * len(subsetPlans(p.data))))
		for _, sp := range subsetPlans(p.data) {
			fsRunF, err := p.runFS(sp.Plan, fs.Forward{})
			if err != nil {
				return nil, err
			}
			fsRunB, err := p.runFS(sp.Plan, fs.Backward{})
			if err != nil {
				return nil, err
			}
			chosen := ""
			if planKey(sp.Plan) == optKey {
				chosen = "*"
			}
			t.Add(spec.Name, sp.Label, f(fsRunF.testErr), f(fsRunB.testErr), chosen)
		}
	}
	return &Result{ID: "fig8a", Tables: []*Table{t}}, nil
}

// planKey canonicalizes a plan's joined-FK set for comparison.
func planKey(p dataset.Plan) string {
	fks := append([]string(nil), p.JoinFKs...)
	for i := 1; i < len(fks); i++ {
		for j := i; j > 0 && fks[j] < fks[j-1]; j-- {
			fks[j], fks[j-1] = fks[j-1], fks[j]
		}
	}
	return strings.Join(fks, ",")
}

// RunFig8B regenerates Figure 8(B): the sensitivity study. For every
// closed-domain FK, its TR and worst-case ROR, the verdicts at the default
// (ρ=2.5, τ=20) and relaxed (ρ=4.2, τ=10) thresholds, and the overall
// ROR↔1/√TR correlation across the attribute tables.
func RunFig8B(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 8(B): sensitivity — per-table TR and ROR vs thresholds",
		Columns: []string{"Dataset", "Attr", "TR", "ROR", "1/sqrt(TR)", "avoid@default", "avoid@relaxed"}}
	var rors, inv []float64
	def, rel := core.NewAdvisor(), core.NewAdvisor()
	rel.Thresholds = core.RelaxedThresholds
	for si, spec := range synth.Mimics() {
		ds, err := spec.Generate(b.MimicScale, b.Seed+60+uint64(si))
		if err != nil {
			return nil, err
		}
		defDecs, err := def.Decide(ds)
		if err != nil {
			return nil, err
		}
		relDecs, err := rel.Decide(ds)
		if err != nil {
			return nil, err
		}
		for i, dec := range defDecs {
			if !dec.Considered {
				continue
			}
			rors = append(rors, dec.ROR)
			inv = append(inv, 1/math.Sqrt(dec.TR))
			t.Add(spec.Name, dec.Attr, f(dec.TR), f(dec.ROR), f(1/math.Sqrt(dec.TR)),
				fmt.Sprintf("%v", dec.Avoid), fmt.Sprintf("%v", relDecs[i].Avoid))
		}
	}
	sum := &Table{Title: "Figure 8(B) summary", Columns: []string{"quantity", "value"}}
	sum.Add("Pearson(ROR, 1/sqrt(TR)) across attribute tables", f(stats.Pearson(rors, inv)))
	return &Result{ID: "fig8b", Tables: []*Table{t, sum}}, nil
}

// RunFig8C regenerates Figure 8(C): JoinOpt versus JoinAllNoFK (dropping all
// closed-domain foreign keys a priori) under forward and backward selection.
func RunFig8C(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 8(C): JoinOpt vs JoinAllNoFK (drop all FKs a priori)",
		Columns: []string{"Dataset", "Method", "JoinOpt", "JoinAllNoFK"}}
	b.Progress.AddTotal(int64(len(synth.Mimics()) * 2 * 2))
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+80+uint64(si))
		if err != nil {
			return nil, err
		}
		optPlan, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		noFK := p.data.JoinAllNoFKPlan()
		for _, method := range []fs.Method{fs.Forward{}, fs.Backward{}} {
			opt, err := p.runFS(optPlan, method)
			if err != nil {
				return nil, err
			}
			drop, err := p.runFS(noFK, method)
			if err != nil {
				return nil, err
			}
			t.Add(spec.Name, method.Name(), f(opt.testErr), f(drop.testErr))
		}
	}
	return &Result{ID: "fig8c", Tables: []*Table{t}}, nil
}

// RunFig9 regenerates Figure 9: logistic regression with the embedded L1 and
// L2 feature selection, JoinAll versus JoinOpt, on every dataset.
func RunFig9(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 9: logistic regression with L1/L2 regularization",
		Columns: []string{"Dataset", "Metric", "L1_JoinAll", "L1_JoinOpt", "L2_JoinAll", "L2_JoinOpt"}}
	b.Progress.AddTotal(int64(len(synth.Mimics()) * 2 * 2))
	for si, spec := range synth.Mimics() {
		p, err := prepare(spec, b, b.Seed+100+uint64(si))
		if err != nil {
			return nil, err
		}
		optPlan, _, err := p.joinOpt()
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name, ml.MetricName(spec.Classes)}
		for _, pen := range []logreg.Penalty{logreg.L1, logreg.L2} {
			for _, plan := range []dataset.Plan{p.data.JoinAllPlan(), optPlan} {
				design, err := p.data.Materialize(plan)
				if err != nil {
					return nil, err
				}
				train, val, test := p.split.Apply(design)
				emb := fs.Embedded{Penalty: pen}
				sp := b.Trace.Child(fmt.Sprintf("%s: embedded(%v, d=%d)", spec.Name, pen, design.NumFeatures()))
				mod, err := emb.FitBest(train, val)
				sp.End()
				if err != nil {
					return nil, err
				}
				metric := ml.MetricFor(spec.Classes)
				row = append(row, f(metric(ml.PredictAll(mod, test), test.Y)))
				b.Progress.Step(1)
			}
		}
		t.Add(row...)
	}
	return &Result{ID: "fig9", Tables: []*Table{t}}, nil
}

// RunTAN regenerates the Appendix E comparison: Naive Bayes versus TAN on
// joined simulation data, showing TAN gains nothing from foreign features
// under the FD FK → X_R (they attach to FK as Kronecker deltas).
func RunTAN(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Title: "Appendix E: TAN vs Naive Bayes on joined data (UseAll features)",
		Columns: []string{"n_S", "NB", "TAN", "TAN-NB"}}
	sim := oneXrBase()
	rng := stats.NewRNG(b.Seed + 120)
	nsGrid := []int{200, 500, 1000, 2000}
	b.Progress.AddTotal(int64(len(nsGrid) * b.Worlds))
	for _, nS := range nsGrid {
		var nbErr, tanErr float64
		for w := 0; w < b.Worlds; w++ {
			world, err := synth.NewWorld(sim, rng.Uint64())
			if err != nil {
				return nil, err
			}
			train := world.Sample(nS, rng)
			test := world.Sample(b.NTest, rng)
			feats := world.UseAllFeatures()
			e1, err := ml.Evaluate(nb.New(), train, test, feats)
			if err != nil {
				return nil, err
			}
			e2, err := ml.Evaluate(tanLearner(), train, test, feats)
			if err != nil {
				return nil, err
			}
			nbErr += e1
			tanErr += e2
			b.Progress.Step(1)
		}
		nbErr /= float64(b.Worlds)
		tanErr /= float64(b.Worlds)
		t.Add(d(nS), f(nbErr), f(tanErr), f(tanErr-nbErr))
	}
	// Real-data side of Appendix E: NB vs TAN on the mimics' JoinAll
	// designs, where every foreign feature hangs off its FK in the tree.
	t2 := &Table{Title: "Appendix E: TAN vs Naive Bayes on dataset mimics (JoinAll)",
		Columns: []string{"Dataset", "Metric", "NB", "TAN"}}
	for si, spec := range []string{"Walmart", "Yelp", "MovieLens1M"} {
		ms, err := synth.MimicByName(spec)
		if err != nil {
			return nil, err
		}
		p, err := prepare(ms, b, b.Seed+125+uint64(si))
		if err != nil {
			return nil, err
		}
		design, err := p.data.Materialize(p.data.JoinAllPlan())
		if err != nil {
			return nil, err
		}
		train, _, test := p.split.Apply(design)
		feats := make([]int, design.NumFeatures())
		for i := range feats {
			feats[i] = i
		}
		nbE, err := ml.Evaluate(nbLearner(), train, test, feats)
		if err != nil {
			return nil, err
		}
		tanE, err := ml.Evaluate(tanLearner(), train, test, feats)
		if err != nil {
			return nil, err
		}
		t2.Add(ms.Name, ml.MetricName(ms.Classes), f(nbE), f(tanE))
	}
	return &Result{ID: "tan", Tables: []*Table{t, t2}}, nil
}
