package experiments

import (
	"fmt"
	"sort"

	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/ml/tan"
	"hamlet/internal/stats"
)

// tanLearner and nbLearner construct the learners; isolated here so the
// figure runners read uniformly.
func tanLearner() ml.Learner { return tan.New() }

func nbLearner() ml.Learner { return nb.New() }

// rngFor derives a deterministic stream for a runner step.
func rngFor(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

// Runner regenerates one paper artifact.
type Runner func(Budget) (*Result, error)

// Registry maps experiment IDs to runners — the per-experiment index of
// DESIGN.md §5.
var Registry = map[string]Runner{
	"fig1":  RunFig1,
	"fig3":  RunFig3,
	"fig4":  RunFig4,
	"fig6":  RunFig6,
	"fig7":  RunFig7,
	"fig8a": RunFig8A,
	"fig8b": RunFig8B,
	"fig8c": RunFig8C,
	"fig9":  RunFig9,
	"fig10": RunFig10,
	"fig11": RunFig11,
	"fig12": RunFig12,
	"fig13": RunFig13,
	"tan":   RunTAN,

	// Extensions beyond the paper's figures (see extensions.go): the
	// appendix's third simulation scenario, the FCBF instance-based
	// redundancy baseline, the §4.2 joint-decision ablation, and the
	// Appendix D skew-guard comparison.
	"xsfk":      RunXsFk,
	"fcbf":      RunFCBF,
	"joint":     RunJoint,
	"skewguard": RunSkewGuard,
	"coldstart": RunColdStart,
	"cv":        RunCV,
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run looks up and executes one experiment.
func Run(id string, b Budget) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(b)
}
