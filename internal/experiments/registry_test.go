package experiments

import (
	"sort"
	"strings"
	"testing"
)

func TestIDsSortedAndUnique(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 {
		t.Fatal("IDs() is empty")
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("IDs() not sorted: %v", ids)
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestIDsMatchRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() has %d entries, Registry has %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Errorf("IDs() lists %q but Registry has no runner for it", id)
		}
	}
	for _, want := range []string{"fig3", "fig7", "tan"} {
		if Registry[want] == nil {
			t.Errorf("Registry missing core experiment %q", want)
		}
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	_, err := Run("nope", Quick)
	if err == nil {
		t.Fatal("Run(nope) succeeded")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error does not name the bad id: %v", err)
	}
}

func TestRunKnownID(t *testing.T) {
	// fig6 is a pure table (no Monte Carlo), so it is cheap even in tests.
	res, err := Run("fig6", Quick)
	if err != nil {
		t.Fatalf("Run(fig6): %v", err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("Run(fig6) returned no tables")
	}
	if res.ID != "fig6" {
		t.Errorf("Result.ID = %q, want fig6", res.ID)
	}
}
