package experiments

import (
	"fmt"
	"math"

	"hamlet/internal/biasvar"
	"hamlet/internal/core"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
	"hamlet/internal/synth"
)

// simPoint runs the Monte Carlo bias–variance study for one simulation
// configuration and training size, reporting progress and a per-point child
// span through the budget's observability hooks.
func simPoint(sim synth.SimConfig, nTrain int, b Budget, seed uint64) (map[string]biasvar.Decomp, error) {
	sp := b.Trace.Child(fmt.Sprintf("biasvar(%s, n_S=%d, |D_FK|=%d)", sim.Scenario, nTrain, sim.NR))
	defer sp.End()
	return biasvar.Run(sim, biasvar.Config{
		NTrain:   nTrain,
		NTest:    b.NTest,
		L:        b.L,
		Worlds:   b.Worlds,
		Seed:     seed,
		Workers:  b.Workers,
		Learner:  nb.New(),
		Progress: b.Progress,
		Span:     sp,
	})
}

// addSweepRow appends one sweep point (three model classes) to err/netvar
// tables whose first column holds the swept value.
func addSweepRow(errT, nvT *Table, x string, out map[string]biasvar.Decomp) {
	errT.Add(x, f(out["UseAll"].TestError), f(out["NoJoin"].TestError), f(out["NoFK"].TestError))
	nvT.Add(x, f(out["UseAll"].NetVariance), f(out["NoJoin"].NetVariance), f(out["NoFK"].NetVariance))
}

func sweepTables(fig, xName string) (*Table, *Table) {
	cols := []string{xName, "UseAll", "NoJoin", "NoFK"}
	return &Table{Title: fig + ": average test error vs " + xName, Columns: cols},
		&Table{Title: fig + ": average net variance vs " + xName, Columns: cols}
}

// oneXrBase is the Figure 3 configuration: dS=2, dR=4, |D_FK|=40, p=0.1.
func oneXrBase() synth.SimConfig {
	return synth.SimConfig{Scenario: synth.OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}
}

// allXsXrBase is the Figure 11 configuration: dS=4, dR=4, |D_FK|=40, p=0.1.
func allXsXrBase() synth.SimConfig {
	return synth.SimConfig{Scenario: synth.AllXsXr, DS: 4, DR: 4, NR: 40, P: 0.1}
}

// NSSweep and FKSweep are the swept grids shared by Figures 3/11 and the
// scatter studies of Figures 4/12.
var (
	NSSweep = []int{100, 200, 400, 1000, 2000, 4000}
	FKSweep = []int{10, 25, 50, 100, 200, 400}
)

// RunFig3 regenerates Figure 3: scenario OneXr, test error and net variance
// (A) against n_S with (d_S, d_R, |D_FK|) = (2, 4, 40) and (B) against
// |D_FK| with (n_S, d_S, d_R) = (1000, 4, 4).
func RunFig3(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	errA, nvA := sweepTables("Figure 3(A)", "n_S")
	for _, nS := range NSSweep {
		out, err := simPoint(oneXrBase(), nS, b, b.Seed)
		if err != nil {
			return nil, err
		}
		addSweepRow(errA, nvA, d(nS), out)
	}
	errB, nvB := sweepTables("Figure 3(B)", "|D_FK|")
	for _, nR := range FKSweep {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: nR, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+1)
		if err != nil {
			return nil, err
		}
		addSweepRow(errB, nvB, d(nR), out)
	}
	return &Result{ID: "fig3", Tables: []*Table{errA, nvA, errB, nvB}}, nil
}

// RunFig10 regenerates Figure 10: scenario OneXr under the remaining
// parameter sweeps — (A) d_R with (n_S, d_S, |D_FK|, p) = (1000, 4, 100,
// 0.1), (B) d_S with (n_S, d_R, |D_FK|, p) = (1000, 4, 40, 0.1), and (C) p
// with (n_S, d_S, d_R, |D_FK|) = (1000, 4, 4, 200).
func RunFig10(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	errA, nvA := sweepTables("Figure 10(A)", "d_R")
	for _, dR := range []int{1, 2, 4, 8, 16} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: dR, NR: 100, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+2)
		if err != nil {
			return nil, err
		}
		addSweepRow(errA, nvA, d(dR), out)
	}
	errB, nvB := sweepTables("Figure 10(B)", "d_S")
	for _, dS := range []int{0, 2, 4, 8, 16} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: dS, DR: 4, NR: 40, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+3)
		if err != nil {
			return nil, err
		}
		addSweepRow(errB, nvB, d(dS), out)
	}
	errC, nvC := sweepTables("Figure 10(C)", "p")
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 200, P: p}
		out, err := simPoint(sim, 1000, b, b.Seed+4)
		if err != nil {
			return nil, err
		}
		addSweepRow(errC, nvC, fmt.Sprintf("%.2f", p), out)
	}
	return &Result{ID: "fig10", Tables: []*Table{errA, nvA, errB, nvB, errC, nvC}}, nil
}

// RunFig11 regenerates Figure 11: scenario AllXsXr under sweeps of n_S,
// |D_FK|, d_R, and d_S.
func RunFig11(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	errA, nvA := sweepTables("Figure 11(A)", "n_S")
	for _, nS := range NSSweep {
		out, err := simPoint(allXsXrBase(), nS, b, b.Seed+5)
		if err != nil {
			return nil, err
		}
		addSweepRow(errA, nvA, d(nS), out)
	}
	errB, nvB := sweepTables("Figure 11(B)", "|D_FK|")
	for _, nR := range FKSweep {
		sim := synth.SimConfig{Scenario: synth.AllXsXr, DS: 4, DR: 4, NR: nR, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+6)
		if err != nil {
			return nil, err
		}
		addSweepRow(errB, nvB, d(nR), out)
	}
	errC, nvC := sweepTables("Figure 11(C)", "d_R")
	for _, dR := range []int{1, 2, 4, 8, 16} {
		sim := synth.SimConfig{Scenario: synth.AllXsXr, DS: 4, DR: dR, NR: 100, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+7)
		if err != nil {
			return nil, err
		}
		addSweepRow(errC, nvC, d(dR), out)
	}
	errD, nvD := sweepTables("Figure 11(D)", "d_S")
	for _, dS := range []int{0, 2, 4, 8, 16} {
		sim := synth.SimConfig{Scenario: synth.AllXsXr, DS: dS, DR: 4, NR: 40, P: 0.1}
		out, err := simPoint(sim, 1000, b, b.Seed+8)
		if err != nil {
			return nil, err
		}
		addSweepRow(errD, nvD, d(dS), out)
	}
	return &Result{ID: "fig11", Tables: []*Table{errA, nvA, errB, nvB, errC, nvC, errD, nvD}}, nil
}

// scatterStudy runs the configuration grid behind Figures 4 and 12: the
// cross product of NSSweep × FKSweep (skipping degenerate points) for the
// given scenario, producing one ScatterPoint per configuration plus the
// scatter table.
func scatterStudy(scenario synth.Scenario, b Budget, seed uint64) (*Table, []core.ScatterPoint, error) {
	t := &Table{
		Title:   "scatter: ΔTest error vs ROR and TR (" + scenario.String() + ")",
		Columns: []string{"n_S", "|D_FK|", "ROR", "TR", "1/sqrt(TR)", "dErr"},
	}
	var points []core.ScatterPoint
	for _, nS := range NSSweep {
		for _, nR := range FKSweep {
			if nR*4 >= nS {
				continue // keep TR ≥ 4 so NB has a few examples per FK value
			}
			sim := synth.SimConfig{Scenario: scenario, DS: 2, DR: 4, NR: nR, P: 0.1}
			out, err := simPoint(sim, nS, b, seed+uint64(nS*7+nR))
			if err != nil {
				return nil, nil, err
			}
			dErr := out["NoJoin"].TestError - out["UseAll"].TestError
			ror, err := core.ROR(nS, nR, 2, core.DefaultDelta)
			if err != nil {
				return nil, nil, err
			}
			tr, err := core.TupleRatio(nS, nR)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, core.ScatterPoint{ROR: ror, TR: tr, DeltaError: dErr})
			t.Add(d(nS), d(nR), f(ror), f(tr), f(1/math.Sqrt(tr)), f(dErr))
		}
	}
	return t, points, nil
}

// scatterSummary derives the Figure 4(C)-style summary: the ROR↔1/√TR
// Pearson coefficient and thresholds tuned at both paper tolerances.
func scatterSummary(points []core.ScatterPoint) *Table {
	t := &Table{Title: "scatter summary: ROR↔TR relationship and tuned thresholds",
		Columns: []string{"quantity", "value"}}
	var rors, inv []float64
	for _, p := range points {
		rors = append(rors, p.ROR)
		inv = append(inv, 1/math.Sqrt(p.TR))
	}
	t.Add("Pearson(ROR, 1/sqrt(TR))", f(stats.Pearson(rors, inv)))
	for _, tol := range []float64{0.001, 0.01} {
		th, err := core.TuneThresholds(points, tol)
		if err != nil {
			t.Add(fmt.Sprintf("thresholds@%.3f", tol), "untunable: "+err.Error())
			continue
		}
		t.Add(fmt.Sprintf("rho@%.3f", tol), f(th.Rho))
		t.Add(fmt.Sprintf("tau@%.3f", tol), f(th.Tau))
	}
	return t
}

// RunFig4 regenerates Figure 4: the OneXr scatter of ΔTest error against
// ROR and TR, and the ROR↔1/√TR linearity summary with tuned thresholds.
func RunFig4(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	scatter, points, err := scatterStudy(synth.OneXr, b, b.Seed+10)
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig4", Tables: []*Table{scatter, scatterSummary(points)}}, nil
}

// RunFig12 regenerates Figure 12: the same scatter study for the AllXsXr
// scenario, verifying that the same thresholds remain valid.
func RunFig12(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	scatter, points, err := scatterStudy(synth.AllXsXr, b, b.Seed+11)
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig12", Tables: []*Table{scatter, scatterSummary(points)}}, nil
}

// RunFig13 regenerates Figure 13 (Appendix D): foreign-key skew. (A) benign
// Zipf skew — A1 varies the Zipf parameter at n_S = 1000, A2 varies n_S at
// parameter 2; (B) malign needle-and-thread skew — B1 varies the needle
// probability at n_S = 1000, B2 varies n_S at probability 0.5. Only UseAll
// and NoJoin are compared, as in the paper.
func RunFig13(b Budget) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	mk := func(title, x string) *Table {
		return &Table{Title: title, Columns: []string{x, "UseAll", "NoJoin", "dErr"}}
	}
	add := func(t *Table, x string, out map[string]biasvar.Decomp) {
		t.Add(x, f(out["UseAll"].TestError), f(out["NoJoin"].TestError),
			f(out["NoJoin"].TestError-out["UseAll"].TestError))
	}
	a1 := mk("Figure 13(A1): benign Zipf skew, vary skew parameter", "zipf_s")
	for _, s := range []float64{0, 1, 2, 4} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 40, P: 0.1, Skew: synth.ZipfSkew, ZipfS: s}
		out, err := simPoint(sim, 1000, b, b.Seed+12)
		if err != nil {
			return nil, err
		}
		add(a1, fmt.Sprintf("%.1f", s), out)
	}
	a2 := mk("Figure 13(A2): benign Zipf skew (s=2), vary n_S", "n_S")
	for _, nS := range []int{250, 500, 1000, 2000, 4000} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 40, P: 0.1, Skew: synth.ZipfSkew, ZipfS: 2}
		out, err := simPoint(sim, nS, b, b.Seed+13)
		if err != nil {
			return nil, err
		}
		add(a2, d(nS), out)
	}
	b1 := mk("Figure 13(B1): malign needle-and-thread skew, vary needle probability", "needle_p")
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 40, P: 0.1, Skew: synth.NeedleThreadSkew, NeedleP: p}
		out, err := simPoint(sim, 1000, b, b.Seed+14)
		if err != nil {
			return nil, err
		}
		add(b1, fmt.Sprintf("%.1f", p), out)
	}
	b2 := mk("Figure 13(B2): malign skew (needle=0.5), vary n_S", "n_S")
	for _, nS := range []int{250, 500, 1000, 2000, 4000} {
		sim := synth.SimConfig{Scenario: synth.OneXr, DS: 4, DR: 4, NR: 40, P: 0.1, Skew: synth.NeedleThreadSkew, NeedleP: 0.5}
		out, err := simPoint(sim, nS, b, b.Seed+15)
		if err != nil {
			return nil, err
		}
		add(b2, d(nS), out)
	}
	return &Result{ID: "fig13", Tables: []*Table{a1, a2, b1, b2}}, nil
}
