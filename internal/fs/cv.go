package fs

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
)

// The paper's §2.2 notes that wrapper search can score subsets either by
// holdout validation error or by k-fold cross-validation error, and adopts
// holdout for simplicity. CrossValidated wraps any wrapper-style Method so
// its subset evaluations use k-fold CV over the combined train+validation
// data instead — more stable on small datasets at k× the cost.

// CrossValidated adapts a wrapper method to k-fold cross-validation.
type CrossValidated struct {
	// Inner is the wrapped method (Forward or Backward).
	Inner Method
	// K is the number of folds (≥ 2).
	K int
	// Seed drives the fold assignment.
	Seed uint64
}

// Name implements Method.
func (c CrossValidated) Name() string {
	return fmt.Sprintf("%s-cv%d", c.Inner.Name(), c.K)
}

// cvEvaluator scores subsets by k-fold CV error over the pooled data. Like
// the holdout evaluator it has a Naive Bayes fast path: per-fold sufficient
// statistics are tabulated once, and a subset's fold error reuses them.
type cvEvaluator struct {
	pool   *dataset.Design
	folds  *dataset.KFold
	metric ml.Metric
	// fast path: per-fold training statistics and validation designs.
	foldStats []*nb.Stats
	foldVal   []*dataset.Design
	alpha     float64
	// generic path:
	learner   ml.Learner
	foldTrain []*dataset.Design
	count     int
}

func newCVEvaluator(l ml.Learner, pool *dataset.Design, k int, seed uint64) (*cvEvaluator, error) {
	folds, err := dataset.NewKFold(pool.NumRows(), k, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	e := &cvEvaluator{pool: pool, folds: folds, metric: ml.MetricFor(pool.NumClasses)}
	nbl, fast := l.(*nb.Learner)
	if fast {
		e.alpha = nbl.Alpha
	} else {
		e.learner = l
	}
	for i := 0; i < k; i++ {
		trIdx, vaIdx, err := folds.Fold(i)
		if err != nil {
			return nil, err
		}
		train := pool.SelectRows(trIdx)
		e.foldVal = append(e.foldVal, pool.SelectRows(vaIdx))
		if fast {
			e.foldStats = append(e.foldStats, nb.NewStats(train))
		} else {
			e.foldTrain = append(e.foldTrain, train)
		}
	}
	return e, nil
}

func (e *cvEvaluator) Eval(features []int) (float64, error) {
	e.count++
	evalCount.Inc()
	total := 0.0
	for i := 0; i < e.folds.K(); i++ {
		val := e.foldVal[i]
		var mod ml.Model
		var err error
		if e.foldStats != nil {
			mod, err = nb.ModelFromStats(e.foldStats[i], features, e.alpha)
		} else {
			mod, err = e.learner.Fit(e.foldTrain[i], features)
		}
		if err != nil {
			return 0, err
		}
		total += e.metric(ml.PredictAll(mod, val), val.Y)
	}
	return total / float64(e.folds.K()), nil
}

func (e *cvEvaluator) Count() int { return e.count }

// Select implements Method: it pools train and val, then reruns the inner
// wrapper's greedy search against the CV evaluator. Only Forward and
// Backward are supported (filters tune k against a single validation set by
// construction).
func (c CrossValidated) Select(l ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	if c.K < 2 {
		return Result{}, fmt.Errorf("fs: cross-validation needs K ≥ 2, got %d", c.K)
	}
	// Pool the two splits: CV replaces the holdout protocol.
	n := train.NumRows() + val.NumRows()
	idxTrain := make([]int, train.NumRows())
	for i := range idxTrain {
		idxTrain[i] = i
	}
	pool := &dataset.Design{NumClasses: train.NumClasses}
	pool.Y = append(append([]int32(nil), train.Y...), val.Y...)
	pool.Features = make([]dataset.Feature, train.NumFeatures())
	for f := range pool.Features {
		src, extra := train.Features[f], val.Features[f]
		data := make([]int32, 0, n)
		data = append(append(data, src.Data...), extra.Data...)
		pool.Features[f] = dataset.Feature{Name: src.Name, Card: src.Card, Data: data, Source: src.Source, IsFK: src.IsFK}
	}
	ev, err := newCVEvaluator(l, pool, c.K, c.Seed)
	if err != nil {
		return Result{}, err
	}
	switch c.Inner.(type) {
	case Forward:
		return forwardWith(ev, pool.NumFeatures())
	case Backward:
		return backwardWith(ev, pool.NumFeatures())
	}
	return Result{}, fmt.Errorf("fs: cross-validation supports Forward and Backward, not %s", c.Inner.Name())
}

// forwardWith runs greedy forward search against an arbitrary evaluator.
func forwardWith(ev Evaluator, d int) (Result, error) {
	inSet := make([]bool, d)
	var current []int
	best, err := ev.Eval(nil)
	if err != nil {
		return Result{}, err
	}
	for {
		pick := -1
		pickErr := best
		for f := 0; f < d; f++ {
			if inSet[f] {
				continue
			}
			cand := append(append([]int(nil), current...), f)
			e, err := ev.Eval(cand)
			if err != nil {
				return Result{}, err
			}
			if e < pickErr {
				pickErr, pick = e, f
			}
		}
		if pick < 0 {
			break
		}
		inSet[pick] = true
		current = append(current, pick)
		best = pickErr
	}
	observeRun(ev.Count())
	return Result{Features: current, ValError: best, Evaluations: ev.Count()}, nil
}

// backwardWith runs greedy backward search against an arbitrary evaluator.
func backwardWith(ev Evaluator, d int) (Result, error) {
	current := make([]int, d)
	for f := range current {
		current[f] = f
	}
	best, err := ev.Eval(current)
	if err != nil {
		return Result{}, err
	}
	for len(current) > 0 {
		pick := -1
		pickErr := best
		for pos := range current {
			cand := make([]int, 0, len(current)-1)
			cand = append(cand, current[:pos]...)
			cand = append(cand, current[pos+1:]...)
			e, err := ev.Eval(cand)
			if err != nil {
				return Result{}, err
			}
			if e < pickErr {
				pickErr, pick = e, pos
			}
		}
		if pick < 0 {
			break
		}
		current = append(current[:pick], current[pick+1:]...)
		best = pickErr
	}
	observeRun(ev.Count())
	return Result{Features: current, ValError: best, Evaluations: ev.Count()}, nil
}
