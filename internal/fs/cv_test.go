package fs

import (
	"testing"

	"hamlet/internal/ml/logreg"
	"hamlet/internal/ml/nb"
)

func TestCrossValidatedForwardPicksSignal(t *testing.T) {
	train, val := halves(signalNoise(2000, 3, 21))
	cv := CrossValidated{Inner: Forward{}, K: 4, Seed: 1}
	res, err := cv.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("CV forward missed the strong feature: %v", res.Features)
	}
	for _, f := range res.Features {
		if f >= 2 {
			t.Fatalf("CV forward kept noise feature %d", f)
		}
	}
}

func TestCrossValidatedBackward(t *testing.T) {
	train, val := halves(signalNoise(2000, 2, 22))
	cv := CrossValidated{Inner: Backward{}, K: 3, Seed: 2}
	res, err := cv.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("CV backward dropped the strong feature: %v", res.Features)
	}
}

func TestCrossValidatedGenericLearner(t *testing.T) {
	train, val := halves(signalNoise(400, 1, 23))
	cv := CrossValidated{Inner: Forward{}, K: 2, Seed: 3}
	res, err := cv.Select(logreg.New(logreg.L2), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("CV forward with logreg missed the signal: %v", res.Features)
	}
}

func TestCrossValidatedErrors(t *testing.T) {
	train, val := halves(signalNoise(100, 1, 24))
	if _, err := (CrossValidated{Inner: Forward{}, K: 1}).Select(nb.New(), train, val); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := (CrossValidated{Inner: MIFilter(), K: 3}).Select(nb.New(), train, val); err == nil {
		t.Fatal("CV over a filter accepted")
	}
	if _, err := (CrossValidated{Inner: Forward{}, K: 3}).Select(nb.New(), nil, val); err == nil {
		t.Fatal("nil train accepted")
	}
}

func TestCrossValidatedName(t *testing.T) {
	if (CrossValidated{Inner: Forward{}, K: 5}).Name() != "forward-cv5" {
		t.Fatal("name")
	}
}

// TestCrossValidatedMoreStableThanHoldout: CV's subset score averages k
// folds, so across reruns with different seeds its chosen subsets should
// never *lose* the strong feature, even on small data where a single
// holdout split occasionally misleads greedy search.
func TestCrossValidatedMoreStableThanHoldout(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		train, val := halves(signalNoise(600, 4, 30+seed))
		cv := CrossValidated{Inner: Forward{}, K: 5, Seed: seed}
		res, err := cv.Select(nb.New(), train, val)
		if err != nil {
			t.Fatal(err)
		}
		if !hasFeature(res, 0) {
			t.Fatalf("seed %d: CV forward lost the strong feature", seed)
		}
	}
}
