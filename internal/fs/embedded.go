package fs

import (
	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/logreg"
)

// Embedded is the paper's embedded feature selection (§2.2, §5.3): L1- or
// L2-regularized logistic regression over all candidate features, with the
// regularization strength tuned on the validation split. Under L1 the
// selected features are those retaining at least one nonzero indicator
// weight.
type Embedded struct {
	// Penalty selects L1 or L2.
	Penalty logreg.Penalty
	// Lambdas is the grid searched over the validation split; when empty,
	// DefaultLambdas is used.
	Lambdas []float64
	// Tol is the weight magnitude below which an indicator counts as zero
	// when reporting active features; defaults to 1e-6.
	Tol float64
}

// DefaultLambdas is the regularization grid used when Embedded.Lambdas is
// empty.
var DefaultLambdas = []float64{1e-5, 1e-4, 1e-3}

// Name implements Method.
func (e Embedded) Name() string { return "embedded-" + e.Penalty.String() }

// Select implements Method. The learner argument is ignored: the embedded
// method is wired to its own logistic regression (that is what "embedded"
// means); passing a non-nil learner of another type is not an error, to let
// harness code treat all methods uniformly.
func (e Embedded) Select(_ ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	lambdas := e.Lambdas
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	tol := e.Tol
	if tol == 0 {
		tol = 1e-6
	}
	all := make([]int, train.NumFeatures())
	for i := range all {
		all[i] = i
	}
	metric := ml.MetricFor(train.NumClasses)
	var best *logreg.Model
	bestErr := 0.0
	evals := 0
	for i, lam := range lambdas {
		l := logreg.New(e.Penalty)
		l.Config.Lambda = lam
		mod, err := l.Fit(train, all)
		if err != nil {
			return Result{}, err
		}
		evals++
		lm := mod.(*logreg.Model)
		errV := metric(ml.PredictAll(lm, val), val.Y)
		if i == 0 || errV < bestErr {
			best, bestErr = lm, errV
		}
	}
	var active []int
	for j := range all {
		if best.FeatureActive(j, tol) {
			active = append(active, all[j])
		}
	}
	observeRun(evals)
	return Result{Features: active, ValError: bestErr, Evaluations: evals}, nil
}

// FitBest refits the winning configuration and returns the trained model,
// for callers that need the model itself (e.g. test-error reporting).
func (e Embedded) FitBest(train, val *dataset.Design) (*logreg.Model, error) {
	if err := checkDesigns(train, val); err != nil {
		return nil, err
	}
	lambdas := e.Lambdas
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	all := make([]int, train.NumFeatures())
	for i := range all {
		all[i] = i
	}
	metric := ml.MetricFor(train.NumClasses)
	var best *logreg.Model
	bestErr := 0.0
	for i, lam := range lambdas {
		l := logreg.New(e.Penalty)
		l.Config.Lambda = lam
		mod, err := l.Fit(train, all)
		if err != nil {
			return nil, err
		}
		lm := mod.(*logreg.Model)
		errV := metric(ml.PredictAll(lm, val), val.Y)
		if i == 0 || errV < bestErr {
			best, bestErr = lm, errV
		}
	}
	return best, nil
}
