package fs

import (
	"sort"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// FCBF is the Fast Correlation-Based Filter of Yu & Liu (JMLR 2004), the
// redundancy-aware feature selection method the paper cites ([45]) when
// contrasting instance-based redundancy removal with its own schema-based
// join avoidance: FCBF discovers that foreign features are redundant given
// the FK by *computing over the data instance*, whereas Proposition 3.1
// guarantees the redundancy from the schema alone. Hamlet-Go includes FCBF
// both as a usable method and as the baseline for that comparison (the
// "fcbf" experiment).
//
// The algorithm scores every feature by symmetric uncertainty with the
// target, SU(F;Y) = 2·I(F;Y) / (H(F)+H(Y)), keeps those above Delta, and
// then walks the survivors in decreasing score order, removing any later
// feature G for which some kept earlier feature F has SU(F;G) ≥ SU(G;Y)
// (F approximates a Markov blanket of G).
type FCBF struct {
	// Delta is the minimum SU(F;Y) to keep a feature; 0 keeps all.
	Delta float64
}

// Name implements Method.
func (FCBF) Name() string { return "fcbf" }

// SymmetricUncertainty returns SU(A;B) = 2·I(A;B)/(H(A)+H(B)) ∈ [0,1],
// 0 when both entropies vanish.
func SymmetricUncertainty(a []int32, cardA int, b []int32, cardB int) float64 {
	ha := stats.Entropy(a, cardA)
	hb := stats.Entropy(b, cardB)
	if ha+hb == 0 {
		return 0
	}
	return 2 * stats.MutualInformation(a, cardA, b, cardB) / (ha + hb)
}

// Select implements Method. Unlike the wrappers, FCBF ignores the learner
// and the validation split for its choice (it is a pure filter); the
// validation error of the chosen subset is still reported for comparability.
func (f FCBF) Select(l ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	d := train.NumFeatures()
	su := make([]float64, d)
	for i := 0; i < d; i++ {
		ft := &train.Features[i]
		su[i] = SymmetricUncertainty(ft.Data, ft.Card, train.Y, train.NumClasses)
	}
	order := make([]int, 0, d)
	for i := 0; i < d; i++ {
		if su[i] > f.Delta {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return su[order[a]] > su[order[b]] })

	removed := make(map[int]bool)
	for ai := 0; ai < len(order); ai++ {
		fi := order[ai]
		if removed[fi] {
			continue
		}
		ff := &train.Features[fi]
		for bi := ai + 1; bi < len(order); bi++ {
			gi := order[bi]
			if removed[gi] {
				continue
			}
			gf := &train.Features[gi]
			if SymmetricUncertainty(ff.Data, ff.Card, gf.Data, gf.Card) >= su[gi] {
				removed[gi] = true
			}
		}
	}
	var selected []int
	for _, fi := range order {
		if !removed[fi] {
			selected = append(selected, fi)
		}
	}
	ev := NewEvaluator(l, train, val)
	valErr, err := ev.Eval(selected)
	if err != nil {
		return Result{}, err
	}
	observeRun(ev.Count())
	return Result{Features: selected, ValError: valErr, Evaluations: ev.Count()}, nil
}
