package fs

import (
	"math"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
)

func TestSymmetricUncertaintyBounds(t *testing.T) {
	y := []int32{0, 1, 0, 1, 0, 1}
	// SU(Y;Y) = 1.
	if su := SymmetricUncertainty(y, 2, y, 2); math.Abs(su-1) > 1e-12 {
		t.Fatalf("SU(Y;Y) = %v", su)
	}
	// Independent variables: SU ≈ 0.
	a := []int32{0, 0, 1, 1, 0, 0, 1, 1}
	b := []int32{0, 1, 0, 1, 0, 1, 0, 1}
	if su := SymmetricUncertainty(a, 2, b, 2); su > 1e-9 {
		t.Fatalf("SU of independents = %v", su)
	}
	// Constant variables: defined as 0.
	c := make([]int32, 6)
	if su := SymmetricUncertainty(c, 1, c, 1); su != 0 {
		t.Fatalf("SU of constants = %v", su)
	}
}

// TestFCBFRemovesFDRedundantFeatures is the instance-level counterpart of
// Proposition 3.1: under the FD FK → F, FCBF detects SU(FK;F) ≥ SU(F;Y) and
// removes the foreign feature — by computing over the data, which is
// precisely the work the schema-based rules avoid.
func TestFCBFRemovesFDRedundantFeatures(t *testing.T) {
	r := stats.NewRNG(7)
	n, nR := 4000, 16
	fMap := make([]int32, nR)
	for i := range fMap {
		fMap[i] = int32(i % 3)
	}
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	fk := make([]int32, n)
	f := make([]int32, n)
	for i := 0; i < n; i++ {
		fk[i] = int32(r.IntN(nR))
		f[i] = fMap[fk[i]]
		y := int32(int(f[i]) % 2)
		if !r.Bernoulli(0.9) {
			y = 1 - y
		}
		m.Y[i] = y
	}
	m.Features = []dataset.Feature{
		{Name: "FK", Card: nR, Data: fk, IsFK: true},
		{Name: "F", Card: 3, Data: f},
	}
	train := m.SelectRows(seq(0, n/2))
	val := m.SelectRows(seq(n/2, n))
	res, err := FCBF{}.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 1 {
		t.Fatalf("FCBF kept %v, want exactly one of the FD pair", res.FeatureNames(train))
	}
}

func TestFCBFKeepsIndependentSignals(t *testing.T) {
	r := stats.NewRNG(11)
	n := 4000
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	a := make([]int32, n)
	b := make([]int32, n)
	noise := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i] = int32(r.IntN(2))
		b[i] = int32(r.IntN(2))
		noise[i] = int32(r.IntN(4))
		// Y depends on both a and b independently (noisy OR-ish).
		y := a[i]
		if r.Bernoulli(0.5) {
			y = b[i]
		}
		m.Y[i] = y
	}
	m.Features = []dataset.Feature{
		{Name: "a", Card: 2, Data: a},
		{Name: "b", Card: 2, Data: b},
		{Name: "noise", Card: 4, Data: noise},
	}
	train := m.SelectRows(seq(0, n/2))
	val := m.SelectRows(seq(n/2, n))
	res, err := FCBF{Delta: 0.01}.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	names := res.FeatureNames(train)
	hasA, hasB := false, false
	for _, nm := range names {
		switch nm {
		case "a":
			hasA = true
		case "b":
			hasB = true
		case "noise":
			t.Fatalf("FCBF kept the noise feature: %v", names)
		}
	}
	if !hasA || !hasB {
		t.Fatalf("FCBF dropped an independent signal: %v", names)
	}
}

func TestFCBFValidation(t *testing.T) {
	train, val := halves(signalNoise(100, 1, 13))
	if _, err := (FCBF{}).Select(nb.New(), nil, val); err == nil {
		t.Fatal("nil train accepted")
	}
	_ = train
}

func TestFCBFName(t *testing.T) {
	if (FCBF{}).Name() != "fcbf" {
		t.Fatal("name")
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
