package fs

import (
	"sort"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// Score is a per-feature relevance scoring function for filters.
type Score func(f []int32, cardF int, y []int32, cardY int) float64

// MIScore is the mutual-information relevance score I(F;Y).
func MIScore(f []int32, cardF int, y []int32, cardY int) float64 {
	return stats.MutualInformation(f, cardF, y, cardY)
}

// IGRScore is the information-gain-ratio score IGR(F;Y) = I(F;Y)/H(F), which
// penalizes large domains (§3.1.2).
func IGRScore(f []int32, cardF int, y []int32, cardY int) float64 {
	return stats.InformationGainRatio(f, cardF, y, cardY)
}

// Filter ranks features by a scoring function computed on the training split
// and retains the top k, with k tuned by validation error of the learner
// (the paper tunes the filtered count "using holdout validation as a
// wrapper", §5.1).
type Filter struct {
	// ScoreName is the display name ("MI" or "IGR").
	ScoreName string
	// Score ranks features; higher is more relevant.
	Score Score
}

// MIFilter returns the mutual-information filter.
func MIFilter() Filter { return Filter{ScoreName: "MI", Score: MIScore} }

// IGRFilter returns the information-gain-ratio filter.
func IGRFilter() Filter { return Filter{ScoreName: "IGR", Score: IGRScore} }

// Name implements Method.
func (f Filter) Name() string { return "filter-" + f.ScoreName }

// Rank returns feature indices sorted by decreasing score on the training
// split (stable: ties keep design order).
func (f Filter) Rank(train *dataset.Design) []int {
	d := train.NumFeatures()
	scores := make([]float64, d)
	for i := 0; i < d; i++ {
		ft := &train.Features[i]
		scores[i] = f.Score(ft.Data, ft.Card, train.Y, train.NumClasses)
	}
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return order
}

// Select implements Method: rank on train, then sweep k = 1..d picking the
// prefix with the lowest validation error.
func (f Filter) Select(l ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	order := f.Rank(train)
	ev := NewEvaluator(l, train, val)
	bestK := 0
	bestErr, err := ev.Eval(nil)
	if err != nil {
		return Result{}, err
	}
	for k := 1; k <= len(order); k++ {
		e, err := ev.Eval(order[:k])
		if err != nil {
			return Result{}, err
		}
		if e < bestErr {
			bestErr, bestK = e, k
		}
	}
	sel := append([]int(nil), order[:bestK]...)
	observeRun(ev.Count())
	return Result{Features: sel, ValError: bestErr, Evaluations: ev.Count()}, nil
}
