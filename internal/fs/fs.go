// Package fs implements the feature selection methods the paper evaluates
// (§2.2, §5): sequential greedy wrappers (forward and backward selection),
// filters scored by mutual information and information gain ratio with the
// retained count tuned by holdout validation, and the embedded
// L1/L2-regularized logistic regression.
//
// All methods follow the paper's holdout protocol: models are trained on the
// training split and subsets compared by their error on the validation
// split; the caller reports final accuracy on the untouched test split.
//
// Wrapper search over Naive Bayes uses the decomposability fast path
// (internal/ml/nb.Stats): sufficient statistics are tabulated once and every
// candidate subset is evaluated without re-counting, so the cost of greedy
// search is proportional to the number of (subset, validation-row) pairs
// scored — which is exactly how the paper's runtimes scale with the number
// of candidate features, preserving Figure 7's speedup shape.
package fs

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/obs"
)

// Selection instrumentation: the per-run Evaluations counter generalized
// into process-wide metrics — total subset evaluations across all methods,
// completed selection runs, and the evaluations-per-run distribution.
var (
	evalCount  = obs.C("fs.subset_evaluations")
	selectRuns = obs.C("fs.selection_runs")
	evalHist   = obs.H("fs.evaluations_per_run")
)

// observeRun records one completed selection run's evaluation count.
func observeRun(evals int) {
	selectRuns.Inc()
	evalHist.Observe(int64(evals))
}

// Result is the outcome of one feature selection run.
type Result struct {
	// Features are the selected design-matrix column indices, in the
	// order the method chose them.
	Features []int
	// ValError is the validation error of the selected subset.
	ValError float64
	// Evaluations counts subset evaluations performed: a
	// hardware-independent proxy for the method's runtime.
	Evaluations int
}

// FeatureNames resolves the selected indices against a design matrix.
func (r Result) FeatureNames(m *dataset.Design) []string {
	names := make([]string, len(r.Features))
	for i, f := range r.Features {
		names[i] = m.Features[f].Name
	}
	return names
}

// Method is a feature selection algorithm.
type Method interface {
	// Name identifies the method in reports, e.g. "forward".
	Name() string
	// Select searches feature subsets of train/val for the learner.
	Select(l ml.Learner, train, val *dataset.Design) (Result, error)
}

// Evaluator scores candidate feature subsets by validation error. The
// generic implementation retrains via ml.Learner; the Naive Bayes
// implementation reuses precomputed sufficient statistics.
type Evaluator interface {
	// Eval returns the validation error of a model trained on the subset.
	Eval(features []int) (float64, error)
	// Count returns the number of Eval calls so far.
	Count() int
}

// NewEvaluator builds the best evaluator for the learner: the decomposable
// fast path when l is Naive Bayes, otherwise generic retraining.
func NewEvaluator(l ml.Learner, train, val *dataset.Design) Evaluator {
	if nbl, ok := l.(*nb.Learner); ok {
		return &nbEvaluator{
			stats:  nb.NewStats(train),
			alpha:  nbl.Alpha,
			val:    val,
			metric: ml.MetricFor(train.NumClasses),
		}
	}
	return &genericEvaluator{l: l, train: train, val: val, metric: ml.MetricFor(train.NumClasses)}
}

type genericEvaluator struct {
	l          ml.Learner
	train, val *dataset.Design
	metric     ml.Metric
	count      int
}

func (e *genericEvaluator) Eval(features []int) (float64, error) {
	e.count++
	evalCount.Inc()
	mod, err := e.l.Fit(e.train, features)
	if err != nil {
		return 0, err
	}
	return e.metric(ml.PredictAll(mod, e.val), e.val.Y), nil
}

func (e *genericEvaluator) Count() int { return e.count }

type nbEvaluator struct {
	stats  *nb.Stats
	alpha  float64
	val    *dataset.Design
	metric ml.Metric
	count  int
}

func (e *nbEvaluator) Eval(features []int) (float64, error) {
	e.count++
	evalCount.Inc()
	mod, err := nb.ModelFromStats(e.stats, features, e.alpha)
	if err != nil {
		return 0, err
	}
	pred := make([]int32, e.val.NumRows())
	for i := range pred {
		pred[i] = mod.Predict(e.val, i)
	}
	return e.metric(pred, e.val.Y), nil
}

func (e *nbEvaluator) Count() int { return e.count }

// checkDesigns validates that train and val agree on schema.
func checkDesigns(train, val *dataset.Design) error {
	if train == nil || val == nil {
		return fmt.Errorf("fs: nil design matrix")
	}
	if train.NumFeatures() != val.NumFeatures() {
		return fmt.Errorf("fs: train has %d features, val has %d", train.NumFeatures(), val.NumFeatures())
	}
	if train.NumClasses != val.NumClasses {
		return fmt.Errorf("fs: train has %d classes, val has %d", train.NumClasses, val.NumClasses)
	}
	if train.NumRows() == 0 || val.NumRows() == 0 {
		return fmt.Errorf("fs: empty split (train %d rows, val %d rows)", train.NumRows(), val.NumRows())
	}
	return nil
}
