package fs

import (
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/logreg"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
)

// signalNoise builds a design with one strongly predictive feature (index 0),
// one weakly predictive feature (index 1), and pure-noise features after.
func signalNoise(n, noiseFeatures int, seed uint64) *dataset.Design {
	r := stats.NewRNG(seed)
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	strong := make([]int32, n)
	weak := make([]int32, n)
	for i := 0; i < n; i++ {
		strong[i] = int32(r.IntN(2))
		y := strong[i]
		if !r.Bernoulli(0.95) {
			y = 1 - y
		}
		m.Y[i] = y
		weak[i] = y
		if !r.Bernoulli(0.65) {
			weak[i] = 1 - weak[i]
		}
	}
	m.Features = append(m.Features,
		dataset.Feature{Name: "strong", Card: 2, Data: strong},
		dataset.Feature{Name: "weak", Card: 2, Data: weak},
	)
	for f := 0; f < noiseFeatures; f++ {
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.IntN(4))
		}
		m.Features = append(m.Features, dataset.Feature{Name: "noise" + string(rune('0'+f)), Card: 4, Data: data})
	}
	return m
}

func halves(m *dataset.Design) (train, val *dataset.Design) {
	n := m.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return m.SelectRows(idx[:n/2]), m.SelectRows(idx[n/2:])
}

func hasFeature(r Result, f int) bool {
	for _, x := range r.Features {
		if x == f {
			return true
		}
	}
	return false
}

func TestForwardPicksSignalDropsNoise(t *testing.T) {
	train, val := halves(signalNoise(3000, 4, 1))
	res, err := Forward{}.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("forward selection missed the strong feature: %v", res.Features)
	}
	for _, f := range res.Features {
		if f >= 2 {
			t.Fatalf("forward selection kept noise feature %d: %v", f, res.Features)
		}
	}
	if res.Evaluations == 0 {
		t.Fatal("evaluation count not tracked")
	}
}

func TestBackwardDropsNoise(t *testing.T) {
	train, val := halves(signalNoise(3000, 3, 2))
	res, err := Backward{}.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("backward selection dropped the strong feature: %v", res.Features)
	}
}

func TestForwardStopsWhenNothingHelps(t *testing.T) {
	// All-noise design: forward selection should stop at the empty set or
	// near it (a spurious single pick is possible but bounded).
	r := stats.NewRNG(3)
	n := 2000
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	for i := range m.Y {
		m.Y[i] = int32(r.IntN(2))
	}
	for f := 0; f < 4; f++ {
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.IntN(3))
		}
		m.Features = append(m.Features, dataset.Feature{Name: string(rune('a' + f)), Card: 3, Data: data})
	}
	train, val := halves(m)
	res, err := Forward{}.Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) > 2 {
		t.Fatalf("forward selected %d features from pure noise", len(res.Features))
	}
}

func TestFilterRankOrdersByScore(t *testing.T) {
	train, _ := halves(signalNoise(3000, 3, 4))
	order := MIFilter().Rank(train)
	if order[0] != 0 {
		t.Fatalf("MI filter should rank the strong feature first, got %v", order)
	}
}

func TestMIFilterSelectsInformativePrefix(t *testing.T) {
	train, val := halves(signalNoise(3000, 4, 5))
	res, err := MIFilter().Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("MI filter missed the strong feature: %v", res.Features)
	}
}

func TestIGRFilterSelects(t *testing.T) {
	train, val := halves(signalNoise(3000, 4, 6))
	res, err := IGRFilter().Select(nb.New(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("IGR filter missed the strong feature: %v", res.Features)
	}
}

// TestIGRPrefersSmallDomain reproduces §3.1.2's dichotomy at the filter
// level: with Y determined by a small-domain feature that is itself
// determined by a large-domain FK, MI ranks FK at least as high as F, while
// IGR ranks F strictly above FK.
func TestIGRPrefersSmallDomain(t *testing.T) {
	n, dFK := 4000, 64
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	fk := make([]int32, n)
	f := make([]int32, n)
	for i := 0; i < n; i++ {
		fk[i] = int32(i % dFK)
		f[i] = fk[i] % 2
		m.Y[i] = f[i]
	}
	m.Features = []dataset.Feature{
		{Name: "FK", Card: dFK, Data: fk, IsFK: true},
		{Name: "F", Card: 2, Data: f},
	}
	miOrder := MIFilter().Rank(m)
	igrOrder := IGRFilter().Rank(m)
	if igrOrder[0] != 1 {
		t.Fatalf("IGR should rank the small-domain feature first, got %v", igrOrder)
	}
	// MI is equal here (both fully determine Y); stable sort keeps FK first.
	if miOrder[0] != 0 {
		t.Fatalf("MI rank = %v; expected FK first (ties keep design order)", miOrder)
	}
}

func TestEmbeddedL1DropsNoise(t *testing.T) {
	train, val := halves(signalNoise(2000, 3, 7))
	e := Embedded{Penalty: logreg.L1, Lambdas: []float64{2e-2}}
	res, err := e.Select(nil, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFeature(res, 0) {
		t.Fatalf("embedded L1 dropped the strong feature: %v", res.Features)
	}
	for _, f := range res.Features {
		if f >= 2 {
			t.Fatalf("embedded L1 kept noise feature %d", f)
		}
	}
}

func TestEmbeddedFitBestReturnsModel(t *testing.T) {
	train, val := halves(signalNoise(1000, 2, 8))
	e := Embedded{Penalty: logreg.L2}
	mod, err := e.FitBest(train, val)
	if err != nil {
		t.Fatal(err)
	}
	metric := ml.MetricFor(train.NumClasses)
	errV := metric(ml.PredictAll(mod, val), val.Y)
	if errV > 0.2 {
		t.Fatalf("embedded best model error = %v", errV)
	}
}

func TestNBFastPathMatchesGenericPath(t *testing.T) {
	train, val := halves(signalNoise(1500, 3, 9))
	fast := NewEvaluator(nb.New(), train, val)
	if _, ok := fast.(*nbEvaluator); !ok {
		t.Fatal("NB learner should get the decomposable evaluator")
	}
	slow := &genericEvaluator{l: nb.New(), train: train, val: val, metric: ml.MetricFor(train.NumClasses)}
	for _, subset := range [][]int{nil, {0}, {0, 1}, {2, 4}, {0, 1, 2, 3, 4}} {
		a, err := fast.Eval(subset)
		if err != nil {
			t.Fatal(err)
		}
		b, err := slow.Eval(subset)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("fast path %v != generic %v on subset %v", a, b, subset)
		}
	}
}

func TestGenericEvaluatorUsedForOtherLearners(t *testing.T) {
	train, val := halves(signalNoise(200, 1, 10))
	ev := NewEvaluator(logreg.New(logreg.L2), train, val)
	if _, ok := ev.(*genericEvaluator); !ok {
		t.Fatal("non-NB learner should get the generic evaluator")
	}
	if _, err := ev.Eval([]int{0}); err != nil {
		t.Fatal(err)
	}
	if ev.Count() != 1 {
		t.Fatal("Count not incremented")
	}
}

func TestSelectValidatesInputs(t *testing.T) {
	train, val := halves(signalNoise(100, 1, 11))
	bad := &dataset.Design{NumClasses: 3, Y: val.Y, Features: val.Features}
	methods := []Method{Forward{}, Backward{}, MIFilter(), IGRFilter(), Embedded{Penalty: logreg.L1}}
	for _, meth := range methods {
		if _, err := meth.Select(nb.New(), train, bad); err == nil {
			t.Errorf("%s accepted mismatched class counts", meth.Name())
		}
		if _, err := meth.Select(nb.New(), nil, val); err == nil {
			t.Errorf("%s accepted nil train", meth.Name())
		}
	}
	empty := &dataset.Design{NumClasses: 2}
	if _, err := (Forward{}).Select(nb.New(), empty, empty); err == nil {
		t.Error("empty design accepted")
	}
}

func TestResultFeatureNames(t *testing.T) {
	m := signalNoise(10, 1, 12)
	r := Result{Features: []int{1, 0}}
	names := r.FeatureNames(m)
	if names[0] != "weak" || names[1] != "strong" {
		t.Fatalf("names = %v", names)
	}
}

func TestMethodNames(t *testing.T) {
	if (Forward{}).Name() != "forward" || (Backward{}).Name() != "backward" {
		t.Fatal("wrapper names")
	}
	if MIFilter().Name() != "filter-MI" || IGRFilter().Name() != "filter-IGR" {
		t.Fatal("filter names")
	}
	if (Embedded{Penalty: logreg.L1}).Name() != "embedded-L1" {
		t.Fatal("embedded name")
	}
}
