package fs

import (
	"hamlet/internal/dataset"
	"hamlet/internal/ml"
)

// Forward is sequential greedy forward selection (§2.2): starting from the
// empty set, repeatedly add the feature that most reduces validation error;
// stop when no addition improves it.
type Forward struct{}

// Name implements Method.
func (Forward) Name() string { return "forward" }

// Select implements Method.
func (Forward) Select(l ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	return forwardWith(NewEvaluator(l, train, val), train.NumFeatures())
}

// Backward is sequential greedy backward selection (§2.2): starting from the
// full set, repeatedly eliminate the feature whose removal most reduces
// validation error; stop when no elimination improves it.
type Backward struct{}

// Name implements Method.
func (Backward) Name() string { return "backward" }

// Select implements Method.
func (Backward) Select(l ml.Learner, train, val *dataset.Design) (Result, error) {
	if err := checkDesigns(train, val); err != nil {
		return Result{}, err
	}
	return backwardWith(NewEvaluator(l, train, val), train.NumFeatures())
}
