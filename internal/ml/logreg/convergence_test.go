package logreg

import (
	"math"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// logLoss computes the mean negative log likelihood of a model on a design.
func logLoss(mod *Model, m *dataset.Design) float64 {
	total := 0.0
	for i := 0; i < m.NumRows(); i++ {
		p := mod.Probs(m, i)[m.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	return total / float64(m.NumRows())
}

// TestTrainingReducesLogLoss: more epochs must not increase the training
// log loss on a learnable problem (SGD with decaying steps).
func TestTrainingReducesLogLoss(t *testing.T) {
	r := stats.NewRNG(9)
	n := 1500
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	f := make([]int32, n)
	for i := 0; i < n; i++ {
		f[i] = int32(r.IntN(4))
		y := int32(int(f[i]) % 2)
		if !r.Bernoulli(0.9) {
			y = 1 - y
		}
		m.Y[i] = y
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 4, Data: f}}
	losses := make([]float64, 0, 3)
	for _, epochs := range []int{1, 5, 25} {
		l := New(L2)
		l.Config.Epochs = epochs
		l.Config.Lambda = 0
		mod, err := l.Fit(m, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, logLoss(mod.(*Model), m))
	}
	if losses[1] > losses[0]+1e-6 || losses[2] > losses[1]+1e-6 {
		t.Fatalf("log loss not non-increasing across epochs: %v", losses)
	}
	// And the final loss must beat the prior-only entropy (≈ ln 2).
	if losses[2] > 0.6 {
		t.Fatalf("final log loss %v did not beat the prior", losses[2])
	}
}

// TestCalibrationOnKnownConditional: trained probabilities approximate the
// true conditional P(Y=1 | f) = 0.8 for f = 1, 0.2 otherwise.
func TestCalibrationOnKnownConditional(t *testing.T) {
	r := stats.NewRNG(13)
	n := 20000
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	f := make([]int32, n)
	for i := 0; i < n; i++ {
		f[i] = int32(r.IntN(2))
		p := 0.2
		if f[i] == 1 {
			p = 0.8
		}
		if r.Bernoulli(p) {
			m.Y[i] = 1
		}
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 2, Data: f}}
	l := New(L2)
	l.Config.Lambda = 0
	l.Config.Epochs = 40
	mod, err := l.Fit(m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	lm := mod.(*Model)
	// Find a row with f = 1 and one with f = 0.
	var p1, p0 float64
	for i := 0; i < n; i++ {
		if f[i] == 1 {
			p1 = lm.Probs(m, i)[1]
			break
		}
	}
	for i := 0; i < n; i++ {
		if f[i] == 0 {
			p0 = lm.Probs(m, i)[1]
			break
		}
	}
	if math.Abs(p1-0.8) > 0.05 || math.Abs(p0-0.2) > 0.05 {
		t.Fatalf("calibration off: P(1|f=1)=%v, P(1|f=0)=%v", p1, p0)
	}
}

// TestLogregMatchesNBDirectionally: on conditionally independent data both
// linear models should reach similar test error.
func TestLogregGeneralizes(t *testing.T) {
	r := stats.NewRNG(17)
	n := 4000
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	a := make([]int32, n)
	b := make([]int32, n)
	for i := 0; i < n; i++ {
		m.Y[i] = int32(r.IntN(2))
		a[i] = m.Y[i]
		if !r.Bernoulli(0.8) {
			a[i] = 1 - a[i]
		}
		b[i] = m.Y[i]
		if !r.Bernoulli(0.7) {
			b[i] = 1 - b[i]
		}
	}
	m.Features = []dataset.Feature{
		{Name: "a", Card: 2, Data: a},
		{Name: "b", Card: 2, Data: b},
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	train := m.SelectRows(idx[:n/2])
	test := m.SelectRows(idx[n/2:])
	e, err := ml.Evaluate(New(L2), train, test, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bayes error here is ≈ 0.167 (combining 0.8/0.7 votes); allow slack.
	if e > 0.23 {
		t.Fatalf("test error %v, want ≈0.17", e)
	}
}
