// Package logreg implements multinomial (softmax) logistic regression over
// one-hot-encoded nominal features with L1 or L2 regularization — the
// embedded feature selection method the paper evaluates in §5.3 (Figure 9,
// where the paper used R's glmnet).
//
// Features are nominal, so each example activates exactly one indicator per
// feature (or none, for the last category under the |D_F|−1 recoding of
// §3.2). The trainer exploits this sparsity: the per-example gradient touches
// only numClasses × numFeatures weights. Regularization is applied as an
// epoch-level proximal step — soft-thresholding for L1 (which drives
// irrelevant indicator weights to exactly zero, the embedded selection
// effect), multiplicative shrinkage for L2 — which keeps the inner loop
// sparse while preserving the qualitative behaviour the paper relies on:
// under L1, models trained with and without redundant foreign features end
// up with comparable error, and L2 underperforms L1 in this sparse regime.
package logreg

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// Penalty selects the regularizer.
type Penalty int

const (
	// L2 is ridge (squared-norm) regularization.
	L2 Penalty = iota
	// L1 is lasso (absolute-norm) regularization; it zeroes coefficients,
	// performing implicit feature selection (§2.2).
	L1
)

// String implements fmt.Stringer.
func (p Penalty) String() string {
	if p == L1 {
		return "L1"
	}
	return "L2"
}

// Config holds training hyperparameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Penalty selects L1 or L2 regularization.
	Penalty Penalty
	// Lambda is the regularization strength.
	Lambda float64
	// LearningRate is the initial SGD step size; it decays as 1/(1+t).
	LearningRate float64
	// Epochs is the number of passes over the training data.
	Epochs int
	// Seed drives the shuffling order.
	Seed uint64
}

// DefaultConfig returns the hyperparameters used across the Hamlet-Go
// experiments; they were chosen once on the simulation data and never tuned
// per dataset, mirroring the paper's use of glmnet defaults.
func DefaultConfig(p Penalty) Config {
	return Config{Penalty: p, Lambda: 1e-4, LearningRate: 0.5, Epochs: 20, Seed: 1}
}

// Learner is the ml.Learner adapter for logistic regression.
type Learner struct {
	// Config holds the training hyperparameters.
	Config Config
}

// New returns a logistic regression learner with DefaultConfig(p).
func New(p Penalty) *Learner { return &Learner{Config: DefaultConfig(p)} }

// Name implements ml.Learner.
func (l *Learner) Name() string { return "logreg-" + l.Config.Penalty.String() }

// Model is a trained softmax regression model.
type Model struct {
	// W holds one weight vector per class over the one-hot dimensions:
	// W[c*dims+d].
	W []float64
	// B holds one intercept per class.
	B []float64
	// Dims is the one-hot dimensionality.
	Dims int
	// NumClasses is the target cardinality.
	NumClasses int
	// Features are the design-matrix column indices in use.
	Features []int
	offsets  []int
	cards    []int
}

// activeDims computes the active one-hot dimensions of row i, writing them to
// dst (one entry per feature whose value is not the last category).
func (mod *Model) activeDims(m *dataset.Design, i int, dst []int) []int {
	dst = dst[:0]
	for j, fi := range mod.Features {
		v := int(m.Features[fi].Data[i])
		if v < mod.cards[j]-1 {
			dst = append(dst, mod.offsets[j]+v)
		}
	}
	return dst
}

// scores computes the per-class linear scores of the active dimensions.
func (mod *Model) scores(active []int, out []float64) {
	for c := 0; c < mod.NumClasses; c++ {
		s := mod.B[c]
		base := c * mod.Dims
		for _, d := range active {
			s += mod.W[base+d]
		}
		out[c] = s
	}
}

// Predict implements ml.Model.
func (mod *Model) Predict(m *dataset.Design, row int) int32 {
	active := mod.activeDims(m, row, make([]int, 0, len(mod.Features)))
	sc := make([]float64, mod.NumClasses)
	mod.scores(active, sc)
	best, bestV := 0, math.Inf(-1)
	for c, v := range sc {
		if v > bestV {
			bestV, best = v, c
		}
	}
	return int32(best)
}

// Probs returns the softmax class distribution for the given row.
func (mod *Model) Probs(m *dataset.Design, row int) []float64 {
	active := mod.activeDims(m, row, make([]int, 0, len(mod.Features)))
	sc := make([]float64, mod.NumClasses)
	mod.scores(active, sc)
	softmaxInPlace(sc)
	return sc
}

// NonzeroWeights returns the number of weights with |w| above tol; under L1
// this measures the sparsity of the embedded selection.
func (mod *Model) NonzeroWeights(tol float64) int {
	n := 0
	for _, w := range mod.W {
		if math.Abs(w) > tol {
			n++
		}
	}
	return n
}

// FeatureActive reports whether any indicator weight of the given design
// feature (by its position in mod.Features) survives L1 at the tolerance:
// the embedded analogue of "the feature was selected".
func (mod *Model) FeatureActive(j int, tol float64) bool {
	lo := mod.offsets[j]
	hi := lo + mod.cards[j] - 1
	for c := 0; c < mod.NumClasses; c++ {
		base := c * mod.Dims
		for d := lo; d < hi; d++ {
			if math.Abs(mod.W[base+d]) > tol {
				return true
			}
		}
	}
	return false
}

func softmaxInPlace(sc []float64) {
	maxV := math.Inf(-1)
	for _, v := range sc {
		if v > maxV {
			maxV = v
		}
	}
	total := 0.0
	for c, v := range sc {
		sc[c] = math.Exp(v - maxV)
		total += sc[c]
	}
	for c := range sc {
		sc[c] /= total
	}
}

// Fit implements ml.Learner.
func (l *Learner) Fit(m *dataset.Design, features []int) (ml.Model, error) {
	if err := ml.CheckFeatures(m, features); err != nil {
		return nil, err
	}
	cfg := l.Config
	if cfg.Epochs <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("logreg: invalid config: epochs=%d lr=%v", cfg.Epochs, cfg.LearningRate)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", cfg.Lambda)
	}
	mod := &Model{NumClasses: m.NumClasses, Features: features}
	mod.offsets = make([]int, len(features))
	mod.cards = make([]int, len(features))
	dims := 0
	for j, fi := range features {
		mod.offsets[j] = dims
		mod.cards[j] = m.Features[fi].Card
		dims += m.Features[fi].Card - 1
	}
	mod.Dims = dims
	mod.W = make([]float64, m.NumClasses*dims)
	mod.B = make([]float64, m.NumClasses)

	n := m.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("logreg: empty training set")
	}
	rng := stats.NewRNG(cfg.Seed)
	active := make([]int, 0, len(features))
	sc := make([]float64, m.NumClasses)
	order := rng.Perm(n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + float64(epoch))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			active = mod.activeDims(m, i, active)
			mod.scores(active, sc)
			softmaxInPlace(sc)
			y := int(m.Y[i])
			for c := 0; c < m.NumClasses; c++ {
				g := sc[c]
				if c == y {
					g -= 1
				}
				step := lr * g
				mod.B[c] -= step
				base := c * dims
				for _, d := range active {
					mod.W[base+d] -= step
				}
			}
		}
		// Epoch-level proximal regularization step over all weights
		// (intercepts are never penalized). The effective strength is
		// lr·lambda·n, matching the aggregate of per-example steps.
		if cfg.Lambda > 0 {
			strength := lr * cfg.Lambda * float64(n)
			switch cfg.Penalty {
			case L1:
				for k, w := range mod.W {
					switch {
					case w > strength:
						mod.W[k] = w - strength
					case w < -strength:
						mod.W[k] = w + strength
					default:
						mod.W[k] = 0
					}
				}
			case L2:
				shrink := 1 / (1 + strength)
				for k := range mod.W {
					mod.W[k] *= shrink
				}
			}
		}
	}
	for _, w := range mod.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("logreg: training diverged (non-finite weights); lower the learning rate")
		}
	}
	return mod, nil
}
