package logreg

import (
	"math"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// separable returns a linearly separable binary design: Y = f0.
func separable(n int) *dataset.Design {
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	f0 := make([]int32, n)
	noise := make([]int32, n)
	r := stats.NewRNG(3)
	for i := 0; i < n; i++ {
		f0[i] = int32(i % 2)
		m.Y[i] = f0[i]
		noise[i] = int32(r.IntN(3))
	}
	m.Features = []dataset.Feature{
		{Name: "signal", Card: 2, Data: f0},
		{Name: "noise", Card: 3, Data: noise},
	}
	return m
}

func TestFitSeparableReachesZeroError(t *testing.T) {
	m := separable(400)
	for _, p := range []Penalty{L1, L2} {
		e, err := ml.Evaluate(New(p), m, m, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if e > 0.02 {
			t.Fatalf("%v train error on separable data = %v", p, e)
		}
	}
}

func TestL1ZeroesNoiseKeepsSignal(t *testing.T) {
	m := separable(600)
	l := New(L1)
	l.Config.Lambda = 2e-3
	l.Config.Epochs = 40
	mod, err := l.Fit(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lm := mod.(*Model)
	if !lm.FeatureActive(0, 1e-6) {
		t.Fatal("L1 killed the signal feature")
	}
	if lm.FeatureActive(1, 1e-6) {
		t.Fatal("L1 kept the pure-noise feature")
	}
}

func TestL2KeepsAllWeightsSmall(t *testing.T) {
	m := separable(400)
	l := New(L2)
	l.Config.Lambda = 1e-2
	mod, err := l.Fit(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lm := mod.(*Model)
	// Strong ridge should shrink but not exactly zero the signal weights.
	if lm.NonzeroWeights(1e-9) == 0 {
		t.Fatal("L2 zeroed all weights exactly, which soft shrinkage should not do")
	}
	for _, w := range lm.W {
		if math.Abs(w) > 50 {
			t.Fatalf("ridge weight exploded: %v", w)
		}
	}
}

func TestProbsNormalized(t *testing.T) {
	m := separable(100)
	mod, _ := New(L2).Fit(m, []int{0, 1})
	p := mod.(*Model).Probs(m, 0)
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestMulticlassSoftmax(t *testing.T) {
	// Three classes determined by a single card-3 feature.
	n := 600
	m := &dataset.Design{NumClasses: 3, Y: make([]int32, n)}
	f := make([]int32, n)
	for i := 0; i < n; i++ {
		f[i] = int32(i % 3)
		m.Y[i] = f[i]
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 3, Data: f}}
	e, err := ml.Evaluate(New(L2), m, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.02 {
		t.Fatalf("multiclass train RMSE = %v", e)
	}
}

func TestEmptyFeatureSetLearnsPrior(t *testing.T) {
	n := 200
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	for i := 0; i < 150; i++ {
		m.Y[i] = 0
	}
	for i := 150; i < n; i++ {
		m.Y[i] = 1
	}
	mod, err := New(L2).Fit(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Predict(m, 0) != 0 {
		t.Fatal("intercept-only model should predict the majority class")
	}
}

func TestConfigValidation(t *testing.T) {
	m := separable(10)
	l := New(L1)
	l.Config.Epochs = 0
	if _, err := l.Fit(m, []int{0}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	l = New(L1)
	l.Config.Lambda = -1
	if _, err := l.Fit(m, []int{0}); err == nil {
		t.Fatal("negative lambda accepted")
	}
	l = New(L1)
	l.Config.LearningRate = 0
	if _, err := l.Fit(m, []int{0}); err == nil {
		t.Fatal("zero learning rate accepted")
	}
	if _, err := New(L1).Fit(m, []int{7}); err == nil {
		t.Fatal("out-of-range feature accepted")
	}
	empty := &dataset.Design{NumClasses: 2}
	if _, err := New(L1).Fit(empty, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	m := separable(200)
	a, err := New(L1).Fit(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(L1).Fit(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.(*Model).W, b.(*Model).W
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same-seed training is not deterministic")
		}
	}
}

func TestPenaltyString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Fatal("Penalty.String broken")
	}
	if New(L1).Name() != "logreg-L1" {
		t.Fatalf("learner name = %q", New(L1).Name())
	}
}

func TestLastCategoryEncodesAsZeroVector(t *testing.T) {
	// A feature always at its last category contributes nothing: the model
	// must still learn from the intercept.
	n := 100
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	f := make([]int32, n)
	for i := range f {
		f[i] = 1 // last category of a card-2 feature
		m.Y[i] = 0
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 2, Data: f}}
	mod, err := New(L2).Fit(m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	lm := mod.(*Model)
	for _, w := range lm.W {
		if w != 0 {
			t.Fatalf("weights should stay zero when the indicator never fires: %v", lm.W)
		}
	}
	if mod.Predict(m, 0) != 0 {
		t.Fatal("prediction should come from the intercept")
	}
}
