// Package ml defines the classifier abstraction shared by Hamlet-Go's
// models (Naive Bayes, logistic regression, TAN) and the error metrics the
// paper's evaluation uses: zero-one error for binary targets and RMSE on the
// ordinal class index for multi-class targets (§5.1).
package ml

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/obs"
	"hamlet/internal/stats"
)

// Prediction instrumentation: batch predictions and rows scored. Counted at
// batch granularity so the per-row hot loop stays untouched.
var (
	predictBatches = obs.C("ml.predict_batches")
	predictRows    = obs.C("ml.rows_predicted")
	predictHist    = obs.H("ml.rows_per_predict")
)

// Model is a trained classifier instance: a prediction function over the
// feature subset it was trained on. A model trained on design matrix columns
// [i...] must be applied to design matrices with the same column layout
// (train/validation/test splits of one materialized design satisfy this).
type Model interface {
	// Predict returns the predicted class of the given row.
	Predict(m *dataset.Design, row int) int32
}

// Learner trains models on a feature subset of a design matrix. features
// lists column indices into m.Features; an empty subset is legal and yields
// a prior-only (majority-class) model.
type Learner interface {
	// Name identifies the learner (for reports), e.g. "naive-bayes".
	Name() string
	// Fit trains a model on the given rows.
	Fit(m *dataset.Design, features []int) (Model, error)
}

// PredictAll applies the model to every row of the design matrix.
func PredictAll(mod Model, m *dataset.Design) []int32 {
	predictBatches.Inc()
	predictRows.Add(int64(m.NumRows()))
	predictHist.Observe(int64(m.NumRows()))
	out := make([]int32, m.NumRows())
	for i := range out {
		out[i] = mod.Predict(m, i)
	}
	return out
}

// Metric scores predictions against labels; lower is better.
type Metric func(pred, truth []int32) float64

// MetricFor returns the paper's metric for a target with the given number of
// classes: zero-one error when binary, RMSE on the class index otherwise.
func MetricFor(numClasses int) Metric {
	if numClasses <= 2 {
		return stats.ZeroOneError
	}
	return stats.RMSE
}

// MetricName returns the display name of MetricFor(numClasses).
func MetricName(numClasses int) string {
	if numClasses <= 2 {
		return "zero-one"
	}
	return "RMSE"
}

// Evaluate trains the learner on train and scores it on eval with the metric
// implied by the target's cardinality.
func Evaluate(l Learner, train, eval *dataset.Design, features []int) (float64, error) {
	mod, err := l.Fit(train, features)
	if err != nil {
		return 0, fmt.Errorf("ml: fit %s: %w", l.Name(), err)
	}
	metric := MetricFor(train.NumClasses)
	return metric(PredictAll(mod, eval), eval.Y), nil
}

// CheckFeatures validates that the feature indices are in range for m.
func CheckFeatures(m *dataset.Design, features []int) error {
	for _, f := range features {
		if f < 0 || f >= m.NumFeatures() {
			return fmt.Errorf("ml: feature index %d out of range [0,%d)", f, m.NumFeatures())
		}
	}
	return nil
}
