package ml

import (
	"testing"

	"hamlet/internal/dataset"
)

// constModel predicts a fixed class.
type constModel int32

func (c constModel) Predict(m *dataset.Design, row int) int32 { return int32(c) }

// constLearner returns constModel(0).
type constLearner struct{}

func (constLearner) Name() string { return "const" }
func (constLearner) Fit(m *dataset.Design, features []int) (Model, error) {
	if err := CheckFeatures(m, features); err != nil {
		return nil, err
	}
	return constModel(0), nil
}

func design(n, classes int) *dataset.Design {
	m := &dataset.Design{NumClasses: classes, Y: make([]int32, n)}
	data := make([]int32, n)
	for i := range data {
		m.Y[i] = int32(i % classes)
		data[i] = int32(i % 2)
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 2, Data: data}}
	return m
}

func TestMetricForSelectsByCardinality(t *testing.T) {
	pred := []int32{0, 0, 2}
	truth := []int32{0, 2, 2}
	// Binary: zero-one.
	if e := MetricFor(2)(pred, truth); e != 1.0/3 {
		t.Fatalf("binary metric = %v", e)
	}
	// Multi-class: RMSE (sqrt((0+4+0)/3)).
	if e := MetricFor(3)(pred, truth); e < 1.15 || e > 1.16 {
		t.Fatalf("multiclass metric = %v", e)
	}
	if MetricName(2) != "zero-one" || MetricName(5) != "RMSE" {
		t.Fatal("metric names")
	}
}

func TestPredictAll(t *testing.T) {
	m := design(5, 2)
	out := PredictAll(constModel(1), m)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if v != 1 {
			t.Fatal("PredictAll broken")
		}
	}
}

func TestEvaluate(t *testing.T) {
	m := design(10, 2)
	// constModel(0) is right on the 5 even rows.
	e, err := Evaluate(constLearner{}, m, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0.5 {
		t.Fatalf("error = %v", e)
	}
}

func TestEvaluatePropagatesFitError(t *testing.T) {
	m := design(4, 2)
	if _, err := Evaluate(constLearner{}, m, m, []int{9}); err == nil {
		t.Fatal("bad feature index accepted")
	}
}

func TestCheckFeatures(t *testing.T) {
	m := design(4, 2)
	if err := CheckFeatures(m, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := CheckFeatures(m, nil); err != nil {
		t.Fatal("empty subset should be legal")
	}
	if err := CheckFeatures(m, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := CheckFeatures(m, []int{1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
