package nb

import (
	"math"
	"testing"

	"hamlet/internal/dataset"
)

// TestPosteriorMatchesHandComputation pins the smoothed NB posterior to a
// hand-computed value on a fixed instance, guarding the exact smoothing
// arithmetic (add-one on both priors and likelihoods).
func TestPosteriorMatchesHandComputation(t *testing.T) {
	// 6 examples, binary Y (4 zeros, 2 ones), one feature of card 3.
	m := &dataset.Design{
		NumClasses: 2,
		Y:          []int32{0, 0, 0, 0, 1, 1},
		Features: []dataset.Feature{
			{Name: "f", Card: 3, Data: []int32{0, 0, 1, 2, 1, 1}},
		},
	}
	mod, err := New().Fit(m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// For a row with f = 1:
	//   P(Y=0) ∝ (4+1)/(6+2) · (1+1)/(4+3) = 5/8 · 2/7 = 10/56
	//   P(Y=1) ∝ (2+1)/(6+2) · (2+1)/(2+3) = 3/8 · 3/5 = 9/40
	// normalized: p0 = (10/56)/(10/56+9/40) = 0.44247..., p1 = 0.55752...
	p := mod.(*Model).Posterior(m, 2) // row 2 has f = 1
	w0 := (5.0 / 8.0) * (2.0 / 7.0)
	w1 := (3.0 / 8.0) * (3.0 / 5.0)
	want0 := w0 / (w0 + w1)
	if math.Abs(p[0]-want0) > 1e-12 {
		t.Fatalf("posterior[0] = %v, want %v", p[0], want0)
	}
	if math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatal("posterior not normalized")
	}
}

// TestAlphaScalesSmoothing verifies that a larger pseudo-count pulls the
// posterior toward uniform.
func TestAlphaScalesSmoothing(t *testing.T) {
	m := &dataset.Design{
		NumClasses: 2,
		Y:          []int32{0, 0, 0, 0, 0, 1},
		Features: []dataset.Feature{
			{Name: "f", Card: 2, Data: []int32{0, 0, 0, 0, 0, 1}},
		},
	}
	s := NewStats(m)
	sharp, err := ModelFromStats(s, []int{0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := ModelFromStats(s, []int{0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	pSharp := sharp.Posterior(m, 0)
	pSmooth := smooth.Posterior(m, 0)
	// The sharp model is more confident in class 0 on a class-0 row.
	if pSharp[0] <= pSmooth[0] {
		t.Fatalf("alpha=0.1 posterior %v should exceed alpha=100 posterior %v", pSharp[0], pSmooth[0])
	}
	if math.Abs(pSmooth[0]-0.5) > 0.2 {
		t.Fatalf("heavy smoothing should approach uniform, got %v", pSmooth[0])
	}
}
