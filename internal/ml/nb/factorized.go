package nb

import (
	"fmt"

	"hamlet/internal/dataset"
)

// Factorized training over normalized data. The paper's motivation (§1, §6)
// cites its companion work (Kumar et al., SIGMOD 2015) on avoiding the
// *materialization* of KFK joins: because the join only replicates
// attribute-table values along the foreign key, sufficient statistics over
// the joined table T factor through the FK. For Naive Bayes this is exact
// and simple:
//
//	count(F = v, Y = c)  =  Σ_{rid : R.F[rid] = v}  count(FK = rid, Y = c)
//
// so one pass over S tabulates the per-(FK, class) counts and one pass over
// each R_i aggregates them into every foreign feature's table — O(n_S·(d_S
// + k) + Σ n_Ri·d_Ri) work and no joined copy of the data, versus
// O(n_S·(d_S + k + Σ d_Ri)) for counting over the materialized join (plus
// its memory). StatsFromDataset produces bit-identical Stats to NewStats on
// the materialized design, which tests verify.

// StatsFromDataset tabulates Naive Bayes sufficient statistics for the
// JoinAll feature set of a normalized dataset without materializing any
// join. The feature order matches Dataset.Materialize(JoinAllPlan()): home
// features, then closed-domain FKs, then each joined table's features.
func StatsFromDataset(d *dataset.Dataset) (*Stats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	y := d.Entity.Column(d.Target)
	n := d.NumRows()
	s := &Stats{
		N:           n,
		NumClasses:  y.Card,
		ClassCounts: make([]int, y.Card),
	}
	for _, c := range y.Data {
		s.ClassCounts[c]++
	}
	addTable := func(card int, tab []int) {
		s.Cards = append(s.Cards, card)
		s.Counts = append(s.Counts, tab)
	}
	// Home features: direct tabulation over S.
	for _, name := range d.HomeFeatures {
		col := d.Entity.Column(name)
		tab := make([]int, y.Card*col.Card)
		for i, v := range col.Data {
			tab[int(y.Data[i])*col.Card+int(v)]++
		}
		addTable(col.Card, tab)
	}
	// Per-FK (FK, class) counts: tabulated once, reused for both the FK
	// feature itself and the factorized aggregation below.
	fkCounts := make(map[string][]int, len(d.Attrs))
	for _, at := range d.Attrs {
		fk := d.Entity.Column(at.FK)
		tab := make([]int, y.Card*fk.Card)
		for i, rid := range fk.Data {
			tab[int(y.Data[i])*fk.Card+int(rid)]++
		}
		fkCounts[at.FK] = tab
	}
	// Closed-domain FK features, in attribute order (as Materialize does).
	for _, at := range d.Attrs {
		if at.ClosedDomain {
			fk := d.Entity.Column(at.FK)
			addTable(fk.Card, fkCounts[at.FK])
		}
	}
	// Foreign features: aggregate the FK counts through each R_i.
	for _, at := range d.Attrs {
		fk := d.Entity.Column(at.FK)
		base := fkCounts[at.FK]
		for _, rc := range at.Table.Columns() {
			tab := make([]int, y.Card*rc.Card)
			for c := 0; c < y.Card; c++ {
				row := base[c*fk.Card : (c+1)*fk.Card]
				out := tab[c*rc.Card : (c+1)*rc.Card]
				for rid, cnt := range row {
					if cnt != 0 {
						out[rc.Data[rid]] += cnt
					}
				}
			}
			addTable(rc.Card, tab)
		}
	}
	return s, nil
}

// FitFactorized trains a Naive Bayes model over the full JoinAll feature set
// of a normalized dataset without materializing the join. The returned
// model predicts on design matrices materialized with JoinAllPlan (the
// column layouts match by construction).
func (l *Learner) FitFactorized(d *dataset.Dataset) (*Model, error) {
	s, err := StatsFromDataset(d)
	if err != nil {
		return nil, err
	}
	features := make([]int, len(s.Counts))
	for i := range features {
		features[i] = i
	}
	mod, err := ModelFromStats(s, features, l.Alpha)
	if err != nil {
		return nil, fmt.Errorf("nb: factorized fit: %w", err)
	}
	return mod, nil
}
