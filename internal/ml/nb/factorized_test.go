package nb

import (
	"testing"
	"testing/quick"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// randomDataset builds a random normalized dataset with two attribute
// tables (one open-domain) and a couple of home features.
func randomDataset(seed uint64) *dataset.Dataset {
	r := stats.NewRNG(seed)
	nS := 50 + r.IntN(300)
	nR1 := 2 + r.IntN(20)
	nR2 := 2 + r.IntN(12)
	mkAttr := func(name string, rows, feats int) *relational.Table {
		t := relational.NewTable(name)
		for f := 0; f < feats; f++ {
			card := 2 + r.IntN(4)
			data := make([]int32, rows)
			for i := range data {
				data[i] = int32(r.IntN(card))
			}
			t.MustAddColumn(&relational.Column{Name: name + string(rune('a'+f)), Card: card, Data: data})
		}
		return t
	}
	r1 := mkAttr("R1", nR1, 1+r.IntN(3))
	r2 := mkAttr("R2", nR2, 1+r.IntN(3))
	s := relational.NewTable("S")
	y := make([]int32, nS)
	xs := make([]int32, nS)
	fk1 := make([]int32, nS)
	fk2 := make([]int32, nS)
	classes := 2 + r.IntN(3)
	for i := 0; i < nS; i++ {
		y[i] = int32(r.IntN(classes))
		xs[i] = int32(r.IntN(3))
		fk1[i] = int32(r.IntN(nR1))
		fk2[i] = int32(r.IntN(nR2))
	}
	s.MustAddColumn(&relational.Column{Name: "Y", Card: classes, Data: y})
	s.MustAddColumn(&relational.Column{Name: "XS", Card: 3, Data: xs})
	s.MustAddColumn(&relational.Column{Name: "FK1", Card: nR1, Data: fk1})
	s.MustAddColumn(&relational.Column{Name: "FK2", Card: nR2, Data: fk2})
	return &dataset.Dataset{
		Name:         "Rand",
		Entity:       s,
		Target:       "Y",
		HomeFeatures: []string{"XS"},
		Attrs: []dataset.AttributeTable{
			{Table: r1, FK: "FK1", ClosedDomain: true},
			{Table: r2, FK: "FK2", ClosedDomain: r.Bernoulli(0.5)},
		},
	}
}

// TestFactorizedStatsMatchMaterialized is the core correctness property:
// statistics computed without the join must be bit-identical to statistics
// tabulated over the materialized JoinAll design.
func TestFactorizedStatsMatchMaterialized(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		d := randomDataset(seed)
		factorized, err := StatsFromDataset(d)
		if err != nil {
			return false
		}
		design, err := d.Materialize(d.JoinAllPlan())
		if err != nil {
			return false
		}
		materialized := NewStats(design)
		if factorized.N != materialized.N || factorized.NumClasses != materialized.NumClasses {
			return false
		}
		if len(factorized.Counts) != len(materialized.Counts) {
			return false
		}
		for c := range factorized.ClassCounts {
			if factorized.ClassCounts[c] != materialized.ClassCounts[c] {
				return false
			}
		}
		for f := range factorized.Counts {
			if factorized.Cards[f] != materialized.Cards[f] {
				return false
			}
			for k := range factorized.Counts[f] {
				if factorized.Counts[f][k] != materialized.Counts[f][k] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("factorized statistics diverge from materialized: %v", err)
	}
}

func TestFitFactorizedPredictsIdentically(t *testing.T) {
	d := randomDataset(42)
	design, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	factorized, err := New().FitFactorized(d)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, design.NumFeatures())
	for i := range all {
		all[i] = i
	}
	direct, err := New().Fit(design, all)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < design.NumRows(); i++ {
		if factorized.Predict(design, i) != direct.Predict(design, i) {
			t.Fatalf("factorized and materialized models disagree at row %d", i)
		}
	}
}

func TestStatsFromDatasetValidates(t *testing.T) {
	d := randomDataset(7)
	d.Target = "Nope"
	if _, err := StatsFromDataset(d); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}
