// Package nb implements the Laplace-smoothed Naive Bayes classifier the
// paper uses as its running example (§2.1, §4.1).
//
// The key engineering property is decomposability: Naive Bayes sufficient
// statistics factor per feature, so the class-conditional count table of
// every candidate feature can be tabulated once per training set and a model
// over any feature subset assembled in O(1) by referencing those tables.
// Greedy wrapper feature selection (forward/backward search) then costs only
// prediction time per candidate subset, never re-counting — this is what
// makes the paper's Figure 7 runtime comparison tractable and is why the
// speedups there are driven purely by the number of features in play.
package nb

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/obs"
)

// Naive Bayes instrumentation: full sufficient-statistics tabulations (the
// expensive counting pass), O(1) subset-model assemblies (the wrapper-search
// fast path), and Learner.Fit calls.
var (
	statsBuilds     = obs.C("nb.stats_builds")
	statsRowsHist   = obs.H("nb.stats_rows")
	modelAssemblies = obs.C("nb.models_assembled")
	fitCalls        = obs.C("nb.fits")
)

// Stats holds per-feature class-conditional counts for one training design
// matrix: the complete sufficient statistics for Naive Bayes over any subset
// of its features.
type Stats struct {
	// N is the number of training examples.
	N int
	// NumClasses is the target cardinality.
	NumClasses int
	// ClassCounts[c] is the number of examples with Y = c.
	ClassCounts []int
	// Counts[f][c*card_f + v] counts examples with Y = c and feature f
	// taking value v.
	Counts [][]int
	// Cards[f] is feature f's cardinality.
	Cards []int
}

// NewStats tabulates sufficient statistics for every feature of m.
func NewStats(m *dataset.Design) *Stats {
	statsBuilds.Inc()
	statsRowsHist.Observe(int64(m.NumRows()))
	s := &Stats{
		N:           m.NumRows(),
		NumClasses:  m.NumClasses,
		ClassCounts: make([]int, m.NumClasses),
		Counts:      make([][]int, m.NumFeatures()),
		Cards:       make([]int, m.NumFeatures()),
	}
	for _, y := range m.Y {
		s.ClassCounts[y]++
	}
	for f := range m.Features {
		card := m.Features[f].Card
		s.Cards[f] = card
		tab := make([]int, m.NumClasses*card)
		data := m.Features[f].Data
		for i, y := range m.Y {
			tab[int(y)*card+int(data[i])]++
		}
		s.Counts[f] = tab
	}
	return s
}

// Model is a Naive Bayes model over a feature subset, backed by shared
// sufficient statistics. Predictions use Laplace (add-Alpha) smoothing, the
// standard remedy for RID values absent from the training instance that the
// paper adopts (§2.1 footnote 2).
type Model struct {
	stats *Stats
	// Features are the design-matrix column indices in use.
	Features []int
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64
	// logPrior[c] caches log P(Y=c) with smoothing.
	logPrior []float64
}

// Predict returns argmax_c log P(c) + Σ_f log P(x_f | c).
func (mod *Model) Predict(m *dataset.Design, row int) int32 {
	s := mod.stats
	best := int32(0)
	bestScore := math.Inf(-1)
	for c := 0; c < s.NumClasses; c++ {
		score := mod.logPrior[c]
		denom := float64(s.ClassCounts[c])
		for _, f := range mod.Features {
			card := s.Cards[f]
			v := int(m.Features[f].Data[row])
			count := float64(s.Counts[f][c*card+v])
			score += math.Log((count + mod.Alpha) / (denom + mod.Alpha*float64(card)))
		}
		if score > bestScore {
			bestScore = score
			best = int32(c)
		}
	}
	return best
}

// Posterior returns the normalized class posterior for the given row;
// useful for tests and calibration studies.
func (mod *Model) Posterior(m *dataset.Design, row int) []float64 {
	s := mod.stats
	logs := make([]float64, s.NumClasses)
	maxLog := math.Inf(-1)
	for c := 0; c < s.NumClasses; c++ {
		score := mod.logPrior[c]
		denom := float64(s.ClassCounts[c])
		for _, f := range mod.Features {
			card := s.Cards[f]
			v := int(m.Features[f].Data[row])
			count := float64(s.Counts[f][c*card+v])
			score += math.Log((count + mod.Alpha) / (denom + mod.Alpha*float64(card)))
		}
		logs[c] = score
		if score > maxLog {
			maxLog = score
		}
	}
	total := 0.0
	for c := range logs {
		logs[c] = math.Exp(logs[c] - maxLog)
		total += logs[c]
	}
	for c := range logs {
		logs[c] /= total
	}
	return logs
}

// ModelFromStats assembles a model over the given feature subset without
// re-counting; this is the O(1) assembly that wrapper search relies on.
func ModelFromStats(s *Stats, features []int, alpha float64) (*Model, error) {
	for _, f := range features {
		if f < 0 || f >= len(s.Counts) {
			return nil, fmt.Errorf("nb: feature index %d out of range [0,%d)", f, len(s.Counts))
		}
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("nb: smoothing alpha must be positive, got %v", alpha)
	}
	modelAssemblies.Inc()
	mod := &Model{stats: s, Features: features, Alpha: alpha}
	mod.logPrior = make([]float64, s.NumClasses)
	for c := range mod.logPrior {
		mod.logPrior[c] = math.Log((float64(s.ClassCounts[c]) + alpha) / (float64(s.N) + alpha*float64(s.NumClasses)))
	}
	return mod, nil
}

// Learner is the ml.Learner adapter for Naive Bayes. Zero value is not
// usable; construct with New.
type Learner struct {
	// Alpha is the Laplace smoothing pseudo-count.
	Alpha float64
}

// New returns a Naive Bayes learner with add-one smoothing.
func New() *Learner { return &Learner{Alpha: 1} }

// Name implements ml.Learner.
func (l *Learner) Name() string { return "naive-bayes" }

// Fit implements ml.Learner: it tabulates sufficient statistics over m and
// assembles a model over the subset.
func (l *Learner) Fit(m *dataset.Design, features []int) (ml.Model, error) {
	if err := ml.CheckFeatures(m, features); err != nil {
		return nil, err
	}
	fitCalls.Inc()
	return ModelFromStats(NewStats(m), features, l.Alpha)
}
