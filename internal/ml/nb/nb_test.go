package nb

import (
	"math"
	"testing"
	"testing/quick"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// tiny returns a small design matrix with a perfectly predictive feature 0
// and a noise feature 1.
func tiny() *dataset.Design {
	return &dataset.Design{
		NumClasses: 2,
		Y:          []int32{0, 0, 0, 1, 1, 1},
		Features: []dataset.Feature{
			{Name: "signal", Card: 2, Data: []int32{0, 0, 0, 1, 1, 1}},
			{Name: "noise", Card: 3, Data: []int32{0, 1, 2, 0, 1, 2}},
		},
	}
}

func TestStatsCounts(t *testing.T) {
	s := NewStats(tiny())
	if s.N != 6 || s.NumClasses != 2 {
		t.Fatalf("stats shape: N=%d classes=%d", s.N, s.NumClasses)
	}
	if s.ClassCounts[0] != 3 || s.ClassCounts[1] != 3 {
		t.Fatalf("class counts = %v", s.ClassCounts)
	}
	// Feature 0: class 0 has value 0 three times, value 1 zero times.
	if s.Counts[0][0] != 3 || s.Counts[0][1] != 0 || s.Counts[0][2] != 0 || s.Counts[0][3] != 3 {
		t.Fatalf("signal counts = %v", s.Counts[0])
	}
	// Feature 1 (card 3): uniform within each class.
	for c := 0; c < 2; c++ {
		for v := 0; v < 3; v++ {
			if s.Counts[1][c*3+v] != 1 {
				t.Fatalf("noise counts = %v", s.Counts[1])
			}
		}
	}
}

func TestPredictPerfectFeature(t *testing.T) {
	m := tiny()
	mod, err := New().Fit(m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Y {
		if got := mod.Predict(m, i); got != m.Y[i] {
			t.Fatalf("row %d predicted %d, want %d", i, got, m.Y[i])
		}
	}
}

func TestPredictEmptySubsetIsPrior(t *testing.T) {
	m := tiny()
	m.Y = []int32{0, 0, 0, 0, 1, 1} // majority class 0
	mod, err := New().Fit(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Y {
		if mod.Predict(m, i) != 0 {
			t.Fatal("prior-only model must predict the majority class")
		}
	}
}

func TestPosteriorNormalizedAndConsistent(t *testing.T) {
	m := tiny()
	mod, _ := New().Fit(m, []int{0, 1})
	nbMod := mod.(*Model)
	for i := range m.Y {
		p := nbMod.Posterior(m, i)
		sum := 0.0
		best, bestP := 0, -1.0
		for c, v := range p {
			sum += v
			if v > bestP {
				bestP, best = v, c
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
		if int32(best) != mod.Predict(m, i) {
			t.Fatal("Predict disagrees with argmax Posterior")
		}
	}
}

func TestPosteriorPropertyNormalized(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 20 + r.IntN(100)
		classes := 2 + r.IntN(3)
		card := 2 + r.IntN(5)
		m := &dataset.Design{NumClasses: classes, Y: make([]int32, n)}
		data := make([]int32, n)
		for i := 0; i < n; i++ {
			m.Y[i] = int32(r.IntN(classes))
			data[i] = int32(r.IntN(card))
		}
		m.Features = []dataset.Feature{{Name: "f", Card: card, Data: data}}
		mod, err := New().Fit(m, []int{0})
		if err != nil {
			return false
		}
		p := mod.(*Model).Posterior(m, 0)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceSmoothingHandlesUnseenValues(t *testing.T) {
	// Train where feature only takes value 0; predict a row with value 1.
	train := &dataset.Design{
		NumClasses: 2,
		Y:          []int32{0, 1},
		Features:   []dataset.Feature{{Name: "f", Card: 3, Data: []int32{0, 0}}},
	}
	test := &dataset.Design{
		NumClasses: 2,
		Y:          []int32{0},
		Features:   []dataset.Feature{{Name: "f", Card: 3, Data: []int32{1}}},
	}
	mod, err := New().Fit(train, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	got := mod.Predict(test, 0)
	if got != 0 && got != 1 {
		t.Fatalf("prediction on unseen value = %d", got)
	}
	p := mod.(*Model).Posterior(test, 0)
	if math.Abs(p[0]-0.5) > 1e-9 {
		t.Fatalf("unseen value should give the (uniform) prior, got %v", p)
	}
}

func TestModelFromStatsErrors(t *testing.T) {
	s := NewStats(tiny())
	if _, err := ModelFromStats(s, []int{5}, 1); err == nil {
		t.Fatal("out-of-range feature accepted")
	}
	if _, err := ModelFromStats(s, []int{0}, 0); err == nil {
		t.Fatal("nonpositive alpha accepted")
	}
}

func TestLearnerFitChecksFeatures(t *testing.T) {
	if _, err := New().Fit(tiny(), []int{-1}); err == nil {
		t.Fatal("negative feature index accepted")
	}
}

func TestDecomposabilityMatchesDirectFit(t *testing.T) {
	// A model assembled from precomputed stats over a subset must predict
	// identically to a model fit directly on that subset's design.
	r := stats.NewRNG(99)
	n := 300
	m := &dataset.Design{NumClasses: 3, Y: make([]int32, n)}
	cards := []int{2, 4, 5}
	for f, card := range cards {
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.IntN(card))
		}
		m.Features = append(m.Features, dataset.Feature{Name: string(rune('a' + f)), Card: card, Data: data})
	}
	for i := range m.Y {
		m.Y[i] = int32((int(m.Features[0].Data[i]) + r.IntN(2)) % 3)
	}
	s := NewStats(m)
	subset := []int{0, 2}
	fromStats, err := ModelFromStats(s, subset, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub := m.Subset(subset)
	direct, err := New().Fit(sub, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if fromStats.Predict(m, i) != direct.Predict(sub, i) {
			t.Fatalf("decomposed and direct models disagree at row %d", i)
		}
	}
}

func TestEvaluateViaInterface(t *testing.T) {
	m := tiny()
	errRate, err := ml.Evaluate(New(), m, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if errRate != 0 {
		t.Fatalf("train error on separable data = %v", errRate)
	}
}

func TestGeneralizationBeatsChance(t *testing.T) {
	// Noisy but learnable: P(Y = f(x)) = 0.85.
	r := stats.NewRNG(5)
	n := 2000
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	data := make([]int32, n)
	for i := 0; i < n; i++ {
		data[i] = int32(r.IntN(4))
		y := int32(int(data[i]) % 2)
		if !r.Bernoulli(0.85) {
			y = 1 - y
		}
		m.Y[i] = y
	}
	m.Features = []dataset.Feature{{Name: "f", Card: 4, Data: data}}
	train := m.SelectRows(seqRange(0, 1000))
	test := m.SelectRows(seqRange(1000, 2000))
	e, err := ml.Evaluate(New(), train, test, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.25 {
		t.Fatalf("test error %v, want ≈0.15", e)
	}
}

func seqRange(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
