package nb

import (
	"fmt"

	"hamlet/internal/dataset"
)

// Streaming sufficient statistics. StatsFromDataset (factorized.go) already
// avoids the join for the JoinAll feature set by aggregating per-(FK, class)
// counts through each attribute table — the strongest form of push-down, but
// specific to plans that join everything and keep every column. This file
// holds the general case: for *any* join plan, Naive Bayes sufficient
// statistics are a fold over design rows, so they can be computed through
// dataset.StreamDesign's chunked pipeline with O(chunk · features) peak
// residency and no materialized design matrix. The result is bit-identical
// to NewStats over Materialize(p) — counts are integers and accumulate in
// the same row order — which the property tests in stream_test.go pin across
// random schemas, plans, and chunk sizes.

// StatsFromSource tabulates sufficient statistics for every feature of a
// streaming design, consuming the source to exhaustion.
func StatsFromSource(src *dataset.DesignSource) (*Stats, error) {
	statsBuilds.Inc()
	s := &Stats{
		NumClasses:  src.NumClasses,
		ClassCounts: make([]int, src.NumClasses),
		Counts:      make([][]int, src.NumFeatures()),
		Cards:       make([]int, src.NumFeatures()),
	}
	for f := range src.Features {
		s.Cards[f] = src.Features[f].Card
		s.Counts[f] = make([]int, src.NumClasses*src.Features[f].Card)
	}
	for {
		ch, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("nb: streamed stats: %w", err)
		}
		if ch == nil {
			break
		}
		s.N += ch.Rows
		for i := 0; i < ch.Rows; i++ {
			s.ClassCounts[ch.Y[i]]++
		}
		for f, col := range ch.Cols {
			card := s.Cards[f]
			tab := s.Counts[f]
			y := ch.Y
			for i := 0; i < ch.Rows; i++ {
				tab[int(y[i])*card+int(col[i])]++
			}
		}
	}
	statsRowsHist.Observe(int64(s.N))
	return s, nil
}

// StatsFromPlan tabulates Naive Bayes sufficient statistics for the given
// join plan's feature set by streaming the design through the joins: no call
// in this path materializes the denormalized matrix. Feature order matches
// Dataset.Materialize(p). chunkSize bounds peak residency
// (relational.DefaultChunkSize when <= 0).
func StatsFromPlan(d *dataset.Dataset, p dataset.Plan, chunkSize int) (*Stats, error) {
	src, err := d.StreamDesign(p, chunkSize)
	if err != nil {
		return nil, err
	}
	return StatsFromSource(src)
}

// FitStreamed trains a Naive Bayes model over the plan's full feature set
// through the streaming pipeline — the any-plan generalization of
// FitFactorized. The returned model predicts on design matrices
// materialized with the same plan (the column layouts match by
// construction).
func (l *Learner) FitStreamed(d *dataset.Dataset, p dataset.Plan, chunkSize int) (*Model, error) {
	s, err := StatsFromPlan(d, p, chunkSize)
	if err != nil {
		return nil, err
	}
	features := make([]int, len(s.Counts))
	for i := range features {
		features[i] = i
	}
	mod, err := ModelFromStats(s, features, l.Alpha)
	if err != nil {
		return nil, fmt.Errorf("nb: streamed fit: %w", err)
	}
	return mod, nil
}
