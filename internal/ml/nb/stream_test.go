package nb

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
)

// randDataset mirrors the generator in internal/dataset's stream tests: a
// random normalized dataset with a target, home features, and 0–2 attribute
// tables behind (possibly open-domain) FKs.
func randDataset(rng *rand.Rand) *dataset.Dataset {
	nS := 1 + rng.Intn(120)
	entity := relational.NewTable("S")
	yCard := 2 + rng.Intn(3)
	yData := make([]int32, nS)
	for i := range yData {
		yData[i] = int32(rng.Intn(yCard))
	}
	entity.MustAddColumn(&relational.Column{Name: "Y", Card: yCard, Data: yData})
	var home []string
	for h := 0; h < 1+rng.Intn(3); h++ {
		card := 1 + rng.Intn(6)
		data := make([]int32, nS)
		for i := range data {
			data[i] = int32(rng.Intn(card))
		}
		name := "H" + string(rune('a'+h))
		entity.MustAddColumn(&relational.Column{Name: name, Card: card, Data: data})
		home = append(home, name)
	}
	d := &dataset.Dataset{Name: "Rand", Entity: entity, Target: "Y", HomeFeatures: home}
	for a := 0; a < rng.Intn(3); a++ {
		nR := 1 + rng.Intn(25)
		attr := relational.NewTable("R" + string(rune('0'+a)))
		for j := 0; j < 1+rng.Intn(3); j++ {
			card := 1 + rng.Intn(8)
			data := make([]int32, nR)
			for i := range data {
				data[i] = int32(rng.Intn(card))
			}
			attr.MustAddColumn(&relational.Column{Name: "F" + string(rune('0'+a)) + string(rune('a'+j)), Card: card, Data: data})
		}
		fk := make([]int32, nS)
		for i := range fk {
			fk[i] = int32(rng.Intn(nR))
		}
		fkName := "FK" + string(rune('0'+a))
		entity.MustAddColumn(&relational.Column{Name: fkName, Card: nR, Data: fk})
		d.Attrs = append(d.Attrs, dataset.AttributeTable{Table: attr, FK: fkName, ClosedDomain: rng.Intn(3) > 0})
	}
	return d
}

// randPlan picks a random valid plan over d's FKs.
func randPlan(rng *rand.Rand, d *dataset.Dataset) dataset.Plan {
	var p dataset.Plan
	for _, at := range d.Attrs {
		if !at.ClosedDomain || rng.Intn(2) == 0 {
			p.JoinFKs = append(p.JoinFKs, at.FK)
		}
		if at.ClosedDomain && rng.Intn(3) == 0 {
			p.DropFKs = append(p.DropFKs, at.FK)
		}
	}
	return p
}

// TestStatsFromPlanMatchesNewStats is the push-down equivalence property:
// for random datasets, plans, and chunk sizes, sufficient statistics
// computed through the streaming join pipeline are bitwise-equal to
// tabulating over the fully materialized design. Counts are integers, so
// reflect.DeepEqual is an exact comparison.
func TestStatsFromPlanMatchesNewStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		d := randDataset(rng)
		p := randPlan(rng, d)
		m, err := d.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		want := NewStats(m)
		for _, cs := range []int{1, 5, 31, 1000, 0} {
			got, err := StatsFromPlan(d, p, cs)
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("chunk %d: streamed stats differ from materialized\nwant %+v\ngot  %+v", cs, want, got)
			}
		}
	}
}

// TestStatsFromPlanMatchesFactorized pins the JoinAll corner against the
// fully factorized path: three independent routes to the same statistics.
func TestStatsFromPlanMatchesFactorized(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		d := randDataset(rng)
		want, err := StatsFromDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := StatsFromPlan(d, d.JoinAllPlan(), 13)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("streamed JoinAll stats differ from factorized\nwant %+v\ngot  %+v", want, got)
		}
	}
}

func TestFitStreamedPredictsLikeMaterializedFit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randDataset(rng)
	p := d.JoinAllPlan()
	m, err := d.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	feats := make([]int, m.NumFeatures())
	for i := range feats {
		feats[i] = i
	}
	ref, err := New().Fit(m, feats)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := New().FitStreamed(d, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < m.NumRows(); row++ {
		if got, want := mod.Predict(m, row), ref.(*Model).Predict(m, row); got != want {
			t.Fatalf("row %d: streamed-fit predicts %d, materialized-fit %d", row, got, want)
		}
	}
}

// benchShapeDataset builds the BenchmarkKFKJoin workload as a dataset: a
// 100k-row entity with a binary target and one FK into a 1k-row attribute
// table of 8 features.
func benchShapeDataset(nS int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(24))
	const nR, dR = 1000, 8
	r := relational.NewTable("R")
	for j := 0; j < dR; j++ {
		data := make([]int32, nR)
		for i := range data {
			data[i] = int32(rng.Intn(10))
		}
		r.MustAddColumn(&relational.Column{Name: "F" + string(rune('a'+j)), Card: 10, Data: data})
	}
	entity := relational.NewTable("S")
	y := make([]int32, nS)
	fk := make([]int32, nS)
	for i := range y {
		y[i] = int32(rng.Intn(2))
		fk[i] = int32(rng.Intn(nR))
	}
	entity.MustAddColumn(&relational.Column{Name: "Y", Card: 2, Data: y})
	entity.MustAddColumn(&relational.Column{Name: "FK", Card: nR, Data: fk})
	return &dataset.Dataset{
		Name: "Bench", Entity: entity, Target: "Y",
		Attrs: []dataset.AttributeTable{{Table: r, FK: "FK", ClosedDomain: true}},
	}
}

// allocBytes measures the heap bytes one run of f allocates. Tests run
// sequentially and f runs on this goroutine, so the TotalAlloc delta is
// attributable to f (with generous margins in the assertions below).
func allocBytes(f func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// TestStreamedStatsAllocationIsOChunkNotORows pins the memory contract from
// two directions on the BenchmarkKFKJoin-shaped workload:
//
//  1. against the materialized path: streaming must allocate at most 5% of
//     what Materialize+NewStats allocates (the ISSUE 9 acceptance bar —
//     in practice it is ~4% at the default chunk size, the gather buffers
//     against the 3.2 MB denormalized matrix);
//  2. against itself at 4× the rows: with the chunk size fixed, total
//     allocation must stay flat as rows grow, because buffers are reused
//     across chunks — O(chunk), not O(rows).
func TestStreamedStatsAllocationIsOChunkNotORows(t *testing.T) {
	d1 := benchShapeDataset(25000)
	d4 := benchShapeDataset(100000)
	p := d4.JoinAllPlan()

	run := func(d *dataset.Dataset) func() {
		return func() {
			if _, err := StatsFromPlan(d, p, relational.DefaultChunkSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	matRun := func() {
		m, err := d4.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		NewStats(m)
	}

	// Warm both paths once so one-time init is off the books.
	run(d4)()
	matRun()

	streamed := allocBytes(run(d4))
	materialized := allocBytes(matRun)
	if streamed*20 > materialized {
		t.Fatalf("streamed stats allocated %d B, more than 5%% of the materialized path's %d B", streamed, materialized)
	}

	small := allocBytes(run(d1))
	large := allocBytes(run(d4))
	if small == 0 {
		small = 1
	}
	if float64(large) > 2*float64(small) {
		t.Fatalf("streamed stats allocation grew with rows: %d B at 25k rows vs %d B at 100k rows", small, large)
	}
}
