// Package tan implements the Tree-Augmented Naive Bayes classifier
// (Friedman, Geiger & Goldszmidt 1997) discussed in the paper's Appendix E.
//
// TAN relaxes Naive Bayes' conditional-independence assumption by allowing
// each feature one feature parent in addition to the class. The structure is
// learned Chow–Liu style: build the complete graph over features weighted by
// conditional mutual information I(X_i; X_j | Y), extract a maximum spanning
// tree, and direct it away from an arbitrary root.
//
// The paper's Appendix E observation — which tests in this package verify —
// is that under the FD FK → X_R materialized by a KFK join, every foreign
// feature attaches to FK in the learned tree, so it participates only through
// the (unhelpful) Kronecker-delta distribution P(X_R | FK), and TAN gains
// nothing over Naive Bayes from the joined features.
package tan

import (
	"fmt"
	"math"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/stats"
)

// Learner is the ml.Learner adapter for TAN.
type Learner struct {
	// Alpha is the Laplace smoothing pseudo-count for the CPTs.
	Alpha float64
}

// New returns a TAN learner with add-one smoothing.
func New() *Learner { return &Learner{Alpha: 1} }

// Name implements ml.Learner.
func (l *Learner) Name() string { return "tan" }

// Model is a trained TAN model.
type Model struct {
	// Features are the design-matrix column indices in use, in tree order.
	Features []int
	// Parent[j] is the index (into Features) of feature j's feature
	// parent, or -1 for the root.
	Parent []int
	// logPrior[c] is log P(Y=c).
	logPrior []float64
	// cpts[j] holds log P(x_j | parent value, class): indexed
	// [((c*parentCard)+pv)*card + v]. For the root, parentCard = 1.
	cpts  [][]float64
	cards []int
	// NumClasses is the target cardinality.
	NumClasses int
}

// ParentOf returns the position (within the model's feature list) of feature
// j's parent, or -1 if j is the root. Exposed for structure tests.
func (mod *Model) ParentOf(j int) int { return mod.Parent[j] }

// Predict implements ml.Model.
func (mod *Model) Predict(m *dataset.Design, row int) int32 {
	best := int32(0)
	bestScore := math.Inf(-1)
	for c := 0; c < mod.NumClasses; c++ {
		score := mod.logPrior[c]
		for j, fi := range mod.Features {
			v := int(m.Features[fi].Data[row])
			pv := 0
			if p := mod.Parent[j]; p >= 0 {
				pv = int(m.Features[mod.Features[p]].Data[row])
			}
			score += mod.cpts[j][(c*parentCard(mod, j)+pv)*mod.cards[j]+v]
		}
		if score > bestScore {
			bestScore = score
			best = int32(c)
		}
	}
	return best
}

func parentCard(mod *Model, j int) int {
	if p := mod.Parent[j]; p >= 0 {
		return mod.cards[p]
	}
	return 1
}

// Fit implements ml.Learner: Chow–Liu structure learning over conditional
// mutual information, then smoothed CPT estimation.
func (l *Learner) Fit(m *dataset.Design, features []int) (ml.Model, error) {
	if err := ml.CheckFeatures(m, features); err != nil {
		return nil, err
	}
	if l.Alpha <= 0 {
		return nil, fmt.Errorf("tan: smoothing alpha must be positive, got %v", l.Alpha)
	}
	n := m.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("tan: empty training set")
	}
	k := len(features)
	mod := &Model{Features: features, NumClasses: m.NumClasses}
	mod.cards = make([]int, k)
	for j, fi := range features {
		mod.cards[j] = m.Features[fi].Card
	}

	// Structure: maximum spanning tree over CMI weights (Prim's algorithm).
	mod.Parent = make([]int, k)
	for j := range mod.Parent {
		mod.Parent[j] = -1
	}
	if k > 1 {
		weight := func(a, b int) float64 {
			fa, fb := m.Features[features[a]], m.Features[features[b]]
			return stats.ConditionalMutualInformation(fa.Data, fa.Card, fb.Data, fb.Card, m.Y, m.NumClasses)
		}
		inTree := make([]bool, k)
		bestW := make([]float64, k)
		bestFrom := make([]int, k)
		for j := 1; j < k; j++ {
			bestW[j] = weight(0, j)
			bestFrom[j] = 0
		}
		inTree[0] = true
		for added := 1; added < k; added++ {
			pick, pickW := -1, math.Inf(-1)
			for j := 1; j < k; j++ {
				if !inTree[j] && bestW[j] > pickW {
					pick, pickW = j, bestW[j]
				}
			}
			inTree[pick] = true
			mod.Parent[pick] = bestFrom[pick]
			for j := 1; j < k; j++ {
				if !inTree[j] {
					if w := weight(pick, j); w > bestW[j] {
						bestW[j] = w
						bestFrom[j] = pick
					}
				}
			}
		}
	}

	// Parameters: class prior and per-feature CPTs with Laplace smoothing.
	classCounts := make([]int, m.NumClasses)
	for _, y := range m.Y {
		classCounts[y]++
	}
	mod.logPrior = make([]float64, m.NumClasses)
	for c := range mod.logPrior {
		mod.logPrior[c] = math.Log((float64(classCounts[c]) + l.Alpha) / (float64(n) + l.Alpha*float64(m.NumClasses)))
	}
	mod.cpts = make([][]float64, k)
	for j, fi := range features {
		card := mod.cards[j]
		pcard := parentCard(mod, j)
		counts := make([]int, m.NumClasses*pcard*card)
		data := m.Features[fi].Data
		var pdata []int32
		if p := mod.Parent[j]; p >= 0 {
			pdata = m.Features[features[p]].Data
		}
		for i := 0; i < n; i++ {
			pv := 0
			if pdata != nil {
				pv = int(pdata[i])
			}
			counts[(int(m.Y[i])*pcard+pv)*card+int(data[i])]++
		}
		cpt := make([]float64, len(counts))
		for c := 0; c < m.NumClasses; c++ {
			for pv := 0; pv < pcard; pv++ {
				base := (c*pcard + pv) * card
				total := 0
				for v := 0; v < card; v++ {
					total += counts[base+v]
				}
				for v := 0; v < card; v++ {
					cpt[base+v] = math.Log((float64(counts[base+v]) + l.Alpha) / (float64(total) + l.Alpha*float64(card)))
				}
			}
		}
		mod.cpts[j] = cpt
	}
	return mod, nil
}
