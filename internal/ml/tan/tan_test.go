package tan

import (
	"testing"

	"hamlet/internal/dataset"
	"hamlet/internal/ml"
	"hamlet/internal/ml/nb"
	"hamlet/internal/stats"
)

// xorDesign builds the classic case where TAN beats NB: Y = X0 XOR X1.
// Naive Bayes cannot represent XOR; TAN with an X0→X1 edge can.
func xorDesign(n int, seed uint64) *dataset.Design {
	r := stats.NewRNG(seed)
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	a := make([]int32, n)
	b := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i] = int32(r.IntN(2))
		b[i] = int32(r.IntN(2))
		m.Y[i] = a[i] ^ b[i]
	}
	m.Features = []dataset.Feature{
		{Name: "a", Card: 2, Data: a},
		{Name: "b", Card: 2, Data: b},
	}
	return m
}

func TestTANSolvesXOR(t *testing.T) {
	m := xorDesign(2000, 1)
	tanErr, err := ml.Evaluate(New(), m, m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	nbErr, err := ml.Evaluate(nb.New(), m, m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tanErr > 0.02 {
		t.Fatalf("TAN XOR error = %v, want ≈0", tanErr)
	}
	if nbErr < 0.4 {
		t.Fatalf("NB XOR error = %v, expected ≈0.5 (cannot represent XOR)", nbErr)
	}
}

func TestTreeIsSpanningAndAcyclic(t *testing.T) {
	r := stats.NewRNG(5)
	n, k := 500, 6
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	for f := 0; f < k; f++ {
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.IntN(3))
		}
		m.Features = append(m.Features, dataset.Feature{Name: string(rune('a' + f)), Card: 3, Data: data})
	}
	for i := range m.Y {
		m.Y[i] = int32(r.IntN(2))
	}
	feats := []int{0, 1, 2, 3, 4, 5}
	mod, err := New().Fit(m, feats)
	if err != nil {
		t.Fatal(err)
	}
	tm := mod.(*Model)
	roots := 0
	for j := range feats {
		p := tm.ParentOf(j)
		if p == -1 {
			roots++
			continue
		}
		if p < 0 || p >= k || p == j {
			t.Fatalf("invalid parent %d for feature %d", p, j)
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots, want 1", roots)
	}
	// Acyclicity: walking parents from any node must reach the root.
	for j := range feats {
		seen := make(map[int]bool)
		cur := j
		for cur != -1 {
			if seen[cur] {
				t.Fatalf("cycle through feature %d", j)
			}
			seen[cur] = true
			cur = tm.ParentOf(cur)
		}
	}
}

// TestForeignFeaturesAttachToFK verifies the Appendix E pathology: when the
// FD FK → X_R holds, I(FK; F | Y) = H(F|Y) is maximal, so every foreign
// feature's tree parent is (transitively) the FK, and TAN's accuracy matches
// plain NB on FK alone.
func TestForeignFeaturesAttachToFK(t *testing.T) {
	r := stats.NewRNG(11)
	nR, n := 12, 3000
	// FD mapping: two foreign features determined by FK.
	f1Map := make([]int32, nR)
	f2Map := make([]int32, nR)
	for i := range f1Map {
		f1Map[i] = int32(r.IntN(3))
		f2Map[i] = int32(r.IntN(4))
	}
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	fk := make([]int32, n)
	f1 := make([]int32, n)
	f2 := make([]int32, n)
	for i := 0; i < n; i++ {
		fk[i] = int32(r.IntN(nR))
		f1[i] = f1Map[fk[i]]
		f2[i] = f2Map[fk[i]]
		// Y depends on f1 with noise.
		y := int32(int(f1[i]) % 2)
		if !r.Bernoulli(0.9) {
			y = 1 - y
		}
		m.Y[i] = y
	}
	m.Features = []dataset.Feature{
		{Name: "FK", Card: nR, Data: fk, IsFK: true},
		{Name: "F1", Card: 3, Data: f1},
		{Name: "F2", Card: 4, Data: f2},
	}
	mod, err := New().Fit(m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tm := mod.(*Model)
	// Both foreign features must hang off FK (feature position 0): under
	// the FD, I(FK;F|Y) = H(F|Y) ≥ I(F;F'|Y), with ties broken toward FK
	// because it is scanned first.
	for j := 1; j <= 2; j++ {
		cur := j
		for tm.ParentOf(cur) != -1 {
			cur = tm.ParentOf(cur)
		}
		if cur != 0 {
			t.Fatalf("foreign feature %d does not descend from FK", j)
		}
	}
}

func TestTANMatchesNBWithSingleFeature(t *testing.T) {
	m := xorDesign(500, 3)
	tanErr, err := ml.Evaluate(New(), m, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	nbErr, err := ml.Evaluate(nb.New(), m, m, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if tanErr != nbErr {
		t.Fatalf("single-feature TAN (%v) must equal NB (%v)", tanErr, nbErr)
	}
}

func TestTANEmptyFeatureSetIsPrior(t *testing.T) {
	n := 100
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	for i := 60; i < n; i++ {
		m.Y[i] = 1
	}
	mod, err := New().Fit(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Predict(m, 0) != 0 {
		t.Fatal("prior-only TAN should predict majority class")
	}
}

func TestTANValidation(t *testing.T) {
	m := xorDesign(10, 1)
	if _, err := New().Fit(m, []int{9}); err == nil {
		t.Fatal("out-of-range feature accepted")
	}
	l := New()
	l.Alpha = 0
	if _, err := l.Fit(m, []int{0}); err == nil {
		t.Fatal("zero alpha accepted")
	}
	empty := &dataset.Design{NumClasses: 2}
	if _, err := New().Fit(empty, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}
