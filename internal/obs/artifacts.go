package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Artifact file names inside a run directory (the CLIs' -out flag).
const (
	// ManifestFile is the run manifest (RunInfo), written at open.
	ManifestFile = "manifest.json"
	// EventsFile is the structured JSONL event stream, appended while the
	// run executes.
	EventsFile = "events.jsonl"
	// MetricsFile is the final Default-registry snapshot, written at close.
	MetricsFile = "metrics.json"
	// TraceFile is the full span tree as JSON, written at close.
	TraceFile = "trace.json"
	// ResultsFile is the per-figure result stream (experiments only),
	// appended as each experiment completes.
	ResultsFile = "results.jsonl"
	// HistogramsFile holds named latency histogram snapshots (loadgen),
	// written at close. Optional: readers must load run dirs without it.
	HistogramsFile = "histograms.json"
	// TracesFile is the sampled distributed-trace stream (one TraceRecord
	// per line), appended as the tail sampler keeps traces. Optional, like
	// every post-v1 artifact.
	TracesFile = "traces.jsonl"
)

// HistogramsArtifact is the histograms.json payload: named histogram
// snapshots under a schema stamp. The write side is WriteHistograms; the
// read side is internal/report, which gates on the version like every other
// artifact.
type HistogramsArtifact struct {
	SchemaVersion int                          `json:"schema_version"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// RunDir persists one run's artifacts to a directory: the manifest at open,
// a live event stream while running, and the metrics snapshot plus span
// trace at close. A nil *RunDir no-ops everywhere, so CLIs call through it
// unconditionally and the -out-unset path stays allocation-free.
type RunDir struct {
	dir     string
	info    *RunInfo
	events  *EventLog
	eventsF *os.File
	results *os.File
	traces  *TraceLog
}

// OpenRunDir creates dir (and parents), writes manifest.json from info, and
// opens events.jsonl with a run_start event already emitted. An empty dir
// returns (nil, nil) — the disabled layer.
func OpenRunDir(dir string, info *RunInfo) (*RunDir, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: create run dir: %w", err)
	}
	// Every written manifest carries the current schema version, even when
	// the caller built the RunInfo by hand rather than via CollectRunInfo.
	info.SchemaVersion = SchemaVersion
	if err := writeJSON(filepath.Join(dir, ManifestFile), info); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, fmt.Errorf("obs: create %s: %w", EventsFile, err)
	}
	r := &RunDir{dir: dir, info: info, events: NewEventLog(f), eventsF: f}
	r.traces = &TraceLog{path: filepath.Join(dir, TracesFile)}
	r.events.RunStart(info)
	return r, nil
}

// Dir returns the run directory path ("" on nil).
func (r *RunDir) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Events returns the run's event log (nil on nil, which itself no-ops).
func (r *RunDir) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Traces returns the run's sampled-trace log (nil on nil, which itself
// no-ops). The traces.jsonl file is only created once a trace is kept.
func (r *RunDir) Traces() *TraceLog {
	if r == nil {
		return nil
	}
	return r.traces
}

// AppendResult marshals v onto one line of results.jsonl, creating the file
// on first use. Experiments call this once per figure table row batch so
// figure data survives independently of the rendered tables.
func (r *RunDir) AppendResult(v any) error {
	if r == nil {
		return nil
	}
	if r.results == nil {
		f, err := os.Create(filepath.Join(r.dir, ResultsFile))
		if err != nil {
			return fmt.Errorf("obs: create %s: %w", ResultsFile, err)
		}
		r.results = f
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obs: marshal result: %w", err)
	}
	_, err = r.results.Write(append(data, '\n'))
	return err
}

// WriteHistograms persists named histogram snapshots as histograms.json.
// The artifact is additive to schema v1: run directories without it load
// exactly as before, and readers that predate it ignore the file. A nil
// *RunDir or an empty map no-ops.
func (r *RunDir) WriteHistograms(hists map[string]HistogramSnapshot) error {
	if r == nil || len(hists) == 0 {
		return nil
	}
	return writeJSON(filepath.Join(r.dir, HistogramsFile), HistogramsArtifact{
		SchemaVersion: SchemaVersion,
		Histograms:    hists,
	})
}

// Close finalizes the run: emits the span tree (root may be nil) and a
// run_end event carrying runErr, writes metrics.json from the Default
// registry and trace.json from root, and closes the streams. Safe on nil.
func (r *RunDir) Close(root *Span, runErr error) error {
	if r == nil {
		return nil
	}
	r.events.SpanTree(root)
	r.events.RunEnd(runErr, time.Since(r.info.Start))
	var errs []error
	if err := writeJSON(filepath.Join(r.dir, MetricsFile), Default.Snapshot()); err != nil {
		errs = append(errs, err)
	}
	if err := writeJSON(filepath.Join(r.dir, TraceFile), root); err != nil {
		errs = append(errs, err)
	}
	if err := r.eventsF.Close(); err != nil {
		errs = append(errs, err)
	}
	if r.results != nil {
		if err := r.results.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := r.traces.close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// writeJSON writes v to path as indented JSON with a trailing newline.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write %s: %w", filepath.Base(path), err)
	}
	return nil
}
