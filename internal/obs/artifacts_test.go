package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunDirWritesAllArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	info := CollectRunInfo("hamlet", nil)
	r, err := OpenRunDir(dir, info)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir() != dir {
		t.Errorf("Dir() = %q", r.Dir())
	}
	r.Events().Progress("walmart", 1, 2)
	if err := r.AppendResult(map[string]any{"experiment": "fig3", "row": 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendResult(map[string]any{"experiment": "fig3", "row": 2}); err != nil {
		t.Fatal(err)
	}
	root := StartSpan("hamlet")
	root.Child("decide").End()
	root.End()
	if err := r.Close(root, nil); err != nil {
		t.Fatal(err)
	}

	// manifest.json round-trips to the collected RunInfo.
	var gotInfo RunInfo
	mustUnmarshalFile(t, filepath.Join(dir, ManifestFile), &gotInfo)
	if gotInfo.Tool != "hamlet" || gotInfo.GoVersion != info.GoVersion {
		t.Errorf("manifest = %+v", gotInfo)
	}

	// events.jsonl brackets the run and carries the span tree.
	events, err := os.ReadFile(filepath.Join(dir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(events)), "\n")
	kinds := make([]string, len(lines))
	for i, line := range lines {
		var ev struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events line %d: %v", i+1, err)
		}
		kinds[i] = ev.Msg
	}
	want := []string{"run_start", "progress", "span_end", "span_end", "run_end"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}

	// metrics.json is the Default registry snapshot (a JSON object).
	var metrics map[string]any
	mustUnmarshalFile(t, filepath.Join(dir, MetricsFile), &metrics)

	// trace.json holds the span tree.
	var trace struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	mustUnmarshalFile(t, filepath.Join(dir, TraceFile), &trace)
	if trace.Name != "hamlet" || len(trace.Children) != 1 || trace.Children[0].Name != "decide" {
		t.Errorf("trace = %+v", trace)
	}

	// results.jsonl has one line per AppendResult call.
	results, err := os.ReadFile(filepath.Join(dir, ResultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(results), "\n"); got != 2 {
		t.Errorf("results.jsonl has %d lines, want 2:\n%s", got, results)
	}
}

func TestRunDirNoResultsFileWithoutResults(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRunDir(dir, CollectRunInfo("simulate", nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil, errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ResultsFile)); !os.IsNotExist(err) {
		t.Error("results.jsonl created despite no results")
	}
	// A nil root still yields a (null) trace.json, and the failure lands in
	// run_end.
	data, err := os.ReadFile(filepath.Join(dir, TraceFile))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "null" {
		t.Errorf("trace.json for traceless run = %q, want null", data)
	}
	events, err := os.ReadFile(filepath.Join(dir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"error":"boom"`) || !strings.Contains(string(events), `"ok":false`) {
		t.Errorf("run_end did not record the failure:\n%s", events)
	}
}

func TestOpenRunDirEmptyIsDisabled(t *testing.T) {
	r, err := OpenRunDir("", nil)
	if err != nil || r != nil {
		t.Fatalf("OpenRunDir(\"\") = %v, %v; want nil, nil", r, err)
	}
	// The nil layer must be fully inert.
	if r.Dir() != "" || r.Events() != nil {
		t.Error("nil RunDir accessors not zero")
	}
	if err := r.AppendResult(map[string]int{"x": 1}); err != nil {
		t.Errorf("nil AppendResult: %v", err)
	}
	if err := r.Close(StartSpan("s"), nil); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestRunDirNestedPathCreation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "nested", "run")
	info := &RunInfo{Tool: "experiments", Flags: map[string]string{}, Start: time.Now()}
	r, err := OpenRunDir(dir, info)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{ManifestFile, EventsFile, MetricsFile, TraceFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func mustUnmarshalFile(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
