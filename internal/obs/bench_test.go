package obs

import "testing"

// The nil-receiver and disabled fast paths are the package's core contract:
// instrumented hot paths must cost nothing measurable when observability is
// off. These benchmarks pin those paths.

func BenchmarkNilSpanOps(b *testing.B) {
	var s *Span
	for i := 0; i < b.N; i++ {
		c := s.Child("x")
		c.Add("n", 1)
		c.End()
	}
}

func BenchmarkSpanAdd(b *testing.B) {
	s := StartSpan("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add("n", 1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	SetEnabled(true)
	c := &Counter{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	SetEnabled(false)
	defer SetEnabled(true)
	c := &Counter{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	SetEnabled(true)
	h := NewHistogram(DefaultPrecision)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	SetEnabled(false)
	defer SetEnabled(true)
	h := NewHistogram(DefaultPrecision)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
