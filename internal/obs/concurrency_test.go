package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestRegistryConcurrentUpdatesDuringSnapshot hammers one registry from
// several writer goroutines while the main goroutine repeatedly serializes
// Snapshot() to JSON — the exact interleaving a RunDir.Close or an expvar
// scrape performs against a live run. Run under -race (the tier-1 gate
// does), this pins the lock/atomic discipline of the registry.
func TestRegistryConcurrentUpdatesDuringSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("evals").Inc()
				r.Gauge("rows").Set(int64(i))
				r.Histogram("sizes").Observe(int64(i % 1024))
			}
		}(w)
	}
	// Serialize snapshots concurrently with the writes.
	for i := 0; i < 200; i++ {
		if _, err := json.Marshal(r.Snapshot()); err != nil {
			t.Fatalf("snapshot %d not serializable mid-run: %v", i, err)
		}
	}
	wg.Wait()
	// After the dust settles the counts must be exact — no lost updates.
	if got := r.Counter("evals").Value(); got != writers*perWriter {
		t.Errorf("evals = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("sizes").Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestEventLogConcurrentEmit checks that interleaved emitters never tear a
// JSONL line (slog handlers serialize their writes).
func TestEventLogConcurrentEmit(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	// bytes.Buffer is not concurrency-safe; wrap it the way a file would
	// serialize at the OS level.
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewEventLog(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Progress("worker", int64(i), 100)
			}
		}(g)
	}
	wg.Wait()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("line %d torn by concurrent emit: %q", i+1, line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
