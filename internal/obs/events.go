package obs

import (
	"context"
	"io"
	"log/slog"
	"sort"
	"time"
)

// EventLog is the persisted half of the observability layer: a structured
// JSONL event stream built on log/slog's JSON handler. Where spans and the
// metrics registry die with the process, an EventLog records what a run did
// — run boundaries, span ends, progress milestones, experiment results — as
// one self-describing JSON object per line, so the trajectory of a Monte
// Carlo campaign can be replayed, diffed, and audited after the fact.
//
// Schema: every line has "time" (RFC 3339 with sub-second precision),
// "msg" (the event kind), and "v" (the artifact SchemaVersion); the
// remaining keys are per-kind attributes. Kinds emitted by this package:
//
//	run_start   tool, commit (when stamped)
//	span_end    path, duration_ms, counters{...}
//	progress    label, done, total
//	run_end     ok, duration_ms, error (when failed)
//
// CLIs add their own kinds (e.g. "decision", "analyze", "experiment") via
// Emit. All methods no-op on a nil receiver, so library code holds an
// *EventLog unconditionally; writes are serialized by the slog handler.
type EventLog struct {
	log *slog.Logger
}

// NewEventLog returns an event log writing JSONL to w. The caller owns w
// (an EventLog never closes it).
func NewEventLog(w io.Writer) *EventLog { return newEventLog(w, nil) }

// newEventLog is the test seam: a non-nil fixed time replaces the wall
// clock on every line, making the byte stream deterministic (golden files).
func newEventLog(w io.Writer, fixed *time.Time) *EventLog {
	opts := &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) > 0 {
				return a
			}
			switch a.Key {
			case slog.LevelKey:
				return slog.Attr{} // every event is informational; drop the key
			case slog.TimeKey:
				if fixed != nil {
					return slog.Time(slog.TimeKey, *fixed)
				}
			}
			return a
		},
	}
	// The version stamp rides on the logger, not on each Emit call, so every
	// line — including CLI-emitted custom kinds — carries it right after msg.
	return &EventLog{log: slog.New(slog.NewJSONHandler(w, opts)).With(slog.Int("v", SchemaVersion))}
}

// Emit writes one event of the given kind with the given attributes.
func (l *EventLog) Emit(kind string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.log.LogAttrs(context.Background(), slog.LevelInfo, kind, attrs...)
}

// RunStart records the beginning of a run described by info.
func (l *EventLog) RunStart(info *RunInfo) {
	if l == nil {
		return
	}
	attrs := []slog.Attr{slog.String("tool", info.Tool)}
	if info.Commit != "" {
		attrs = append(attrs, slog.String("commit", info.Commit))
	}
	l.Emit("run_start", attrs...)
}

// RunEnd records the end of a run: its outcome and total duration.
func (l *EventLog) RunEnd(runErr error, elapsed time.Duration) {
	if l == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Bool("ok", runErr == nil),
		slog.Float64("duration_ms", durationMS(elapsed)),
	}
	if runErr != nil {
		attrs = append(attrs, slog.String("error", runErr.Error()))
	}
	l.Emit("run_end", attrs...)
}

// Progress records one progress milestone (total may be 0 when unknown).
func (l *EventLog) Progress(label string, done, total int64) {
	if l == nil {
		return
	}
	l.Emit("progress",
		slog.String("label", label),
		slog.Int64("done", done),
		slog.Int64("total", total),
	)
}

// SpanTree emits one span_end event per node of a finished span tree, in
// depth-first order, each carrying its slash-separated path from the root,
// its duration, and its counters (sorted by name). Emitting the tree at run
// end — rather than hooking Span.End — keeps the hot path free of I/O.
func (l *EventLog) SpanTree(s *Span) {
	if l == nil || s == nil {
		return
	}
	l.spanTree(s, s.Name())
}

func (l *EventLog) spanTree(s *Span, path string) {
	attrs := []slog.Attr{
		slog.String("path", path),
		slog.Float64("duration_ms", durationMS(s.Duration())),
	}
	if counters := s.Counters(); len(counters) > 0 {
		keys := make([]string, 0, len(counters))
		for k := range counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		group := make([]any, 0, len(keys))
		for _, k := range keys {
			group = append(group, slog.Int64(k, counters[k]))
		}
		attrs = append(attrs, slog.Group("counters", group...))
	}
	l.Emit("span_end", attrs...)
	for _, c := range s.Children() {
		l.spanTree(c, path+"/"+c.Name())
	}
}

// durationMS renders a duration as fractional milliseconds, the unit used
// across the JSON artifacts (span trace, events).
func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
