package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"os"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSpan builds an already-ended span with a deterministic duration, so
// golden files don't depend on the wall clock.
func fixedSpan(name string, dur time.Duration, counters map[string]int64) *Span {
	return &Span{
		name:     name,
		start:    time.Date(2016, 6, 26, 12, 0, 0, 0, time.UTC),
		dur:      dur,
		ended:    true,
		counters: counters,
	}
}

// writeFixtureEvents emits one event of every kind this package produces,
// plus a CLI-style custom event, with all volatile inputs pinned.
func writeFixtureEvents(w *bytes.Buffer) {
	fixed := time.Date(2016, 6, 26, 12, 0, 0, 0, time.UTC)
	l := newEventLog(w, &fixed)

	info := &RunInfo{Tool: "hamlet", Commit: "3ef8e58deadbeef"}
	l.RunStart(info)

	root := fixedSpan("analyze(Walmart)", 41*time.Millisecond, nil)
	plan := fixedSpan("plan(JoinAll)", 39*time.Millisecond, map[string]int64{"evaluations": 120, "features": 9})
	plan.children = []*Span{fixedSpan("materialize", 2*time.Millisecond, map[string]int64{"rows": 21078})}
	root.children = []*Span{plan}
	l.SpanTree(root)

	l.Progress("fig3", 96, 288)
	l.Emit("decision", slog.String("attr", "products"), slog.String("verdict", "AVOID"))
	l.RunEnd(nil, 41*time.Millisecond)
}

func TestEventLogGolden(t *testing.T) {
	var buf bytes.Buffer
	writeFixtureEvents(&buf)

	golden := "testdata/events.golden.jsonl"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event stream diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestEventLogRoundTrip re-parses the emitted JSONL and checks the schema:
// every line is a standalone JSON object with time and msg, and each kind
// carries its documented attributes with the right types.
func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	writeFixtureEvents(&buf)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d events, want 7:\n%s", len(lines), buf.String())
	}
	var kinds []string
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i+1, err, line)
		}
		ts, ok := ev["time"].(string)
		if !ok {
			t.Fatalf("line %d missing time: %s", i+1, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
			t.Errorf("line %d time not RFC3339: %v", i+1, err)
		}
		if _, hasLevel := ev["level"]; hasLevel {
			t.Errorf("line %d carries a level key; events are unleveled: %s", i+1, line)
		}
		if ev["v"] != float64(SchemaVersion) {
			t.Errorf("line %d schema stamp v = %v, want %d: %s", i+1, ev["v"], SchemaVersion, line)
		}
		kind, _ := ev["msg"].(string)
		kinds = append(kinds, kind)
		switch kind {
		case "run_start":
			if ev["tool"] != "hamlet" || ev["commit"] != "3ef8e58deadbeef" {
				t.Errorf("run_start attrs: %s", line)
			}
		case "span_end":
			if _, ok := ev["path"].(string); !ok {
				t.Errorf("span_end missing path: %s", line)
			}
			if _, ok := ev["duration_ms"].(float64); !ok {
				t.Errorf("span_end missing duration_ms: %s", line)
			}
		case "progress":
			if ev["label"] != "fig3" || ev["done"] != float64(96) || ev["total"] != float64(288) {
				t.Errorf("progress attrs: %s", line)
			}
		case "run_end":
			if ev["ok"] != true || ev["duration_ms"] != float64(41) {
				t.Errorf("run_end attrs: %s", line)
			}
		}
	}
	want := []string{"run_start", "span_end", "span_end", "span_end", "progress", "decision", "run_end"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}

	// Span paths are slash-joined from the root; counters ride in a group.
	var planEv map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &planEv); err != nil {
		t.Fatal(err)
	}
	if planEv["path"] != "analyze(Walmart)/plan(JoinAll)" {
		t.Errorf("nested span path = %v", planEv["path"])
	}
	counters, ok := planEv["counters"].(map[string]any)
	if !ok || counters["evaluations"] != float64(120) || counters["features"] != float64(9) {
		t.Errorf("span counters group = %v", planEv["counters"])
	}
}

func TestEventLogFailureRunEnd(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.RunEnd(os.ErrNotExist, 3*time.Millisecond)
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["ok"] != false || ev["error"] != os.ErrNotExist.Error() {
		t.Errorf("failed run_end = %s", buf.String())
	}
}

func TestNilEventLogNoOps(t *testing.T) {
	var l *EventLog
	l.Emit("x")
	l.RunStart(&RunInfo{Tool: "t"})
	l.RunEnd(nil, 0)
	l.Progress("p", 1, 2)
	l.SpanTree(StartSpan("s"))
}
