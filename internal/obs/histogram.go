package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Histogram is a log-linear ("HDR-style") histogram of non-negative int64
// values, built for latency telemetry: updates are lock-free atomics, bucket
// boundaries guarantee a configurable relative error, and snapshots are
// mergeable and quantile-capable.
//
// Bucket scheme. With precision p (sub-bucket bits, S = 2^p sub-buckets per
// octave):
//
//   - values 0..S-1 land in S unit-width buckets (exact);
//   - every later power-of-two range [S·2^(e-1), S·2^e) is split into S
//     buckets of width 2^(e-1).
//
// A bucket's width over its lower bound is therefore at most 1/S = 2^-p, so
// any value reported from a bucket (Quantile reports the bucket's inclusive
// upper bound) overestimates the true value by at most a factor 1 + 2^-p —
// at the default precision 7 that is ≤ 0.79% relative error, uniformly
// across the full int64 range. Memory is (64-p)·2^p counters (57 KiB at
// p=7), allocated once at construction.
//
// Negative observations clamp to zero: the histogram records magnitudes
// (durations, sizes, counts).
//
// The zero cost rules of the package hold: a nil *Histogram no-ops, and
// enabled-path Observe is a handful of atomic ops with no allocation (both
// pinned by tests).
type Histogram struct {
	precision uint
	buckets   []atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	min       atomic.Int64 // valid only when count > 0
	max       atomic.Int64
}

// Histogram precision limits. Precision is the number of sub-bucket bits:
// relative quantile error is bounded by 2^-precision.
const (
	// DefaultPrecision (7) bounds quantile error at 2^-7 ≈ 0.79%.
	DefaultPrecision = 7
	// MaxPrecision caps per-histogram memory at (64-10)·2^10 counters.
	MaxPrecision = 10
)

// NewHistogram returns a histogram with the given precision (sub-bucket
// bits), clamped to [0, MaxPrecision]. Precision 0 degenerates to plain
// power-of-two buckets.
func NewHistogram(precision int) *Histogram {
	p := uint(min(max(precision, 0), MaxPrecision))
	h := &Histogram{precision: p, buckets: make([]atomic.Int64, (64-p)<<p)}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64, p uint) int {
	u := uint64(v)
	if u < 1<<p {
		return int(u)
	}
	e := uint(bits.Len64(u)) - p // era ≥ 1
	return int(e)<<p + int(u>>(e-1)) - 1<<p
}

// bucketUpper returns the inclusive upper bound of a bucket. For every
// representable non-negative int64 the arithmetic stays in range (the last
// bucket's bound is exactly math.MaxInt64).
func bucketUpper(idx int, p uint) int64 {
	if idx < 1<<p {
		return int64(idx)
	}
	e := uint(idx) >> p
	j := uint64(idx) & (1<<p - 1)
	return int64((1<<p+j+1)<<(e-1) - 1)
}

// Observe records one value when the metrics layer is enabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v, h.precision)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed (clamped) values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// reset zeroes the histogram (Registry.Reset).
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram: sparse bucket
// counts keyed by bucket index, plus the exact observed extremes. Snapshots
// are value types made for the read side — they marshal to JSON (the
// histograms.json artifact), merge across shards, and estimate quantiles.
type HistogramSnapshot struct {
	// Precision is the source histogram's sub-bucket bits; quantile
	// estimates carry relative error at most 2^-Precision.
	Precision int `json:"precision"`
	// Count and Sum aggregate all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Min and Max are the exact observed extremes (0 when Count is 0).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets maps bucket index to its observation count, omitting empty
	// buckets. JSON object keys are the decimal indices.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Concurrent Observes may
// straddle the copy (counts are consistent enough for reporting, as with
// every snapshot in this package).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{Precision: DefaultPrecision}
	}
	s := HistogramSnapshot{
		Precision: int(h.precision),
		Count:     h.count.Load(),
		Sum:       h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) as the inclusive upper
// bound of the bucket holding the rank-⌈q·Count⌉ observation, clamped to the
// exact observed [Min, Max]. The estimate never undershoots the true order
// statistic and overshoots it by at most a factor 1 + 2^-Precision. Returns
// 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= s.Count {
		return s.Max
	}
	idxs := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var cum int64
	for _, i := range idxs {
		cum += s.Buckets[i]
		if cum >= rank {
			return min(max(bucketUpper(i, uint(s.Precision)), s.Min), s.Max)
		}
	}
	return s.Max
}

// CountAtOrBelow returns the number of observations known to be ≤ v: the
// total over buckets whose inclusive upper bound is ≤ v. Observations in
// the bucket straddling v are excluded, so the count never overstates —
// used as the "good events" side of a latency SLI, it is conservative by at
// most one bucket (a relative-2^-Precision sliver of the threshold).
func (s HistogramSnapshot) CountAtOrBelow(v int64) int64 {
	if v < 0 || s.Count == 0 {
		return 0
	}
	if v >= s.Max {
		return s.Count
	}
	var n int64
	p := uint(s.Precision)
	for i, c := range s.Buckets {
		if bucketUpper(i, p) <= v {
			n += c
		}
	}
	return n
}

// Mean returns the exact mean of the observations (0 on empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// MaxQuantileError returns the bucket scheme's relative error bound,
// 2^-Precision: Quantile(q) ≤ true q-quantile · (1 + MaxQuantileError()).
func (s HistogramSnapshot) MaxQuantileError() float64 {
	return math.Ldexp(1, -s.Precision)
}

// Merge folds other into s: per-bucket counts add, extremes widen. Shards
// recorded at different precisions do not share a bucket layout, so merging
// them is refused. Merging into an empty snapshot adopts other's precision.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if other.Count == 0 {
		return nil
	}
	if s.Count == 0 {
		buckets := make(map[int]int64, len(other.Buckets))
		for i, n := range other.Buckets {
			buckets[i] = n
		}
		*s = other
		s.Buckets = buckets
		return nil
	}
	if s.Precision != other.Precision {
		return fmt.Errorf("obs: cannot merge histogram snapshots of precision %d and %d", s.Precision, other.Precision)
	}
	s.Count += other.Count
	s.Sum += other.Sum
	s.Min = min(s.Min, other.Min)
	s.Max = max(s.Max, other.Max)
	if s.Buckets == nil && len(other.Buckets) > 0 {
		s.Buckets = make(map[int]int64, len(other.Buckets))
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
	return nil
}
