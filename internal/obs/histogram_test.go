package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sampleLatencies draws a deterministic, heavy-tailed sample shaped like
// request latencies: a lognormal body with a uniform far tail.
func sampleLatencies(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		v := int64(math.Exp(rng.NormFloat64()*1.5 + 12)) // ~160µs median in ns
		if rng.Intn(100) == 0 {
			v += rng.Int63n(50_000_000) // occasional 50ms-scale excursions
		}
		out[i] = v
	}
	return out
}

// exactQuantile is the rank-⌈q·n⌉ order statistic of a sorted sample — the
// reference the histogram estimate is bounded against.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileWithinErrorBound is the property check behind the
// documented guarantee: for any sample, Quantile(q) never undershoots the
// exact sample quantile and overshoots it by at most a factor 1+2^-p.
func TestHistogramQuantileWithinErrorBound(t *testing.T) {
	for _, p := range []int{4, DefaultPrecision, MaxPrecision} {
		samples := sampleLatencies(20000, 7)
		h := NewHistogram(p)
		for _, v := range samples {
			h.Observe(v)
		}
		snap := h.Snapshot()
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			exact := exactQuantile(sorted, q)
			est := snap.Quantile(q)
			if est < exact {
				t.Errorf("p=%d q=%g: estimate %d undershoots exact %d", p, q, est, exact)
			}
			if bound := float64(exact) * (1 + snap.MaxQuantileError()); float64(est) > bound {
				t.Errorf("p=%d q=%g: estimate %d beyond error bound %.0f (exact %d)", p, q, est, bound, exact)
			}
		}
		if got := snap.Quantile(0); got != sorted[0] {
			t.Errorf("p=%d: Quantile(0) = %d, want exact min %d", p, got, sorted[0])
		}
		if got := snap.Quantile(1); got != sorted[len(sorted)-1] {
			t.Errorf("p=%d: Quantile(1) = %d, want exact max %d", p, got, sorted[len(sorted)-1])
		}
	}
}

// TestHistogramMergeMatchesSingle pins the merge contract loadgen relies on:
// per-worker shards merged snapshot-wise are indistinguishable from one
// histogram that saw every observation.
func TestHistogramMergeMatchesSingle(t *testing.T) {
	samples := sampleLatencies(8000, 11)
	whole := NewHistogram(DefaultPrecision)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram(DefaultPrecision)
	}
	for i, v := range samples {
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	var merged HistogramSnapshot
	for _, sh := range shards {
		if err := merged.Merge(sh.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged, whole.Snapshot()) {
		t.Errorf("merged shards diverge from the single histogram:\n%#v\n%#v", merged, whole.Snapshot())
	}
}

func TestHistogramMergeRefusesPrecisionMismatch(t *testing.T) {
	a, b := NewHistogram(4), NewHistogram(7)
	a.Observe(10)
	b.Observe(10)
	snap := a.Snapshot()
	if err := snap.Merge(b.Snapshot()); err == nil {
		t.Fatal("merging precision-4 and precision-7 snapshots did not error")
	}
	// Merging an empty shard is a no-op regardless of precision.
	if err := snap.Merge(NewHistogram(7).Snapshot()); err != nil || snap.Count != 1 {
		t.Errorf("empty-shard merge: err=%v count=%d", err, snap.Count)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	snap := NewHistogram(DefaultPrecision).Snapshot()
	if snap.Count != 0 || snap.Min != 0 || snap.Max != 0 || snap.Buckets != nil {
		t.Errorf("empty snapshot = %#v", snap)
	}
	if snap.Quantile(0.99) != 0 || snap.Mean() != 0 {
		t.Error("empty snapshot quantile/mean not zero")
	}
}

// The latency hot path contract: Observe must stay off the allocator both
// when enabled (the loadgen per-request path) and on the nil receiver (the
// obs-off path). Mirrors the nil *EventLog / *RunDir pins.
func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram(DefaultPrecision)
	v := int64(0)
	if n := testing.AllocsPerRun(500, func() {
		h.Observe(v)
		v += 997
	}); n != 0 {
		t.Errorf("enabled Observe allocates %.1f/op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(500, func() {
		nilH.Observe(123)
	}); n != 0 {
		t.Errorf("nil Observe allocates %.1f/op, want 0", n)
	}
}
