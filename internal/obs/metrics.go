package obs

import (
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing process-wide metric. The zero value
// is usable; a nil Counter no-ops.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter when the metrics layer is enabled.
func (c *Counter) Add(delta int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.n.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value-wins process-wide metric.
type Gauge struct {
	n atomic.Int64
}

// Set records the current value when the metrics layer is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.n.Store(v)
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// Histogram is a bounded histogram: observations are counted into buckets
// delimited by inclusive upper bounds, with one implicit overflow bucket.
// Updates are lock-free atomics.
type Histogram struct {
	bounds  []int64 // sorted inclusive upper bounds; len(buckets) == len(bounds)+1
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// newHistogram builds a histogram over sorted inclusive upper bounds.
func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value when the metrics layer is enabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering: per-bucket counts labeled "<=bound" plus a ">bound" overflow.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current buckets, omitting empty ones.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		label := fmt.Sprintf(">%d", h.bounds[len(h.bounds)-1])
		if i < len(h.bounds) {
			label = fmt.Sprintf("<=%d", h.bounds[i])
		}
		s.Buckets[label] = n
	}
	return s
}

// Pow2Bounds returns n inclusive upper bounds starting at lo and doubling:
// lo, 2lo, 4lo, ... — the default bucketing for row/evaluation counts whose
// interesting range spans orders of magnitude.
func Pow2Bounds(lo int64, n int) []int64 {
	if lo < 1 {
		lo = 1
	}
	out := make([]int64, 0, n)
	for v, i := lo, 0; i < n; v, i = v*2, i+1 {
		out = append(out, v)
	}
	return out
}

// Registry is a named collection of metrics. Metrics are created on first
// use and live for the life of the process.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every instrumented package reports
// into; published to expvar as "hamlet" by Publish.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders every metric into a JSON-marshalable map: counters and
// gauges as numbers, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// Reset zeroes every registered metric (tests and CLI run boundaries).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.n.Store(0)
	}
	for _, g := range r.gauges {
		g.n.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// C returns a counter from the Default registry. Hot paths grab their
// counters once at package init:
//
//	var joins = obs.C("relational.joins")
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string, bounds ...int64) *Histogram { return Default.Histogram(name, bounds...) }

var publishOnce sync.Once

// Publish exposes the Default registry on expvar under the name "hamlet",
// so any process serving http (see ProfileFlags) reports live metrics at
// /debug/vars. Safe to call more than once.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("hamlet", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
