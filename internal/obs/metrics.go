package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing process-wide metric. The zero value
// is usable; a nil Counter no-ops.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter when the metrics layer is enabled.
func (c *Counter) Add(delta int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.n.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value-wins process-wide metric.
type Gauge struct {
	n atomic.Int64
}

// Set records the current value when the metrics layer is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.n.Store(v)
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// Registry is a named collection of metrics. Metrics are created on first
// use and live for the life of the process.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every instrumented package reports
// into; published to expvar as "hamlet" by Publish.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it at DefaultPrecision on
// first use. Histograms needing a different precision are built directly
// with NewHistogram (e.g. cmd/loadgen's per-worker latency shards).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(DefaultPrecision)
		r.histograms[name] = h
	}
	return h
}

// SetHistogram registers h under name, replacing any previous histogram of
// that name. It is the bridge for subsystems that must build histograms at a
// caller-chosen precision (e.g. internal/server's per-endpoint request
// latency) but still want them on the registry's surfaces — expvar's
// /debug/vars and the metrics.json artifact. A nil histogram is ignored.
func (r *Registry) SetHistogram(name string, h *Histogram) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histograms[name] = h
}

// Snapshot renders every metric into a JSON-marshalable map: counters and
// gauges as numbers, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// Reset zeroes every registered metric (tests and CLI run boundaries).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.n.Store(0)
	}
	for _, g := range r.gauges {
		g.n.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// C returns a counter from the Default registry. Hot paths grab their
// counters once at package init:
//
//	var joins = obs.C("relational.joins")
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

var publishOnce sync.Once

// Publish exposes the Default registry on expvar under the name "hamlet",
// so any process serving http (see ProfileFlags) reports live metrics at
// /debug/vars. Safe to call more than once.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("hamlet", expvar.Func(func() any { return Default.Snapshot() }))
	})
}
