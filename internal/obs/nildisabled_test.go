package obs

import (
	"testing"
	"time"
)

// The -out-unset contract: when no run directory is open, every call a CLI
// or library makes through the (nil) *RunDir and *EventLog must not only
// no-op but stay off the allocator entirely — these sit on per-world and
// per-dataset hot paths. The versioned writers must not regress this: the
// schema stamp lives on the enabled logger, not on the disabled path.

func TestNilEventLogHotPathAllocFree(t *testing.T) {
	var l *EventLog
	info := &RunInfo{Tool: "hamlet"}
	span := fixedSpan("s", time.Millisecond, nil)
	if n := testing.AllocsPerRun(200, func() {
		l.Emit("decision")
		l.Progress("fig3", 1, 2)
		l.RunStart(info)
		l.RunEnd(nil, time.Second)
		l.SpanTree(span)
	}); n != 0 {
		t.Errorf("nil *EventLog methods allocate %.1f/op, want 0", n)
	}
}

func TestNilRunDirHotPathAllocFree(t *testing.T) {
	var r *RunDir
	payload := map[string]string{"k": "v"} // built once; AppendResult must not touch it
	if n := testing.AllocsPerRun(200, func() {
		_ = r.Dir()
		r.Events().Progress("walmart", 1, 2)
		if err := r.AppendResult(payload); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(nil, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("nil *RunDir methods allocate %.1f/op, want 0", n)
	}
}

func BenchmarkNilEventLogEmit(b *testing.B) {
	var l *EventLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit("decision")
	}
}

func BenchmarkNilRunDirAppendResult(b *testing.B) {
	var r *RunDir
	row := &ResultRow{V: SchemaVersion, Experiment: "fig3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.AppendResult(row); err != nil {
			b.Fatal(err)
		}
	}
}
