// Package obs is Hamlet-Go's stdlib-only observability layer: a
// hierarchical span tracer, a process-wide metrics registry published via
// expvar, a progress/ETA reporter for long Monte Carlo runs, and runtime
// profiling hooks shared by the CLIs.
//
// The paper's headline claim is a runtime claim — avoiding joins yields
// large feature-selection speedups — so the repro must be able to say where
// time actually goes: join materialization vs. selection sweeps vs. model
// training. Every layer of the pipeline (relational, dataset, fs, ml,
// biasvar, experiments) reports into this package.
//
// Design rules:
//
//   - Zero cost when disabled. All *Span methods are nil-receiver no-ops, so
//     un-traced code paths pay one predictable nil check. Metric updates are
//     single atomic ops gated on a global enable flag; SetEnabled(false)
//     turns them into a load-and-return. Both paths are benchmarked (see
//     bench_test.go here and BenchmarkForwardSelectionObsOff at the repo
//     root).
//   - Stdlib only: time, sync/atomic, expvar, net/http/pprof. No external
//     dependencies, matching the rest of the repository.
//   - Metrics are process-wide (Default registry) because the hot paths
//     (relational.Join, fs evaluators, nb counting) have no natural place to
//     thread a handle through; spans are explicit values threaded through
//     APIs because their nesting is the information.
package obs

import "sync/atomic"

// enabled gates all metric updates. Spans are gated by nil-ness instead.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the metrics layer on or off process-wide. Disabled
// metrics cost one atomic load per update site. Spans are unaffected: a nil
// span is always free, a live span always records.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the metrics layer is recording.
func Enabled() bool { return enabled.Load() }
