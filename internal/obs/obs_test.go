package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	root := StartSpan("analyze")
	a := root.Child("plan(JoinAll)")
	a.Add("evaluations", 70)
	a.Add("evaluations", 2)
	m := a.Child("materialize")
	m.Add("rows", 42157)
	m.End()
	a.End()
	b := root.Child("plan(JoinOpt)")
	b.End()
	root.End()

	if got := root.Name(); got != "analyze" {
		t.Errorf("Name() = %q, want analyze", got)
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
	if kids[0] != a || kids[1] != b {
		t.Error("children not in start order")
	}
	if got := a.Counter("evaluations"); got != 72 {
		t.Errorf("evaluations counter = %d, want 72", got)
	}
	if got := a.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	if len(a.Children()) != 1 || a.Children()[0].Counter("rows") != 42157 {
		t.Error("grandchild not recorded")
	}
	if root.Duration() <= 0 {
		t.Error("ended span has non-positive duration")
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	s := StartSpan("x")
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if got := s.Duration(); got != d {
		t.Errorf("second End changed duration: %v -> %v", d, got)
	}
}

func TestSpanWriteText(t *testing.T) {
	root := StartSpan("analyze(Walmart)")
	a := root.Child("plan(JoinAll)")
	a.Add("evaluations", 70)
	a.Child("materialize").End()
	a.Child("select(forward)").End()
	a.End()
	root.Child("plan(JoinOpt)").End()
	root.End()

	text := root.String()
	for _, want := range []string{
		"analyze(Walmart) ",
		"├─ plan(JoinAll) ",
		"[evaluations=70]",
		"│  ├─ materialize ",
		"│  └─ select(forward) ",
		"└─ plan(JoinOpt) ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, text)
		}
	}
}

func TestSpanCountersSorted(t *testing.T) {
	s := StartSpan("x")
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	s.End()
	text := s.String()
	if !strings.Contains(text, "[alpha=2 zeta=1]") {
		t.Errorf("counters not rendered in sorted order: %s", text)
	}
}

func TestSpanJSON(t *testing.T) {
	root := StartSpan("root")
	root.Child("kid").Add("rows", 3)
	root.End()
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name     string  `json:"name"`
		Duration float64 `json:"duration_ms"`
		Children []struct {
			Name     string           `json:"name"`
			Counters map[string]int64 `json:"counters"`
		} `json:"children"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "root" || len(got.Children) != 1 {
		t.Fatalf("unexpected JSON structure: %s", data)
	}
	if got.Children[0].Counters["rows"] != 3 {
		t.Errorf("child counters = %v, want rows=3", got.Children[0].Counters)
	}
}

func TestNilSpanNoOps(t *testing.T) {
	var s *Span
	s.End()
	s.Add("x", 1)
	if c := s.Child("y"); c != nil {
		t.Error("nil.Child returned non-nil")
	}
	if s.Name() != "" || s.Duration() != 0 || s.Counter("x") != 0 || s.Children() != nil {
		t.Error("nil span accessors not zero")
	}
	if s.String() != "" {
		t.Error("nil span String not empty")
	}
	if err := s.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
	data, err := json.Marshal(s)
	if err != nil || string(data) != "null" {
		t.Errorf("nil MarshalJSON = %s, %v; want null", data, err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(2) // S = 4 sub-buckets: 0..3 exact, then width-doubling eras
	for _, v := range []int64{0, 3, 4, 7, 8, 9, 1000, -5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 8 {
		t.Errorf("Count = %d, want 8", snap.Count)
	}
	if snap.Sum != 0+3+4+7+8+9+1000+0 { // -5 clamps to 0
		t.Errorf("Sum = %d", snap.Sum)
	}
	if snap.Min != 0 || snap.Max != 1000 {
		t.Errorf("Min/Max = %d/%d, want 0/1000", snap.Min, snap.Max)
	}
	// Linear range is exact; 8 and 9 share the width-2 bucket [8,9].
	want := map[int]int64{0: 2, 3: 1, 4: 1, 7: 1, 8: 2}
	for idx, n := range want {
		if snap.Buckets[idx] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", idx, snap.Buckets[idx], n, snap.Buckets)
		}
	}
	if len(snap.Buckets) != len(want)+1 { // +1 for 1000's bucket
		t.Errorf("unexpected bucket layout: %v", snap.Buckets)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	// Every value must land in a bucket whose inclusive upper bound is ≥ the
	// value and within the 2^-p relative error of it.
	for _, p := range []uint{0, 2, DefaultPrecision, MaxPrecision} {
		for _, v := range []int64{0, 1, 2, 3, 100, 1023, 1024, 1025, 1 << 40, math.MaxInt64} {
			idx := bucketIndex(v, p)
			ub := bucketUpper(idx, p)
			if ub < v {
				t.Fatalf("p=%d v=%d: upper bound %d < value", p, v, ub)
			}
			if v > 0 && float64(ub-v) > float64(v)*math.Ldexp(1, -int(p)) {
				t.Errorf("p=%d v=%d: upper bound %d beyond relative error bound", p, v, ub)
			}
			if idx > 0 && bucketUpper(idx-1, p) >= v {
				t.Errorf("p=%d v=%d: previous bucket also covers the value", p, v)
			}
		}
	}
}

func TestHistogramSnapshotRoundTripsJSON(t *testing.T) {
	h := NewHistogram(DefaultPrecision)
	for _, v := range []int64{5, 90, 5000, 123456789} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot round trip diverged:\n%#v\n%#v", snap, back)
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("joins").Add(3)
	r.Gauge("rows").Set(7)
	r.Histogram("sizes").Observe(5)

	if c := r.Counter("joins"); c.Value() != 3 {
		t.Errorf("get-or-create returned a fresh counter, value %d", c.Value())
	}
	snap := r.Snapshot()
	if snap["joins"] != int64(3) || snap["rows"] != int64(7) {
		t.Errorf("snapshot = %v", snap)
	}
	hs, ok := snap["sizes"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Errorf("histogram snapshot = %#v", snap["sizes"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}

	r.Reset()
	if r.Counter("joins").Value() != 0 || r.Gauge("rows").Value() != 0 || r.Histogram("sizes").Count() != 0 {
		t.Error("Reset did not zero metrics")
	}
	if len(r.Histogram("sizes").Snapshot().Buckets) != 0 {
		t.Error("Reset did not zero histogram buckets")
	}
}

func TestDisabledMetricsNoOp(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(5)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Error("disabled metrics recorded updates")
	}
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
}

func TestNilMetricsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics not zero")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Error("nil histogram snapshot not empty")
	}
}

func TestProgressReporting(t *testing.T) {
	var buf strings.Builder
	p := NewProgress(&buf, "fig3", 0) // every <= 0: emit on each Step
	p.AddTotal(4)
	p.Step(1)
	p.AddTotal(4) // totals may grow mid-run
	p.Step(3)
	p.Flush()

	if p.Done() != 4 || p.Total() != 8 {
		t.Errorf("Done/Total = %d/%d, want 4/8", p.Done(), p.Total())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "progress: fig3 1/4 (25.0%)") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "4/8 (50.0%)") {
		t.Errorf("flush line = %q", lines[2])
	}
}

func TestProgressRelabelAndNoTotal(t *testing.T) {
	var buf strings.Builder
	p := NewProgress(&buf, "a", 0)
	p.SetLabel("b")
	p.Step(2)
	if !strings.Contains(buf.String(), "progress: b 2 ") {
		t.Errorf("expected bare count with new label, got %q", buf.String())
	}
}

func TestNilProgressNoOps(t *testing.T) {
	var p *Progress
	p.SetLabel("x")
	p.AddTotal(5)
	p.Step(1)
	p.Flush()
	if p.Done() != 0 || p.Total() != 0 {
		t.Error("nil progress accessors not zero")
	}
}
