package obs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags bundles the runtime-profiling flags shared by the three CLIs
// (hamlet, experiments, simulate): CPU and heap profiles for short runs, and
// an HTTP endpoint serving net/http/pprof plus /debug/vars (the Default
// metrics registry) for long ones.
//
//	experiments -id fig7 -cpuprofile cpu.out -memprofile mem.out
//	experiments -http :6060   # then: go tool pprof http://localhost:6060/debug/pprof/profile
type ProfileFlags struct {
	// CPU is the CPU profile output path ("" disables).
	CPU string
	// Mem is the heap profile output path, written at Stop ("" disables).
	Mem string
	// HTTP is the listen address for pprof + expvar ("" disables).
	HTTP string
}

// Register installs -cpuprofile, -memprofile, and -http on the flag set.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.HTTP, "http", "", "serve net/http/pprof and /debug/vars on this address (e.g. :6060)")
}

// Start begins profiling per the flags and returns a stop function that the
// caller must run on exit (it stops the CPU profile and writes the heap
// profile). The HTTP server, if any, runs until the process exits.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	if p.HTTP != "" {
		Publish()
		ln := p.HTTP
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: http %s: %v\n", ln, err)
			}
		}()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return fmt.Errorf("obs: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
