package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports periodic progress/ETA lines for long Monte Carlo runs.
// The producer side (biasvar.Run, experiment runners) calls AddTotal as it
// learns how much work is coming and Step as units complete; the consumer
// (a CLI's -progress flag) decides where lines go and how often.
//
// Totals may grow while running (an experiment discovers its sweep points
// one at a time), so the ETA is a rolling estimate over the currently-known
// total. All methods no-op on a nil receiver, so library code passes
// Progress handles unconditionally.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	every time.Duration
	start time.Time
	last  time.Time
	total int64
	done  int64
	// events, when non-nil, receives one progress event per emitted line,
	// persisting the milestones a -progress stderr stream shows live.
	events *EventLog
}

// NewProgress returns a reporter writing to w at most once per every
// (every <= 0 reports on each Step — useful in tests).
func NewProgress(w io.Writer, label string, every time.Duration) *Progress {
	return &Progress{w: w, label: label, every: every, start: time.Now()}
}

// SetLabel renames the reporter (e.g. per experiment id).
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// AttachEvents mirrors every emitted progress line into l as a typed
// progress event (a nil l detaches).
func (p *Progress) AttachEvents(l *EventLog) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.events = l
	p.mu.Unlock()
}

// AddTotal announces n more units of upcoming work.
func (p *Progress) AddTotal(n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Step records n completed units and emits a line if the reporting interval
// has elapsed.
func (p *Progress) Step(n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += n
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	p.emit(now)
}

// Flush emits a final line regardless of the interval (CLIs call it when a
// run completes).
func (p *Progress) Flush() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emit(time.Now())
}

// emit writes one progress line; the caller holds the lock.
func (p *Progress) emit(now time.Time) {
	elapsed := now.Sub(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed.Seconds()
	}
	line := fmt.Sprintf("progress: %s %d", p.label, p.done)
	if p.total > 0 {
		line = fmt.Sprintf("progress: %s %d/%d (%.1f%%)", p.label, p.done, p.total, 100*float64(p.done)/float64(p.total))
	}
	line += fmt.Sprintf(" %.1f/s elapsed %s", rate, elapsed.Round(time.Second))
	if p.total > p.done && rate > 0 {
		eta := time.Duration(float64(p.total-p.done)/rate) * time.Second
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
	p.events.Progress(p.label, p.done, p.total)
}

// Done returns the completed unit count (0 on nil).
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// Total returns the currently-known total (0 on nil).
func (p *Progress) Total() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}
