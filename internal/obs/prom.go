package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders metrics in the Prometheus text exposition format
// (version 0.0.4) — the lingua franca of scrape-based monitoring — without
// taking a client-library dependency. The write side stays tiny because the
// repo's metric model is tiny: counters, gauges, and HistogramSnapshots.
// internal/server's GET /metrics builds on PromWriter; internal/report's
// `watch` parses the output back.

// PromContentType is the Content-Type of a text exposition response.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes s into a legal Prometheus metric name: every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed with
// '_'. Registry names like "relational.joins" become "relational_joins".
func PromName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value: backslash, double quote, and newline.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// PromWriter streams exposition lines to w. Methods are fire-and-forget; the
// first write error sticks and every later call no-ops, so callers check
// Err once at the end (the HTTP handler pattern). Not safe for concurrent
// use.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter returns a writer streaming to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// write emits one raw line.
func (p *PromWriter) write(line string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, line)
}

// Type writes the # HELP / # TYPE header for name once; later calls for the
// same name no-op, so series emitters can declare their type defensively.
func (p *PromWriter) Type(name, typ, help string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	if help != "" {
		p.write("# HELP " + name + " " + help + "\n")
	}
	p.write("# TYPE " + name + " " + typ + "\n")
}

// series renders name{labels} from pairwise labels (k1, v1, k2, v2, ...).
func series(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a sample value ("+Inf" for the unbounded bucket).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Value emits one sample line with a float value. Labels are pairwise
// (key, value, key, value, ...).
func (p *PromWriter) Value(name string, labels []string, v float64) {
	p.write(series(name, labels) + " " + promFloat(v) + "\n")
}

// Int emits one sample line with an integer value.
func (p *PromWriter) Int(name string, labels []string, v int64) {
	p.write(series(name, labels) + " " + strconv.FormatInt(v, 10) + "\n")
}

// Summary emits a Prometheus summary from two snapshots: quantile lines
// estimated over win (the rolling window — the summary convention is
// sliding-window quantiles) and _sum/_count from cum (cumulative, as the
// format requires). scale converts observed units to the exposed unit
// (1e-9 for ns → seconds). An empty window emits no quantile lines; the
// cumulative _sum/_count always appear.
func (p *PromWriter) Summary(name string, labels []string, win, cum HistogramSnapshot, scale float64, quantiles ...float64) {
	if win.Count > 0 {
		for _, q := range quantiles {
			p.Value(name, append(labels, "quantile", promFloat(q)), float64(win.Quantile(q))*scale)
		}
	}
	p.Value(name+"_sum", labels, float64(cum.Sum)*scale)
	p.Int(name+"_count", labels, cum.Count)
}

// Histogram emits a Prometheus histogram from a cumulative snapshot: one
// _bucket line per occupied bucket (le = the bucket's inclusive upper bound,
// matching le's ≤ semantics, scaled), the mandatory le="+Inf" line, and
// _sum/_count. scale converts observed units to the exposed unit.
func (p *PromWriter) Histogram(name string, labels []string, cum HistogramSnapshot, scale float64) {
	idxs := make([]int, 0, len(cum.Buckets))
	for i := range cum.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var cumulative int64
	for _, i := range idxs {
		cumulative += cum.Buckets[i]
		le := float64(bucketUpper(i, uint(cum.Precision))) * scale
		p.Value(name+"_bucket", append(labels, "le", promFloat(le)), float64(cumulative))
	}
	p.write(series(name+"_bucket", append(labels, "le", "+Inf")) + " " + strconv.FormatInt(cum.Count, 10) + "\n")
	p.Value(name+"_sum", labels, float64(cum.Sum)*scale)
	p.Int(name+"_count", labels, cum.Count)
}

// Export snapshots the registry's counters and gauges as plain maps — the
// bridge /metrics uses to expose every registered scalar without reaching
// into Registry internals. Histograms are not exported here: surfaces that
// expose them (histograms.json, /metrics latency series) hold their own
// handles with richer windowing than the registry tracks.
func (r *Registry) Export() (counters, gauges map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	return counters, gauges
}
