package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"relational.joins":         "relational_joins",
		"advisord.request_latency": "advisord_request_latency",
		"ok_name:with:colons":      "ok_name:with:colons",
		"9starts_with_digit":       "_9starts_with_digit",
		"spaces and-dashes":        "spaces_and_dashes",
		"":                         "_",
		"loadgen.errors_non2xx":    "loadgen_errors_non2xx",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromWriterScalarsAndEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Type("x_total", "counter", "Help text.")
	p.Type("x_total", "counter", "duplicate header must not repeat")
	p.Int("x_total", nil, 42)
	p.Value("g", []string{"path", `a"b\c` + "\n"}, 1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP x_total Help text.\n" +
		"# TYPE x_total counter\n" +
		"x_total 42\n" +
		`g{path="a\"b\\c\n"} 1.5` + "\n"
	if b.String() != want {
		t.Errorf("exposition =\n%s\nwant\n%s", b.String(), want)
	}
}

func TestPromWriterSummaryAndHistogram(t *testing.T) {
	h := NewHistogram(DefaultPrecision)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms in ns
	}
	snap := h.Snapshot()

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Summary("lat_seconds", []string{"endpoint", "decide"}, snap, snap, 1e-9, 0.5, 0.99)
	p.Histogram("dur_seconds", nil, snap, 1e-9)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		`lat_seconds{endpoint="decide",quantile="0.5"} `,
		`lat_seconds{endpoint="decide",quantile="0.99"} `,
		`lat_seconds_sum{endpoint="decide"} `,
		`lat_seconds_count{endpoint="decide"} 1000`,
		`dur_seconds_bucket{le="+Inf"} 1000`,
		`dur_seconds_count 1000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative and monotone, ending exactly at the count.
	var last float64
	var bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dur_seconds_bucket{le=") || strings.Contains(line, "+Inf") {
			continue
		}
		bucketLines++
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not monotone at %q (prev %.0f)", line, last)
		}
		last = v
	}
	if bucketLines == 0 {
		t.Fatal("no finite bucket lines")
	}
	if last != 1000 {
		t.Errorf("last finite bucket = %.0f, want 1000 (all observations bounded)", last)
	}

	// The p50 quantile of 1..1000 µs is ~500µs, exposed in seconds.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `lat_seconds{endpoint="decide",quantile="0.5"}`) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0.0004 || v > 0.00052 {
				t.Errorf("p50 = %g s, want ~0.0005", v)
			}
		}
	}
}

func TestPromWriterEmptyWindowSummary(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	var empty HistogramSnapshot
	cum := HistogramSnapshot{Count: 7, Sum: 7000}
	p.Summary("lat", nil, empty, cum, 1e-9, 0.5)
	out := b.String()
	if strings.Contains(out, "quantile") {
		t.Errorf("empty window emitted quantile lines:\n%s", out)
	}
	if !strings.Contains(out, "lat_count 7") {
		t.Errorf("cumulative count missing:\n%s", out)
	}
}

func TestRegistryExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.gauge").Set(-2)
	r.Histogram("c.hist").Observe(1)
	counters, gauges := r.Export()
	if counters["a.count"] != 3 || len(counters) != 1 {
		t.Errorf("counters = %v", counters)
	}
	if gauges["b.gauge"] != -2 || len(gauges) != 1 {
		t.Errorf("gauges = %v", gauges)
	}
}
