package obs

import (
	"flag"
	"runtime"
	"runtime/debug"
	"time"
)

// RunInfo is a run manifest: everything needed to say which code, on which
// machine shape, with which knobs, produced a set of artifacts. It is the
// reproducibility half of the observability layer — the paper's speedup
// claims are only comparable across commits when each number is pinned to a
// commit SHA, a Go version, and the exact resolved flag set that produced
// it.
//
// Determinism: for a fixed tool and flag set on a fixed toolchain, every
// field except Start is identical from run to run, so manifests diff
// cleanly (tests pin this).
type RunInfo struct {
	// SchemaVersion is the artifact schema the run directory was written
	// under (see SchemaVersion; readers gate on it via CheckSchemaVersion).
	// Zero identifies legacy, pre-versioning artifacts.
	SchemaVersion int `json:"schema_version"`
	// Tool is the producing command ("hamlet", "simulate", "experiments").
	Tool string `json:"tool"`
	// Flags is the fully resolved flag set — every registered flag with its
	// effective value, defaults included — which subsumes seeds, scales,
	// and budget overrides.
	Flags map[string]string `json:"flags"`
	// Commit is the VCS revision stamped into the binary by the Go
	// toolchain (empty when built without VCS info, e.g. go test binaries).
	Commit string `json:"commit,omitempty"`
	// CommitTime is the commit's author time, when stamped.
	CommitTime string `json:"commit_time,omitempty"`
	// Dirty reports uncommitted changes at build time, when stamped.
	Dirty bool `json:"vcs_dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS is the effective parallelism at collection time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Start is the wall-clock run start (the one volatile field).
	Start time.Time `json:"start,omitempty"`
}

// CollectRunInfo builds the manifest for a run of tool: build/VCS metadata
// from debug.ReadBuildInfo, the runtime platform, and the resolved values
// of every flag registered on fs (call after fs has been parsed; pass
// flag.CommandLine from a CLI).
func CollectRunInfo(tool string, fs *flag.FlagSet) *RunInfo {
	info := &RunInfo{
		SchemaVersion: SchemaVersion,

		Tool:       tool,
		Flags:      make(map[string]string),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Start:      time.Now(),
	}
	if fs != nil {
		fs.VisitAll(func(f *flag.Flag) {
			info.Flags[f.Name] = f.Value.String()
		})
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Commit = s.Value
			case "vcs.time":
				info.CommitTime = s.Value
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	return info
}

// BuildIdentity returns the binary's module version and VCS commit from the
// same debug.ReadBuildInfo source as RunInfo manifests — the label values
// for a build_info metric. Unstamped builds (e.g. go test binaries) report
// "devel"/"unknown" so the labels are never empty.
func BuildIdentity() (version, commit string) {
	version, commit = "devel", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				commit = s.Value
			}
		}
	}
	return version, commit
}
