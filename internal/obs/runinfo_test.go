package obs

import (
	"encoding/json"
	"flag"
	"runtime"
	"testing"
	"time"
)

// newTestFlagSet mimics a CLI flag set after parsing: some flags set, some
// left at their defaults (both must land in the manifest).
func newTestFlagSet(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("hamlet", flag.ContinueOnError)
	fs.Uint64("seed", 1, "")
	fs.Float64("scale", 0.1, "")
	fs.String("dataset", "all", "")
	fs.Bool("analyze", false, "")
	if err := fs.Parse([]string{"-seed", "42", "-dataset", "Walmart"}); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCollectRunInfoCapturesResolvedFlags(t *testing.T) {
	info := CollectRunInfo("hamlet", newTestFlagSet(t))
	if info.Tool != "hamlet" {
		t.Errorf("Tool = %q", info.Tool)
	}
	want := map[string]string{"seed": "42", "dataset": "Walmart", "scale": "0.1", "analyze": "false"}
	for k, v := range want {
		if info.Flags[k] != v {
			t.Errorf("Flags[%q] = %q, want %q (full: %v)", k, info.Flags[k], v, info.Flags)
		}
	}
	if len(info.Flags) != len(want) {
		t.Errorf("unexpected extra flags: %v", info.Flags)
	}
	if info.GoVersion != runtime.Version() || info.GOOS != runtime.GOOS || info.GOARCH != runtime.GOARCH {
		t.Errorf("toolchain fields wrong: %+v", info)
	}
	if info.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d", info.GOMAXPROCS)
	}
	if info.Start.IsZero() {
		t.Error("Start not stamped")
	}
}

// TestRunInfoDeterminism pins the manifest's reproducibility contract: for
// a fixed tool, flag set, and toolchain, two independently collected
// manifests serialize to byte-identical JSON once the one volatile field
// (Start) is cleared.
func TestRunInfoDeterminism(t *testing.T) {
	a := CollectRunInfo("simulate", newTestFlagSet(t))
	time.Sleep(2 * time.Millisecond) // make Start actually differ
	b := CollectRunInfo("simulate", newTestFlagSet(t))
	if a.Start.Equal(b.Start) {
		t.Fatal("test premise broken: identical Start times")
	}
	a.Start, b.Start = time.Time{}, time.Time{}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("manifests differ for identical inputs:\n%s\n%s", ja, jb)
	}
}

func TestCollectRunInfoNilFlagSet(t *testing.T) {
	info := CollectRunInfo("bare", nil)
	if info.Flags == nil || len(info.Flags) != 0 {
		t.Errorf("nil flag set should yield an empty (non-nil) map: %v", info.Flags)
	}
}
