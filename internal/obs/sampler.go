package obs

import (
	"math"
	"sync"
	"time"
)

// Sampler is the tail-based trace sampling policy: the decision of which
// request traces are worth persisting, made at request *end*, when the
// outcome is known. The policy is the paper's own argument applied to
// telemetry — avoid work you can prove you don't need:
//
//   - errors are always kept: they are the traces that explain incidents;
//   - requests at or over the slow threshold are always kept: they are the
//     traces that explain the p99;
//   - everything else is head-sampled at a configured probability, decided
//     deterministically from the trace ID so every process on a request's
//     path keeps the same traces without coordination (the W3C sampled
//     flag carries the same decision explicitly);
//   - a token-bucket rate cap bounds total kept traces per second, so a
//     2.2M req/s happy path — or an error storm — can never turn the trace
//     log into the bottleneck it is meant to diagnose.
//
// The package's zero-cost rules hold: a nil *Sampler no-ops (tracing
// disabled), and both the nil and enabled paths are allocation-free
// (pinned by AllocsPerRun tests).
type Sampler struct {
	// threshold is the head-sampling cut: keep when the trace ID's 64
	// uniform bits are below it.
	threshold uint64
	slowNS    int64
	// Token bucket, guarded by mu. ratePerNS is tokens regained per
	// nanosecond; burst is the bucket capacity. ratePerNS <= 0 disables the
	// cap.
	mu        sync.Mutex
	tokens    float64
	last      int64
	ratePerNS float64
	burst     float64
	nowNS     func() int64
}

// NewSampler builds a sampling policy.
//
//   - prob is the head-sampling probability in [0, 1] for requests that are
//     neither errors nor slow;
//   - maxPerSec caps kept traces per second across all keep reasons
//     (<= 0 = uncapped);
//   - slow is the always-keep latency threshold (<= 0 disables the slow
//     rule).
func NewSampler(prob float64, maxPerSec float64, slow time.Duration) *Sampler {
	s := &Sampler{
		slowNS: int64(slow),
		nowNS:  func() int64 { return time.Now().UnixNano() },
	}
	switch {
	case prob >= 1:
		s.threshold = math.MaxUint64
	case prob > 0:
		s.threshold = uint64(prob * float64(1<<63) * 2)
	}
	if maxPerSec > 0 {
		s.ratePerNS = maxPerSec / float64(time.Second)
		// A full second of burst (at least one trace) keeps short runs and
		// cold starts from dropping everything while staying within the cap
		// on any window longer than a second.
		s.burst = math.Max(maxPerSec, 1)
		s.tokens = s.burst
		s.last = s.nowNS()
	}
	return s
}

// Sampled is the head decision for a fresh trace: a deterministic function
// of the trace ID and the configured probability. Call it at mint time and
// carry the answer in the context's sampled flag; downstream processes then
// honor the flag instead of re-deciding. False on a nil receiver.
func (s *Sampler) Sampled(tc TraceContext) bool {
	if s == nil {
		return false
	}
	return tc.randUint64() < s.threshold
}

// Keep is the tail decision: whether to persist a finished request's trace.
// head is the trace's head-sampling decision (the context's sampled flag);
// dur and isErr are the request's outcome. Errors and slow requests are
// kept regardless of head, everything kept is charged against the rate cap.
// False on a nil receiver.
func (s *Sampler) Keep(head bool, dur time.Duration, isErr bool) bool {
	if s == nil {
		return false
	}
	if !isErr && !(s.slowNS > 0 && int64(dur) >= s.slowNS) && !head {
		return false
	}
	return s.take()
}

// take spends one rate-cap token (always true when uncapped).
func (s *Sampler) take() bool {
	if s.ratePerNS <= 0 {
		return true
	}
	now := s.nowNS()
	s.mu.Lock()
	if dt := now - s.last; dt > 0 {
		s.tokens = math.Min(s.tokens+float64(dt)*s.ratePerNS, s.burst)
		s.last = now
	}
	ok := s.tokens >= 1
	if ok {
		s.tokens--
	}
	s.mu.Unlock()
	return ok
}
