package obs

import "fmt"

// SchemaVersion is the artifact schema this package writes. It is stamped
// into every run directory — as `schema_version` in manifest.json and as a
// `v` field on every events.jsonl and results.jsonl line — so readers
// (internal/report) can refuse artifacts they do not understand instead of
// silently misparsing them.
//
// The version is a single major number: any change that would break an
// existing reader (renamed keys, changed units, removed kinds) bumps it.
// Purely additive changes (new event kinds, new optional keys) do not.
//
// Schema v1 (current):
//
//	manifest.json   RunInfo: schema_version, tool, flags{...}, commit,
//	                go_version, goos/goarch/gomaxprocs, start
//	events.jsonl    one JSON object per line: time (RFC 3339), msg (kind),
//	                v, then per-kind attributes; kinds run_start, progress,
//	                span_end, run_end plus CLI-specific kinds
//	trace.json      span tree: name, start, duration_ms, counters{...},
//	                children[...] (or null for traceless runs)
//	metrics.json    Default metrics-registry snapshot (flat JSON object;
//	                histograms render as HistogramSnapshot)
//	results.jsonl   one ResultRow per line (experiments only)
//	histograms.json named latency HistogramSnapshots under a
//	                schema_version stamp (loadgen only; optional — added
//	                additively within v1, so readers must load run
//	                directories that lack it)
//	traces.jsonl    one TraceRecord per line: v, trace_id (32 hex),
//	                span_id (16 hex), parent_span_id, kind
//	                ("client"/"server"), request_id, span (the span tree,
//	                trace.json shape); written only for tail-sampled
//	                requests (optional — additive within v1)
//
// Version 0 is the pre-versioning schema (identical minus the version
// stamps); readers accept it as legacy.
const SchemaVersion = 1

// CheckSchemaVersion validates an artifact schema version read back from a
// run directory. Version 0 (legacy, pre-versioning artifacts) and every
// version up to SchemaVersion are accepted; anything newer means the
// artifacts were written by a newer build than the reader, which must
// refuse rather than guess.
func CheckSchemaVersion(v int) error {
	if v < 0 || v > SchemaVersion {
		return fmt.Errorf("obs: artifact schema v%d not understood by this build (reads up to v%d); rebuild the reader from the commit that wrote the artifacts, or newer", v, SchemaVersion)
	}
	return nil
}

// ResultRow is one line of results.jsonl: a single table row of one
// experiment, self-describing enough to rebuild the rendered table without
// re-running the Monte Carlo sweep. cmd/experiments writes it; the read
// side (internal/report) decodes into the same struct, so writer and reader
// cannot drift apart.
type ResultRow struct {
	// V is the artifact schema version (SchemaVersion at write time; 0 on
	// legacy lines).
	V int `json:"v"`
	// Experiment is the experiment id ("fig3", "tan", ...).
	Experiment string `json:"experiment"`
	// Table is the table title the row belongs to.
	Table string `json:"table"`
	// Columns preserves the table's header order (cells alone cannot: JSON
	// objects have no order). Empty on legacy lines; readers then fall back
	// to sorted cell keys.
	Columns []string `json:"columns,omitempty"`
	// Cells maps column name to the rendered cell.
	Cells map[string]string `json:"cells"`
}
