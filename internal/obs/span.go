package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of the pipeline. Spans form a tree: Analyze
// produces roots like
//
//	analyze(Walmart) 41ms
//	├─ plan(JoinAll) 39ms [evaluations=120 features=9]
//	│  ├─ materialize 2ms [rows=21078 cells=189702]
//	│  ├─ select(forward) 35ms [evaluations=120 iterations=3]
//	│  └─ train-eval 1ms
//	└─ plan(JoinOpt) ...
//
// renderable as text (WriteText) or JSON (MarshalJSON). Every method is a
// no-op on a nil receiver, so call sites never need to guard: untraced runs
// pass nil spans all the way down at the cost of a nil check.
//
// A span's own methods are safe for concurrent use, but the intended
// discipline is one goroutine per subtree.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	counters map[string]int64
	children []*Span
}

// StartSpan starts a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a nested span. On a nil receiver it returns nil, which keeps
// the whole subtree free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt appends an independently started span as a child, preserving its
// own timings. CLIs use it to gather the root spans that library calls
// produce (e.g. Report.Trace per dataset) under one run-level tree for
// trace.json. A nil receiver or child no-ops.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// AdoptAll appends independently started spans as children in slice order,
// skipping nils. Parallel fan-outs (internal/pool callers) use it to attach
// per-task spans *after* the pool drains: each worker times its own span
// concurrently, and adoption in task-index order afterwards keeps the
// rendered child order deterministic no matter how the scheduler
// interleaved the workers. A nil receiver no-ops.
func (s *Span) AdoptAll(children []*Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, c := range children {
		if c != nil {
			s.children = append(s.children, c)
		}
	}
	s.mu.Unlock()
}

// End freezes the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Add accumulates a named counter on the span (evaluations, rows, ...).
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the frozen duration, or the running elapsed time if the
// span has not Ended yet (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Counter returns one counter's value (0 when absent or nil).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Counters returns a copy of the span's counters (nil when empty or nil).
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Children returns the child spans in start order (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// snapshot captures the span's fields under its lock.
func (s *Span) snapshot() (name string, dur time.Duration, counters map[string]int64, children []*Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name = s.name
	if s.ended {
		dur = s.dur
	} else {
		dur = time.Since(s.start)
	}
	if len(s.counters) > 0 {
		counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			counters[k] = v
		}
	}
	children = append(children, s.children...)
	return
}

// counterString renders counters as "[a=1 b=2]" with sorted keys.
func counterString(counters map[string]int64) string {
	if len(counters) == 0 {
		return ""
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" [")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, counters[k])
	}
	b.WriteByte(']')
	return b.String()
}

// WriteText renders the span tree as an indented tree with durations and
// counters. A nil span writes nothing.
func (s *Span) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.writeText(w, "", "")
}

func (s *Span) writeText(w io.Writer, selfPrefix, childPrefix string) error {
	name, dur, counters, children := s.snapshot()
	if _, err := fmt.Fprintf(w, "%s%s %s%s\n", selfPrefix, name, dur.Round(time.Microsecond), counterString(counters)); err != nil {
		return err
	}
	for i, c := range children {
		self, next := childPrefix+"├─ ", childPrefix+"│  "
		if i == len(children)-1 {
			self, next = childPrefix+"└─ ", childPrefix+"   "
		}
		if err := c.writeText(w, self, next); err != nil {
			return err
		}
	}
	return nil
}

// String renders the tree as text.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// spanJSON is the serialized form of a span.
type spanJSON struct {
	Name     string           `json:"name"`
	Start    time.Time        `json:"start"`
	Duration float64          `json:"duration_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*Span          `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler, serializing the whole subtree.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	_, dur, counters, children := s.snapshot()
	s.mu.Lock()
	start := s.start
	name := s.name
	s.mu.Unlock()
	return json.Marshal(spanJSON{
		Name:     name,
		Start:    start,
		Duration: float64(dur) / float64(time.Millisecond),
		Counters: counters,
		Children: children,
	})
}
