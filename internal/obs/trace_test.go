package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext().WithSampled(true)
	hdr := tc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("Traceparent() = %q: len %d, want 55", hdr, len(hdr))
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("Traceparent() = %q: want version 00 and sampled flags 01", hdr)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
	if !got.Sampled() {
		t.Error("round-tripped context lost the sampled flag")
	}
}

func TestTraceContextMintedValid(t *testing.T) {
	for i := 0; i < 64; i++ {
		tc := NewTraceContext()
		if !tc.Valid() {
			t.Fatalf("NewTraceContext() = %+v: invalid", tc)
		}
		if tc.Sampled() {
			t.Fatalf("NewTraceContext() = %+v: sampled flag set at mint", tc)
		}
	}
}

func TestTraceContextChild(t *testing.T) {
	parent := NewTraceContext().WithSampled(true)
	child := parent.Child()
	if child.TraceID != parent.TraceID {
		t.Error("Child() changed the trace ID")
	}
	if child.SpanID == parent.SpanID {
		t.Error("Child() reused the parent's span ID")
	}
	if !child.Sampled() {
		t.Error("Child() dropped the sampled flag")
	}
	if !child.Valid() {
		t.Errorf("Child() = %+v: invalid", child)
	}
}

func TestTraceContextWithSampled(t *testing.T) {
	tc := NewTraceContext()
	tc.Flags = 0xfe // every bit but sampled
	on := tc.WithSampled(true)
	if on.Flags != 0xff {
		t.Errorf("WithSampled(true): flags %02x, want ff", on.Flags)
	}
	off := on.WithSampled(false)
	if off.Flags != 0xfe {
		t.Errorf("WithSampled(false): flags %02x, want fe", off.Flags)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := NewTraceContext().Traceparent()
	cases := map[string]string{
		"empty":         "",
		"truncated":     valid[:54],
		"bad separator": valid[:35] + "_" + valid[36:],
		"version ff":    "ff" + valid[2:],
		"version hex":   "zz" + valid[2:],
		"long v00":      valid + "-extra",
		"zero trace id": "00-00000000000000000000000000000000-" + valid[36:],
		"zero span id":  valid[:36] + "0000000000000000-00",
		"bad trace hex": "00-" + strings.Repeat("zz", 16) + valid[35:],
		"bad flags hex": valid[:53] + "zz",
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", name, in)
		}
	}
	// Forward compatibility: a future version with trailing data parses.
	future := "01" + valid[2:] + "-aabbcc"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future version %q rejected: %v", future, err)
	}
}

func TestSamplerHeadDecisionDeterministic(t *testing.T) {
	a := NewSampler(0.5, 0, 0)
	b := NewSampler(0.5, 0, 0)
	var kept int
	const n = 2000
	for i := 0; i < n; i++ {
		tc := NewTraceContext()
		if a.Sampled(tc) != b.Sampled(tc) {
			t.Fatal("two samplers at the same probability disagree on the same trace ID")
		}
		if a.Sampled(tc) {
			kept++
		}
	}
	// 0.5 ± 5 sigma on n=2000 draws.
	if kept < n/2-250 || kept > n/2+250 {
		t.Errorf("head sampling at p=0.5 kept %d/%d", kept, n)
	}
	all := NewSampler(1, 0, 0)
	none := NewSampler(0, 0, 0)
	tc := NewTraceContext()
	if !all.Sampled(tc) {
		t.Error("p=1 sampler dropped a trace")
	}
	if none.Sampled(tc) {
		t.Error("p=0 sampler kept a trace")
	}
}

func TestSamplerKeepPolicy(t *testing.T) {
	s := NewSampler(0, 0, 10*time.Millisecond) // no head sampling, uncapped
	if s.Keep(false, time.Millisecond, false) {
		t.Error("kept a fast, successful, unsampled request")
	}
	if !s.Keep(false, time.Millisecond, true) {
		t.Error("dropped an error")
	}
	if !s.Keep(false, 10*time.Millisecond, false) {
		t.Error("dropped a request at the slow threshold")
	}
	if !s.Keep(true, time.Millisecond, false) {
		t.Error("dropped a head-sampled request")
	}
	noSlow := NewSampler(0, 0, 0)
	if noSlow.Keep(false, time.Hour, false) {
		t.Error("slow rule fired with the threshold disabled")
	}
}

// TestSamplerRateCapProperty is the cap property test: however the load is
// shaped — all errors, all head-sampled, mixed — kept traces per simulated
// second never exceed maxPerSec plus the one-second burst allowance.
func TestSamplerRateCapProperty(t *testing.T) {
	const maxPerSec = 50.0
	for _, tt := range []struct {
		name string
		head bool
		err  bool
	}{
		{"errors", false, true},
		{"head-sampled", true, false},
		{"mixed", true, true},
	} {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSampler(0, maxPerSec, 0)
			var now int64
			s.nowNS = func() int64 { return now }
			s.last = now
			const (
				seconds = 10
				perSec  = 10000 // 200x oversubscribed
			)
			var kept int
			for i := 0; i < seconds*perSec; i++ {
				now += int64(time.Second) / perSec
				if s.Keep(tt.head, time.Microsecond, tt.err) {
					kept++
				}
			}
			// The bucket holds maxPerSec of burst, so seconds of sustained
			// load can keep at most (seconds+1)*maxPerSec.
			limit := int((seconds + 1) * maxPerSec)
			if kept > limit {
				t.Errorf("kept %d traces in %ds at cap %.0f/s, want <= %d", kept, seconds, maxPerSec, limit)
			}
			// And the cap is a budget, not a blackout: sustained load should
			// get most of it.
			if kept < int(seconds*maxPerSec)/2 {
				t.Errorf("kept %d traces, want >= %d (cap under-delivering)", kept, int(seconds*maxPerSec)/2)
			}
		})
	}
}

func TestSamplerUncappedAndNil(t *testing.T) {
	s := NewSampler(1, 0, 0)
	for i := 0; i < 1000; i++ {
		if !s.Keep(true, 0, false) {
			t.Fatal("uncapped sampler dropped a kept trace")
		}
	}
	var nilS *Sampler
	if nilS.Sampled(NewTraceContext()) {
		t.Error("nil sampler head-sampled a trace")
	}
	if nilS.Keep(true, time.Hour, true) {
		t.Error("nil sampler kept a trace")
	}
}

func TestNilTracingAllocFree(t *testing.T) {
	var s *Sampler
	var tl *TraceLog
	tc := NewTraceContext()
	if n := testing.AllocsPerRun(200, func() {
		_ = s.Sampled(tc)
		_ = s.Keep(true, time.Second, true)
		if err := tl.Append(TraceRecord{}); err != nil {
			t.Fatal(err)
		}
		_ = tl.Len()
	}); n != 0 {
		t.Errorf("nil sampler/trace-log paths allocate %.1f/op, want 0", n)
	}
}

func TestSamplerEnabledPathAllocFree(t *testing.T) {
	s := NewSampler(0.5, 100, time.Millisecond)
	tc := NewTraceContext()
	if n := testing.AllocsPerRun(200, func() {
		_ = s.Sampled(tc)
		_ = s.Keep(true, time.Microsecond, false)
	}); n != 0 {
		t.Errorf("enabled sampler path allocates %.1f/op, want 0", n)
	}
}

func TestTraceLogAppendReadBack(t *testing.T) {
	dir := t.TempDir()
	run, err := OpenRunDir(dir, &RunInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	// No traces kept yet: the artifact must not exist.
	if _, err := os.Stat(filepath.Join(dir, TracesFile)); !os.IsNotExist(err) {
		t.Fatalf("traces.jsonl exists before any Append (stat err %v)", err)
	}
	sp := StartSpan("client(decide)")
	sp.End()
	recs := []TraceRecord{
		{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Kind: TraceKindClient, RequestID: "r-1", Span: sp},
		{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("ef", 8), ParentSpanID: strings.Repeat("cd", 8), Kind: TraceKindServer, Span: sp},
	}
	for _, r := range recs {
		if err := run.Traces().Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := run.Traces().Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	if err := run.Close(nil, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, TracesFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []TraceRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad traces.jsonl line %q: %v", sc.Text(), err)
		}
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	for i, r := range got {
		if r.V != SchemaVersion {
			t.Errorf("record %d: v = %d, want %d", i, r.V, SchemaVersion)
		}
		if r.TraceID != recs[i].TraceID || r.SpanID != recs[i].SpanID || r.Kind != recs[i].Kind {
			t.Errorf("record %d: got %+v, want %+v", i, r, recs[i])
		}
	}
	if got[1].ParentSpanID != recs[1].ParentSpanID {
		t.Errorf("server record lost parent_span_id: %+v", got[1])
	}
}

func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram(DefaultPrecision)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.CountAtOrBelow(-1); got != 0 {
		t.Errorf("CountAtOrBelow(-1) = %d, want 0", got)
	}
	if got := s.CountAtOrBelow(s.Max); got != s.Count {
		t.Errorf("CountAtOrBelow(max) = %d, want %d", got, s.Count)
	}
	if got := s.CountAtOrBelow(math.MaxInt64); got != s.Count {
		t.Errorf("CountAtOrBelow(MaxInt64) = %d, want %d", got, s.Count)
	}
	// Conservative but tight: never overcounts, undershoots by at most one
	// bucket's width.
	for _, v := range []int64{1, 7, 100, 127, 128, 500, 999} {
		got := s.CountAtOrBelow(v)
		if got > v {
			t.Errorf("CountAtOrBelow(%d) = %d overcounts (true %d)", v, got, v)
		}
		slack := v >> uint(s.Precision)
		if got < v-slack-1 {
			t.Errorf("CountAtOrBelow(%d) = %d, want >= %d (one-bucket slack)", v, got, v-slack-1)
		}
	}
	if got := (HistogramSnapshot{}).CountAtOrBelow(10); got != 0 {
		t.Errorf("empty snapshot: CountAtOrBelow = %d, want 0", got)
	}
}

func TestBuildIdentity(t *testing.T) {
	version, commit := BuildIdentity()
	if version == "" || commit == "" {
		t.Errorf("BuildIdentity() = %q, %q: want non-empty labels", version, commit)
	}
}

func BenchmarkTraceparentRoundTrip(b *testing.B) {
	tc := NewTraceContext().WithSampled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := tc.Traceparent()
		got, err := ParseTraceparent(hdr)
		if err != nil {
			b.Fatal(err)
		}
		tc = got
	}
}

func BenchmarkSamplerKeep(b *testing.B) {
	s := NewSampler(0.01, 100, time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Keep(i%100 == 0, time.Microsecond, false)
	}
}

func BenchmarkNilSamplerKeep(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Keep(true, time.Microsecond, true)
	}
}
