package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// This file is the causal-ID half of distributed tracing: a TraceContext
// names one request across process boundaries (the 128-bit trace ID), one
// hop within it (the 64-bit span ID), and whether the head of the trace
// elected to sample it. The wire form is the W3C Trace Context `traceparent`
// header — `00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>` — so the
// IDs this repo mints interoperate with any standard tracing stack.
//
// TraceContext is a small value type: minting, deriving a child, and
// encoding stay off the heap except for the strings a caller explicitly
// asks for (Traceparent, TraceIDString), which only sampled requests pay.

// TraceparentHeader is the W3C Trace Context request/response header name.
// (Header names are case-insensitive; this is the canonical lowercase form
// the spec uses.)
const TraceparentHeader = "traceparent"

// FlagSampled is the traceparent trace-flags bit meaning "the caller
// sampled this trace" — the head-sampling decision, propagated so every
// process on the path keeps the same traces without coordination.
const FlagSampled byte = 0x01

// TraceContext identifies one hop of one distributed request.
type TraceContext struct {
	// TraceID is the 128-bit request identity, shared by every process the
	// request touches. All-zero is invalid per the W3C spec.
	TraceID [16]byte
	// SpanID is this hop's 64-bit identity (the header's parent-id field:
	// what a downstream callee will record as its parent). All-zero is
	// invalid.
	SpanID [8]byte
	// Flags is the trace-flags byte (bit 0: sampled).
	Flags byte
}

// NewTraceContext mints a context with random trace and span IDs and no
// flags set. Entropy failure falls back to a time-derived ID: tracing is
// telemetry, never a reason to refuse a request.
func NewTraceContext() TraceContext {
	var tc TraceContext
	var buf [24]byte
	if _, err := rand.Read(buf[:]); err != nil {
		binary.BigEndian.PutUint64(buf[0:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(buf[8:16], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
		binary.BigEndian.PutUint64(buf[16:24], uint64(time.Now().UnixNano())*0x2545f4914f6cdd1d|1)
	}
	copy(tc.TraceID[:], buf[:16])
	copy(tc.SpanID[:], buf[16:24])
	// Guarantee validity even against an astronomically unlucky zero draw.
	if tc.TraceID == ([16]byte{}) {
		tc.TraceID[15] = 1
	}
	if tc.SpanID == ([8]byte{}) {
		tc.SpanID[7] = 1
	}
	return tc
}

// Child derives the context for a new hop of the same trace: the trace ID
// and flags carry over, the span ID is fresh. A server receiving a
// traceparent calls this so its own span has an identity distinct from the
// caller's.
func (tc TraceContext) Child() TraceContext {
	c := NewTraceContext()
	c.TraceID = tc.TraceID
	c.Flags = tc.Flags
	return c
}

// Valid reports whether both IDs are non-zero (the W3C validity rule).
func (tc TraceContext) Valid() bool {
	return tc.TraceID != ([16]byte{}) && tc.SpanID != ([8]byte{})
}

// Sampled reports the sampled flag.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// WithSampled returns a copy with the sampled flag set or cleared.
func (tc TraceContext) WithSampled(on bool) TraceContext {
	if on {
		tc.Flags |= FlagSampled
	} else {
		tc.Flags &^= FlagSampled
	}
	return tc
}

// randUint64 reduces the trace ID to 64 uniform bits (its low half; the IDs
// this repo mints are fully random). The Sampler's head decision hashes on
// it, so the decision is a deterministic function of the trace ID — every
// process sampling at the same probability keeps the same traces.
func (tc TraceContext) randUint64() uint64 {
	return binary.BigEndian.Uint64(tc.TraceID[8:16])
}

// TraceIDString renders the trace ID as 32 lowercase hex digits.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString renders the span ID as 16 lowercase hex digits.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent encodes the context as a W3C traceparent header value,
// version 00.
func (tc TraceContext) Traceparent() string {
	var buf [55]byte
	const hexdigits = "0123456789abcdef"
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tc.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], tc.SpanID[:])
	buf[52] = '-'
	buf[53] = hexdigits[tc.Flags>>4]
	buf[54] = hexdigits[tc.Flags&0xf]
	return string(buf[:])
}

// ParseTraceparent decodes a W3C traceparent header value. Per the spec's
// forward-compatibility rule, any version except the reserved "ff" is
// accepted as long as the version-00 fixed-length layout parses and both
// IDs are non-zero.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("obs: traceparent %q: want at least 55 chars (00-traceid-parentid-flags)", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent %q: malformed field separators", s)
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad version: %w", s, err)
	}
	if ver[0] == 0xff {
		return tc, fmt.Errorf("obs: traceparent %q: version ff is reserved", s)
	}
	if ver[0] == 0 && len(s) != 55 {
		return tc, fmt.Errorf("obs: traceparent %q: version 00 must be exactly 55 chars", s)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad trace-id: %w", s, err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad parent-id: %w", s, err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad flags: %w", s, err)
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: all-zero trace-id or parent-id", s)
	}
	return tc, nil
}
