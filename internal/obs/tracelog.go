package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// TraceRecord is one line of traces.jsonl: one process's sampled span tree
// for one distributed request, keyed by the IDs that join it to the other
// halves of the same trace. The artifact is additive to schema v1 — run
// directories without it load exactly as before — and each line carries the
// version stamp like every other JSONL artifact.
type TraceRecord struct {
	// V is the artifact schema version (SchemaVersion).
	V int `json:"v"`
	// TraceID is the 128-bit request identity as 32 hex digits — the join
	// key for cross-process assembly.
	TraceID string `json:"trace_id"`
	// SpanID is this process's hop identity as 16 hex digits.
	SpanID string `json:"span_id"`
	// ParentSpanID is the caller's span ID when the trace was propagated in
	// (empty at the head of the trace).
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Kind is the hop's role: "client" (caller side) or "server".
	Kind string `json:"kind"`
	// RequestID is the X-Request-ID correlated with the same request, so
	// traces link to request-log events and slow exemplars.
	RequestID string `json:"request_id,omitempty"`
	// Span is the process-local span tree for the request.
	Span *Span `json:"span"`
}

// Trace kinds for TraceRecord.Kind.
const (
	TraceKindClient = "client"
	TraceKindServer = "server"
)

// TraceLog appends sampled TraceRecords to a run directory's traces.jsonl.
// The file is created on the first kept trace, so runs that sample nothing
// leave no artifact behind. Appends are concurrency-safe (server handlers
// race on it) and a nil *TraceLog no-ops, keeping the tracing-disabled path
// free of both work and allocation.
type TraceLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	n    atomic.Int64
}

// Append writes rec as one JSONL line, stamping the schema version. Nil
// receivers no-op.
func (t *TraceLog) Append(rec TraceRecord) error {
	if t == nil {
		return nil
	}
	rec.V = SchemaVersion
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: marshal trace record: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		f, err := os.Create(t.path)
		if err != nil {
			return fmt.Errorf("obs: create %s: %w", TracesFile, err)
		}
		t.f = f
	}
	if _, err := t.f.Write(append(data, '\n')); err != nil {
		return err
	}
	t.n.Add(1)
	return nil
}

// Len returns the number of records appended so far (0 on nil).
func (t *TraceLog) Len() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// close closes the underlying file if any trace was ever kept.
func (t *TraceLog) close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
