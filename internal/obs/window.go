package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the rolling-window half of the metrics layer: the cumulative
// Histogram and Counter answer "since process start", these answer "over the
// last N windows" — the question a live scrape surface (/metrics) and a
// terminal watcher ask. A WindowedHistogram is a ring of the existing
// HDR-style histograms rotated on a wall-clock interval; a WindowedCounter
// is the same ring over plain counters, reduced to a rate.
//
// Concurrency model. Observe/Add stay lock-free: one extra atomic load (the
// active slot index) on top of the underlying histogram/counter update, so
// the hot-path guarantees of the package hold unchanged — nil receivers
// no-op, disabled metrics cost one atomic load, and neither path allocates
// (pinned by window_test.go). Rotation is read-driven: Window, Rate, and
// Advance catch the ring up with the wall clock under a mutex before
// answering, so an idle ring costs nothing and a scraped ring is always
// time-aligned at scrape granularity. An observation racing a rotation may
// land in the window just closed (the slot index is read before the bucket
// update); window attribution is approximate at the boundary by design,
// while the cumulative totals stay exact.
const (
	// DefaultWindow is the rotation interval when none is given.
	DefaultWindow = 10 * time.Second
	// DefaultWindows is the ring size when none is given: with
	// DefaultWindow, a one-minute rolling view.
	DefaultWindows = 6
)

// WindowedHistogram is a ring of Histograms rotated on a wall-clock
// interval, plus a cumulative histogram observing everything. The zero value
// is not usable; build with NewWindowedHistogram. A nil *WindowedHistogram
// no-ops everywhere.
type WindowedHistogram struct {
	interval int64 // window length, ns
	slots    []*Histogram
	total    *Histogram
	// cur is the active window's sequence number; slot = cur % len(slots).
	cur atomic.Uint64
	// mu serializes rotation and ring-wide snapshots.
	mu    sync.Mutex
	epoch int64 // start of the active window (unix ns), guarded by mu
	nowNS func() int64
}

// NewWindowedHistogram returns a ring of `windows` histograms at the given
// precision, rotated every `interval` (non-positive values take the
// defaults; the ring holds at least two windows so "last window" and "active
// window" are distinct).
func NewWindowedHistogram(precision int, interval time.Duration, windows int) *WindowedHistogram {
	if interval <= 0 {
		interval = DefaultWindow
	}
	if windows < 2 {
		windows = DefaultWindows
	}
	w := &WindowedHistogram{
		interval: int64(interval),
		slots:    make([]*Histogram, windows),
		total:    NewHistogram(precision),
		nowNS:    func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i] = NewHistogram(precision)
	}
	w.epoch = w.nowNS()
	return w
}

// Observe records one value into the active window and the cumulative
// histogram. Lock-free: the rotation mutex is never touched here.
func (w *WindowedHistogram) Observe(v int64) {
	if w == nil {
		return
	}
	w.slots[int(w.cur.Load())%len(w.slots)].Observe(v)
	w.total.Observe(v)
}

// Cumulative returns the histogram observing every value since construction
// (nil on a nil receiver). It is the bridge to surfaces that want the
// process-lifetime view — Registry.SetHistogram, histograms.json — and must
// be treated as read-only by callers.
func (w *WindowedHistogram) Cumulative() *Histogram {
	if w == nil {
		return nil
	}
	return w.total
}

// Total snapshots the cumulative histogram.
func (w *WindowedHistogram) Total() HistogramSnapshot {
	return w.Cumulative().Snapshot()
}

// Interval returns the rotation interval (0 on nil).
func (w *WindowedHistogram) Interval() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.interval)
}

// Windows returns the ring size (0 on nil).
func (w *WindowedHistogram) Windows() int {
	if w == nil {
		return 0
	}
	return len(w.slots)
}

// Advance catches the ring up with the wall clock: every window whose
// interval fully elapsed is closed and the slots that re-enter service are
// zeroed. Reads (Window) advance implicitly; an explicit ticker may call
// this to keep attribution sharp between scrapes.
func (w *WindowedHistogram) Advance() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.advanceLocked(w.nowNS())
	w.mu.Unlock()
}

// advanceLocked rotates the ring forward to now. Caller holds mu.
func (w *WindowedHistogram) advanceLocked(now int64) {
	steps := (now - w.epoch) / w.interval
	if steps <= 0 {
		return
	}
	w.epoch += steps * w.interval
	if steps > int64(len(w.slots)) {
		steps = int64(len(w.slots)) // every live window is stale; clear them all
	}
	cur := w.cur.Load()
	for i := int64(0); i < steps; i++ {
		cur++
		w.slots[int(cur)%len(w.slots)].reset()
		w.cur.Store(cur)
	}
}

// Window merges the last n windows — the active (partial) one plus the n-1
// most recent closed ones — into one snapshot, after catching the ring up
// with the clock. n outside [1, Windows()] means the whole ring. On a nil
// receiver returns an empty snapshot at DefaultPrecision.
func (w *WindowedHistogram) Window(n int) HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{Precision: DefaultPrecision}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advanceLocked(w.nowNS())
	if n < 1 || n > len(w.slots) {
		n = len(w.slots)
	}
	var out HistogramSnapshot
	cur := int64(w.cur.Load())
	for i := int64(0); i < int64(n); i++ {
		s := cur - i
		if s < 0 {
			break // the ring is younger than n windows
		}
		// Same precision by construction; Merge cannot fail.
		_ = out.Merge(w.slots[int(s)%len(w.slots)].Snapshot())
	}
	if out.Count == 0 {
		out.Precision = int(w.total.precision)
	}
	return out
}

// WindowedCounter is a monotone counter with a rolling-rate view: Add lands
// in both a cumulative total and the active window of a ring rotated on a
// wall-clock interval, and Rate reduces the ring to events per second. The
// zero value is not usable; build with NewWindowedCounter. A nil
// *WindowedCounter no-ops.
type WindowedCounter struct {
	interval int64
	slots    []atomic.Int64
	total    atomic.Int64
	cur      atomic.Uint64
	mu       sync.Mutex
	epoch    int64 // start of the active window (unix ns), guarded by mu
	born     int64 // construction time (unix ns)
	nowNS    func() int64
}

// NewWindowedCounter returns a counter ring of `windows` slots rotated every
// `interval` (non-positive values take the defaults).
func NewWindowedCounter(interval time.Duration, windows int) *WindowedCounter {
	if interval <= 0 {
		interval = DefaultWindow
	}
	if windows < 2 {
		windows = DefaultWindows
	}
	c := &WindowedCounter{
		interval: int64(interval),
		slots:    make([]atomic.Int64, windows),
		nowNS:    func() int64 { return time.Now().UnixNano() },
	}
	c.epoch = c.nowNS()
	c.born = c.epoch
	return c
}

// Add increments the counter when the metrics layer is enabled. Lock-free.
func (c *WindowedCounter) Add(delta int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.slots[int(c.cur.Load())%len(c.slots)].Add(delta)
	c.total.Add(delta)
}

// Inc adds one.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Total returns the cumulative count since construction.
func (c *WindowedCounter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total.Load()
}

// advanceLocked rotates the ring forward to now. Caller holds mu.
func (c *WindowedCounter) advanceLocked(now int64) {
	steps := (now - c.epoch) / c.interval
	if steps <= 0 {
		return
	}
	c.epoch += steps * c.interval
	if steps > int64(len(c.slots)) {
		steps = int64(len(c.slots))
	}
	cur := c.cur.Load()
	for i := int64(0); i < steps; i++ {
		cur++
		c.slots[int(cur)%len(c.slots)].Store(0)
		c.cur.Store(cur)
	}
}

// Rate returns events per second over the ring's live span: the closed
// windows still in the ring plus the active partial one, so it is a rolling
// rate over at most Windows()·Interval() of history. Returns 0 before any
// time has passed or on a nil receiver.
func (c *WindowedCounter) Rate() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.nowNS()
	c.advanceLocked(now)
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].Load()
	}
	// The span the ring covers: the active window's elapsed fraction plus
	// one full interval per older live window, clamped to the counter's age
	// (a young ring has not lived its full depth yet).
	live := int64(c.cur.Load()) + 1
	if live > int64(len(c.slots)) {
		live = int64(len(c.slots))
	}
	span := (live-1)*c.interval + (now - c.epoch)
	if age := now - c.born; span > age {
		span = age
	}
	if span <= 0 {
		return 0
	}
	return float64(sum) / (float64(span) / float64(time.Second))
}
