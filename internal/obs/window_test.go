package obs

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// fakeClock drives rotation deterministically: tests advance it by hand.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

// newTestWindowedHistogram pins the clock to a fake so window boundaries are
// exact.
func newTestWindowedHistogram(interval time.Duration, windows int) (*WindowedHistogram, *fakeClock) {
	clk := &fakeClock{ns: int64(time.Hour)} // arbitrary nonzero origin
	w := NewWindowedHistogram(DefaultPrecision, interval, windows)
	w.nowNS = clk.now
	w.epoch = clk.now()
	return w, clk
}

func newTestWindowedCounter(interval time.Duration, windows int) (*WindowedCounter, *fakeClock) {
	clk := &fakeClock{ns: int64(time.Hour)}
	c := NewWindowedCounter(interval, windows)
	c.nowNS = clk.now
	c.epoch = clk.now()
	c.born = clk.now()
	return c, clk
}

func TestWindowedHistogramRotationDropsOldWindows(t *testing.T) {
	w, clk := newTestWindowedHistogram(time.Second, 3)
	w.Observe(100)
	w.Observe(200)
	if got := w.Window(1).Count; got != 2 {
		t.Fatalf("active window count = %d, want 2", got)
	}

	clk.advance(time.Second) // close window 0
	w.Advance()              // rotation is read-driven; tick explicitly
	w.Observe(300)
	if got := w.Window(1).Count; got != 1 {
		t.Errorf("active window count after rotation = %d, want 1", got)
	}
	if got := w.Window(2).Count; got != 3 {
		t.Errorf("last-2-windows count = %d, want 3", got)
	}

	// Two more rotations: the ring holds 3 windows, so window 0's
	// observations fall out while window 1's survive in the merge.
	clk.advance(2 * time.Second)
	if got := w.Window(3).Count; got != 1 {
		t.Errorf("full-ring count after eviction = %d, want 1 (300 only)", got)
	}
	// The cumulative histogram never forgets.
	if got := w.Total().Count; got != 3 {
		t.Errorf("cumulative count = %d, want 3", got)
	}

	// A long idle gap clears every live window.
	clk.advance(time.Minute)
	if got := w.Window(3); got.Count != 0 {
		t.Errorf("post-idle ring count = %d, want 0", got.Count)
	}
}

// TestWindowedHistogramMergeMatchesCumulative is the property test: as long
// as nothing has been evicted from the ring, the merge of all windows is the
// same distribution as the cumulative histogram — identical count and sum,
// and quantiles that agree within the bucket scheme's relative error.
func TestWindowedHistogramMergeMatchesCumulative(t *testing.T) {
	w, clk := newTestWindowedHistogram(time.Second, 8)
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 5000; i++ {
		w.Observe(rng.Int64N(1 << 40))
		if i%1000 == 999 {
			clk.advance(time.Second) // spread observations over 5 of 8 windows
		}
	}
	merged := w.Window(8)
	total := w.Total()
	if merged.Count != total.Count || merged.Sum != total.Sum {
		t.Fatalf("merged (count %d, sum %d) != cumulative (count %d, sum %d)",
			merged.Count, merged.Sum, total.Count, total.Sum)
	}
	if merged.Min != total.Min || merged.Max != total.Max {
		t.Errorf("merged extremes [%d, %d] != cumulative [%d, %d]",
			merged.Min, merged.Max, total.Min, total.Max)
	}
	maxErr := merged.MaxQuantileError() + total.MaxQuantileError()
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		m, c := merged.Quantile(q), total.Quantile(q)
		lo, hi := float64(c)*(1-maxErr), float64(c)*(1+maxErr)
		if float64(m) < lo || float64(m) > hi {
			t.Errorf("q%.3f: merged %d outside cumulative %d ± %.2f%%", q, m, c, 100*maxErr)
		}
	}
}

// TestWindowedHistogramObserveDuringRotation hammers Observe from many
// goroutines while another thread forces rotations and snapshots; run under
// -race this pins the lock-free Observe / locked rotation interplay. The
// cumulative count must be exact regardless of where the ring was mid-write.
func TestWindowedHistogramObserveDuringRotation(t *testing.T) {
	w, clk := newTestWindowedHistogram(time.Millisecond, 4)
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Observe(int64(g*perG + i))
			}
		}(g)
	}
	var rot sync.WaitGroup
	rot.Add(1)
	go func() {
		defer rot.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(time.Millisecond)
				w.Advance()
				_ = w.Window(2)
				_ = w.Total()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rot.Wait()
	if got := w.Total().Count; got != writers*perG {
		t.Errorf("cumulative count = %d, want %d", got, writers*perG)
	}
	if got := w.Window(4).Count; got > writers*perG {
		t.Errorf("windowed count = %d exceeds observations %d", got, writers*perG)
	}
}

func TestWindowedCounterRate(t *testing.T) {
	c, clk := newTestWindowedCounter(time.Second, 4)
	c.Add(500)
	clk.advance(500 * time.Millisecond)
	if got := c.Rate(); got < 999 || got > 1001 {
		t.Errorf("rate after 500 events in 0.5s = %.1f, want ~1000", got)
	}
	// A full idle ring decays the rate to zero.
	clk.advance(10 * time.Second)
	if got := c.Rate(); got != 0 {
		t.Errorf("idle rate = %.1f, want 0", got)
	}
	if got := c.Total(); got != 500 {
		t.Errorf("cumulative total = %d, want 500", got)
	}
	// Rate covers the ring's whole live span, not just the active window:
	// 200 events inside a full 4-deep ring — 3 closed windows plus the 0.5s
	// the idle jump left in the active one → 200 / 3.5s.
	c.Add(100)
	clk.advance(time.Second)
	c.Add(100)
	clk.advance(time.Second)
	if got := c.Rate(); got < 57 || got > 57.5 {
		t.Errorf("rolling rate = %.1f, want ~57.1", got)
	}
}

func TestWindowedCounterConcurrentAdd(t *testing.T) {
	c, clk := newTestWindowedCounter(time.Millisecond, 4)
	const (
		adders = 8
		perG   = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(adders)
	for g := 0; g < adders; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	var rot sync.WaitGroup
	rot.Add(1)
	go func() {
		defer rot.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(time.Millisecond)
				_ = c.Rate()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rot.Wait()
	if got := c.Total(); got != adders*perG {
		t.Errorf("total = %d, want %d", got, adders*perG)
	}
}

// TestNilWindowedNoOps: the package's zero-cost contract extends to the
// windowed types — nil receivers answer empty and never panic.
func TestNilWindowedNoOps(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(1)
	w.Advance()
	if s := w.Window(3); s.Count != 0 || s.Precision != DefaultPrecision {
		t.Errorf("nil Window = %+v", s)
	}
	if s := w.Total(); s.Count != 0 {
		t.Errorf("nil Total = %+v", s)
	}
	if w.Cumulative() != nil {
		t.Error("nil Cumulative is non-nil")
	}
	if w.Interval() != 0 || w.Windows() != 0 {
		t.Error("nil Interval/Windows nonzero")
	}
	var c *WindowedCounter
	c.Add(1)
	c.Inc()
	if c.Total() != 0 || c.Rate() != 0 {
		t.Error("nil counter nonzero")
	}
}

// TestWindowedHotPathAllocFree pins the alloc-free guarantee for both the
// nil-receiver path and the live enabled path of the windowed types.
func TestWindowedHotPathAllocFree(t *testing.T) {
	var nilW *WindowedHistogram
	var nilC *WindowedCounter
	if n := testing.AllocsPerRun(200, func() {
		nilW.Observe(42)
		nilC.Add(1)
	}); n != 0 {
		t.Errorf("nil windowed hot path allocates %.1f/op, want 0", n)
	}
	w := NewWindowedHistogram(DefaultPrecision, time.Hour, 4)
	c := NewWindowedCounter(time.Hour, 4)
	if n := testing.AllocsPerRun(200, func() {
		w.Observe(42)
		c.Inc()
	}); n != 0 {
		t.Errorf("live windowed hot path allocates %.1f/op, want 0", n)
	}
}

func BenchmarkWindowedHistogramObserve(b *testing.B) {
	w := NewWindowedHistogram(DefaultPrecision, time.Hour, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(int64(i & 0xffff))
	}
}

func BenchmarkWindowedCounterInc(b *testing.B) {
	c := NewWindowedCounter(time.Hour, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
