// Package pool runs bounded, index-addressed fan-out for the Monte Carlo
// engine: N independent tasks over at most W worker goroutines, with
// first-error cancellation and panic capture.
//
// The pool is deliberately simpler than errgroup: tasks are identified by
// their index in [0, n), which is what makes deterministic parallelism
// possible upstream — callers pre-split one RNG per index *before*
// dispatch, so the work a task does depends only on its index, never on
// which worker runs it or in what order. Whatever the worker count,
// running the same task set yields bitwise-identical results.
//
// Error policy: the first failure (by task index, not by wall-clock) wins,
// so the reported error is itself deterministic across worker counts;
// remaining tasks are cancelled best-effort (workers stop picking up new
// indices, in-flight tasks run to completion). A panicking task is
// captured and reported as an error carrying the task index and stack
// rather than tearing down the process from a worker goroutine.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean GOMAXPROCS,
// anything else is returned unchanged. CLIs pass the -workers flag through
// this so "0" consistently means "use every core".
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// PanicError is a captured task panic, carrying the task index, the
// recovered value, and the goroutine stack at the panic site.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Run executes task(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 means GOMAXPROCS; the effective count is also
// capped at n). It returns nil once every task has completed, or the error
// of the lowest-indexed failed task. After the first failure no new task
// indices are dispatched, so cancellation is prompt but in-flight tasks
// finish. Run with workers == 1 executes the tasks in index order on a
// single goroutine, which is the serial reference path the determinism
// tests compare against.
func Run(n, workers int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		wg      sync.WaitGroup
		errIdx  = -1
		firstEr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(i, &PanicError{Index: i, Value: r, Stack: debug.Stack()})
			}
		}()
		if err := task(i); err != nil {
			fail(i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstEr
}
