package pool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		if err := Run(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Run(-3, 4, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	err := Run(50, workers, func(i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	bad := map[int]bool{17: true, 41: true, 83: true}
	for _, workers := range []int{1, 4, 16} {
		err := Run(100, workers, func(i int) error {
			if bad[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Cancellation may stop later bad indices from running at all, but
		// among the failures that did run, the lowest index must win — and
		// index 17 always runs before cancellation can beat it at workers=1.
		if workers == 1 && err.Error() != "task 17 failed" {
			t.Fatalf("workers=1: got %q, want the first failure in index order", err)
		}
		if !strings.Contains(err.Error(), "failed") {
			t.Fatalf("workers=%d: unexpected error %q", workers, err)
		}
	}
}

func TestRunCancelsAfterFirstError(t *testing.T) {
	var ran atomic.Int32
	err := Run(10_000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("every task ran despite an early error; cancellation is not working")
	}
}

func TestRunCapturesPanics(t *testing.T) {
	err := Run(8, 4, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PanicError", err, err)
	}
	if pe.Index != 5 || pe.Value != "kaboom" {
		t.Fatalf("wrong panic captured: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") || !strings.Contains(pe.Error(), "task 5") {
		t.Fatalf("unhelpful panic error: %s", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error is missing the stack")
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(6); got != 6 {
		t.Fatalf("Workers(6) = %d", got)
	}
}
