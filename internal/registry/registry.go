// Package registry is the dataset side of the decision service: it resolves
// dataset names to generated mimics and caches, per dataset, the schema-level
// sufficient statistics the advisor's rules consume (target entropy, per-table
// row counts and domain minima — see core.DatasetStats). Generation and the
// statistics scan happen once per (name, scale, seed); after that a decision
// request is pure arithmetic over the cached statistics and never rescans
// data. cmd/loadgen drives this hot path today; the planned cmd/advisord will
// serve it over HTTP.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hamlet/internal/core"
	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/synth"
)

// Entry is one cached dataset: the materialized tables plus the advisor's
// sufficient statistics. Entries are immutable after construction and safe
// to share across request workers.
type Entry struct {
	// Dataset is the generated (or loaded) normalized dataset.
	Dataset *dataset.Dataset
	// Stats is the advisor's cached one-scan view of the dataset.
	Stats *core.DatasetStats
}

// Decide answers one advisor request from the cached statistics.
func (e *Entry) Decide(adv *core.Advisor) ([]core.Decision, error) {
	return adv.DecideFromStats(e.Stats)
}

// Key identifies one cached dataset: the (name, scale, seed) tuple Get
// resolves. It is the public face of the registry's internal map key, so
// consumers (the advisord /v1/datasets endpoint, tests) can enumerate what
// is loaded without reaching into internals.
type Key struct {
	// Name is the mimic name ("Walmart", ...; Add-ed datasets keep their
	// own name with zero Scale and Seed).
	Name string
	// Scale is the generation scale in (0, 1].
	Scale float64
	// Seed is the generation seed.
	Seed uint64
}

type key struct {
	name  string
	scale float64
	seed  uint64
}

// Registry caches generated datasets keyed by (name, scale, seed).
// Concurrent Get calls for the same key generate once: the loser of the
// insertion race waits on the winner's result.
type Registry struct {
	mu      sync.Mutex
	entries map[key]*entrySlot
}

// entrySlot is a once-cell: the first Get generates under the slot's own
// lock (not the registry's), so slow generations of different datasets
// proceed in parallel.
type entrySlot struct {
	once  sync.Once
	entry *Entry
	err   error
	// done flips true after once resolves entry/err; Len and Keys read it
	// (atomically) so enumeration never blocks behind an in-flight build.
	done atomic.Bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[key]*entrySlot)}
}

// Names lists the datasets Get can resolve (the Figure 6 mimic names).
func Names() []string {
	specs := synth.Mimics()
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Get returns the cached entry for the named mimic at the given scale and
// seed, generating the dataset and collecting its sufficient statistics on
// first use.
func (r *Registry) Get(name string, scale float64, seed uint64) (*Entry, error) {
	k := key{name, scale, seed}
	r.mu.Lock()
	slot, ok := r.entries[k]
	if !ok {
		slot = &entrySlot{}
		r.entries[k] = slot
	}
	r.mu.Unlock()
	slot.once.Do(func() {
		slot.entry, slot.err = build(name, scale, seed)
		slot.done.Store(true)
	})
	return slot.entry, slot.err
}

// Len reports how many datasets are resolved in the registry: entries whose
// generation and statistics scan completed successfully. In-flight builds
// and failed Gets do not count. The registry never evicts, so Len is
// monotone over a server's lifetime.
func (r *Registry) Len() int { return len(r.Keys()) }

// Keys enumerates the resolved datasets as (name, scale, seed) keys, sorted
// by name, then scale, then seed. Like Len it skips in-flight and failed
// slots, and never blocks behind a build in progress.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	keys := make([]Key, 0, len(r.entries))
	for k, slot := range r.entries {
		if slot.done.Load() && slot.err == nil {
			keys = append(keys, Key{Name: k.name, Scale: k.scale, Seed: k.seed})
		}
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		if keys[i].Scale != keys[j].Scale {
			return keys[i].Scale < keys[j].Scale
		}
		return keys[i].Seed < keys[j].Seed
	})
	return keys
}

// Add caches a caller-supplied dataset (e.g. one loaded from a schema spec)
// under its own name, collecting its statistics. Scale and seed are recorded
// as zero. Replaces any previous entry with the same name.
func (r *Registry) Add(d *dataset.Dataset) (*Entry, error) {
	stats, err := core.CollectStatsChunked(d, relational.DefaultChunkSize)
	if err != nil {
		return nil, fmt.Errorf("registry: collect stats for %q: %w", d.Name, err)
	}
	e := &Entry{Dataset: d, Stats: stats}
	slot := &entrySlot{entry: e}
	slot.once.Do(func() {}) // mark resolved
	slot.done.Store(true)
	r.mu.Lock()
	r.entries[key{name: d.Name}] = slot
	r.mu.Unlock()
	return e, nil
}

// build generates the mimic and collects its statistics.
func build(name string, scale float64, seed uint64) (*Entry, error) {
	spec, err := synth.MimicByName(name)
	if err != nil {
		return nil, err
	}
	d, err := spec.Generate(scale, seed)
	if err != nil {
		return nil, fmt.Errorf("registry: generate %s: %w", name, err)
	}
	// The statistics scan goes through the chunked streaming path so the
	// registry's one-time cost per dataset stays O(chunk) resident beyond
	// the base tables themselves — the same ceiling the streamed
	// sufficient-statistics consumers obey (internal/relational/stream.go).
	stats, err := core.CollectStatsChunked(d, relational.DefaultChunkSize)
	if err != nil {
		return nil, fmt.Errorf("registry: collect stats for %s: %w", name, err)
	}
	return &Entry{Dataset: d, Stats: stats}, nil
}
