package registry

import (
	"reflect"
	"sync"
	"testing"

	"hamlet/internal/core"
)

func TestGetCachesPerKey(t *testing.T) {
	r := New()
	a, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get did not return the cached entry")
	}
	c, err := r.Get("Walmart", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed returned the same entry")
	}
	if _, err := r.Get("NoSuchDataset", 0.05, 1); err == nil {
		t.Error("unknown dataset did not error")
	}
}

func TestGetConcurrentGeneratesOnce(t *testing.T) {
	r := New()
	const callers = 8
	entries := make([]*Entry, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := r.Get("Yelp", 0.02, 1)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent Gets resolved to different entries")
		}
	}
}

// TestEntryDecideMatchesFreshAdvisor pins the service-path contract: a
// decision answered from cached statistics equals a full Decide that
// rescans the dataset.
func TestEntryDecideMatchesFreshAdvisor(t *testing.T) {
	r := New()
	for _, name := range Names() {
		e, err := r.Get(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		adv := core.NewAdvisor()
		cached, err := e.Decide(adv)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh, err := adv.Decide(e.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Errorf("%s: cached decisions diverge from fresh Decide", name)
		}
	}
}

func TestAddCachesLoadedDataset(t *testing.T) {
	r := New()
	base, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Add(base.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Stats, base.Stats) {
		t.Error("Add recollected different statistics for the same dataset")
	}
}
