package registry

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"hamlet/internal/core"
)

func TestGetCachesPerKey(t *testing.T) {
	r := New()
	a, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get did not return the cached entry")
	}
	c, err := r.Get("Walmart", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed returned the same entry")
	}
	if _, err := r.Get("NoSuchDataset", 0.05, 1); err == nil {
		t.Error("unknown dataset did not error")
	}
}

func TestGetConcurrentGeneratesOnce(t *testing.T) {
	r := New()
	const callers = 8
	entries := make([]*Entry, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := r.Get("Yelp", 0.02, 1)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent Gets resolved to different entries")
		}
	}
}

// TestEntryDecideMatchesFreshAdvisor pins the service-path contract: a
// decision answered from cached statistics equals a full Decide that
// rescans the dataset.
func TestEntryDecideMatchesFreshAdvisor(t *testing.T) {
	r := New()
	for _, name := range Names() {
		e, err := r.Get(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		adv := core.NewAdvisor()
		cached, err := e.Decide(adv)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh, err := adv.Decide(e.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Errorf("%s: cached decisions diverge from fresh Decide", name)
		}
	}
}

// TestLenAndKeysEnumerateResolvedEntries covers the enumeration surface the
// advisord /v1/datasets endpoint serves: only successful builds count, failed
// Gets are invisible, and Keys is deterministically sorted.
func TestLenAndKeysEnumerateResolvedEntries(t *testing.T) {
	r := New()
	if r.Len() != 0 || len(r.Keys()) != 0 {
		t.Fatalf("fresh registry: Len = %d, Keys = %v, want empty", r.Len(), r.Keys())
	}
	for _, k := range []Key{
		{Name: "Yelp", Scale: 0.02, Seed: 1},
		{Name: "Walmart", Scale: 0.05, Seed: 2},
		{Name: "Walmart", Scale: 0.02, Seed: 1},
		{Name: "Walmart", Scale: 0.02, Seed: 2},
	} {
		if _, err := r.Get(k.Name, k.Scale, k.Seed); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Get("NoSuchDataset", 0.02, 1); err == nil {
		t.Fatal("unknown dataset did not error")
	}
	want := []Key{
		{Name: "Walmart", Scale: 0.02, Seed: 1},
		{Name: "Walmart", Scale: 0.02, Seed: 2},
		{Name: "Walmart", Scale: 0.05, Seed: 2},
		{Name: "Yelp", Scale: 0.02, Seed: 1},
	}
	if got := r.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v (failed Get must be invisible, order sorted)", got, want)
	}
	if r.Len() != len(want) {
		t.Errorf("Len = %d, want %d", r.Len(), len(want))
	}
}

// TestKeysDoesNotBlockOnInFlightBuild pins the eviction-free contract: an
// enumeration racing a slow generation returns immediately with only the
// resolved entries.
func TestKeysDoesNotBlockOnInFlightBuild(t *testing.T) {
	r := New()
	if _, err := r.Get("Walmart", 0.02, 1); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	// Hand-plant an in-flight slot: its once is held open until release, the
	// way a slow Get holds it during generation.
	slot := &entrySlot{}
	r.mu.Lock()
	r.entries[key{name: "Yelp", scale: 0.02, seed: 1}] = slot
	r.mu.Unlock()
	go slot.once.Do(func() {
		close(started)
		<-release
		slot.entry = &Entry{}
		slot.done.Store(true)
	})
	<-started

	done := make(chan []Key, 1)
	go func() { done <- r.Keys() }()
	select {
	case keys := <-done:
		if len(keys) != 1 || keys[0].Name != "Walmart" {
			t.Errorf("Keys during in-flight build = %v, want only Walmart", keys)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Keys blocked behind an in-flight build")
	}
	close(release)
}

func TestAddCachesLoadedDataset(t *testing.T) {
	r := New()
	base, err := r.Get("Walmart", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Add(base.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Stats, base.Stats) {
		t.Error("Add recollected different statistics for the same dataset")
	}
	// Add-ed datasets enumerate under their own name with zero scale/seed.
	want := []Key{{Name: "Walmart"}, {Name: "Walmart", Scale: 0.05, Seed: 1}}
	if got := r.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("Keys after Add = %v, want %v", got, want)
	}
}
