package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSV interchange for nominal tables. Hamlet-Go stores categories as dense
// int32 codes; real data arrives as strings. ReadCSV dictionary-encodes each
// column (first occurrence order), records the dictionaries, and returns
// both, so WriteCSV can round-trip the original values and downstream
// reports can print category labels instead of codes.

// Dictionary maps one column's category labels to codes and back.
type Dictionary struct {
	// Labels holds the label of each code, in code order.
	Labels []string
	index  map[string]int32
}

// Code returns the code of a label and whether it is present.
func (d *Dictionary) Code(label string) (int32, bool) {
	c, ok := d.index[label]
	return c, ok
}

// Label returns the label of a code, or "" when out of range.
func (d *Dictionary) Label(code int32) string {
	if code < 0 || int(code) >= len(d.Labels) {
		return ""
	}
	return d.Labels[code]
}

// add interns a label, returning its code.
func (d *Dictionary) add(label string) int32 {
	if c, ok := d.index[label]; ok {
		return c
	}
	c := int32(len(d.Labels))
	d.Labels = append(d.Labels, label)
	if d.index == nil {
		d.index = make(map[string]int32)
	}
	d.index[label] = c
	return c
}

// ReadCSVOptions configures ReadCSV.
type ReadCSVOptions struct {
	// NumericBins, when positive, detects columns whose every value parses
	// as a float and discretizes them into this many equal-width bins (the
	// paper's §5 preprocessing) instead of dictionary-encoding them.
	NumericBins int
	// MaxCardinality rejects columns with more distinct values than this;
	// 0 means no limit. It guards against accidentally treating free text
	// or row identifiers as features.
	MaxCardinality int
}

// ReadCSV reads a header-first CSV stream into a table of dictionary-encoded
// nominal columns, returning the per-column dictionaries keyed by column
// name. Numeric columns (when NumericBins > 0) get a nil dictionary and
// bin-index codes.
func ReadCSV(name string, r io.Reader, opts ReadCSVOptions) (*Table, map[string]*Dictionary, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("relational: csv %q: reading header: %w", name, err)
	}
	if len(header) == 0 {
		return nil, nil, fmt.Errorf("relational: csv %q: empty header", name)
	}
	seen := make(map[string]bool, len(header))
	for _, h := range header {
		if h == "" {
			return nil, nil, fmt.Errorf("relational: csv %q: empty column name", name)
		}
		if seen[h] {
			return nil, nil, fmt.Errorf("relational: csv %q: duplicate column %q", name, h)
		}
		seen[h] = true
	}
	raw := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("relational: csv %q: %w", name, err)
		}
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("relational: csv %q: row has %d fields, header has %d", name, len(rec), len(header))
		}
		for i, v := range rec {
			raw[i] = append(raw[i], v)
		}
	}
	if len(raw[0]) == 0 {
		return nil, nil, fmt.Errorf("relational: csv %q: no data rows", name)
	}
	t := NewTable(name)
	dicts := make(map[string]*Dictionary, len(header))
	for ci, colName := range header {
		if opts.NumericBins > 0 {
			if vals, ok := parseNumeric(raw[ci]); ok {
				col, err := equalWidth(colName, vals, opts.NumericBins)
				if err != nil {
					return nil, nil, fmt.Errorf("relational: csv %q column %q: %w", name, colName, err)
				}
				if err := t.AddColumn(col); err != nil {
					return nil, nil, err
				}
				dicts[colName] = nil
				continue
			}
		}
		dict := &Dictionary{}
		data := make([]int32, len(raw[ci]))
		for i, v := range raw[ci] {
			data[i] = dict.add(v)
		}
		if opts.MaxCardinality > 0 && len(dict.Labels) > opts.MaxCardinality {
			return nil, nil, fmt.Errorf("relational: csv %q column %q has %d distinct values (limit %d)", name, colName, len(dict.Labels), opts.MaxCardinality)
		}
		if err := t.AddColumn(&Column{Name: colName, Card: len(dict.Labels), Data: data}); err != nil {
			return nil, nil, err
		}
		dicts[colName] = dict
	}
	return t, dicts, nil
}

// parseNumeric attempts to parse every value as a float.
func parseNumeric(vals []string) ([]float64, bool) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// equalWidth mirrors dataset.EqualWidthBins; duplicated minimally here to
// keep the relational package free of a dataset dependency (which would be
// cyclic).
func equalWidth(name string, values []float64, bins int) (*Column, error) {
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v != v || v > 1e308 || v < -1e308 {
			return nil, fmt.Errorf("non-finite value")
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	data := make([]int32, len(values))
	if lo == hi {
		return &Column{Name: name, Card: bins, Data: data}, nil
	}
	width := (hi - lo) / float64(bins)
	for i, v := range values {
		b := int((v - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		data[i] = int32(b)
	}
	return &Column{Name: name, Card: bins, Data: data}, nil
}

// WriteCSV writes the table as CSV. Columns with a dictionary in dicts are
// decoded to labels; others are written as integer codes. Pass nil dicts to
// write everything as codes.
func WriteCSV(t *Table, w io.Writer, dicts map[string]*Dictionary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	cols := t.Columns()
	rec := make([]string, len(cols))
	for row := 0; row < t.NumRows(); row++ {
		for ci, c := range cols {
			v := c.Data[row]
			if d := dicts[c.Name]; d != nil {
				rec[ci] = d.Label(v)
			} else {
				rec[ci] = strconv.Itoa(int(v))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SortedLabels returns a dictionary's labels in sorted order, for stable
// report output.
func (d *Dictionary) SortedLabels() []string {
	out := append([]string(nil), d.Labels...)
	sort.Strings(out)
	return out
}
