package relational

import (
	"bytes"
	"strings"
	"testing"
)

const churnCSV = `Churn,Gender,EmployerID
yes,F,acme
no,M,globex
yes,F,acme
no,F,initech
`

func TestReadCSVDictionaryEncoding(t *testing.T) {
	tab, dicts, err := ReadCSV("Customers", strings.NewReader(churnCSV), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 || tab.NumCols() != 3 {
		t.Fatalf("shape = (%d,%d)", tab.NumRows(), tab.NumCols())
	}
	churn := tab.Column("Churn")
	if churn.Card != 2 || churn.Data[0] != 0 || churn.Data[1] != 1 || churn.Data[2] != 0 {
		t.Fatalf("Churn encoding = %+v", churn)
	}
	d := dicts["EmployerID"]
	if d == nil || len(d.Labels) != 3 {
		t.Fatalf("EmployerID dictionary = %+v", d)
	}
	if code, ok := d.Code("acme"); !ok || code != 0 {
		t.Fatalf("Code(acme) = %d %v", code, ok)
	}
	if d.Label(2) != "initech" || d.Label(9) != "" {
		t.Fatal("Label lookup broken")
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVNumericBinning(t *testing.T) {
	csv := "Age,City\n10,york\n20,york\n90,leeds\n100,york\n"
	tab, dicts, err := ReadCSV("T", strings.NewReader(csv), ReadCSVOptions{NumericBins: 2})
	if err != nil {
		t.Fatal(err)
	}
	age := tab.Column("Age")
	if age.Card != 2 {
		t.Fatalf("Age card = %d", age.Card)
	}
	if age.Data[0] != 0 || age.Data[3] != 1 {
		t.Fatalf("Age bins = %v", age.Data)
	}
	if dicts["Age"] != nil {
		t.Fatal("numeric column should have nil dictionary")
	}
	if dicts["City"] == nil {
		t.Fatal("string column should have a dictionary")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		opts ReadCSVOptions
	}{
		{"empty input", "", ReadCSVOptions{}},
		{"empty column name", "a,,c\n1,2,3\n", ReadCSVOptions{}},
		{"duplicate column", "a,a\n1,2\n", ReadCSVOptions{}},
		{"ragged row", "a,b\n1\n", ReadCSVOptions{}},
		{"no data rows", "a,b\n", ReadCSVOptions{}},
		{"cardinality limit", "a\nx\ny\nz\n", ReadCSVOptions{MaxCardinality: 2}},
	}
	for _, c := range cases {
		if _, _, err := ReadCSV("T", strings.NewReader(c.csv), c.opts); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tab, dicts, err := ReadCSV("Customers", strings.NewReader(churnCSV), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf, dicts); err != nil {
		t.Fatal(err)
	}
	if buf.String() != churnCSV {
		t.Fatalf("round trip mismatch:\n%q\nvs\n%q", buf.String(), churnCSV)
	}
}

func TestWriteCSVCodesWithoutDicts(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 3, 2, 0, 1))
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a\n2\n0\n1\n" {
		t.Fatalf("codes output = %q", buf.String())
	}
}

func TestDictionarySortedLabels(t *testing.T) {
	d := &Dictionary{}
	d.add("b")
	d.add("a")
	d.add("c")
	got := d.SortedLabels()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
	// Interning the same label twice returns the same code.
	if d.add("b") != 0 {
		t.Fatal("re-interning changed the code")
	}
}
