package relational

import (
	"fmt"
	"sort"
)

// FD is a functional dependency Det → Dep over a table's columns. The
// paper's Appendix C (Corollary C.1) generalizes join-avoidance beyond KFK
// dependencies: given a canonical acyclic set of FDs over the features,
// every feature appearing in some dependent set is redundant — it can be
// dropped a priori with its determinant acting as the representative,
// exactly as the FK represents X_R.
type FD struct {
	// Det is the determinant attribute set.
	Det []string
	// Dep is the dependent attribute set.
	Dep []string
}

// String renders the dependency as "A,B → C".
func (f FD) String() string {
	return fmt.Sprintf("%v → %v", f.Det, f.Dep)
}

// Validate checks that both sides are nonempty and disjoint.
func (f FD) Validate() error {
	if len(f.Det) == 0 || len(f.Dep) == 0 {
		return fmt.Errorf("relational: FD needs nonempty determinant and dependent sets: %s", f)
	}
	det := make(map[string]bool, len(f.Det))
	for _, a := range f.Det {
		if det[a] {
			return fmt.Errorf("relational: FD determinant repeats %q", a)
		}
		det[a] = true
	}
	seen := make(map[string]bool, len(f.Dep))
	for _, a := range f.Dep {
		if det[a] {
			return fmt.Errorf("relational: FD %s has %q on both sides", f, a)
		}
		if seen[a] {
			return fmt.Errorf("relational: FD dependent repeats %q", a)
		}
		seen[a] = true
	}
	return nil
}

// HoldsFDSet reports whether every dependency in the set holds in the table
// (multi-attribute determinants and dependents supported).
func HoldsFDSet(t *Table, fds []FD) (bool, error) {
	for _, fd := range fds {
		if err := fd.Validate(); err != nil {
			return false, err
		}
		detCols := make([]*Column, len(fd.Det))
		for i, name := range fd.Det {
			c := t.Column(name)
			if c == nil {
				return false, fmt.Errorf("relational: FD %s references missing column %q", fd, name)
			}
			detCols[i] = c
		}
		depCols := make([]*Column, len(fd.Dep))
		for i, name := range fd.Dep {
			c := t.Column(name)
			if c == nil {
				return false, fmt.Errorf("relational: FD %s references missing column %q", fd, name)
			}
			depCols[i] = c
		}
		seen := make(map[string]string)
		detKey := make([]byte, 0, 4*len(detCols))
		depKey := make([]byte, 0, 4*len(depCols))
		for row := 0; row < t.NumRows(); row++ {
			detKey = detKey[:0]
			for _, c := range detCols {
				v := c.Data[row]
				detKey = append(detKey, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			depKey = depKey[:0]
			for _, c := range depCols {
				v := c.Data[row]
				depKey = append(depKey, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if prev, ok := seen[string(detKey)]; ok {
				if prev != string(depKey) {
					return false, nil
				}
			} else {
				seen[string(detKey)] = string(depKey)
			}
		}
	}
	return true, nil
}

// AcyclicFDs reports whether the FD set is acyclic per the paper's
// Definition C.1: build a digraph with an edge from each determinant
// attribute to each dependent attribute; the set is acyclic iff that digraph
// is.
func AcyclicFDs(fds []FD) (bool, error) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, fd := range fds {
		if err := fd.Validate(); err != nil {
			return false, err
		}
		for _, a := range fd.Det {
			nodes[a] = true
			for _, b := range fd.Dep {
				nodes[b] = true
				adj[a] = append(adj[a], b)
			}
		}
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[string]int, len(nodes))
	var visit func(string) bool
	visit = func(n string) bool {
		switch state[n] {
		case inStack:
			return false
		case done:
			return true
		}
		state[n] = inStack
		for _, m := range adj[n] {
			if !visit(m) {
				return false
			}
		}
		state[n] = done
		return true
	}
	// Deterministic iteration order for reproducible error behavior.
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !visit(n) {
			return false, nil
		}
	}
	return true, nil
}

// RedundantFeatures applies Corollary C.1: given a canonical acyclic FD set
// over a table's features, it returns the features that appear in some
// dependent set — each is redundant and may be dropped a priori, with its
// determinant acting as representative. The result is sorted and
// deduplicated. It is an error if the FD set is cyclic.
func RedundantFeatures(fds []FD) ([]string, error) {
	ok, err := AcyclicFDs(fds)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("relational: Corollary C.1 requires an acyclic FD set")
	}
	set := make(map[string]bool)
	for _, fd := range fds {
		for _, a := range fd.Dep {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

// Representatives returns, for each redundant feature, the union of
// determinant attributes of the FDs that determine it — the features an
// analyst keeps when dropping the redundant ones. Attributes that are
// themselves redundant are resolved transitively to non-redundant roots
// (possible because the set is acyclic).
func Representatives(fds []FD) (map[string][]string, error) {
	redundant, err := RedundantFeatures(fds)
	if err != nil {
		return nil, err
	}
	isRedundant := make(map[string]bool, len(redundant))
	for _, a := range redundant {
		isRedundant[a] = true
	}
	// direct[a] is the set of determinant attributes directly determining a.
	direct := make(map[string]map[string]bool)
	for _, fd := range fds {
		for _, dep := range fd.Dep {
			if direct[dep] == nil {
				direct[dep] = make(map[string]bool)
			}
			for _, det := range fd.Det {
				direct[dep][det] = true
			}
		}
	}
	var resolve func(string, map[string]bool, map[string]bool)
	resolve = func(a string, acc map[string]bool, onPath map[string]bool) {
		for det := range direct[a] {
			if onPath[det] {
				continue
			}
			if isRedundant[det] {
				onPath[det] = true
				resolve(det, acc, onPath)
				delete(onPath, det)
			} else {
				acc[det] = true
			}
		}
	}
	out := make(map[string][]string, len(redundant))
	for _, a := range redundant {
		acc := make(map[string]bool)
		resolve(a, acc, map[string]bool{a: true})
		roots := make([]string, 0, len(acc))
		for r := range acc {
			roots = append(roots, r)
		}
		sort.Strings(roots)
		out[a] = roots
	}
	return out, nil
}

// KFKAsFDs expresses the dependencies a set of KFK joins materializes in the
// joined table T as an FD list: FK_i → X_Ri for each attribute table. This
// is the bridge between the schema-level KFK view and the general FD view of
// Corollary C.1.
func KFKAsFDs(fks []ForeignKey, attrs map[string]*Table) ([]FD, error) {
	var out []FD
	for _, fk := range fks {
		r, ok := attrs[fk.Refs]
		if !ok {
			return nil, fmt.Errorf("relational: unknown attribute table %q", fk.Refs)
		}
		dep := r.ColumnNames()
		if len(dep) == 0 {
			continue
		}
		out = append(out, FD{Det: []string{fk.Column}, Dep: dep})
	}
	return out, nil
}
