package relational

import (
	"strings"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func TestFDValidate(t *testing.T) {
	good := FD{Det: []string{"a"}, Dep: []string{"b", "c"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FD{
		{Det: nil, Dep: []string{"b"}},
		{Det: []string{"a"}, Dep: nil},
		{Det: []string{"a"}, Dep: []string{"a"}},
		{Det: []string{"a", "a"}, Dep: []string{"b"}},
		{Det: []string{"a"}, Dep: []string{"b", "b"}},
	}
	for i, fd := range bad {
		if err := fd.Validate(); err == nil {
			t.Errorf("bad FD %d accepted: %s", i, fd)
		}
	}
}

func TestFDString(t *testing.T) {
	fd := FD{Det: []string{"FK"}, Dep: []string{"Country"}}
	if !strings.Contains(fd.String(), "FK") || !strings.Contains(fd.String(), "Country") {
		t.Fatalf("String() = %q", fd.String())
	}
}

func TestHoldsFDSetMultiAttribute(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 2, 0, 0, 1, 1))
	tab.MustAddColumn(mkCol("b", 2, 0, 1, 0, 1))
	tab.MustAddColumn(mkCol("c", 4, 0, 1, 2, 3)) // c = 2a + b
	ok, err := HoldsFDSet(tab, []FD{{Det: []string{"a", "b"}, Dep: []string{"c"}}})
	if err != nil || !ok {
		t.Fatalf("(a,b)→c should hold: %v %v", ok, err)
	}
	// a alone does not determine c.
	ok, err = HoldsFDSet(tab, []FD{{Det: []string{"a"}, Dep: []string{"c"}}})
	if err != nil || ok {
		t.Fatalf("a→c should not hold: %v %v", ok, err)
	}
	// Missing columns and invalid FDs error out.
	if _, err := HoldsFDSet(tab, []FD{{Det: []string{"zz"}, Dep: []string{"c"}}}); err == nil {
		t.Fatal("missing determinant column accepted")
	}
	if _, err := HoldsFDSet(tab, []FD{{Det: []string{"a"}, Dep: []string{"zz"}}}); err == nil {
		t.Fatal("missing dependent column accepted")
	}
	if _, err := HoldsFDSet(tab, []FD{{}}); err == nil {
		t.Fatal("invalid FD accepted")
	}
}

func TestAcyclicFDs(t *testing.T) {
	acyclic := []FD{
		{Det: []string{"FK"}, Dep: []string{"Country", "Revenue"}},
		{Det: []string{"Country"}, Dep: []string{"Continent"}},
	}
	ok, err := AcyclicFDs(acyclic)
	if err != nil || !ok {
		t.Fatalf("acyclic set rejected: %v %v", ok, err)
	}
	cyclic := []FD{
		{Det: []string{"a"}, Dep: []string{"b"}},
		{Det: []string{"b"}, Dep: []string{"a"}},
	}
	ok, err = AcyclicFDs(cyclic)
	if err != nil || ok {
		t.Fatalf("cyclic set accepted: %v %v", ok, err)
	}
	if _, err := AcyclicFDs([]FD{{}}); err == nil {
		t.Fatal("invalid FD accepted")
	}
	// Self-loop through a longer chain.
	chain := []FD{
		{Det: []string{"a"}, Dep: []string{"b"}},
		{Det: []string{"b"}, Dep: []string{"c"}},
		{Det: []string{"c"}, Dep: []string{"a"}},
	}
	if ok, _ := AcyclicFDs(chain); ok {
		t.Fatal("3-cycle accepted")
	}
}

// TestRedundantFeaturesCorollaryC1 exercises the paper's Corollary C.1: the
// dependent-side features of an acyclic FD set are redundant.
func TestRedundantFeaturesCorollaryC1(t *testing.T) {
	fds := []FD{
		{Det: []string{"FK"}, Dep: []string{"Country", "Revenue"}},
		{Det: []string{"Country"}, Dep: []string{"Continent"}},
	}
	red, err := RedundantFeatures(fds)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Continent", "Country", "Revenue"}
	if len(red) != len(want) {
		t.Fatalf("redundant = %v", red)
	}
	for i := range want {
		if red[i] != want[i] {
			t.Fatalf("redundant = %v, want %v", red, want)
		}
	}
	// Cyclic sets are rejected.
	if _, err := RedundantFeatures([]FD{
		{Det: []string{"a"}, Dep: []string{"b"}},
		{Det: []string{"b"}, Dep: []string{"a"}},
	}); err == nil {
		t.Fatal("cyclic set accepted by RedundantFeatures")
	}
}

func TestRepresentativesTransitive(t *testing.T) {
	fds := []FD{
		{Det: []string{"FK"}, Dep: []string{"Country", "Revenue"}},
		{Det: []string{"Country"}, Dep: []string{"Continent"}},
	}
	reps, err := Representatives(fds)
	if err != nil {
		t.Fatal(err)
	}
	// Continent resolves through the redundant Country to FK.
	if len(reps["Continent"]) != 1 || reps["Continent"][0] != "FK" {
		t.Fatalf("Continent representative = %v, want [FK]", reps["Continent"])
	}
	if len(reps["Country"]) != 1 || reps["Country"][0] != "FK" {
		t.Fatalf("Country representative = %v", reps["Country"])
	}
	if len(reps["Revenue"]) != 1 || reps["Revenue"][0] != "FK" {
		t.Fatalf("Revenue representative = %v", reps["Revenue"])
	}
}

func TestRepresentativesMultiDeterminant(t *testing.T) {
	fds := []FD{
		{Det: []string{"a", "b"}, Dep: []string{"c"}},
	}
	reps, err := Representatives(fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps["c"]) != 2 || reps["c"][0] != "a" || reps["c"][1] != "b" {
		t.Fatalf("c representative = %v, want [a b]", reps["c"])
	}
}

func TestKFKAsFDs(t *testing.T) {
	s, r := churnFixture()
	_ = s
	fds, err := KFKAsFDs([]ForeignKey{{Column: "EmployerID", Refs: "Employers"}},
		map[string]*Table{"Employers": r})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) != 1 || fds[0].Det[0] != "EmployerID" || len(fds[0].Dep) != 2 {
		t.Fatalf("fds = %v", fds)
	}
	if _, err := KFKAsFDs([]ForeignKey{{Column: "x", Refs: "Nope"}}, nil); err == nil {
		t.Fatal("unknown table accepted")
	}
	// Empty attribute tables contribute no FD.
	empty := NewTable("Empty")
	fds, err = KFKAsFDs([]ForeignKey{{Column: "f", Refs: "Empty"}}, map[string]*Table{"Empty": empty})
	if err != nil || len(fds) != 0 {
		t.Fatalf("empty table: fds = %v, err = %v", fds, err)
	}
}

// TestJoinSatisfiesKFKFDs ties the pieces together: the FDs KFKAsFDs
// predicts for a join must actually hold in the joined table (the formal
// basis of Proposition 3.1).
func TestJoinSatisfiesKFKFDs(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		nR := 2 + rr.IntN(20)
		nS := 20 + rr.IntN(100)
		r := NewTable("R")
		f1 := make([]int32, nR)
		f2 := make([]int32, nR)
		for i := range f1 {
			f1[i] = int32(rr.IntN(3))
			f2[i] = int32(rr.IntN(4))
		}
		r.MustAddColumn(&Column{Name: "F1", Card: 3, Data: f1})
		r.MustAddColumn(&Column{Name: "F2", Card: 4, Data: f2})
		s := NewTable("S")
		fk := make([]int32, nS)
		for i := range fk {
			fk[i] = int32(rr.IntN(nR))
		}
		s.MustAddColumn(&Column{Name: "FK", Card: nR, Data: fk})
		fks := []ForeignKey{{Column: "FK", Refs: "R"}}
		attrs := map[string]*Table{"R": r}
		joined, err := JoinAll(s, fks, attrs)
		if err != nil {
			return false
		}
		fds, err := KFKAsFDs(fks, attrs)
		if err != nil {
			return false
		}
		ok, err := HoldsFDSet(joined, fds)
		return err == nil && ok
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
