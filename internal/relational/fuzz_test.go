package relational

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzStreamJoin builds an arbitrary (entity, attribute) pair from fuzz
// bytes and checks the streaming executor's equivalence contract against the
// materializing reference: StreamJoin drained through MaterializeSource must
// produce exactly Join's output at every chunk size, and the streaming
// FD/distinct consumers must agree with their materialized originals. It
// must never panic. Run `go test -fuzz=FuzzStreamJoin ./internal/relational`
// to explore beyond the seeds; CI runs a short leg on every push.
func FuzzStreamJoin(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{3, 1, 4, 1, 5}, 1)
	f.Add([]byte{}, []byte{0}, 3)
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, []byte{1, 2}, 1000)
	f.Add([]byte{255, 0, 127}, []byte{255, 255, 0}, 0)
	f.Fuzz(func(t *testing.T, fkBytes, rBytes []byte, chunk int) {
		if len(rBytes) == 0 || len(rBytes) > 1<<10 || len(fkBytes) > 1<<12 {
			return
		}
		nR := len(rBytes)
		r := NewTable("R")
		rf := make([]int32, nR)
		for i, b := range rBytes {
			rf[i] = int32(b) % 8
		}
		r.MustAddColumn(&Column{Name: "rF", Card: 8, Data: rf})
		s := NewTable("S")
		home := make([]int32, len(fkBytes))
		fk := make([]int32, len(fkBytes))
		for i, b := range fkBytes {
			home[i] = int32(b) % 4
			fk[i] = int32(b) % int32(nR)
		}
		s.MustAddColumn(&Column{Name: "sH", Card: 4, Data: home})
		s.MustAddColumn(&Column{Name: "FK", Card: nR, Data: fk})

		want, err := Join(s, "FK", r)
		if err != nil {
			t.Fatalf("reference join rejected a valid input: %v", err)
		}
		src, err := StreamJoin(NewTableSource(s, chunk%97), "FK", r)
		if err != nil {
			t.Fatalf("stream join rejected a valid input: %v", err)
		}
		got, err := MaterializeSource(want.Name, src)
		if err != nil {
			t.Fatalf("stream drain failed: %v", err)
		}
		if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
			t.Fatalf("shape mismatch: streamed %s, materialized %s", got, want)
		}
		for ci, wc := range want.Columns() {
			gc := got.Columns()[ci]
			for i := range wc.Data {
				if gc.Data[i] != wc.Data[i] {
					t.Fatalf("cell (%d,%q): streamed %d, materialized %d", i, wc.Name, gc.Data[i], wc.Data[i])
				}
			}
		}

		wantFD, err := HoldsFD(want, "FK", "rF")
		if err != nil {
			t.Fatal(err)
		}
		src.Reset()
		gotFD, err := HoldsFDSource(src, "FK", "rF")
		if err != nil {
			t.Fatal(err)
		}
		if gotFD != wantFD {
			t.Fatalf("FD FK→rF: streamed %v, materialized %v", gotFD, wantFD)
		}

		wantQ, err := DistinctJointValues(want, "sH", "rF")
		if err != nil {
			t.Fatal(err)
		}
		src.Reset()
		gotQ, err := DistinctJointValuesSource(src, "sH", "rF")
		if err != nil {
			t.Fatal(err)
		}
		if gotQ != wantQ {
			t.Fatalf("distinct(sH,rF): streamed %d, materialized %d", gotQ, wantQ)
		}
	})
}

// FuzzReadCSV exercises the CSV ingestion path with arbitrary input: it
// must either fail cleanly or produce a table that validates and
// round-trips; it must never panic. Run `go test -fuzz=FuzzReadCSV
// ./internal/relational` to explore beyond the seed corpus.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"), 0)
	f.Add([]byte("a\n\n"), 4)
	f.Add([]byte("col,col\nv,w\n"), 0)
	f.Add([]byte("h1,h2,h3\n1.5,2.5,xx\n3.5,4.5,yy\n"), 3)
	f.Add([]byte(`q
"quoted,comma"
plain
`), 0)
	f.Add([]byte("\xff\xfe,b\n1,2\n"), 2)
	f.Fuzz(func(t *testing.T, data []byte, bins int) {
		tab, dicts, err := ReadCSV("F", bytes.NewReader(data), ReadCSVOptions{NumericBins: bins % 16, MaxCardinality: 64})
		if err != nil {
			return // clean rejection is fine
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		var out strings.Builder
		if err := WriteCSV(tab, &out, dicts); err != nil {
			t.Fatalf("accepted table fails to serialize: %v", err)
		}
		// Re-reading our own output (without numeric binning, which is
		// lossy by design) must succeed.
		if _, _, err := ReadCSV("F2", strings.NewReader(out.String()), ReadCSVOptions{}); err != nil {
			t.Fatalf("round-trip re-read failed: %v\noutput: %q", err, out.String())
		}
	})
}
