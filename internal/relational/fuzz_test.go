package relational

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV ingestion path with arbitrary input: it
// must either fail cleanly or produce a table that validates and
// round-trips; it must never panic. Run `go test -fuzz=FuzzReadCSV
// ./internal/relational` to explore beyond the seed corpus.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"), 0)
	f.Add([]byte("a\n\n"), 4)
	f.Add([]byte("col,col\nv,w\n"), 0)
	f.Add([]byte("h1,h2,h3\n1.5,2.5,xx\n3.5,4.5,yy\n"), 3)
	f.Add([]byte(`q
"quoted,comma"
plain
`), 0)
	f.Add([]byte("\xff\xfe,b\n1,2\n"), 2)
	f.Fuzz(func(t *testing.T, data []byte, bins int) {
		tab, dicts, err := ReadCSV("F", bytes.NewReader(data), ReadCSVOptions{NumericBins: bins % 16, MaxCardinality: 64})
		if err != nil {
			return // clean rejection is fine
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		var out strings.Builder
		if err := WriteCSV(tab, &out, dicts); err != nil {
			t.Fatalf("accepted table fails to serialize: %v", err)
		}
		// Re-reading our own output (without numeric binning, which is
		// lossy by design) must succeed.
		if _, _, err := ReadCSV("F2", strings.NewReader(out.String()), ReadCSVOptions{}); err != nil {
			t.Fatalf("round-trip re-read failed: %v\noutput: %q", err, out.String())
		}
	})
}
