package relational

import (
	"fmt"

	"hamlet/internal/obs"
)

// Join instrumentation: materializations performed, FK probes (one per
// output row per joined table), cells gathered, and the row-count
// distribution of materialized joins.
var (
	joinCount    = obs.C("relational.joins")
	joinProbes   = obs.C("relational.join_probes")
	joinCells    = obs.C("relational.cells_gathered")
	joinRowsHist = obs.H("relational.join_rows")
)

// ForeignKey describes a KFK reference: a column of the entity table whose
// codes are row indices (RIDs) into an attribute table. Whether the FK's
// domain is closed with respect to the prediction task (paper §2.1) is a
// schema-level property the analyst declares; only closed-domain FKs may be
// used as features and considered by the join-avoidance rules.
type ForeignKey struct {
	// Column is the FK column's name in the entity table.
	Column string
	// Refs is the name of the referenced attribute table.
	Refs string
	// ClosedDomain records whether the FK's domain is closed with respect
	// to the prediction task (e.g. EmployerID yes, SearchID no).
	ClosedDomain bool
}

// CheckRef verifies referential integrity of the FK column fk against the
// attribute table r: every code must be a valid row index of r, and the FK
// column's declared cardinality must equal r's row count (the paper assumes
// D_FK equals the set of RID values in R).
func CheckRef(fk *Column, r *Table) error {
	if fk == nil {
		return fmt.Errorf("relational: nil foreign-key column")
	}
	if fk.Card != r.NumRows() {
		return fmt.Errorf("relational: FK %q cardinality %d != %d rows of %q", fk.Name, fk.Card, r.NumRows(), r.Name)
	}
	for i, v := range fk.Data {
		if v < 0 || int(v) >= r.NumRows() {
			return fmt.Errorf("relational: FK %q row %d dangles: RID %d not in %q [0,%d)", fk.Name, i, v, r.Name, r.NumRows())
		}
	}
	return nil
}

// Join materializes the KFK equi-join T = S ⋈_{FK=RID} R for one foreign key:
// it returns a new table with all of s's columns followed by r's feature
// columns gathered through the FK. The FK column itself is retained (the
// paper's T keeps FK). Column-name collisions are an error.
func Join(s *Table, fkName string, r *Table) (*Table, error) {
	fk := s.Column(fkName)
	if fk == nil {
		return nil, fmt.Errorf("relational: join: entity table %q has no FK column %q", s.Name, fkName)
	}
	if err := CheckRef(fk, r); err != nil {
		return nil, err
	}
	joinCount.Inc()
	joinProbes.Add(int64(fk.Len()))
	joinCells.Add(int64(fk.Len()) * int64(len(r.Columns())))
	joinRowsHist.Observe(int64(fk.Len()))
	out := NewTable(s.Name + "⋈" + r.Name)
	for _, c := range s.Columns() {
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	for _, rc := range r.Columns() {
		if s.HasColumn(rc.Name) {
			return nil, fmt.Errorf("relational: join: column %q exists in both %q and %q", rc.Name, s.Name, r.Name)
		}
		gathered := make([]int32, fk.Len())
		for i, rid := range fk.Data {
			gathered[i] = rc.Data[rid]
		}
		if err := out.AddColumn(&Column{Name: rc.Name, Card: rc.Card, Data: gathered}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// JoinAll materializes joins of the entity table with each attribute table in
// turn. fks[i].Refs must name a key of attrs. Tables are joined in the order
// of fks.
func JoinAll(s *Table, fks []ForeignKey, attrs map[string]*Table) (*Table, error) {
	cur := s
	for _, fk := range fks {
		r, ok := attrs[fk.Refs]
		if !ok {
			return nil, fmt.Errorf("relational: join: unknown attribute table %q", fk.Refs)
		}
		var err error
		cur, err = Join(cur, fk.Column, r)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// HoldsFD reports whether the functional dependency det → dep holds in the
// table: any two rows that agree on det also agree on dep. It runs in one
// pass with a map from det value to the first observed dep value.
//
// The paper's Proposition 3.1 rests on the fact that a KFK join materializes
// the FD FK → X_R in T; tests use HoldsFD to verify that Join preserves it.
func HoldsFD(t *Table, det, dep string) (bool, error) {
	d := t.Column(det)
	if d == nil {
		return false, fmt.Errorf("relational: FD check: no column %q", det)
	}
	e := t.Column(dep)
	if e == nil {
		return false, fmt.Errorf("relational: FD check: no column %q", dep)
	}
	seen := make(map[int32]int32, d.Card)
	for i := range d.Data {
		k := d.Data[i]
		if v, ok := seen[k]; ok {
			if v != e.Data[i] {
				return false, nil
			}
		} else {
			seen[k] = e.Data[i]
		}
	}
	return true, nil
}

// DistinctJointValues returns the number of distinct value combinations of
// the named columns in the table. This is the quantity q_R of §4.2 — the
// number of unique values of U_R taken jointly in R — which upper-bounds the
// VC dimension of any classifier restricted to those features.
func DistinctJointValues(t *Table, names ...string) (int, error) {
	cols := make([]*Column, len(names))
	for i, n := range names {
		c := t.Column(n)
		if c == nil {
			return 0, fmt.Errorf("relational: distinct: no column %q", n)
		}
		cols[i] = c
	}
	if len(cols) == 0 {
		return 0, nil
	}
	seen := make(map[string]struct{})
	key := make([]byte, 0, len(cols)*4)
	for row := 0; row < t.NumRows(); row++ {
		key = key[:0]
		for _, c := range cols {
			v := c.Data[row]
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen), nil
}
