package relational

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the classical FD machinery the paper's Appendix C
// leans on ("we convert T into a relational schema in BCNF using standard
// techniques that take Q as an input"): attribute-set closure, candidate-key
// discovery, minimal cover, and lossless-join BCNF decomposition. Together
// with Corollary C.1 (fd.go) it lets Hamlet-Go take a single wide table plus
// its FDs — the shape analysts actually receive — and recover the normalized
// entity/attribute-table view the join-avoidance rules operate on.

// attrSet is a set of attribute names with deterministic iteration.
type attrSet map[string]bool

func newAttrSet(names ...string) attrSet {
	s := make(attrSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func (s attrSet) clone() attrSet {
	c := make(attrSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s attrSet) containsAll(names []string) bool {
	for _, n := range names {
		if !s[n] {
			return false
		}
	}
	return true
}

func (s attrSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s attrSet) key() string { return strings.Join(s.sorted(), "\x00") }

// Closure returns the attribute closure attrs⁺ under the FD set: every
// attribute functionally determined by attrs. The result includes attrs
// itself and is sorted.
func Closure(attrs []string, fds []FD) ([]string, error) {
	for _, fd := range fds {
		if err := fd.Validate(); err != nil {
			return nil, err
		}
	}
	closure := newAttrSet(attrs...)
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if !closure.containsAll(fd.Det) {
				continue
			}
			for _, dep := range fd.Dep {
				if !closure[dep] {
					closure[dep] = true
					changed = true
				}
			}
		}
	}
	return closure.sorted(), nil
}

// closureSet is Closure returning a set, with validation skipped (internal
// callers validate once up front).
func closureSet(attrs attrSet, fds []FD) attrSet {
	closure := attrs.clone()
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if !closure.containsAll(fd.Det) {
				continue
			}
			for _, dep := range fd.Dep {
				if !closure[dep] {
					closure[dep] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// IsSuperkey reports whether attrs functionally determine every attribute
// in all (the relation's full attribute list) under the FD set.
func IsSuperkey(attrs, all []string, fds []FD) (bool, error) {
	cl, err := Closure(attrs, fds)
	if err != nil {
		return false, err
	}
	return newAttrSet(cl...).containsAll(all), nil
}

// CandidateKeys returns all minimal keys of a relation with the given
// attributes under the FD set, each sorted, in deterministic order. The
// search is exponential in the number of attributes that appear on the
// right-hand side of some FD (the standard necessary/possible split keeps
// it small for real schemas); relations with more than 24 such attributes
// are rejected.
func CandidateKeys(all []string, fds []FD) ([][]string, error) {
	for _, fd := range fds {
		if err := fd.Validate(); err != nil {
			return nil, err
		}
		for _, a := range append(append([]string(nil), fd.Det...), fd.Dep...) {
			if !newAttrSet(all...)[a] {
				return nil, fmt.Errorf("relational: FD %s references attribute %q outside the relation", fd, a)
			}
		}
	}
	// Attributes never on any RHS must be in every key.
	onRHS := newAttrSet()
	for _, fd := range fds {
		for _, a := range fd.Dep {
			onRHS[a] = true
		}
	}
	var core, optional []string
	for _, a := range all {
		if onRHS[a] {
			optional = append(optional, a)
		} else {
			core = append(core, a)
		}
	}
	if len(optional) > 24 {
		return nil, fmt.Errorf("relational: candidate-key search over %d optional attributes is infeasible", len(optional))
	}
	// If the core alone is a key, it is the unique candidate key.
	if ok, _ := IsSuperkey(core, all, fds); ok {
		return [][]string{append([]string(nil), core...)}, nil
	}
	// Enumerate supersets of the core by increasing size; keep minimal ones.
	var keys [][]string
	var keySets []attrSet
	for size := 1; size <= len(optional); size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			cand := newAttrSet(core...)
			for _, i := range idx {
				cand[optional[i]] = true
			}
			minimal := true
			for _, k := range keySets {
				if cand.containsAll(k.sorted()) {
					minimal = false
					break
				}
			}
			if minimal {
				if closureSet(cand, fds).containsAll(all) {
					keys = append(keys, cand.sorted())
					keySets = append(keySets, cand)
				}
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == len(optional)-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return strings.Join(keys[i], ",") < strings.Join(keys[j], ",")
	})
	return keys, nil
}

// MinimalCover returns a canonical (minimal) cover of the FD set: singleton
// right-hand sides, no extraneous determinant attributes, no redundant
// dependencies. The result is deterministic for a given input order.
func MinimalCover(fds []FD) ([]FD, error) {
	// Split to singleton RHS.
	var work []FD
	for _, fd := range fds {
		if err := fd.Validate(); err != nil {
			return nil, err
		}
		for _, dep := range fd.Dep {
			work = append(work, FD{Det: append([]string(nil), fd.Det...), Dep: []string{dep}})
		}
	}
	// Remove extraneous LHS attributes: A is extraneous in X→Y if
	// (X−A)⁺ under the full set still contains Y.
	for i := range work {
		for changed := true; changed; {
			changed = false
			for _, a := range work[i].Det {
				if len(work[i].Det) == 1 {
					break
				}
				reduced := make([]string, 0, len(work[i].Det)-1)
				for _, b := range work[i].Det {
					if b != a {
						reduced = append(reduced, b)
					}
				}
				cl := closureSet(newAttrSet(reduced...), work)
				if cl[work[i].Dep[0]] {
					work[i].Det = reduced
					changed = true
					break
				}
			}
		}
	}
	// Remove redundant FDs: X→y is redundant if X⁺ under the rest has y.
	var cover []FD
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, cover...)
		rest = append(rest, work[i+1:]...)
		cl := closureSet(newAttrSet(work[i].Det...), rest)
		if !cl[work[i].Dep[0]] {
			cover = append(cover, work[i])
		}
	}
	return cover, nil
}

// Schema is a relation schema: a name and an attribute list.
type Schema struct {
	// Name labels the decomposed relation.
	Name string
	// Attrs are its attributes, sorted.
	Attrs []string
}

// DecomposeBCNF losslessly decomposes a relation with the given attributes
// under the FD set into Boyce–Codd Normal Form, using the standard
// violation-driven algorithm: while some relation R has an FD X→Y with X
// not a superkey of R, split R into (X ∪ Y) and (R − Y). Returned schemas
// are deterministic; names are base_1, base_2, ...
func DecomposeBCNF(base string, all []string, fds []FD) ([]Schema, error) {
	cover, err := MinimalCover(fds)
	if err != nil {
		return nil, err
	}
	type rel struct{ attrs attrSet }
	rels := []rel{{newAttrSet(all...)}}
	for changed := true; changed; {
		changed = false
		for ri := range rels {
			r := rels[ri]
			for _, fd := range cover {
				if !r.attrs.containsAll(fd.Det) || !r.attrs[fd.Dep[0]] {
					continue
				}
				// Project the cover onto R and test superkey-ness there.
				proj := projectFDs(cover, r.attrs)
				cl := closureSet(newAttrSet(fd.Det...), proj)
				if cl.containsAll(r.attrs.sorted()) {
					continue // X is a superkey of R: no violation
				}
				// Violation: split R.
				left := closureSet(newAttrSet(fd.Det...), proj)
				// Restrict the closure to R's attributes.
				xy := newAttrSet()
				for a := range left {
					if r.attrs[a] {
						xy[a] = true
					}
				}
				rest := newAttrSet(fd.Det...)
				for a := range r.attrs {
					if !xy[a] {
						rest[a] = true
					}
				}
				rels[ri] = rel{xy}
				rels = append(rels, rel{rest})
				changed = true
				break
			}
			if changed {
				break
			}
		}
	}
	// Deduplicate relations whose attribute set is contained in another.
	var out []Schema
	for i, r := range rels {
		contained := false
		for j, other := range rels {
			if i == j {
				continue
			}
			if other.attrs.containsAll(r.attrs.sorted()) && (len(other.attrs) > len(r.attrs) || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, Schema{Attrs: r.attrs.sorted()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Attrs, ",") < strings.Join(out[j].Attrs, ",")
	})
	for i := range out {
		out[i].Name = fmt.Sprintf("%s_%d", base, i+1)
	}
	return out, nil
}

// projectFDs projects an FD cover onto an attribute set: it keeps the
// dependencies expressible within attrs. (Exact FD projection is
// exponential in general; projecting a singleton-RHS cover by filtering,
// then re-deriving closures inside the relation, is the standard practical
// approximation and is exact for the KFK-style covers Hamlet-Go meets.)
func projectFDs(cover []FD, attrs attrSet) []FD {
	var out []FD
	for _, fd := range cover {
		if attrs.containsAll(fd.Det) && attrs[fd.Dep[0]] {
			out = append(out, fd)
		}
	}
	return out
}

// LosslessJoin verifies a decomposition against a table instance: it
// projects the table onto each schema (with duplicate elimination) and
// checks that the natural join of the projections reproduces exactly the
// original rows. This is the instance-level check of the decomposition's
// lossless-join property.
func LosslessJoin(t *Table, schemas []Schema) (bool, error) {
	if len(schemas) == 0 {
		return false, fmt.Errorf("relational: empty decomposition")
	}
	for _, sch := range schemas {
		for _, a := range sch.Attrs {
			if !t.HasColumn(a) {
				return false, fmt.Errorf("relational: schema %s references missing column %q", sch.Name, a)
			}
		}
	}
	// Represent each projected relation as a set of tuples (map keyed by
	// encoded values). Then join them all via nested accumulation over the
	// original attribute order: we simulate the natural join by iterating
	// the cross product lazily through hash lookups on shared attributes.
	// For test-sized instances a simpler route suffices: enumerate the
	// join result by starting from the first projection and repeatedly
	// hash-joining on shared attributes.
	type tuple map[string]int32
	project := func(sch Schema) []tuple {
		seen := make(map[string]tuple)
		for row := 0; row < t.NumRows(); row++ {
			tp := make(tuple, len(sch.Attrs))
			keyParts := make([]string, len(sch.Attrs))
			for i, a := range sch.Attrs {
				v := t.Column(a).Data[row]
				tp[a] = v
				keyParts[i] = fmt.Sprint(v)
			}
			seen[strings.Join(keyParts, ",")] = tp
		}
		out := make([]tuple, 0, len(seen))
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, seen[k])
		}
		return out
	}
	result := project(schemas[0])
	resultAttrs := newAttrSet(schemas[0].Attrs...)
	for _, sch := range schemas[1:] {
		right := project(sch)
		var shared []string
		for _, a := range sch.Attrs {
			if resultAttrs[a] {
				shared = append(shared, a)
			}
		}
		// Hash the right side on the shared attributes.
		index := make(map[string][]tuple)
		for _, tp := range right {
			parts := make([]string, len(shared))
			for i, a := range shared {
				parts[i] = fmt.Sprint(tp[a])
			}
			k := strings.Join(parts, ",")
			index[k] = append(index[k], tp)
		}
		var joined []tuple
		for _, lt := range result {
			parts := make([]string, len(shared))
			for i, a := range shared {
				parts[i] = fmt.Sprint(lt[a])
			}
			for _, rt := range index[strings.Join(parts, ",")] {
				merged := make(tuple, len(lt)+len(rt))
				for k, v := range lt {
					merged[k] = v
				}
				for k, v := range rt {
					merged[k] = v
				}
				joined = append(joined, merged)
			}
		}
		result = joined
		for _, a := range sch.Attrs {
			resultAttrs[a] = true
		}
	}
	// Compare to the original rows (as a multiset reduced to a set: the
	// original may contain duplicates, which a set comparison absorbs).
	attrs := t.ColumnNames()
	orig := make(map[string]bool)
	for row := 0; row < t.NumRows(); row++ {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = fmt.Sprint(t.Column(a).Data[row])
		}
		orig[strings.Join(parts, ",")] = true
	}
	got := make(map[string]bool)
	for _, tp := range result {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			v, ok := tp[a]
			if !ok {
				return false, fmt.Errorf("relational: decomposition drops attribute %q", a)
			}
			parts[i] = fmt.Sprint(v)
		}
		got[strings.Join(parts, ",")] = true
	}
	if len(got) != len(orig) {
		return false, nil
	}
	for k := range orig {
		if !got[k] {
			return false, nil
		}
	}
	return true, nil
}
