package relational

import (
	"strings"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func fdsFixture() []FD {
	// The classic textbook schema: R(A,B,C,D) with A→B, B→C.
	return []FD{
		{Det: []string{"A"}, Dep: []string{"B"}},
		{Det: []string{"B"}, Dep: []string{"C"}},
	}
}

func TestClosure(t *testing.T) {
	cl, err := Closure([]string{"A"}, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cl, ",") != "A,B,C" {
		t.Fatalf("A+ = %v", cl)
	}
	cl, err = Closure([]string{"B"}, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cl, ",") != "B,C" {
		t.Fatalf("B+ = %v", cl)
	}
	if _, err := Closure([]string{"A"}, []FD{{}}); err == nil {
		t.Fatal("invalid FD accepted")
	}
}

func TestIsSuperkey(t *testing.T) {
	all := []string{"A", "B", "C", "D"}
	ok, err := IsSuperkey([]string{"A", "D"}, all, fdsFixture())
	if err != nil || !ok {
		t.Fatalf("AD should be a superkey: %v %v", ok, err)
	}
	ok, err = IsSuperkey([]string{"A"}, all, fdsFixture())
	if err != nil || ok {
		t.Fatalf("A should not be a superkey (misses D): %v %v", ok, err)
	}
}

func TestCandidateKeysSimple(t *testing.T) {
	all := []string{"A", "B", "C", "D"}
	keys, err := CandidateKeys(all, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || strings.Join(keys[0], ",") != "A,D" {
		t.Fatalf("keys = %v, want [[A D]]", keys)
	}
}

func TestCandidateKeysMultiple(t *testing.T) {
	// R(A,B) with A→B and B→A: both A and B are candidate keys.
	fds := []FD{
		{Det: []string{"A"}, Dep: []string{"B"}},
		{Det: []string{"B"}, Dep: []string{"A"}},
	}
	keys, err := CandidateKeys([]string{"A", "B"}, fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want two singletons", keys)
	}
}

func TestCandidateKeysValidation(t *testing.T) {
	if _, err := CandidateKeys([]string{"A"}, []FD{{Det: []string{"Z"}, Dep: []string{"A"}}}); err == nil {
		t.Fatal("FD over unknown attribute accepted")
	}
}

func TestMinimalCoverRemovesRedundancy(t *testing.T) {
	// A→B, B→C, A→C: the last is implied and must be removed.
	fds := []FD{
		{Det: []string{"A"}, Dep: []string{"B"}},
		{Det: []string{"B"}, Dep: []string{"C"}},
		{Det: []string{"A"}, Dep: []string{"C"}},
	}
	cover, err := MinimalCover(fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 FDs", cover)
	}
}

func TestMinimalCoverRemovesExtraneousLHS(t *testing.T) {
	// A→B plus AB→C: B is extraneous in AB→C (A+ ⊇ AB so A→C suffices).
	fds := []FD{
		{Det: []string{"A"}, Dep: []string{"B"}},
		{Det: []string{"A", "B"}, Dep: []string{"C"}},
	}
	cover, err := MinimalCover(fds)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range cover {
		if fd.Dep[0] == "C" && len(fd.Det) != 1 {
			t.Fatalf("extraneous attribute not removed: %v", cover)
		}
	}
}

func TestMinimalCoverSplitsRHS(t *testing.T) {
	cover, err := MinimalCover([]FD{{Det: []string{"A"}, Dep: []string{"B", "C"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 || len(cover[0].Dep) != 1 || len(cover[1].Dep) != 1 {
		t.Fatalf("cover = %v", cover)
	}
}

func TestDecomposeBCNFTextbook(t *testing.T) {
	// R(A,B,C,D), A→B, B→C: BCNF decomposition should separate the
	// transitive chain, e.g. {B,C}, {A,B}, {A,D}.
	schemas, err := DecomposeBCNF("R", []string{"A", "B", "C", "D"}, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 3 {
		t.Fatalf("schemas = %v", schemas)
	}
	joined := make([]string, len(schemas))
	for i, s := range schemas {
		joined[i] = strings.Join(s.Attrs, "")
	}
	got := strings.Join(joined, "|")
	if got != "AB|AD|BC" {
		t.Fatalf("decomposition = %v", got)
	}
}

func TestDecomposeBCNFNoViolation(t *testing.T) {
	// Already in BCNF: key → rest.
	fds := []FD{{Det: []string{"K"}, Dep: []string{"X", "Y"}}}
	schemas, err := DecomposeBCNF("R", []string{"K", "X", "Y"}, fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 1 || strings.Join(schemas[0].Attrs, "") != "KXY" {
		t.Fatalf("schemas = %v", schemas)
	}
}

// instance materializes a table consistent with A→B→C plus a free D.
func fdInstance(n, cardA int, seed uint64) *Table {
	r := stats.NewRNG(seed)
	bOfA := make([]int32, cardA)
	cOfB := make([]int32, 4)
	for i := range bOfA {
		bOfA[i] = int32(r.IntN(4))
	}
	for i := range cOfB {
		cOfB[i] = int32(r.IntN(3))
	}
	a := make([]int32, n)
	b := make([]int32, n)
	c := make([]int32, n)
	d := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i] = int32(r.IntN(cardA))
		b[i] = bOfA[a[i]]
		c[i] = cOfB[b[i]]
		d[i] = int32(r.IntN(5))
	}
	t := NewTable("R")
	t.MustAddColumn(&Column{Name: "A", Card: cardA, Data: a})
	t.MustAddColumn(&Column{Name: "B", Card: 4, Data: b})
	t.MustAddColumn(&Column{Name: "C", Card: 3, Data: c})
	t.MustAddColumn(&Column{Name: "D", Card: 5, Data: d})
	return t
}

func TestLosslessJoinOnBCNFDecomposition(t *testing.T) {
	tab := fdInstance(200, 8, 3)
	// Confirm the FDs hold on the instance.
	ok, err := HoldsFDSet(tab, fdsFixture())
	if err != nil || !ok {
		t.Fatalf("fixture violates its FDs: %v %v", ok, err)
	}
	schemas, err := DecomposeBCNF("R", []string{"A", "B", "C", "D"}, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	ok, err = LosslessJoin(tab, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("BCNF decomposition is not lossless on the instance")
	}
}

func TestLosslessJoinDetectsLossyDecomposition(t *testing.T) {
	tab := fdInstance(200, 8, 5)
	// {A,B} and {C,D} share nothing: joining them is a cross product,
	// which (generically) fabricates rows → lossy.
	lossy := []Schema{
		{Name: "R1", Attrs: []string{"A", "B"}},
		{Name: "R2", Attrs: []string{"C", "D"}},
	}
	ok, err := LosslessJoin(tab, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cross-product decomposition reported lossless")
	}
}

func TestLosslessJoinErrors(t *testing.T) {
	tab := fdInstance(10, 4, 7)
	if _, err := LosslessJoin(tab, nil); err == nil {
		t.Fatal("empty decomposition accepted")
	}
	if _, err := LosslessJoin(tab, []Schema{{Name: "X", Attrs: []string{"Nope"}}}); err == nil {
		t.Fatal("schema over missing column accepted")
	}
}

// TestBCNFDecompositionLosslessProperty: for random FD-respecting instances,
// the violation-driven decomposition must always be lossless.
func TestBCNFDecompositionLosslessProperty(t *testing.T) {
	schemas, err := DecomposeBCNF("R", []string{"A", "B", "C", "D"}, fdsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(seed uint64) bool {
		tab := fdInstance(100, 6, seed)
		ok, err := LosslessJoin(tab, schemas)
		return err == nil && ok
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeKFKShape: decomposing the paper's joined table T recovers the
// entity/attribute-table split — the inverse of the KFK join.
func TestDecomposeKFKShape(t *testing.T) {
	// T(SID, Y, XS, FK, XR1, XR2) with SID the key and FK → XR1, XR2.
	all := []string{"SID", "Y", "XS", "FK", "XR1", "XR2"}
	fds := []FD{
		{Det: []string{"SID"}, Dep: []string{"Y", "XS", "FK"}},
		{Det: []string{"FK"}, Dep: []string{"XR1", "XR2"}},
	}
	schemas, err := DecomposeBCNF("T", all, fds)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 2 {
		t.Fatalf("schemas = %v, want entity + attribute table", schemas)
	}
	var hasAttr, hasEntity bool
	for _, s := range schemas {
		sig := strings.Join(s.Attrs, ",")
		if sig == "FK,XR1,XR2" {
			hasAttr = true
		}
		if sig == "FK,SID,XS,Y" {
			hasEntity = true
		}
	}
	if !hasAttr || !hasEntity {
		t.Fatalf("decomposition = %v", schemas)
	}
	// And SID closure covers everything (it is the key of T).
	ok, err := IsSuperkey([]string{"SID"}, all, fds)
	if err != nil || !ok {
		t.Fatal("SID should be a superkey of T")
	}
}
