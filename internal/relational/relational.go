// Package relational implements the minimal in-memory relational engine that
// Hamlet-Go's normalized datasets live in: columnar tables of nominal
// (categorical) features with known finite domains, primary keys, key–foreign
// key (KFK) references, equi-joins, projections, and functional-dependency
// checks.
//
// The design follows the paper's setting (§2.1): every feature, including the
// target and every foreign key, is a discrete random variable with a known
// closed domain. Category values are stored as dense int32 codes in the range
// [0, Card). Attribute-table primary keys (RID) are implicit: the RID of a
// row is its index, so a foreign-key column in the entity table holds row
// indices into the referenced attribute table. This makes the KFK equi-join a
// gather, which is both faithful to the paper's semantics and fast.
package relational

import (
	"fmt"
	"strings"
)

// Column is a named nominal feature column: a dense vector of category codes
// together with the cardinality of its closed domain.
type Column struct {
	// Name identifies the column within its table; names are unique per
	// table and, by convention in Hamlet-Go, globally unique per dataset
	// (as in the paper's schemas, e.g. SrcCity vs DestCity).
	Name string
	// Card is the size of the closed domain; valid codes are [0, Card).
	Card int
	// Data holds one code per row.
	Data []int32
}

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.Data) }

// Validate checks that every code is inside the declared domain.
func (c *Column) Validate() error {
	if c.Card <= 0 {
		return fmt.Errorf("relational: column %q has nonpositive cardinality %d", c.Name, c.Card)
	}
	for i, v := range c.Data {
		if v < 0 || int(v) >= c.Card {
			return fmt.Errorf("relational: column %q row %d has code %d outside domain [0,%d)", c.Name, i, v, c.Card)
		}
	}
	return nil
}

// clone returns a deep copy of the column.
func (c *Column) clone() *Column {
	d := make([]int32, len(c.Data))
	copy(d, c.Data)
	return &Column{Name: c.Name, Card: c.Card, Data: d}
}

// Table is a collection of equal-length columns. Row identity is positional:
// the i-th row of the table is the i-th entry of each column. For attribute
// tables the row index doubles as the primary key (RID).
type Table struct {
	// Name is the table's name, e.g. "Employers".
	Name   string
	cols   []*Column
	byName map[string]int
	rows   int
}

// NewTable creates an empty table with the given name.
func NewTable(name string) *Table {
	return &Table{Name: name, byName: make(map[string]int), rows: -1}
}

// AddColumn appends a column to the table. The first column fixes the row
// count; subsequent columns must match it. Column names must be unique.
func (t *Table) AddColumn(c *Column) error {
	if c == nil {
		return fmt.Errorf("relational: nil column added to table %q", t.Name)
	}
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("relational: duplicate column %q in table %q", c.Name, t.Name)
	}
	if t.rows < 0 {
		t.rows = c.Len()
	} else if c.Len() != t.rows {
		return fmt.Errorf("relational: column %q has %d rows, table %q has %d", c.Name, c.Len(), t.Name, t.rows)
	}
	t.byName[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// MustAddColumn is AddColumn that panics on error, for use in construction
// code (generators, tests) where a failure is a programming error.
func (t *Table) MustAddColumn(c *Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err)
	}
}

// NumRows returns the number of rows; an empty table (no columns) has 0.
func (t *Table) NumRows() int {
	if t.rows < 0 {
		return 0
	}
	return t.rows
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the table's columns in declaration order. The returned
// slice must not be modified.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// Validate checks every column's domain and the rectangular shape.
func (t *Table) Validate() error {
	for _, c := range t.cols {
		if c.Len() != t.NumRows() {
			return fmt.Errorf("relational: ragged table %q: column %q has %d rows, want %d", t.Name, c.Name, c.Len(), t.NumRows())
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("table %q: %w", t.Name, err)
		}
	}
	return nil
}

// Project returns a new table containing only the named columns, sharing the
// underlying data vectors (projection is zero-copy).
func (t *Table) Project(names ...string) (*Table, error) {
	out := NewTable(t.Name)
	for _, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("relational: project: no column %q in table %q", n, t.Name)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SelectRows returns a new table containing only the rows at the given
// indices, in order. Data is copied.
func (t *Table) SelectRows(idx []int) (*Table, error) {
	out := NewTable(t.Name)
	for _, c := range t.cols {
		data := make([]int32, len(idx))
		for j, i := range idx {
			if i < 0 || i >= c.Len() {
				return nil, fmt.Errorf("relational: select: row %d out of range [0,%d)", i, c.Len())
			}
			data[j] = c.Data[i]
		}
		if err := out.AddColumn(&Column{Name: c.Name, Card: c.Card, Data: data}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable(t.Name)
	for _, c := range t.cols {
		out.MustAddColumn(c.clone())
	}
	return out
}

// String renders a compact schema description, e.g.
// "Employers(Country:190, Revenue:10) [1000 rows]".
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteByte('(')
	for i, c := range t.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", c.Name, c.Card)
	}
	fmt.Fprintf(&b, ") [%d rows]", t.NumRows())
	return b.String()
}
