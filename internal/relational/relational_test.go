package relational

import (
	"strings"
	"testing"
	"testing/quick"

	"hamlet/internal/stats"
)

func mkCol(name string, card int, data ...int32) *Column {
	return &Column{Name: name, Card: card, Data: data}
}

func TestColumnValidate(t *testing.T) {
	if err := mkCol("a", 2, 0, 1, 1).Validate(); err != nil {
		t.Fatalf("valid column rejected: %v", err)
	}
	if err := mkCol("a", 2, 0, 2).Validate(); err == nil {
		t.Fatal("out-of-domain code accepted")
	}
	if err := mkCol("a", 2, -1).Validate(); err == nil {
		t.Fatal("negative code accepted")
	}
	if err := mkCol("a", 0).Validate(); err == nil {
		t.Fatal("nonpositive cardinality accepted")
	}
}

func TestTableAddColumnShape(t *testing.T) {
	tab := NewTable("T")
	if err := tab.AddColumn(mkCol("a", 2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(mkCol("b", 3, 0, 1, 2)); err == nil {
		t.Fatal("ragged column accepted")
	}
	if err := tab.AddColumn(mkCol("a", 2, 1, 0)); err == nil {
		t.Fatal("duplicate column name accepted")
	}
	if err := tab.AddColumn(nil); err == nil {
		t.Fatal("nil column accepted")
	}
	if tab.NumRows() != 2 || tab.NumCols() != 1 {
		t.Fatalf("shape = (%d,%d), want (2,1)", tab.NumRows(), tab.NumCols())
	}
}

func TestTableLookupAndNames(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("x", 2, 0, 1))
	tab.MustAddColumn(mkCol("y", 2, 1, 0))
	if tab.Column("x") == nil || tab.Column("z") != nil {
		t.Fatal("column lookup broken")
	}
	if !tab.HasColumn("y") || tab.HasColumn("z") {
		t.Fatal("HasColumn broken")
	}
	names := tab.ColumnNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("names = %v", names)
	}
}

func TestEmptyTableNumRows(t *testing.T) {
	if NewTable("E").NumRows() != 0 {
		t.Fatal("empty table should report 0 rows")
	}
}

func TestProject(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 2, 0, 1))
	tab.MustAddColumn(mkCol("b", 2, 1, 1))
	p, err := tab.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 1 || p.Column("b") == nil {
		t.Fatal("projection wrong")
	}
	if _, err := tab.Project("missing"); err == nil {
		t.Fatal("projecting missing column should fail")
	}
	// Zero-copy: mutating the projection's data mutates the source.
	p.Column("b").Data[0] = 0
	if tab.Column("b").Data[0] != 0 {
		t.Fatal("projection should share column storage")
	}
}

func TestSelectRows(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 4, 0, 1, 2, 3))
	sel, err := tab.SelectRows([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != 2 || sel.Column("a").Data[0] != 3 || sel.Column("a").Data[1] != 1 {
		t.Fatalf("selected data = %v", sel.Column("a").Data)
	}
	if _, err := tab.SelectRows([]int{4}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
	// SelectRows copies: mutation must not leak back.
	sel.Column("a").Data[0] = 0
	if tab.Column("a").Data[3] != 3 {
		t.Fatal("SelectRows must copy data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 2, 0, 1))
	c := tab.Clone()
	c.Column("a").Data[0] = 1
	if tab.Column("a").Data[0] != 0 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable("Employers")
	tab.MustAddColumn(mkCol("Country", 190, 0))
	s := tab.String()
	if !strings.Contains(s, "Employers(") || !strings.Contains(s, "Country:190") || !strings.Contains(s, "[1 rows]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestValidateRaggedAndDomains(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 2, 0, 1))
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.cols[0].Data = append(tab.cols[0].Data, 5) // corrupt
	if err := tab.Validate(); err == nil {
		t.Fatal("corrupted table validated")
	}
}

// churnFixture builds the paper's running example: Customers ⋈ Employers.
func churnFixture() (*Table, *Table) {
	employers := NewTable("Employers")
	employers.MustAddColumn(mkCol("Country", 3, 0, 1, 2, 0))
	employers.MustAddColumn(mkCol("Revenue", 2, 1, 0, 1, 1))
	customers := NewTable("Customers")
	customers.MustAddColumn(mkCol("Churn", 2, 0, 1, 1, 0, 1, 0))
	customers.MustAddColumn(mkCol("Age", 4, 0, 1, 2, 3, 1, 2))
	customers.MustAddColumn(mkCol("EmployerID", 4, 0, 1, 2, 3, 1, 0))
	return customers, employers
}

func TestJoinGathersForeignFeatures(t *testing.T) {
	s, r := churnFixture()
	joined, err := Join(s, "EmployerID", r)
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 6 || joined.NumCols() != 5 {
		t.Fatalf("joined shape = (%d,%d)", joined.NumRows(), joined.NumCols())
	}
	// Row 4 has EmployerID 1 → Country 1, Revenue 0.
	if joined.Column("Country").Data[4] != 1 || joined.Column("Revenue").Data[4] != 0 {
		t.Fatal("gather through FK incorrect")
	}
	// The FK column must be retained (the paper's T keeps FK).
	if !joined.HasColumn("EmployerID") {
		t.Fatal("join must keep the FK column")
	}
}

func TestJoinErrors(t *testing.T) {
	s, r := churnFixture()
	if _, err := Join(s, "NoSuchFK", r); err == nil {
		t.Fatal("missing FK accepted")
	}
	// Dangling RID.
	bad := s.Clone()
	bad.Column("EmployerID").Data[0] = 9
	if _, err := Join(bad, "EmployerID", r); err == nil {
		t.Fatal("dangling FK accepted")
	}
	// Cardinality mismatch (FK domain must equal R's row count).
	bad2 := s.Clone()
	bad2.Column("EmployerID").Card = 3
	if _, err := Join(bad2, "EmployerID", r); err == nil {
		t.Fatal("FK/RID cardinality mismatch accepted")
	}
	// Name collision.
	collide := r.Clone()
	collide.cols[0].Name = "Age"
	delete(collide.byName, "Country")
	collide.byName["Age"] = 0
	if _, err := Join(s, "EmployerID", collide); err == nil {
		t.Fatal("column collision accepted")
	}
}

func TestJoinAllMultipleTables(t *testing.T) {
	s, r := churnFixture()
	r2 := NewTable("Plans")
	r2.MustAddColumn(mkCol("Tier", 2, 0, 1))
	s2 := s.Clone()
	s2.MustAddColumn(mkCol("PlanID", 2, 0, 1, 0, 1, 0, 1))
	joined, err := JoinAll(s2, []ForeignKey{
		{Column: "EmployerID", Refs: "Employers", ClosedDomain: true},
		{Column: "PlanID", Refs: "Plans", ClosedDomain: true},
	}, map[string]*Table{"Employers": r, "Plans": r2})
	if err != nil {
		t.Fatal(err)
	}
	if !joined.HasColumn("Country") || !joined.HasColumn("Tier") {
		t.Fatal("JoinAll missing gathered columns")
	}
	if _, err := JoinAll(s2, []ForeignKey{{Column: "PlanID", Refs: "Nope"}}, nil); err == nil {
		t.Fatal("unknown attribute table accepted")
	}
}

// TestJoinMaterializesFD verifies the fact underlying Proposition 3.1: after
// a KFK join, the FD FK → F holds in T for every foreign feature F. This is
// a property test over random instances.
func TestJoinMaterializesFD(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		nR := 2 + rr.IntN(30)
		nS := 10 + rr.IntN(200)
		r := NewTable("R")
		cty := make([]int32, nR)
		rev := make([]int32, nR)
		for i := range cty {
			cty[i] = int32(rr.IntN(4))
			rev[i] = int32(rr.IntN(3))
		}
		r.MustAddColumn(&Column{Name: "F1", Card: 4, Data: cty})
		r.MustAddColumn(&Column{Name: "F2", Card: 3, Data: rev})
		s := NewTable("S")
		fk := make([]int32, nS)
		y := make([]int32, nS)
		for i := range fk {
			fk[i] = int32(rr.IntN(nR))
			y[i] = int32(rr.IntN(2))
		}
		s.MustAddColumn(&Column{Name: "Y", Card: 2, Data: y})
		s.MustAddColumn(&Column{Name: "FK", Card: nR, Data: fk})
		joined, err := Join(s, "FK", r)
		if err != nil {
			return false
		}
		for _, dep := range []string{"F1", "F2"} {
			ok, err := HoldsFD(joined, "FK", dep)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("FD FK→X_R not preserved by Join: %v", err)
	}
}

func TestHoldsFDNegative(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(mkCol("a", 2, 0, 0, 1))
	tab.MustAddColumn(mkCol("b", 2, 0, 1, 0))
	ok, err := HoldsFD(tab, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("FD a→b should not hold")
	}
	if _, err := HoldsFD(tab, "missing", "b"); err == nil {
		t.Fatal("missing determinant accepted")
	}
	if _, err := HoldsFD(tab, "a", "missing"); err == nil {
		t.Fatal("missing dependent accepted")
	}
}

func TestDistinctJointValues(t *testing.T) {
	tab := NewTable("R")
	tab.MustAddColumn(mkCol("a", 2, 0, 0, 1, 1))
	tab.MustAddColumn(mkCol("b", 2, 0, 0, 0, 1))
	n, err := DistinctJointValues(tab, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("distinct joint values = %d, want 3", n)
	}
	n, err = DistinctJointValues(tab, "a")
	if err != nil || n != 2 {
		t.Fatalf("distinct single = %d (%v), want 2", n, err)
	}
	if _, err := DistinctJointValues(tab, "zz"); err == nil {
		t.Fatal("missing column accepted")
	}
	if n, _ := DistinctJointValues(tab); n != 0 {
		t.Fatal("no columns should give 0 distinct values")
	}
}

// TestDistinctBoundsVC verifies the §3.2 inequality |D_FK| >= r where r is
// the number of distinct X_R vectors: since RID is a key, distinct joint
// values of R's features can never exceed R's row count.
func TestDistinctBoundsVC(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := stats.NewRNG(seed)
		nR := 1 + rr.IntN(50)
		r := NewTable("R")
		a := make([]int32, nR)
		b := make([]int32, nR)
		for i := range a {
			a[i] = int32(rr.IntN(3))
			b[i] = int32(rr.IntN(3))
		}
		r.MustAddColumn(&Column{Name: "a", Card: 3, Data: a})
		r.MustAddColumn(&Column{Name: "b", Card: 3, Data: b})
		q, err := DistinctJointValues(r, "a", "b")
		return err == nil && q <= nR && q >= 1
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRefNil(t *testing.T) {
	r := NewTable("R")
	r.MustAddColumn(mkCol("f", 2, 0, 1))
	if err := CheckRef(nil, r); err == nil {
		t.Fatal("nil FK accepted")
	}
}
