package relational

import (
	"fmt"

	"hamlet/internal/obs"
)

// Streaming execution. The paper's thesis is that the denormalized join
// output is redundant — every cell of a gathered attribute column is a copy
// of one of n_R originals — yet the materializing Join operator pays for all
// of them up front: O(n_S · d_R) memory per join. The operators in this file
// execute the same relational plans over bounded windows instead: a
// RowSource yields columnar chunks of at most chunkSize rows, StreamJoin
// gathers foreign cells for one chunk at a time into reusable buffers, and
// aggregations (sufficient statistics, FD checks, distinct counts) fold over
// the chunks. Peak residency is O(chunkSize · width) regardless of n_S, so
// plans that only need aggregates computed *through* the join never hold a
// denormalized table at all.
//
// Equivalence contract: for any table pipeline, draining a streaming plan
// with MaterializeSource yields a table bitwise-equal to the materializing
// reference operators (Join, JoinAll), and the streaming aggregation
// counterparts (HoldsFDSource, DistinctJointValuesSource, the NB
// sufficient-statistics path in internal/ml/nb) return exactly what their
// materialized originals return. Property tests in stream_test.go and the
// FuzzStreamJoin target pin this across random schemas and chunk sizes.

// DefaultChunkSize is the chunk row count used when a caller passes a
// nonpositive size: 4096 rows × 4 bytes keeps a single gathered column
// inside a typical L2 slice while amortizing per-chunk overhead to noise.
const DefaultChunkSize = 4096

// Streaming instrumentation, alongside the materializing join counters in
// join.go: operators constructed, chunks emitted, and the distribution of
// chunk row counts (its maximum is the peak rows resident in any streaming
// operator, the streaming analogue of join_rows). Gathered cells are counted
// into the shared relational.cells_gathered counter so the total gather work
// of a workload is one number whichever execution style produced it.
var (
	streamJoins     = obs.C("relational.stream_joins")
	streamChunks    = obs.C("relational.stream_chunks")
	streamChunkRows = obs.H("relational.stream_chunk_rows")
)

// ColumnInfo is the schema entry of one RowSource output column: the name
// and closed-domain cardinality, without any data.
type ColumnInfo struct {
	// Name is the column name, unique within a source's schema.
	Name string
	// Card is the domain size; codes are in [0, Card).
	Card int
}

// Chunk is one columnar batch of rows. Cols holds one slice per schema
// column, each of length Rows. Slices may be views into shared storage or
// operator-owned buffers that the next call to Next overwrites — a consumer
// that retains data past the next Next call must copy it.
type Chunk struct {
	// Cols holds the column vectors, in schema order.
	Cols [][]int32
	// Rows is the number of rows in this chunk.
	Rows int
}

// RowSource is the chunk-iterator abstraction over relational data: a
// resettable stream of columnar chunks with a fixed schema. It is the
// streaming analogue of Table — TableSource adapts a Table, StreamJoin
// composes a source with an attribute-table gather, and aggregation
// consumers fold over the chunks without ever holding more than one.
type RowSource interface {
	// Schema returns the output columns in order. The returned slice must
	// not be modified.
	Schema() []ColumnInfo
	// Next returns the next chunk, or nil when the source is exhausted.
	// The chunk (and its column slices) is valid only until the next call
	// to Next or Reset.
	Next() (*Chunk, error)
	// Reset rewinds the source to the beginning so it can be drained again.
	Reset()
}

// tableSource streams an in-memory table in row-range chunks. Chunks are
// zero-copy views into the table's column storage.
type tableSource struct {
	t         *Table
	schema    []ColumnInfo
	chunk     Chunk
	pos       int
	chunkSize int
}

// NewTableSource returns a RowSource scanning t in chunks of at most
// chunkSize rows (DefaultChunkSize when chunkSize <= 0). The chunks are
// subslice views: scanning allocates nothing per chunk.
func NewTableSource(t *Table, chunkSize int) RowSource {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	cols := t.Columns()
	schema := make([]ColumnInfo, len(cols))
	for i, c := range cols {
		schema[i] = ColumnInfo{Name: c.Name, Card: c.Card}
	}
	return &tableSource{
		t:         t,
		schema:    schema,
		chunk:     Chunk{Cols: make([][]int32, len(cols))},
		chunkSize: chunkSize,
	}
}

func (s *tableSource) Schema() []ColumnInfo { return s.schema }

func (s *tableSource) Reset() { s.pos = 0 }

func (s *tableSource) Next() (*Chunk, error) {
	n := s.t.NumRows()
	if s.pos >= n || len(s.schema) == 0 {
		return nil, nil
	}
	hi := s.pos + s.chunkSize
	if hi > n {
		hi = n
	}
	for i, c := range s.t.Columns() {
		s.chunk.Cols[i] = c.Data[s.pos:hi]
	}
	s.chunk.Rows = hi - s.pos
	s.pos = hi
	streamChunks.Inc()
	streamChunkRows.Observe(int64(s.chunk.Rows))
	return &s.chunk, nil
}

// streamJoin lazily gathers one attribute table's feature columns through a
// foreign key, chunk by chunk. Input columns pass through as views; the
// gathered columns live in buffers of at most one chunk, reused across
// chunks, so peak residency is O(chunkSize · d_R) instead of the
// materializing Join's O(n_S · d_R).
type streamJoin struct {
	in       RowSource
	r        *Table
	fkIdx    int
	schema   []ColumnInfo
	gathered [][]int32
	chunk    Chunk
}

// StreamJoin returns a RowSource computing the KFK equi-join of in with
// attribute table r through the named FK column of in, without materializing
// the result: each output chunk is the input chunk's columns followed by r's
// feature columns gathered for just that chunk. The FK column is retained,
// as in Join. The FK's declared cardinality must equal r's row count, column
// names must not collide, and a RID outside r's rows surfaces as an error
// from Next (the source cannot pre-scan data it has not seen yet).
func StreamJoin(in RowSource, fkName string, r *Table) (RowSource, error) {
	inSchema := in.Schema()
	fkIdx := -1
	for i, ci := range inSchema {
		if ci.Name == fkName {
			fkIdx = i
			break
		}
	}
	if fkIdx == -1 {
		return nil, fmt.Errorf("relational: stream join: input has no FK column %q", fkName)
	}
	if inSchema[fkIdx].Card != r.NumRows() {
		return nil, fmt.Errorf("relational: stream join: FK %q cardinality %d != %d rows of %q",
			fkName, inSchema[fkIdx].Card, r.NumRows(), r.Name)
	}
	schema := make([]ColumnInfo, 0, len(inSchema)+r.NumCols())
	schema = append(schema, inSchema...)
	for _, rc := range r.Columns() {
		for _, ci := range inSchema {
			if ci.Name == rc.Name {
				return nil, fmt.Errorf("relational: stream join: column %q exists on both sides", rc.Name)
			}
		}
		schema = append(schema, ColumnInfo{Name: rc.Name, Card: rc.Card})
	}
	streamJoins.Inc()
	return &streamJoin{
		in:       in,
		r:        r,
		fkIdx:    fkIdx,
		schema:   schema,
		gathered: make([][]int32, r.NumCols()),
		chunk:    Chunk{Cols: make([][]int32, len(schema))},
	}, nil
}

func (j *streamJoin) Schema() []ColumnInfo { return j.schema }

func (j *streamJoin) Reset() { j.in.Reset() }

func (j *streamJoin) Next() (*Chunk, error) {
	in, err := j.in.Next()
	if err != nil || in == nil {
		return nil, err
	}
	fk := in.Cols[j.fkIdx]
	nR := j.r.NumRows()
	for _, rid := range fk {
		if rid < 0 || int(rid) >= nR {
			return nil, fmt.Errorf("relational: stream join: RID %d not in %q [0,%d)", rid, j.r.Name, nR)
		}
	}
	rCols := j.r.Columns()
	for c, rc := range rCols {
		buf := j.gathered[c]
		if cap(buf) < in.Rows {
			buf = make([]int32, in.Rows)
		}
		buf = buf[:in.Rows]
		for i, rid := range fk {
			buf[i] = rc.Data[rid]
		}
		j.gathered[c] = buf
	}
	copy(j.chunk.Cols, in.Cols)
	copy(j.chunk.Cols[len(in.Cols):], j.gathered)
	j.chunk.Rows = in.Rows
	joinProbes.Add(int64(in.Rows))
	joinCells.Add(int64(in.Rows) * int64(len(rCols)))
	streamChunks.Inc()
	streamChunkRows.Observe(int64(j.chunk.Rows))
	return &j.chunk, nil
}

// StreamJoinAll composes StreamJoin over each foreign key in order, the
// streaming counterpart of JoinAll: the resulting source's schema is the
// input schema followed by each attribute table's columns in fks order.
func StreamJoinAll(in RowSource, fks []ForeignKey, attrs map[string]*Table) (RowSource, error) {
	cur := in
	for _, fk := range fks {
		r, ok := attrs[fk.Refs]
		if !ok {
			return nil, fmt.Errorf("relational: stream join: unknown attribute table %q", fk.Refs)
		}
		var err error
		cur, err = StreamJoin(cur, fk.Column, r)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// MaterializeSource drains a RowSource into a Table. It is the bridge back
// to the materialized world — reference output for equivalence tests and
// small results — and deliberately costs the O(rows) memory that streaming
// consumers avoid.
func MaterializeSource(name string, src RowSource) (*Table, error) {
	schema := src.Schema()
	data := make([][]int32, len(schema))
	for {
		ch, err := src.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		for i := range schema {
			data[i] = append(data[i], ch.Cols[i][:ch.Rows]...)
		}
	}
	out := NewTable(name)
	for i, ci := range schema {
		if data[i] == nil {
			data[i] = []int32{}
		}
		if err := out.AddColumn(&Column{Name: ci.Name, Card: ci.Card, Data: data[i]}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// schemaIndices resolves column names to schema positions.
func schemaIndices(schema []ColumnInfo, names ...string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = -1
		for j, ci := range schema {
			if ci.Name == n {
				idx[i] = j
				break
			}
		}
		if idx[i] == -1 {
			return nil, fmt.Errorf("relational: no column %q in source schema", n)
		}
	}
	return idx, nil
}

// HoldsFDSource is the streaming counterpart of HoldsFD: it reports whether
// the functional dependency det → dep holds across every chunk of src. State
// is one map entry per distinct det value — O(|D_det|), never O(rows) — so
// the FD that a KFK join materializes (FK → X_R) can be verified through
// StreamJoin without building the joined table.
func HoldsFDSource(src RowSource, det, dep string) (bool, error) {
	idx, err := schemaIndices(src.Schema(), det, dep)
	if err != nil {
		return false, fmt.Errorf("relational: FD check: %w", err)
	}
	seen := make(map[int32]int32)
	for {
		ch, err := src.Next()
		if err != nil {
			return false, err
		}
		if ch == nil {
			return true, nil
		}
		d, e := ch.Cols[idx[0]], ch.Cols[idx[1]]
		for i := 0; i < ch.Rows; i++ {
			if v, ok := seen[d[i]]; ok {
				if v != e[i] {
					return false, nil
				}
			} else {
				seen[d[i]] = e[i]
			}
		}
	}
}

// DistinctJointValuesSource is the streaming counterpart of
// DistinctJointValues: it counts the distinct joint values of the named
// columns across every chunk of src. State is the distinct set itself
// (exactly what the answer requires), with no materialized table behind it.
func DistinctJointValuesSource(src RowSource, names ...string) (int, error) {
	idx, err := schemaIndices(src.Schema(), names...)
	if err != nil {
		return 0, fmt.Errorf("relational: distinct: %w", err)
	}
	if len(idx) == 0 {
		return 0, nil
	}
	seen := make(map[string]struct{})
	key := make([]byte, 0, len(idx)*4)
	for {
		ch, err := src.Next()
		if err != nil {
			return 0, err
		}
		if ch == nil {
			return len(seen), nil
		}
		for row := 0; row < ch.Rows; row++ {
			key = key[:0]
			for _, j := range idx {
				v := ch.Cols[j][row]
				key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			seen[string(key)] = struct{}{}
		}
	}
}
