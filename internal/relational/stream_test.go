package relational

import (
	"math/rand"
	"strings"
	"testing"
)

// tablesEqual reports full bitwise equality: names, schema, and every cell.
func tablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("shape mismatch: got %s, want %s", got, want)
	}
	for i, wc := range want.Columns() {
		gc := got.Columns()[i]
		if gc.Name != wc.Name || gc.Card != wc.Card {
			t.Fatalf("column %d: got %s:%d, want %s:%d", i, gc.Name, gc.Card, wc.Name, wc.Card)
		}
		for r := range wc.Data {
			if gc.Data[r] != wc.Data[r] {
				t.Fatalf("column %q row %d: got %d, want %d", wc.Name, r, gc.Data[r], wc.Data[r])
			}
		}
	}
}

// randTable builds a random table with the given prefix for column names.
func randTable(rng *rand.Rand, name, prefix string, rows, cols int) *Table {
	t := NewTable(name)
	for j := 0; j < cols; j++ {
		card := 1 + rng.Intn(12)
		data := make([]int32, rows)
		for i := range data {
			data[i] = int32(rng.Intn(card))
		}
		t.MustAddColumn(&Column{Name: prefix + string(rune('A'+j)), Card: card, Data: data})
	}
	return t
}

// randJoinCase builds a random (entity, attribute) pair with a valid FK.
func randJoinCase(rng *rand.Rand) (s, r *Table) {
	nR := 1 + rng.Intn(40)
	r = randTable(rng, "R", "r", nR, 1+rng.Intn(4))
	nS := rng.Intn(150)
	s = randTable(rng, "S", "s", nS, 1+rng.Intn(3))
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	s.MustAddColumn(&Column{Name: "FK", Card: nR, Data: fk})
	return s, r
}

var chunkSizes = []int{1, 2, 3, 7, 64, 1000, 0 /* -> DefaultChunkSize */}

func TestTableSourceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tab := randTable(rng, "T", "c", rng.Intn(200), 1+rng.Intn(4))
		for _, cs := range chunkSizes {
			got, err := MaterializeSource("T", NewTableSource(tab, cs))
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			tablesEqual(t, tab, got)
		}
	}
}

func TestTableSourceReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := randTable(rng, "T", "c", 50, 2)
	src := NewTableSource(tab, 7)
	first, err := MaterializeSource("T", src)
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	second, err := MaterializeSource("T", src)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, first, second)
}

// TestStreamJoinMatchesJoin is the core equivalence property: for random
// schemas and chunk sizes, draining StreamJoin yields the same table as the
// materializing Join, cell for cell.
func TestStreamJoinMatchesJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		s, r := randJoinCase(rng)
		want, err := Join(s, "FK", r)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range chunkSizes {
			src, err := StreamJoin(NewTableSource(s, cs), "FK", r)
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			got, err := MaterializeSource(want.Name, src)
			if err != nil {
				t.Fatalf("chunk %d: %v", cs, err)
			}
			tablesEqual(t, want, got)
		}
	}
}

// TestStreamJoinAllMatchesJoinAll pins the multi-hop composition: chained
// streaming joins equal the chained materializing joins.
func TestStreamJoinAllMatchesJoinAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		nR1, nR2 := 1+rng.Intn(20), 1+rng.Intn(20)
		r1 := randTable(rng, "R1", "p", nR1, 1+rng.Intn(3))
		r2 := randTable(rng, "R2", "q", nR2, 1+rng.Intn(3))
		nS := rng.Intn(100)
		s := randTable(rng, "S", "s", nS, 1)
		fk1 := make([]int32, nS)
		fk2 := make([]int32, nS)
		for i := range fk1 {
			fk1[i] = int32(rng.Intn(nR1))
			fk2[i] = int32(rng.Intn(nR2))
		}
		s.MustAddColumn(&Column{Name: "FK1", Card: nR1, Data: fk1})
		s.MustAddColumn(&Column{Name: "FK2", Card: nR2, Data: fk2})
		fks := []ForeignKey{
			{Column: "FK1", Refs: "R1", ClosedDomain: true},
			{Column: "FK2", Refs: "R2", ClosedDomain: true},
		}
		attrs := map[string]*Table{"R1": r1, "R2": r2}
		want, err := JoinAll(s, fks, attrs)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []int{1, 9, 1000} {
			src, err := StreamJoinAll(NewTableSource(s, cs), fks, attrs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MaterializeSource(want.Name, src)
			if err != nil {
				t.Fatal(err)
			}
			tablesEqual(t, want, got)
		}
	}
}

func TestStreamJoinErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, r := randJoinCase(rng)
	if _, err := StreamJoin(NewTableSource(s, 8), "nope", r); err == nil {
		t.Fatal("missing FK column not rejected")
	}
	// Cardinality mismatch.
	bad := NewTable("R2")
	bad.MustAddColumn(&Column{Name: "x", Card: 2, Data: make([]int32, r.NumRows()+1)})
	if _, err := StreamJoin(NewTableSource(s, 8), "FK", bad); err == nil {
		t.Fatal("FK cardinality mismatch not rejected")
	}
	// Name collision.
	coll := NewTable("R3")
	coll.MustAddColumn(&Column{Name: "FK", Card: 3, Data: make([]int32, s.Column("FK").Card)})
	if _, err := StreamJoin(NewTableSource(s, 8), "FK", coll); err == nil {
		t.Fatal("column-name collision not rejected")
	}
}

func TestStreamJoinDanglingRID(t *testing.T) {
	// A source whose FK codes exceed the attribute table's rows must fail
	// from Next, not corrupt memory. Build it by declaring a card larger
	// than the data ever uses, then handing StreamJoin a smaller r.
	s := NewTable("S")
	s.MustAddColumn(&Column{Name: "FK", Card: 5, Data: []int32{0, 4, 1}})
	r := NewTable("R")
	r.MustAddColumn(&Column{Name: "f", Card: 2, Data: []int32{0, 1, 1, 0, 1}})
	src, err := StreamJoin(NewTableSource(s, 2), "FK", r)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink r's view after construction to simulate a dangling RID.
	r.Column("f").Data = r.Column("f").Data[:3]
	r.rows = 3
	if _, err := MaterializeSource("J", src); err == nil || !strings.Contains(err.Error(), "RID") {
		t.Fatalf("dangling RID not surfaced, err=%v", err)
	}
}

func TestHoldsFDSourceMatchesHoldsFD(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		s, r := randJoinCase(rng)
		joined, err := Join(s, "FK", r)
		if err != nil {
			t.Fatal(err)
		}
		// FK → X_R must hold through the join; a random pair usually won't.
		cases := [][2]string{{"FK", r.Columns()[0].Name}}
		if s.NumCols() >= 2 {
			cases = append(cases, [2]string{s.Columns()[0].Name, r.Columns()[0].Name})
		}
		for _, c := range cases {
			want, err := HoldsFD(joined, c[0], c[1])
			if err != nil {
				t.Fatal(err)
			}
			src, err := StreamJoin(NewTableSource(s, 1+rng.Intn(40)), "FK", r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := HoldsFDSource(src, c[0], c[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("FD %s→%s: streamed %v, materialized %v", c[0], c[1], got, want)
			}
		}
	}
}

func TestHoldsFDSourceMissingColumn(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(&Column{Name: "a", Card: 2, Data: []int32{0, 1}})
	if _, err := HoldsFDSource(NewTableSource(tab, 8), "a", "nope"); err == nil {
		t.Fatal("missing dep column not rejected")
	}
}

func TestDistinctJointValuesSourceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		s, r := randJoinCase(rng)
		joined, err := Join(s, "FK", r)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"FK"}
		if r.NumCols() > 0 {
			names = append(names, r.Columns()[0].Name)
		}
		want, err := DistinctJointValues(joined, names...)
		if err != nil {
			t.Fatal(err)
		}
		src, err := StreamJoin(NewTableSource(s, 1+rng.Intn(30)), "FK", r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DistinctJointValuesSource(src, names...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("distinct %v: streamed %d, materialized %d", names, got, want)
		}
	}
}

func TestDistinctJointValuesSourceEmptyNames(t *testing.T) {
	tab := NewTable("T")
	tab.MustAddColumn(&Column{Name: "a", Card: 2, Data: []int32{0, 1}})
	got, err := DistinctJointValuesSource(NewTableSource(tab, 8))
	if err != nil || got != 0 {
		t.Fatalf("want 0 distinct over no columns, got %d err %v", got, err)
	}
}

// TestStreamJoinAllocsPerChunk pins the O(chunk) allocation contract: once
// the gather buffers exist, emitting more chunks must not allocate. The
// allocation count of a full drain is therefore a small constant independent
// of the row count — if Next ever allocates per chunk, the 100k-row drain
// below (25 chunks) blows through the bound immediately.
func TestStreamJoinAllocsPerChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const nR, nS, dR = 100, 100000, 8
	r := NewTable("R")
	for j := 0; j < dR; j++ {
		data := make([]int32, nR)
		for i := range data {
			data[i] = int32(rng.Intn(10))
		}
		r.MustAddColumn(&Column{Name: "f" + string(rune('a'+j)), Card: 10, Data: data})
	}
	s := NewTable("S")
	fk := make([]int32, nS)
	for i := range fk {
		fk[i] = int32(rng.Intn(nR))
	}
	s.MustAddColumn(&Column{Name: "FK", Card: nR, Data: fk})
	src, err := StreamJoin(NewTableSource(s, DefaultChunkSize), "FK", r)
	if err != nil {
		t.Fatal(err)
	}
	var sink int32
	allocs := testing.AllocsPerRun(5, func() {
		src.Reset()
		for {
			ch, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if ch == nil {
				break
			}
			sink += ch.Cols[len(ch.Cols)-1][0]
		}
	})
	_ = sink
	if allocs > 4 {
		t.Fatalf("drain of a warmed stream allocated %.0f times per run; chunks must reuse buffers", allocs)
	}
}
