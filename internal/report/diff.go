package report

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"hamlet/internal/obs"
	"hamlet/internal/stats"
)

// This file is the accudiff: benchdiff's alignment-and-gate shape applied
// to accuracy artifacts. Two runs' results.jsonl rows are aligned by
// (experiment, table, key-column values); measure columns are compared as
// numbers against an absolute tolerance, with a Welch t-test (the same
// internal/stats machinery benchdiff uses) filtering noise whenever a key
// repeats often enough to yield real samples on both sides; decision
// columns (rule verdicts) must match exactly — a verdict flip IS the drift
// the paper's safety claims care about, however small the error delta that
// caused it.
//
// Column classification leans on the repo's rendering convention — measures
// are formatted with %.4f (always a '.'), config keys with %d (never one):
//
//   - measure:  every non-empty cell parses as a float and contains '.'
//   - decision: every non-empty cell is a bool ("true"/"false") or a known
//     verdict token (AVOID/JOIN/SAFE/UNSAFE/YES/NO, any case)
//   - key:      everything else (dataset names, plans, integer configs)

// DiffOptions tunes the accudiff gate.
type DiffOptions struct {
	// Tol is the absolute tolerance on a measure column's mean delta;
	// differences at or below it never count as drift. Accuracy measures
	// (test error, dErr) live in [0,1], so the default 1e-3 means "a tenth
	// of a percentage point of error".
	Tol float64
	// Alpha is the Welch significance level used when both sides carry at
	// least two samples for an aligned key; with fewer samples the
	// tolerance alone decides (a lone pair cannot be exonerated by
	// statistics — same policy as benchdiff).
	Alpha float64
}

// DefaultDiffOptions matches the cmd/report defaults.
var DefaultDiffOptions = DiffOptions{Tol: 1e-3, Alpha: 0.05}

// Drift is one gated difference between aligned rows.
type Drift struct {
	// Experiment, Table, and Key identify the aligned row group; Key is the
	// key-column cells joined with "/" ("" for tables with no key columns).
	Experiment, Table, Key string
	// Column is the drifted column.
	Column string
	// Decision marks a verdict flip (Old/New carry the verdicts); otherwise
	// the drift is numeric and OldMean/NewMean/P are set.
	Decision bool
	// Old and New are the rendered values: verdicts for decision drifts,
	// formatted means for measure drifts.
	Old, New string
	// OldMean and NewMean are the per-side sample means (measure drifts).
	OldMean, NewMean float64
	// P is the Welch two-sided p-value (NaN when either side has fewer
	// than two samples).
	P float64
}

// DiffReport is the aligned comparison of two runs' results.
type DiffReport struct {
	// Drifts holds every gated difference, sorted by experiment, table,
	// key, column. Empty means the runs agree within tolerance.
	Drifts []Drift
	// AlignedKeys counts row groups present on both sides; zero makes the
	// comparison vacuous (exit 3 at the CLI, mirroring benchdiff).
	AlignedKeys int
	// ComparedCells counts measure and decision comparisons performed.
	ComparedCells int
	// OnlyBase and OnlyNew hold row-group keys present on one side only
	// (sorted); they do not gate, but the CLI surfaces the counts so a
	// shrinking experiment can't pass unnoticed.
	OnlyBase, OnlyNew []string
}

// colClass is a column's inferred role in the diff.
type colClass int

const (
	classKey colClass = iota
	classMeasure
	classDecision
)

// verdictTokens are the non-boolean cell values recognized as decisions.
var verdictTokens = map[string]bool{
	"avoid": true, "join": true, "safe": true, "unsafe": true, "yes": true, "no": true,
}

// classify infers each column's role from every value it takes across both
// runs (classifying over the union keeps the two sides symmetric).
func classify(rows []obs.ResultRow) map[string]colClass {
	values := make(map[string][]string)
	for _, row := range rows {
		for col, v := range row.Cells {
			values[col] = append(values[col], v)
		}
	}
	classes := make(map[string]colClass, len(values))
	for col, vs := range values {
		classes[col] = classifyValues(vs)
	}
	return classes
}

func classifyValues(vs []string) colClass {
	measure, decision, seen := true, true, false
	for _, v := range vs {
		if v == "" {
			continue
		}
		seen = true
		if _, err := strconv.ParseFloat(v, 64); err != nil || !strings.Contains(v, ".") {
			measure = false
		}
		lower := strings.ToLower(v)
		if lower != "true" && lower != "false" && !verdictTokens[lower] {
			decision = false
		}
	}
	switch {
	case !seen:
		return classKey
	case decision:
		return classDecision
	case measure:
		return classMeasure
	default:
		return classKey
	}
}

// rowGroup is the aligned unit: all rows of one (experiment, table, key).
type rowGroup struct {
	experiment, table, key string
	rows                   []obs.ResultRow
}

// groupRows buckets one run's rows by (experiment, table, key-column
// values), preserving row order inside each bucket so repeated keys align
// sample-by-sample.
func groupRows(rows []obs.ResultRow, classes map[string]map[string]colClass) (map[string]*rowGroup, []string) {
	groups := make(map[string]*rowGroup)
	var order []string
	for _, row := range rows {
		cls := classes[tableID(row)]
		var keyParts []string
		for _, col := range columnsOf(row) {
			if cls[col] == classKey {
				keyParts = append(keyParts, row.Cells[col])
			}
		}
		key := strings.Join(keyParts, "/")
		id := tableID(row) + "\x1f" + key
		g := groups[id]
		if g == nil {
			g = &rowGroup{experiment: row.Experiment, table: row.Table, key: key}
			groups[id] = g
			order = append(order, id)
		}
		g.rows = append(g.rows, row)
	}
	return groups, order
}

// tableID joins experiment and table into one classification scope.
func tableID(row obs.ResultRow) string { return row.Experiment + "\x1f" + row.Table }

// Diff aligns base's and next's results and gates on accuracy drift.
func Diff(base, next *Run, opt DiffOptions) *DiffReport {
	// Classify columns over the union of both runs, per table.
	byTable := make(map[string][]obs.ResultRow)
	for _, row := range base.Results {
		byTable[tableID(row)] = append(byTable[tableID(row)], row)
	}
	for _, row := range next.Results {
		byTable[tableID(row)] = append(byTable[tableID(row)], row)
	}
	classes := make(map[string]map[string]colClass, len(byTable))
	for id, rows := range byTable {
		classes[id] = classify(rows)
	}

	baseGroups, baseOrder := groupRows(base.Results, classes)
	nextGroups, _ := groupRows(next.Results, classes)

	rep := &DiffReport{}
	for _, id := range baseOrder {
		bg := baseGroups[id]
		ng, ok := nextGroups[id]
		if !ok {
			rep.OnlyBase = append(rep.OnlyBase, groupLabel(bg))
			continue
		}
		rep.AlignedKeys++
		rep.Drifts = append(rep.Drifts, diffGroup(bg, ng, classes[bg.experiment+"\x1f"+bg.table], opt, &rep.ComparedCells)...)
	}
	for id, ng := range nextGroups {
		if _, ok := baseGroups[id]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, groupLabel(ng))
		}
	}
	sort.Strings(rep.OnlyBase)
	sort.Strings(rep.OnlyNew)
	sort.Slice(rep.Drifts, func(i, j int) bool {
		a, b := rep.Drifts[i], rep.Drifts[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Column < b.Column
	})
	return rep
}

// groupLabel renders a row group for the only-in-one-side lists.
func groupLabel(g *rowGroup) string {
	label := g.experiment + ": " + g.table
	if g.key != "" {
		label += " [" + g.key + "]"
	}
	return label
}

// diffGroup compares one aligned row group column by column.
func diffGroup(bg, ng *rowGroup, cls map[string]colClass, opt DiffOptions, cells *int) []Drift {
	var drifts []Drift
	for _, col := range columnsOf(bg.rows[0]) {
		switch cls[col] {
		case classDecision:
			*cells++
			if d, flipped := diffDecision(bg, ng, col); flipped {
				drifts = append(drifts, d)
			}
		case classMeasure:
			*cells++
			if d, drifted := diffMeasure(bg, ng, col, opt); drifted {
				drifts = append(drifts, d)
			}
		}
	}
	return drifts
}

// diffDecision compares a verdict column pairwise across the aligned rows.
func diffDecision(bg, ng *rowGroup, col string) (Drift, bool) {
	n := min(len(bg.rows), len(ng.rows))
	for i := 0; i < n; i++ {
		oldV, newV := bg.rows[i].Cells[col], ng.rows[i].Cells[col]
		if oldV != newV {
			return Drift{
				Experiment: bg.experiment, Table: bg.table, Key: bg.key,
				Column: col, Decision: true, Old: oldV, New: newV,
				P: math.NaN(),
			}, true
		}
	}
	return Drift{}, false
}

// diffMeasure compares a numeric column's per-side samples: the mean delta
// must exceed the tolerance, and — when both sides have enough samples for
// a Welch t-test — be significant at alpha.
func diffMeasure(bg, ng *rowGroup, col string, opt DiffOptions) (Drift, bool) {
	olds, news := samples(bg, col), samples(ng, col)
	if len(olds) == 0 || len(news) == 0 {
		return Drift{}, false
	}
	oldMean, newMean := stats.Mean(olds), stats.Mean(news)
	if math.Abs(newMean-oldMean) <= opt.Tol {
		return Drift{}, false
	}
	_, _, p := stats.WelchTTest(olds, news)
	if !math.IsNaN(p) && p >= opt.Alpha {
		return Drift{}, false // noise, not drift
	}
	return Drift{
		Experiment: bg.experiment, Table: bg.table, Key: bg.key,
		Column:  col,
		Old:     fmt.Sprintf("%.4f", oldMean),
		New:     fmt.Sprintf("%.4f", newMean),
		OldMean: oldMean, NewMean: newMean, P: p,
	}, true
}

// samples extracts a column's parseable values across a group's rows.
func samples(g *rowGroup, col string) []float64 {
	var out []float64
	for _, row := range g.rows {
		if v, err := strconv.ParseFloat(row.Cells[col], 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}
