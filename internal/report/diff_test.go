package report

import (
	"fmt"
	"math"
	"testing"

	"hamlet/internal/obs"
)

func TestDiffIdenticalRunsClean(t *testing.T) {
	base := loadFixture(t, "base")
	rep := Diff(base, base, DefaultDiffOptions)
	if len(rep.Drifts) != 0 {
		t.Fatalf("self-diff found drift: %+v", rep.Drifts)
	}
	if rep.AlignedKeys == 0 || rep.ComparedCells == 0 {
		t.Errorf("self-diff compared nothing: %+v", rep)
	}
	if len(rep.OnlyBase) != 0 || len(rep.OnlyNew) != 0 {
		t.Errorf("self-diff has one-sided keys: %+v", rep)
	}
}

// TestDiffSeededDrift pins the gate against the committed drift fixture:
// the perturbed dErr must surface as a measure drift and the flipped
// safeROR(C) as a verdict flip — and nothing else.
func TestDiffSeededDrift(t *testing.T) {
	rep := Diff(loadFixture(t, "base"), loadFixture(t, "drift"), DefaultDiffOptions)
	if len(rep.Drifts) != 2 {
		t.Fatalf("drifts = %+v, want exactly the 2 seeded ones", rep.Drifts)
	}
	measure, verdict := rep.Drifts[0], rep.Drifts[1]
	if measure.Column != "dErr" || measure.Decision || measure.Key != "100/10" {
		t.Errorf("measure drift = %+v", measure)
	}
	if measure.Old != "0.0047" || measure.New != "0.0647" {
		t.Errorf("measure drift values = %s -> %s", measure.Old, measure.New)
	}
	if verdict.Column != "safeROR(C)" || !verdict.Decision || verdict.Old != "true" || verdict.New != "false" {
		t.Errorf("verdict drift = %+v", verdict)
	}
}

func TestDiffDisjointIsVacuous(t *testing.T) {
	rep := Diff(loadFixture(t, "base"), loadFixture(t, "disjoint"), DefaultDiffOptions)
	if rep.AlignedKeys != 0 {
		t.Fatalf("disjoint fixtures aligned %d keys", rep.AlignedKeys)
	}
	if len(rep.OnlyBase) == 0 || len(rep.OnlyNew) == 0 {
		t.Errorf("one-sided keys not reported: %+v", rep)
	}
}

func TestDiffToleranceSilencesMeasuresNotVerdicts(t *testing.T) {
	rep := Diff(loadFixture(t, "base"), loadFixture(t, "drift"), DiffOptions{Tol: 1, Alpha: 0.05})
	if len(rep.Drifts) != 1 || !rep.Drifts[0].Decision {
		t.Fatalf("with tol=1 only the verdict flip should remain: %+v", rep.Drifts)
	}
}

// mkRun builds an in-memory run whose one table repeats the same key n
// times with the given measure values — the repeated-sample regime where
// the Welch test takes over from the raw tolerance.
func mkRun(vals []float64) *Run {
	rows := make([]obs.ResultRow, len(vals))
	for i, v := range vals {
		rows[i] = obs.ResultRow{
			V: obs.SchemaVersion, Experiment: "x", Table: "T",
			Columns: []string{"cfg", "err"},
			Cells:   map[string]string{"cfg": "a", "err": fmt.Sprintf("%.4f", v)},
		}
	}
	return &Run{Results: rows}
}

func TestDiffWelchFiltersNoisySamples(t *testing.T) {
	// Same key 4 times per side; means differ by 0.05 (far over tol) but
	// within-side spread swamps it, so Welch must exonerate the delta.
	base := mkRun([]float64{0.10, 0.30, 0.50, 0.70})
	next := mkRun([]float64{0.15, 0.35, 0.55, 0.75})
	rep := Diff(base, next, DiffOptions{Tol: 0.001, Alpha: 0.05})
	if rep.AlignedKeys != 1 {
		t.Fatalf("aligned = %d", rep.AlignedKeys)
	}
	if len(rep.Drifts) != 0 {
		t.Errorf("noise-level delta flagged as drift: %+v", rep.Drifts)
	}
}

func TestDiffWelchConfirmsRealShift(t *testing.T) {
	// Tight samples, clear separation: significant and over tolerance.
	base := mkRun([]float64{0.100, 0.101, 0.102, 0.099})
	next := mkRun([]float64{0.150, 0.151, 0.152, 0.149})
	rep := Diff(base, next, DiffOptions{Tol: 0.001, Alpha: 0.05})
	if len(rep.Drifts) != 1 {
		t.Fatalf("drifts = %+v, want 1", rep.Drifts)
	}
	d := rep.Drifts[0]
	if math.IsNaN(d.P) || d.P >= 0.05 {
		t.Errorf("expected a significant p-value, got %v", d.P)
	}
}

func TestDiffSingleSampleUsesToleranceAlone(t *testing.T) {
	base := mkRun([]float64{0.10})
	next := mkRun([]float64{0.12})
	rep := Diff(base, next, DiffOptions{Tol: 0.001, Alpha: 0.05})
	if len(rep.Drifts) != 1 || !math.IsNaN(rep.Drifts[0].P) {
		t.Fatalf("single-sample drift = %+v, want flagged with NaN p", rep.Drifts)
	}
}

func TestClassifyValues(t *testing.T) {
	cases := []struct {
		vals []string
		want colClass
	}{
		{[]string{"0.1234", "0.0000", "1.5000"}, classMeasure}, // %.4f measures
		{[]string{"100", "200", "4000"}, classKey},             // %d configs
		{[]string{"true", "false"}, classDecision},
		{[]string{"AVOID", "join"}, classDecision},
		{[]string{"Walmart", "Yelp"}, classKey},
		{[]string{"JoinAll", "JoinOpt"}, classKey},
		{[]string{"0.5", "x"}, classKey}, // mixed: not a measure
		{nil, classKey},
	}
	for _, c := range cases {
		if got := classifyValues(c.vals); got != c.want {
			t.Errorf("classifyValues(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
}
