package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"hamlet/internal/obs"
)

// This file is the read side of the latency telemetry pipeline: it renders
// the histograms.json snapshots cmd/loadgen persists into quantile tables
// and gates a quantile (p99 by default) between two runs — the "latdiff"
// sibling of the accudiff in diff.go, sharing its exit-code contract
// through cmd/report.

// latencyQuantiles are the columns every latency table reports.
var latencyQuantiles = []struct {
	label string
	q     float64
}{
	{"p50", 0.50},
	{"p90", 0.90},
	{"p99", 0.99},
	{"p99.9", 0.999},
}

// LatencyNames returns the run's histogram names sorted, run-level series
// before their per-dataset sub-series (plain lexical order does this:
// "request_latency_ns" < "request_latency_ns.Walmart").
func (r *Run) LatencyNames() []string {
	names := make([]string, 0, len(r.Histograms))
	for name := range r.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteLatency renders every histogram of the run as one quantile table
// row: count, mean, exact min/max, and the estimated quantiles, with the
// bucket scheme's error bound stated once per distinct precision. Errors
// when the run carries no histograms (only loadgen runs write them).
func (r *Run) WriteLatency(w io.Writer) error {
	names := r.LatencyNames()
	if len(names) == 0 {
		return fmt.Errorf("report: %s has no %s to render (only loadgen runs write latency histograms)", r.Dir, obs.HistogramsFile)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "histogram\tcount\tmin\t")
	for _, lq := range latencyQuantiles {
		fmt.Fprintf(tw, "%s\t", lq.label)
	}
	fmt.Fprintln(tw, "max\tmean")
	precisions := make(map[int]bool)
	for _, name := range names {
		h := r.Histograms[name]
		precisions[h.Precision] = true
		fmt.Fprintf(tw, "%s\t%d\t%s\t", name, h.Count, ns(h.Min))
		for _, lq := range latencyQuantiles {
			fmt.Fprintf(tw, "%s\t", ns(h.Quantile(lq.q)))
		}
		fmt.Fprintf(tw, "%s\t%s\n", ns(h.Max), ns(int64(h.Mean())))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	ps := make([]int, 0, len(precisions))
	for p := range precisions {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	for _, p := range ps {
		e := obs.HistogramSnapshot{Precision: p}.MaxQuantileError()
		if _, err := fmt.Fprintf(w, "precision %d: quantile error ≤ %.2f%% (quantiles never undershoot; min/max/mean/count exact)\n", p, 100*e); err != nil {
			return err
		}
	}
	return nil
}

// ns renders a nanosecond value as a duration string.
func ns(v int64) time.Duration { return time.Duration(v) }

// LatencyRow is one histogram's quantile summary in machine-readable form —
// the row WriteLatency renders, with raw nanoseconds instead of duration
// strings so downstream tooling needs no duration parser.
type LatencyRow struct {
	Histogram string `json:"histogram"`
	Count     int64  `json:"count"`
	MinNS     int64  `json:"min_ns"`
	P50NS     int64  `json:"p50_ns"`
	P90NS     int64  `json:"p90_ns"`
	P99NS     int64  `json:"p99_ns"`
	P999NS    int64  `json:"p999_ns"`
	MaxNS     int64  `json:"max_ns"`
	MeanNS    int64  `json:"mean_ns"`
	Precision int    `json:"precision"`
}

// LatencyRows flattens the run's histograms into sorted rows. Errors when
// the run carries none, matching WriteLatency.
func (r *Run) LatencyRows() ([]LatencyRow, error) {
	names := r.LatencyNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("report: %s has no %s to render (only loadgen runs write latency histograms)", r.Dir, obs.HistogramsFile)
	}
	rows := make([]LatencyRow, len(names))
	for i, name := range names {
		h := r.Histograms[name]
		rows[i] = LatencyRow{
			Histogram: name,
			Count:     h.Count,
			MinNS:     h.Min,
			P50NS:     h.Quantile(0.50),
			P90NS:     h.Quantile(0.90),
			P99NS:     h.Quantile(0.99),
			P999NS:    h.Quantile(0.999),
			MaxNS:     h.Max,
			MeanNS:    int64(h.Mean()),
			Precision: h.Precision,
		}
	}
	return rows, nil
}

// WriteLatencyCSV renders the latency rows as one CSV record per histogram.
func (r *Run) WriteLatencyCSV(w io.Writer) error {
	rows, err := r.LatencyRows()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"histogram", "count", "min_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns", "mean_ns", "precision"}); err != nil {
		return err
	}
	for _, row := range rows {
		rec := []string{
			row.Histogram,
			strconv.FormatInt(row.Count, 10),
			strconv.FormatInt(row.MinNS, 10),
			strconv.FormatInt(row.P50NS, 10),
			strconv.FormatInt(row.P90NS, 10),
			strconv.FormatInt(row.P99NS, 10),
			strconv.FormatInt(row.P999NS, 10),
			strconv.FormatInt(row.MaxNS, 10),
			strconv.FormatInt(row.MeanNS, 10),
			strconv.Itoa(row.Precision),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLatencyJSON renders the latency rows as an indented JSON array.
func (r *Run) WriteLatencyJSON(w io.Writer) error {
	rows, err := r.LatencyRows()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// LatencyDiffOptions configures the latency gate.
type LatencyDiffOptions struct {
	// Quantile is the gated quantile (0.99 = p99).
	Quantile float64
	// Tol is the relative regression tolerance on the gated quantile: the
	// gate trips when new > base·(1 + Tol + combined bucket error). Folding
	// both snapshots' quantile error bounds into the threshold means
	// quantization alone can never trip it.
	Tol float64
}

// DefaultLatencyDiffOptions gates p99 at 10% relative regression.
var DefaultLatencyDiffOptions = LatencyDiffOptions{Quantile: 0.99, Tol: 0.10}

// LatencyDelta is one aligned histogram's comparison.
type LatencyDelta struct {
	// Name is the histogram name present in both runs.
	Name string
	// Base and New are the gated quantile's estimates, in nanoseconds.
	Base, New int64
	// Rel is New/Base - 1 (0 when Base is 0 and New is 0; +Inf-free: a
	// zero base with a nonzero new reports Rel as +1 per nanosecond — see
	// relDelta).
	Rel float64
	// Threshold is the effective relative tolerance applied to this pair:
	// Tol plus both snapshots' bucket error bounds.
	Threshold float64
	// Regressed reports Rel > Threshold.
	Regressed bool
}

// LatencyDiffReport is the outcome of comparing two runs' histograms.
type LatencyDiffReport struct {
	// Quantile echoes the gated quantile.
	Quantile float64
	// Deltas holds one entry per aligned histogram name, sorted by name.
	Deltas []LatencyDelta
	// OnlyBase and OnlyNew list names present on one side only.
	OnlyBase, OnlyNew []string
}

// Regressions counts the deltas that tripped the gate.
func (r *LatencyDiffReport) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// LatencyDiff aligns the two runs' histograms by name and compares the
// gated quantile on each. Histograms observed at different precisions still
// compare — each side's own error bound is folded into the threshold.
func LatencyDiff(base, next *Run, opt LatencyDiffOptions) *LatencyDiffReport {
	if opt.Quantile <= 0 || opt.Quantile > 1 {
		opt.Quantile = DefaultLatencyDiffOptions.Quantile
	}
	rep := &LatencyDiffReport{Quantile: opt.Quantile}
	for _, name := range base.LatencyNames() {
		b := base.Histograms[name]
		n, ok := next.Histograms[name]
		if !ok {
			rep.OnlyBase = append(rep.OnlyBase, name)
			continue
		}
		d := LatencyDelta{
			Name:      name,
			Base:      b.Quantile(opt.Quantile),
			New:       n.Quantile(opt.Quantile),
			Threshold: opt.Tol + b.MaxQuantileError() + n.MaxQuantileError(),
		}
		d.Rel = relDelta(d.Base, d.New)
		d.Regressed = d.Rel > d.Threshold
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, name := range next.LatencyNames() {
		if _, ok := base.Histograms[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	return rep
}

// relDelta is new/base - 1 with a bounded answer for a zero base: equal
// zeros are no change, and any regression from zero counts its nanoseconds
// (so it always exceeds a sane tolerance without producing +Inf).
func relDelta(base, next int64) float64 {
	if base == 0 {
		if next == 0 {
			return 0
		}
		return float64(next)
	}
	return float64(next)/float64(base) - 1
}
