package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hamlet/internal/obs"
)

// TestLoadLatencyFixture pins partial-run-dir loading: the latency fixtures
// carry only manifest.json and histograms.json, and Load must accept that —
// every other artifact is optional.
func TestLoadLatencyFixture(t *testing.T) {
	r := loadFixture(t, "latency_base")
	if r.Manifest.Tool != "loadgen" {
		t.Errorf("manifest tool = %q", r.Manifest.Tool)
	}
	if len(r.Results) != 0 || len(r.Events) != 0 || r.Trace != nil {
		t.Error("partial run dir grew artifacts it does not contain")
	}
	h, ok := r.Histograms["request_latency_ns"]
	if !ok {
		t.Fatalf("histograms = %v", r.Histograms)
	}
	if h.Count != 100_000 || h.Precision != obs.DefaultPrecision {
		t.Errorf("snapshot header = count %d precision %d", h.Count, h.Precision)
	}
}

// TestLatencyGolden pins the quantile table rendering byte-for-byte: it is
// a pure function of histograms.json, like the tables golden.
func TestLatencyGolden(t *testing.T) {
	r := loadFixture(t, "latency_base")
	var buf bytes.Buffer
	if err := r.WriteLatency(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "latency.golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("latency table diverged from golden output:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteLatencyEmptyRun(t *testing.T) {
	r := &Run{Dir: "x"}
	if err := r.WriteLatency(&bytes.Buffer{}); err == nil {
		t.Error("WriteLatency on a histogram-less run should error")
	}
}

// TestLatencyDiffSeededRegression is the gate's core contract on the
// committed fixtures: identical runs pass, the seeded tail regression
// (≈3× p99, p50 untouched) trips.
func TestLatencyDiffSeededRegression(t *testing.T) {
	base := loadFixture(t, "latency_base")
	regress := loadFixture(t, "latency_regress")

	same := LatencyDiff(base, base, DefaultLatencyDiffOptions)
	if same.Regressions() != 0 || len(same.Deltas) != 1 {
		t.Errorf("self-diff = %+v", same)
	}
	rep := LatencyDiff(base, regress, DefaultLatencyDiffOptions)
	if rep.Regressions() != 1 {
		t.Fatalf("seeded regression not caught: %+v", rep)
	}
	d := rep.Deltas[0]
	if d.Rel < 1.5 || d.Rel > 4 {
		t.Errorf("seeded ≈3× tail regression measured at %+.1f%%", 100*d.Rel)
	}
	// p50 is deliberately untouched by the seeding; gate it and it passes.
	median := LatencyDiff(base, regress, LatencyDiffOptions{Quantile: 0.50, Tol: 0.10})
	if median.Regressions() != 0 {
		t.Errorf("p50 gate tripped on a tail-only regression: %+v", median.Deltas)
	}
}

// runOf wraps constant-valued histograms into a Run for threshold tests.
func runOf(t *testing.T, values map[string]int64) *Run {
	t.Helper()
	hists := make(map[string]obs.HistogramSnapshot, len(values))
	for name, v := range values {
		h := obs.NewHistogram(obs.DefaultPrecision)
		for i := 0; i < 100; i++ {
			h.Observe(v)
		}
		hists[name] = h.Snapshot()
	}
	return &Run{Histograms: hists}
}

// TestLatencyDiffThreshold pins the effective tolerance: -tol plus both
// snapshots' bucket error bounds. Constant-valued histograms have exact
// quantiles (clamped to min==max), so the margin is purely the documented
// bound: 10% + 2·2⁻⁷ ≈ 11.56%.
func TestLatencyDiffThreshold(t *testing.T) {
	base := runOf(t, map[string]int64{"h": 10_000})
	within := runOf(t, map[string]int64{"h": 11_100}) // +11.0% < 11.56%
	beyond := runOf(t, map[string]int64{"h": 11_300}) // +13.0% > 11.56%
	opt := LatencyDiffOptions{Quantile: 0.99, Tol: 0.10}

	if rep := LatencyDiff(base, within, opt); rep.Regressions() != 0 {
		t.Errorf("+11%% tripped a 10%%+bucket-error gate: %+v", rep.Deltas)
	}
	rep := LatencyDiff(base, beyond, opt)
	if rep.Regressions() != 1 {
		t.Fatalf("+13%% passed a 10%%+bucket-error gate: %+v", rep.Deltas)
	}
	wantThreshold := 0.10 + 2*obs.HistogramSnapshot{Precision: obs.DefaultPrecision}.MaxQuantileError()
	if got := rep.Deltas[0].Threshold; got != wantThreshold {
		t.Errorf("threshold = %v, want %v", got, wantThreshold)
	}
}

// TestLatencyDiffAlignment: unmatched names are reported, never gated, and
// an improvement is never a regression.
func TestLatencyDiffAlignment(t *testing.T) {
	base := runOf(t, map[string]int64{"shared": 10_000, "gone": 500})
	next := runOf(t, map[string]int64{"shared": 5_000, "new": 500})
	rep := LatencyDiff(base, next, DefaultLatencyDiffOptions)
	if len(rep.Deltas) != 1 || rep.Deltas[0].Name != "shared" {
		t.Fatalf("deltas = %+v", rep.Deltas)
	}
	if rep.Deltas[0].Regressed {
		t.Error("a 2× improvement counted as a regression")
	}
	if len(rep.OnlyBase) != 1 || rep.OnlyBase[0] != "gone" {
		t.Errorf("OnlyBase = %v", rep.OnlyBase)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "new" {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}

	disjoint := LatencyDiff(base, runOf(t, map[string]int64{"other": 1}), DefaultLatencyDiffOptions)
	if len(disjoint.Deltas) != 0 {
		t.Errorf("disjoint runs aligned %d histograms", len(disjoint.Deltas))
	}
}
