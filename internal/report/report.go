// Package report is the read side of the observability stack: it parses the
// run directories that internal/obs writes (manifest.json, results.jsonl,
// events.jsonl, trace.json) back into answers. Three consumers build on it,
// surfaced as cmd/report's subcommands:
//
//   - Tables regenerates the EXPERIMENTS.md-style tables from results.jsonl
//     alone, so figure data persists independently of the rendered output;
//   - Diff is an "accudiff": it aligns two runs' results by experiment,
//     table, and key columns and gates on accuracy drift — the same spirit
//     as cmd/benchdiff, but for the paper's accuracy-preservation claims
//     rather than ns/op;
//   - Profile aggregates the span tree into per-path total/self time, a
//     critical path, counter rollups, and a worker-utilization summary.
//
// Readers gate on the artifact schema version (obs.SchemaVersion): a run
// directory written by a newer schema is refused with a clear error rather
// than misread. Version 0 (pre-versioning artifacts) is accepted as legacy.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hamlet/internal/obs"
)

// Run is one parsed run directory. Results, Events, and Trace are optional
// artifacts (nil/empty when the producing CLI did not write them); Manifest
// is mandatory — a directory without manifest.json is not a run directory.
type Run struct {
	// Dir is the directory the run was loaded from.
	Dir string
	// Manifest is the parsed manifest.json.
	Manifest obs.RunInfo
	// Results holds results.jsonl in line order (experiments runs only).
	Results []obs.ResultRow
	// Events holds events.jsonl in line order.
	Events []Event
	// Trace is the span tree from trace.json (nil when absent or null).
	Trace *TraceSpan
	// Histograms holds histograms.json's named latency snapshots (loadgen
	// runs only; nil when absent).
	Histograms map[string]obs.HistogramSnapshot
	// Traces holds traces.jsonl in line order (nil when the run kept no
	// sampled traces — the file is only created on the first kept trace).
	Traces []TraceLine
	// Metrics holds metrics.json's scalar values — counters and gauges by
	// name. Histogram entries are skipped (Histograms carries the latency
	// series). Nil when the artifact is absent.
	Metrics map[string]float64
}

// Event is one parsed events.jsonl line: the envelope fields plus the
// per-kind attributes.
type Event struct {
	// Time is the event timestamp.
	Time time.Time
	// Msg is the event kind ("run_start", "span_end", ...).
	Msg string
	// V is the line's schema stamp (0 on legacy lines).
	V int
	// Attrs holds the remaining per-kind keys as decoded JSON values.
	Attrs map[string]any
}

// TraceSpan is one node of the persisted span tree (trace.json). It mirrors
// the obs.Span JSON shape.
type TraceSpan struct {
	Name       string           `json:"name"`
	Start      time.Time        `json:"start"`
	DurationMS float64          `json:"duration_ms"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*TraceSpan     `json:"children,omitempty"`
}

// Load parses the run directory at dir. The manifest must exist and carry a
// schema version this build understands; results.jsonl, events.jsonl, and
// trace.json are parsed when present. Errors preserve fs.ErrNotExist so
// callers can distinguish "not a run directory" from a parse failure.
func Load(dir string) (*Run, error) {
	r := &Run{Dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, obs.ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if err := json.Unmarshal(data, &r.Manifest); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", filepath.Join(dir, obs.ManifestFile), err)
	}
	if err := obs.CheckSchemaVersion(r.Manifest.SchemaVersion); err != nil {
		return nil, fmt.Errorf("report: %s: %w", dir, err)
	}
	if r.Results, err = loadResults(filepath.Join(dir, obs.ResultsFile)); err != nil {
		return nil, err
	}
	if r.Events, err = loadEvents(filepath.Join(dir, obs.EventsFile)); err != nil {
		return nil, err
	}
	if r.Trace, err = loadTrace(filepath.Join(dir, obs.TraceFile)); err != nil {
		return nil, err
	}
	if r.Histograms, err = loadHistograms(filepath.Join(dir, obs.HistogramsFile)); err != nil {
		return nil, err
	}
	if r.Traces, err = loadTraceLines(filepath.Join(dir, obs.TracesFile)); err != nil {
		return nil, err
	}
	if r.Metrics, err = loadMetrics(filepath.Join(dir, obs.MetricsFile)); err != nil {
		return nil, err
	}
	return r, nil
}

// loadMetrics parses metrics.json's scalar entries (nil with a nil error
// when absent). Non-numeric values — histogram snapshots — are skipped.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	out := make(map[string]float64)
	for name, v := range raw {
		if f, ok := v.(float64); ok {
			out[name] = f
		}
	}
	return out, nil
}

// loadTraceLines parses traces.jsonl (nil with a nil error when absent —
// the artifact is additive, and even a traced run writes it lazily).
func loadTraceLines(path string) ([]TraceLine, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	var lines []TraceLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for ln := 1; sc.Scan(); ln++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tl TraceLine
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		if err := obs.CheckSchemaVersion(tl.V); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		lines = append(lines, tl)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: scan %s: %w", path, err)
	}
	return lines, nil
}

// loadHistograms parses histograms.json (nil with a nil error when absent —
// the artifact is additive; only loadgen runs write it).
func loadHistograms(path string) (map[string]obs.HistogramSnapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var art obs.HistogramsArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if err := obs.CheckSchemaVersion(art.SchemaVersion); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return art.Histograms, nil
}

// loadResults parses results.jsonl ([] with a nil error when absent).
func loadResults(path string) ([]obs.ResultRow, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	var rows []obs.ResultRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for ln := 1; sc.Scan(); ln++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row obs.ResultRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		if err := obs.CheckSchemaVersion(row.V); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: scan %s: %w", path, err)
	}
	return rows, nil
}

// loadEvents parses events.jsonl ([] with a nil error when absent).
func loadEvents(path string) ([]Event, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for ln := 1; sc.Scan(); ln++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		ev := Event{Attrs: raw}
		if ts, ok := raw["time"].(string); ok {
			if t, err := time.Parse(time.RFC3339Nano, ts); err == nil {
				ev.Time = t
			}
			delete(raw, "time")
		}
		if msg, ok := raw["msg"].(string); ok {
			ev.Msg = msg
			delete(raw, "msg")
		}
		if v, ok := raw["v"].(float64); ok {
			ev.V = int(v)
			delete(raw, "v")
		}
		if err := obs.CheckSchemaVersion(ev.V); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, ln, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: scan %s: %w", path, err)
	}
	return events, nil
}

// loadTrace parses trace.json (nil with a nil error when absent or null —
// traceless runs persist a literal null).
func loadTrace(path string) (*TraceSpan, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var root *TraceSpan
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	return root, nil
}
