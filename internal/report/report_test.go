package report

import (
	"errors"
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hamlet/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadFixture loads one committed run directory under testdata/.
func loadFixture(t *testing.T, name string) *Run {
	t.Helper()
	r, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return r
}

func TestLoadFixture(t *testing.T) {
	r := loadFixture(t, "base")
	if r.Manifest.Tool != "experiments" {
		t.Errorf("manifest tool = %q", r.Manifest.Tool)
	}
	if r.Manifest.SchemaVersion != obs.SchemaVersion {
		t.Errorf("manifest schema_version = %d, want %d", r.Manifest.SchemaVersion, obs.SchemaVersion)
	}
	if len(r.Results) == 0 {
		t.Error("no results rows")
	}
	for i, row := range r.Results {
		if row.V != obs.SchemaVersion {
			t.Fatalf("results line %d v = %d", i+1, row.V)
		}
		if row.Experiment != "fig1" || len(row.Columns) == 0 || len(row.Cells) == 0 {
			t.Fatalf("results line %d underfilled: %+v", i+1, row)
		}
	}
	if len(r.Events) == 0 {
		t.Error("no events")
	}
	var kinds []string
	for _, ev := range r.Events {
		kinds = append(kinds, ev.Msg)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"run_start", "span_end", "run_end", "experiment"} {
		if !strings.Contains(joined, want) {
			t.Errorf("events missing kind %q (have %s)", want, joined)
		}
	}
	if r.Trace == nil || r.Trace.Name != "experiments" {
		t.Errorf("trace root = %+v", r.Trace)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Load on a missing dir succeeded")
	} else if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing dir error does not preserve fs.ErrNotExist: %v", err)
	}
}

// writeRunDir writes a minimal run directory for reader tests.
func writeRunDir(t *testing.T, manifest string, extra map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, obs.ManifestFile), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, content := range extra {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestVersionGateRefusesNewerManifest(t *testing.T) {
	dir := writeRunDir(t, `{"schema_version": 99, "tool": "experiments"}`, nil)
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "schema v99") {
		t.Fatalf("v99 manifest not refused: %v", err)
	}
}

func TestVersionGateRefusesNewerLines(t *testing.T) {
	for name, content := range map[string]string{
		obs.ResultsFile: `{"v":99,"experiment":"x","table":"t","cells":{"a":"1"}}`,
		obs.EventsFile:  `{"time":"2026-08-06T00:00:00Z","msg":"run_start","v":99}`,
	} {
		dir := writeRunDir(t, `{"schema_version": 1, "tool": "experiments"}`, map[string]string{name: content + "\n"})
		if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "schema v99") {
			t.Errorf("%s with v99 line not refused: %v", name, err)
		}
	}
}

func TestLegacyVersionZeroAccepted(t *testing.T) {
	// Pre-versioning artifacts: no schema_version, no v stamps, map-only
	// result lines without a Columns stamp.
	dir := writeRunDir(t, `{"tool": "experiments", "go_version": "go1.22"}`, map[string]string{
		obs.ResultsFile: `{"experiment":"fig3","table":"T","cells":{"b":"0.5000","a":"10"}}` + "\n",
		obs.EventsFile:  `{"time":"2026-08-06T00:00:00Z","msg":"run_start","tool":"experiments"}` + "\n",
	})
	r, err := Load(dir)
	if err != nil {
		t.Fatalf("legacy run dir refused: %v", err)
	}
	if r.Manifest.SchemaVersion != 0 || len(r.Results) != 1 || len(r.Events) != 1 {
		t.Fatalf("legacy load = %+v", r)
	}
	// Legacy rows render with sorted cell keys.
	tabs := r.Tables()
	if len(tabs) != 1 || len(tabs[0].Tables) != 1 {
		t.Fatalf("legacy tables = %+v", tabs)
	}
	cols := tabs[0].Tables[0].Columns
	if strings.Join(cols, ",") != "a,b" {
		t.Errorf("legacy column fallback = %v, want sorted keys", cols)
	}
}
