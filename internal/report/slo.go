package report

import (
	"fmt"
	"io"
	"time"

	"hamlet/internal/obs"
)

// This file is the error-budget read side: it turns a run directory's
// telemetry into SLO compliance. Two SLIs are supported — availability
// (non-5xx/4xx fraction) and latency (fraction of requests under an
// objective) — each judged against a target, with the verdict expressed as
// the fraction of the error budget the run consumed. When the run carries
// per-request events (http_request lines with status, duration, and
// timestamp), multi-window burn rates are computed the SRE way: a short
// window catches fast burn, a long one slow burn. A histograms-only run
// (the committed CI fixture) still answers the latency SLO — the quantile
// histogram is the SLI — it just cannot window it.

// DefaultSLOWindows are the burn-rate windows: 5m catches a fast burn that
// would torch the budget in hours, 1h a slow leak.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// SLOOptions configures an SLO evaluation. A zero target disables that SLI.
type SLOOptions struct {
	// Availability is the availability target (0.999 = three nines).
	Availability float64
	// LatencyObjective and LatencyTarget define the latency SLO: at least
	// LatencyTarget of requests at or under LatencyObjective.
	LatencyObjective time.Duration
	LatencyTarget    float64
	// Windows are the burn-rate windows (nil = DefaultSLOWindows).
	Windows []time.Duration
}

// SLOWindow is one burn-rate window's view.
type SLOWindow struct {
	// Window is the window length, ending at the run's last request event.
	Window time.Duration
	// Requests and Bad count the window's requests and budget-burning ones.
	Requests, Bad int64
	// Burn is the error-budget burn rate: bad fraction over allowed
	// fraction. 1.0 spends the budget exactly at the SLO period's pace;
	// a sustained 14.4 torches a 30-day budget in 50 hours.
	Burn float64
}

// SLOResult is one SLI's verdict.
type SLOResult struct {
	// Name is the SLI ("availability" or "latency").
	Name string
	// Target is the configured objective fraction.
	Target float64
	// Objective is the latency bound (latency SLI only).
	Objective time.Duration
	// Source names the artifact the SLI was computed from ("" = no data).
	Source string
	// Requests and Bad count the whole run's requests and violations.
	Requests, Bad int64
	// Compliance is the good fraction over the whole run.
	Compliance float64
	// BudgetSpent is the fraction of the run's error budget consumed:
	// badFrac/(1−target). Over 1.0 the budget is exhausted.
	BudgetSpent float64
	// Windows holds burn rates when per-event data allowed windowing.
	Windows []SLOWindow
}

// Exhausted reports whether this SLI's error budget is spent.
func (res SLOResult) Exhausted() bool { return res.Source != "" && res.BudgetSpent > 1 }

// SLOReport is a run's verdict across the configured SLIs.
type SLOReport struct {
	// Results holds one entry per configured SLI, data or not.
	Results []SLOResult
}

// Exhausted reports whether any computed SLI overspent its budget.
func (rep *SLOReport) Exhausted() bool {
	for _, res := range rep.Results {
		if res.Exhausted() {
			return true
		}
	}
	return false
}

// Vacuous reports that no configured SLI could be computed — the run
// directory holds no evidence either way.
func (rep *SLOReport) Vacuous() bool {
	for _, res := range rep.Results {
		if res.Source != "" {
			return false
		}
	}
	return true
}

// sloEvent is one request observation distilled from an http_request event.
type sloEvent struct {
	at  time.Time
	bad bool // status >= 400 (availability) or over-objective (latency)
}

// SLO evaluates the configured SLOs against this run's artifacts. Per-event
// data (http_request events) is preferred — it answers both SLIs and the
// burn windows; without it the latency SLI falls back to the run-level
// quantile histogram and availability to the error counters in metrics.json
// (loadgen runs). An SLI with no usable source is returned with Source ""
// rather than dropped, so the render can say what is missing.
func (r *Run) SLO(opt SLOOptions) *SLOReport {
	if len(opt.Windows) == 0 {
		opt.Windows = DefaultSLOWindows
	}
	rep := &SLOReport{}
	if opt.Availability > 0 {
		rep.Results = append(rep.Results, r.sloAvailability(opt))
	}
	if opt.LatencyObjective > 0 && opt.LatencyTarget > 0 {
		rep.Results = append(rep.Results, r.sloLatency(opt))
	}
	return rep
}

// requestEvents distills the run's http_request events, classifying each by
// the given predicate.
func (r *Run) requestEvents(bad func(status int, dur time.Duration) bool) []sloEvent {
	var evs []sloEvent
	for _, ev := range r.Events {
		if ev.Msg != "http_request" || ev.Time.IsZero() {
			continue
		}
		status, ok := ev.Attrs["status"].(float64)
		if !ok {
			continue
		}
		durMS, _ := ev.Attrs["duration_ms"].(float64)
		evs = append(evs, sloEvent{
			at:  ev.Time,
			bad: bad(int(status), time.Duration(durMS*float64(time.Millisecond))),
		})
	}
	return evs
}

// finish computes the whole-run verdict and burn windows from events.
func finish(res SLOResult, evs []sloEvent, windows []time.Duration) SLOResult {
	var bad int64
	last := evs[0].at
	for _, e := range evs {
		if e.bad {
			bad++
		}
		if e.at.After(last) {
			last = e.at
		}
	}
	res.Requests, res.Bad = int64(len(evs)), bad
	res.Compliance = 1 - float64(bad)/float64(len(evs))
	res.BudgetSpent = burn(bad, int64(len(evs)), res.Target)
	for _, w := range windows {
		cutoff := last.Add(-w)
		var wreq, wbad int64
		for _, e := range evs {
			if e.at.Before(cutoff) {
				continue
			}
			wreq++
			if e.bad {
				wbad++
			}
		}
		res.Windows = append(res.Windows, SLOWindow{
			Window: w, Requests: wreq, Bad: wbad, Burn: burn(wbad, wreq, res.Target),
		})
	}
	return res
}

// burn is the error-budget burn rate: the bad fraction over the allowed
// fraction (0 when nothing was observed).
func burn(bad, total int64, target float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// loadgen error-counter names in metrics.json — the availability fallback
// for client-side run dirs, which log no per-request events.
const (
	loadgenNon2xxCounter    = "loadgen.errors_non2xx"
	loadgenTransportCounter = "loadgen.errors_transport"
)

func (r *Run) sloAvailability(opt SLOOptions) SLOResult {
	res := SLOResult{Name: "availability", Target: opt.Availability}
	if evs := r.requestEvents(func(status int, _ time.Duration) bool {
		return status >= 400
	}); len(evs) > 0 {
		res.Source = obs.EventsFile
		return finish(res, evs, opt.Windows)
	}
	// Fallback: a loadgen run counts failures in metrics.json and every
	// attempt in the run-level latency histogram.
	h, ok := r.Histograms[watchHist]
	if !ok || h.Count == 0 || r.Metrics == nil {
		return res
	}
	bad := int64(r.Metrics[loadgenNon2xxCounter] + r.Metrics[loadgenTransportCounter])
	res.Source = obs.MetricsFile
	res.Requests, res.Bad = h.Count, bad
	res.Compliance = 1 - float64(bad)/float64(h.Count)
	res.BudgetSpent = burn(bad, h.Count, res.Target)
	return res
}

func (r *Run) sloLatency(opt SLOOptions) SLOResult {
	res := SLOResult{Name: "latency", Target: opt.LatencyTarget, Objective: opt.LatencyObjective}
	if evs := r.requestEvents(func(_ int, dur time.Duration) bool {
		return dur > opt.LatencyObjective
	}); len(evs) > 0 {
		res.Source = obs.EventsFile
		return finish(res, evs, opt.Windows)
	}
	// Fallback: the run-level quantile histogram answers "what fraction ran
	// at or under the objective" without per-request data. CountAtOrBelow is
	// conservative (it may undercount good requests by one bucket), so the
	// gate errs toward failing, never toward passing.
	h, ok := r.Histograms[watchHist]
	if !ok || h.Count == 0 {
		return res
	}
	good := h.CountAtOrBelow(opt.LatencyObjective.Nanoseconds())
	res.Source = obs.HistogramsFile
	res.Requests, res.Bad = h.Count, h.Count-good
	res.Compliance = float64(good) / float64(h.Count)
	res.BudgetSpent = burn(res.Bad, h.Count, res.Target)
	return res
}

// Write renders the report: one block per SLI with the whole-run verdict
// and any burn windows, then a single verdict line.
func (rep *SLOReport) Write(w io.Writer, dir string) {
	fmt.Fprintf(w, "slo %s\n", dir)
	for _, res := range rep.Results {
		if res.Source == "" {
			fmt.Fprintf(w, "%s: target %s — no data (need events.jsonl, or histograms.json for latency)\n",
				res.Name, pct(res.Target))
			continue
		}
		fmt.Fprintf(w, "%s: target %s", res.Name, pct(res.Target))
		if res.Objective > 0 {
			fmt.Fprintf(w, " under %v", res.Objective)
		}
		fmt.Fprintf(w, " — %d requests, %d bad — compliance %s — budget spent %.1f%% (from %s)\n",
			res.Requests, res.Bad, pct(res.Compliance), 100*res.BudgetSpent, res.Source)
		for _, win := range res.Windows {
			fmt.Fprintf(w, "  burn %v: %.2fx (%d/%d bad)\n", win.Window, win.Burn, win.Bad, win.Requests)
		}
	}
	switch {
	case rep.Vacuous():
		fmt.Fprintln(w, "verdict: no data")
	case rep.Exhausted():
		names := ""
		for _, res := range rep.Results {
			if res.Exhausted() {
				if names != "" {
					names += ", "
				}
				names += res.Name
			}
		}
		fmt.Fprintf(w, "verdict: BUDGET EXHAUSTED (%s)\n", names)
	default:
		fmt.Fprintln(w, "verdict: within budget")
	}
}

// pct renders a fraction as a percentage without trailing-zero noise.
func pct(f float64) string {
	s := fmt.Sprintf("%.4f", 100*f)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + "%"
}
