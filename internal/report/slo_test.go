package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sloRunDir writes a minimal run directory whose events.jsonl holds one
// http_request line per (status, durationMS, offset) tuple.
func sloRunDir(t *testing.T, reqs []sloReq) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"schema_version":1,"tool":"test"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var b strings.Builder
	for _, r := range reqs {
		fmt.Fprintf(&b, `{"v":1,"time":%q,"msg":"http_request","status":%d,"duration_ms":%g}`+"\n",
			base.Add(r.offset).Format(time.RFC3339Nano), r.status, r.durMS)
	}
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

type sloReq struct {
	status int
	durMS  float64
	offset time.Duration
}

func TestSLOFromEvents(t *testing.T) {
	// 100 requests over 30 minutes: 2 errors early, 2 slow late. The 5m
	// window (ending at the last event) sees only the late half.
	var reqs []sloReq
	for i := 0; i < 100; i++ {
		r := sloReq{status: 200, durMS: 1, offset: time.Duration(i) * 18 * time.Second}
		if i < 2 {
			r.status = 500
		}
		if i >= 98 {
			r.durMS = 50
		}
		reqs = append(reqs, r)
	}
	run, err := Load(sloRunDir(t, reqs))
	if err != nil {
		t.Fatal(err)
	}
	rep := run.SLO(SLOOptions{
		Availability:     0.99,
		LatencyObjective: 10 * time.Millisecond,
		LatencyTarget:    0.95,
	})
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want availability + latency", len(rep.Results))
	}
	avail, lat := rep.Results[0], rep.Results[1]

	if avail.Name != "availability" || avail.Source != "events.jsonl" {
		t.Errorf("availability result = %+v", avail)
	}
	if avail.Requests != 100 || avail.Bad != 2 {
		t.Errorf("availability counted %d/%d bad, want 2/100", avail.Bad, avail.Requests)
	}
	// 2% bad against a 1% budget: spent 2x — exhausted.
	if got := avail.BudgetSpent; got < 1.99 || got > 2.01 {
		t.Errorf("availability budget spent = %g, want ~2.0", got)
	}
	if !avail.Exhausted() || !rep.Exhausted() {
		t.Error("a 2x overspend must report exhausted")
	}
	// Both errors are >5m before the end: the 5m burn window must be clean,
	// the 1h window (whole run) must see them.
	if len(avail.Windows) != 2 {
		t.Fatalf("windows = %+v", avail.Windows)
	}
	if w := avail.Windows[0]; w.Window != 5*time.Minute || w.Bad != 0 || w.Burn != 0 {
		t.Errorf("5m availability window = %+v, want 0 bad", w)
	}
	if w := avail.Windows[1]; w.Window != time.Hour || w.Bad != 2 || w.Burn <= 0 {
		t.Errorf("1h availability window = %+v, want the 2 errors", w)
	}

	// Latency: 2 slow of 100 against a 5% budget — 40% spent, not exhausted.
	if lat.Name != "latency" || lat.Bad != 2 || lat.Exhausted() {
		t.Errorf("latency result = %+v", lat)
	}
	// The slow requests are in the last 5m: the fast window must burn
	// hotter than the whole-run rate (fast-burn detection).
	if len(lat.Windows) != 2 || lat.Windows[0].Bad != 2 {
		t.Fatalf("latency windows = %+v, want the 2 slow requests inside 5m", lat.Windows)
	}
	if lat.Windows[0].Burn <= lat.BudgetSpent {
		t.Errorf("5m latency burn %g must exceed the whole-run %g when the slowness is recent",
			lat.Windows[0].Burn, lat.BudgetSpent)
	}

	var b strings.Builder
	rep.Write(&b, "dir")
	out := b.String()
	for _, want := range []string{"BUDGET EXHAUSTED (availability)", "burn 5m0s:", "burn 1h0m0s:", "target 99%", "under 10ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSLOFromHistogramsOnly pins the CI-fixture contract: a run directory
// holding nothing but manifest.json and histograms.json must still answer
// the latency SLO (no windows), and report the availability SLI as no-data
// rather than inventing one.
func TestSLOFromHistogramsOnly(t *testing.T) {
	run, err := Load(filepath.Join("testdata", "served_base"))
	if err != nil {
		t.Fatal(err)
	}
	rep := run.SLO(SLOOptions{
		Availability:     0.999,
		LatencyObjective: 5 * time.Millisecond,
		LatencyTarget:    0.99,
	})
	avail, lat := rep.Results[0], rep.Results[1]
	if avail.Source != "" {
		t.Errorf("availability from a histograms-only run claims source %q", avail.Source)
	}
	if lat.Source != "histograms.json" || lat.Requests != 100_000 {
		t.Errorf("latency result = %+v, want histogram-sourced over 100000 requests", lat)
	}
	// The fixture maxes out near 1ms: a 5ms objective is fully met.
	if lat.Bad != 0 || lat.Exhausted() {
		t.Errorf("latency under a generous objective = %+v", lat)
	}
	if len(lat.Windows) != 0 {
		t.Errorf("histogram-only SLI cannot window, got %+v", lat.Windows)
	}
	if rep.Vacuous() || rep.Exhausted() {
		t.Errorf("report = vacuous %v exhausted %v, want neither", rep.Vacuous(), rep.Exhausted())
	}

	// A tight objective must trip the gate from the same fixture.
	tight := run.SLO(SLOOptions{LatencyObjective: 2 * time.Microsecond, LatencyTarget: 0.99})
	if !tight.Exhausted() {
		t.Errorf("2µs objective against a ~16µs-mean fixture must exhaust the budget: %+v", tight.Results)
	}

	// Nothing configured answers: vacuous.
	availOnly := run.SLO(SLOOptions{Availability: 0.999})
	if !availOnly.Vacuous() {
		t.Error("availability-only SLO on a histograms-only run must be vacuous")
	}
}

func TestSLOAvailabilityFromLoadgenMetrics(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("manifest.json", `{"schema_version":1,"tool":"loadgen"}`)
	writeFile("metrics.json", `{"loadgen.errors_non2xx":3,"loadgen.errors_transport":1,"loadgen.requests":0}`)
	writeFile("histograms.json", `{"schema_version":1,"histograms":{"request_latency_ns":{"precision":7,"count":1000,"sum":1000000,"min":900,"max":1100,"buckets":{"1000":1000}}}}`)
	run, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := run.SLO(SLOOptions{Availability: 0.99})
	res := rep.Results[0]
	if res.Source != "metrics.json" || res.Requests != 1000 || res.Bad != 4 {
		t.Errorf("availability fallback = %+v, want 4/1000 bad from metrics.json", res)
	}
	if res.Compliance != 0.996 {
		t.Errorf("compliance = %g, want 0.996", res.Compliance)
	}
}
