package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"hamlet/internal/experiments"
	"hamlet/internal/obs"
)

// Tables rebuilds the rendered experiment tables from the run's
// results.jsonl rows alone: one experiments.Result per experiment id, in
// first-appearance order, each table's rows in line order. Column order
// comes from the rows' Columns stamp; legacy rows (no stamp) fall back to
// sorted cell keys, so pre-versioning artifacts still render, just without
// the original header order.
func (r *Run) Tables() []*experiments.Result {
	type tableKey struct{ experiment, title string }
	var (
		order   []tableKey
		builder = make(map[tableKey]*experiments.Table)
	)
	for _, row := range r.Results {
		k := tableKey{row.Experiment, row.Table}
		t := builder[k]
		if t == nil {
			t = &experiments.Table{Title: row.Table, Columns: columnsOf(row)}
			builder[k] = t
			order = append(order, k)
		}
		cells := make([]string, len(t.Columns))
		for i, col := range t.Columns {
			cells[i] = row.Cells[col]
		}
		t.Rows = append(t.Rows, cells)
	}
	var (
		results []*experiments.Result
		byID    = make(map[string]*experiments.Result)
	)
	for _, k := range order {
		res := byID[k.experiment]
		if res == nil {
			res = &experiments.Result{ID: k.experiment}
			byID[k.experiment] = res
			results = append(results, res)
		}
		res.Tables = append(res.Tables, builder[k])
	}
	return results
}

// columnsOf returns the header order for a row: its Columns stamp when
// present, otherwise the sorted cell keys (legacy lines).
func columnsOf(row obs.ResultRow) []string {
	if len(row.Columns) > 0 {
		return row.Columns
	}
	cols := make([]string, 0, len(row.Cells))
	for c := range row.Cells {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// WriteTables renders every rebuilt table in the same shape cmd/experiments
// prints live (per-experiment "## id" headers, then each table), minus the
// wall-clock timings that artifacts deliberately do not preserve. The
// output is a pure function of results.jsonl, so it golden-tests cleanly.
func (r *Run) WriteTables(w io.Writer) error {
	results := r.Tables()
	if len(results) == 0 {
		return fmt.Errorf("report: %s has no %s rows to render (only experiments runs write results)", r.Dir, obs.ResultsFile)
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "## %s\n\n", res.ID); err != nil {
			return err
		}
		if err := res.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTablesJSON renders the rebuilt tables as one indented JSON document
// ([]experiments.Result), the machine-readable twin of WriteTables for
// notebooks and scripts.
func (r *Run) WriteTablesJSON(w io.Writer) error {
	results := r.Tables()
	if len(results) == 0 {
		return fmt.Errorf("report: %s has no %s rows to render (only experiments runs write results)", r.Dir, obs.ResultsFile)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// WriteTablesCSV renders the rebuilt tables in long form — one record per
// cell under the header experiment,table,row,column,value — so every table
// shape flattens into a single spreadsheet/dataframe-friendly stream. Row
// indices are zero-based within each table.
func (r *Run) WriteTablesCSV(w io.Writer) error {
	results := r.Tables()
	if len(results) == 0 {
		return fmt.Errorf("report: %s has no %s rows to render (only experiments runs write results)", r.Dir, obs.ResultsFile)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "table", "row", "column", "value"}); err != nil {
		return err
	}
	for _, res := range results {
		for _, t := range res.Tables {
			for i, row := range t.Rows {
				for j, col := range t.Columns {
					if err := cw.Write([]string{res.ID, t.Title, strconv.Itoa(i), col, row[j]}); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
