package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"hamlet/internal/experiments"
	"hamlet/internal/obs"
)

// TestTablesGolden pins the tables subcommand's core contract: the rendered
// output is a pure function of results.jsonl, byte-for-byte. The golden file
// is also what scripts/verify.sh and CI smoke against.
func TestTablesGolden(t *testing.T) {
	r := loadFixture(t, "base")
	var buf bytes.Buffer
	if err := r.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tables.golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rebuilt tables diverged from golden output:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestTablesGroupingAndOrder(t *testing.T) {
	r := &Run{Results: []obs.ResultRow{
		{V: 1, Experiment: "fig7", Table: "B", Columns: []string{"k", "v"}, Cells: map[string]string{"k": "1", "v": "0.1000"}},
		{V: 1, Experiment: "fig3", Table: "A", Columns: []string{"k", "v"}, Cells: map[string]string{"k": "1", "v": "0.2000"}},
		{V: 1, Experiment: "fig7", Table: "B", Columns: []string{"k", "v"}, Cells: map[string]string{"k": "2", "v": "0.3000"}},
		{V: 1, Experiment: "fig7", Table: "C", Columns: []string{"k", "v"}, Cells: map[string]string{"k": "1", "v": "0.4000"}},
	}}
	results := r.Tables()
	if len(results) != 2 || results[0].ID != "fig7" || results[1].ID != "fig3" {
		t.Fatalf("experiment order = %+v", results)
	}
	if len(results[0].Tables) != 2 || results[0].Tables[0].Title != "B" || results[0].Tables[1].Title != "C" {
		t.Fatalf("fig7 table order = %+v", results[0].Tables)
	}
	b := results[0].Tables[0]
	if len(b.Rows) != 2 || b.Cell(0, "v") != "0.1000" || b.Cell(1, "k") != "2" {
		t.Errorf("table B rows = %+v", b.Rows)
	}
}

func TestWriteTablesEmptyRun(t *testing.T) {
	r := &Run{Dir: "x"}
	if err := r.WriteTables(&bytes.Buffer{}); err == nil {
		t.Error("WriteTables on a resultless run should error")
	}
	if err := r.WriteTablesCSV(&bytes.Buffer{}); err == nil {
		t.Error("WriteTablesCSV on a resultless run should error")
	}
	if err := r.WriteTablesJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteTablesJSON on a resultless run should error")
	}
}

// TestTablesJSONRoundTrip pins -format json as a faithful machine-readable
// encoding: parsing it back yields exactly the rebuilt tables.
func TestTablesJSONRoundTrip(t *testing.T) {
	r := loadFixture(t, "base")
	var buf bytes.Buffer
	if err := r.WriteTablesJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []*experiments.Result
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, r.Tables()) {
		t.Errorf("json round trip diverged:\ngot %+v\nwant %+v", parsed, r.Tables())
	}
}

// TestTablesCSVRoundTrip pins -format csv's long form: every cell of every
// table appears exactly once under experiment/table/row/column, and the
// values survive csv parsing byte-for-byte.
func TestTablesCSVRoundTrip(t *testing.T) {
	r := loadFixture(t, "base")
	var buf bytes.Buffer
	if err := r.WriteTablesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"experiment", "table", "row", "column", "value"}; !reflect.DeepEqual(records[0], want) {
		t.Fatalf("header = %v, want %v", records[0], want)
	}
	type cellKey struct{ experiment, table, row, column string }
	got := make(map[cellKey]string, len(records)-1)
	for _, rec := range records[1:] {
		got[cellKey{rec[0], rec[1], rec[2], rec[3]}] = rec[4]
	}
	var cells int
	for _, res := range r.Tables() {
		for _, tab := range res.Tables {
			for i, row := range tab.Rows {
				for j, col := range tab.Columns {
					cells++
					k := cellKey{res.ID, tab.Title, strconv.Itoa(i), col}
					if v, ok := got[k]; !ok || v != row[j] {
						t.Fatalf("cell %+v = %q (present=%v), want %q", k, v, ok, row[j])
					}
				}
			}
		}
	}
	if cells != len(records)-1 {
		t.Errorf("csv has %d records for %d cells", len(records)-1, cells)
	}
}
