// Command gen regenerates the committed latency fixtures under
// internal/report/testdata: latency_base/, latency_regress/, and
// served_base/. Run from the repo root:
//
//	go run ./internal/report/testdata/gen
//
// The fixtures are partial run directories — manifest.json plus
// histograms.json, no events/trace/results — which is exactly what they
// also test: readers must load run dirs that carry only the artifacts
// their producing tool wrote.
//
// The samples are a deterministic lognormal (fixed seed) shaped like real
// measured latencies, so the quantile tables read plausibly:
//
//   - latency_base/ mimics the in-process decide path (median ≈ 300ns with
//     a 2% slow tail). latency_regress/ reuses the identical samples with
//     every value above the base p90 tripled: p50 stays put while
//     p99/p99.9 regress ≈ 3×, which is the seeded regression the latdiff
//     gate tests (and CI) assert exits 1.
//   - served_base/ mimics the HTTP-served decide path measured against a
//     local cmd/advisord (served p50 ≈ 12µs, p99 ≈ 120µs — handler time
//     recorded by the server, ~40× the in-process floor but still two
//     orders of magnitude under the 1ms service budget). CI's bench job
//     gates a live advisord run against it with `report latency` at
//     cross-hardware tolerance.
//
// The gen/ directory lives under testdata/, so the go tool ignores it for
// ./... builds and tests; it only compiles when run by path.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hamlet/internal/obs"
)

const samples = 100_000

func main() {
	base := sample()
	writeRun("latency_base", "loadgen", base)

	// Seeded regression: triple everything above the base p90.
	sorted := append([]int64(nil), base...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p90 := sorted[len(sorted)*90/100]
	regress := make([]int64, len(base))
	for i, v := range base {
		if v > p90 {
			v *= 3
		}
		regress[i] = v
	}
	writeRun("latency_regress", "loadgen", regress)

	writeRun("served_base", "advisord", sampleServed())
}

// sample draws the deterministic base latencies (nanoseconds) for the
// in-process decide path: median ≈ 300ns with a 2% slow tail.
func sample() []int64 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, samples)
	for i := range vals {
		v := math.Exp(rng.NormFloat64()*0.6 + math.Log(300))
		if rng.Float64() < 0.02 {
			v *= 20 // slow tail: contended or cold-path requests
		}
		vals[i] = int64(v)
	}
	return vals
}

// sampleServed draws the deterministic served-latency baseline: handler
// time for POST /v1/decide as advisord's own histograms measured it under
// a 10k+ req/s loadgen -url run (p50 ≈ 12µs, p99 ≈ 120µs).
func sampleServed() []int64 {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, samples)
	for i := range vals {
		v := math.Exp(rng.NormFloat64()*0.6 + math.Log(12_000))
		if rng.Float64() < 0.02 {
			v *= 10 // slow tail: scheduler preemption, GC, connection setup
		}
		vals[i] = int64(v)
	}
	return vals
}

// writeRun writes one fixture run dir: manifest.json + histograms.json.
func writeRun(name, tool string, latencies []int64) {
	h := obs.NewHistogram(obs.DefaultPrecision)
	for _, v := range latencies {
		h.Observe(v)
	}
	snap := h.Snapshot()

	dir := filepath.Join("internal", "report", "testdata", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	manifest := obs.RunInfo{
		SchemaVersion: obs.SchemaVersion,
		Tool:          tool,
		Flags: map[string]string{
			"dataset":   "Walmart",
			"mode":      "decide",
			"precision": fmt.Sprint(obs.DefaultPrecision),
			"workers":   "8",
		},
		GoVersion:  "go(fixture)",
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 8,
		Start:      time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
	}
	writeJSON(filepath.Join(dir, obs.ManifestFile), manifest)
	writeJSON(filepath.Join(dir, obs.HistogramsFile), obs.HistogramsArtifact{
		SchemaVersion: obs.SchemaVersion,
		Histograms: map[string]obs.HistogramSnapshot{
			"request_latency_ns": snap,
		},
	})
	fmt.Printf("%s: %d samples, p50 %v p99 %v\n", dir, snap.Count,
		time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.99)))
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}
