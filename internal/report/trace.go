package report

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"time"
)

// This file turns a persisted span tree into a profile: where the run's
// wall clock actually went. Spans are aggregated by *generalized path* —
// the slash path from the root with volatile numerics collapsed
// ("world[3]" -> "world[*]", "n_S=100" -> "n_S=*") — so the 24 per-config
// Monte Carlo subtrees of an experiment fold into one line instead of 24.

// Profile is the aggregated view of one run's span tree.
type Profile struct {
	// Root is the root span's name; RootMS its wall-clock duration.
	Root   string
	RootMS float64
	// Spans counts every node in the tree.
	Spans int
	// Paths holds the per-generalized-path aggregates, sorted by self time
	// (descending) — the profile's "where does time go" answer.
	Paths []PathStat
	// Hot is the critical path: from the root, each level's
	// longest-duration child. In a sequential run it is the chain of
	// stages that dominated the wall clock.
	Hot []HotStep
	// Counters are the tree-wide counter rollups, sorted by name. A span's
	// counter is counted only when no ancestor carries the same counter
	// name, so parent aggregates (biasvar's models_trained) are not
	// double-counted with their children's.
	Counters []CounterTotal
	// Util summarizes worker parallelism from leaf-span wall-clock overlap
	// (nil when the tree has no start times, e.g. when reconstructed from
	// events.jsonl).
	Util *Utilization
}

// PathStat aggregates every span sharing one generalized path.
type PathStat struct {
	// Path is the generalized slash path from the root.
	Path string
	// Count is the number of spans folded into this path.
	Count int
	// TotalMS sums the spans' durations; SelfMS subtracts each span's
	// children, clamped at zero, so in a sequential run the SelfMS column
	// sums to the root duration.
	TotalMS, SelfMS float64
}

// HotStep is one level of the critical path.
type HotStep struct {
	// Name is the span's raw (un-generalized) name.
	Name string
	// DurationMS is its duration; FracRoot its share of the root's.
	DurationMS float64
	FracRoot   float64
}

// CounterTotal is one rolled-up counter.
type CounterTotal struct {
	Name  string
	Total int64
}

// Utilization summarizes worker parallelism: how much leaf work the run
// packed into its wall clock.
type Utilization struct {
	// WallMS is the root span's duration; BusyMS the summed durations of
	// every leaf span.
	WallMS, BusyMS float64
	// Avg is BusyMS/WallMS — the average number of concurrently busy
	// workers. Peak is the maximum number of leaf spans open at once.
	Avg  float64
	Peak int
	// Leaves counts the leaf spans measured.
	Leaves int
}

var (
	idxPattern = regexp.MustCompile(`\[\d+\]`)
	eqPattern  = regexp.MustCompile(`=\s*-?\d+(\.\d+)?`)
)

// generalize collapses volatile numerics out of a span name so repeated
// per-index and per-config spans aggregate onto one path.
func generalize(name string) string {
	name = idxPattern.ReplaceAllString(name, "[*]")
	return eqPattern.ReplaceAllString(name, "=*")
}

// NewProfile aggregates a span tree into a Profile. A nil root yields nil.
func NewProfile(root *TraceSpan) *Profile {
	if root == nil {
		return nil
	}
	p := &Profile{Root: root.Name, RootMS: root.DurationMS}
	agg := make(map[string]*PathStat)
	var order []string
	var leaves []*TraceSpan
	var walk func(s *TraceSpan, path string, ancestors map[string]bool)
	walk = func(s *TraceSpan, path string, ancestors map[string]bool) {
		p.Spans++
		st := agg[path]
		if st == nil {
			st = &PathStat{Path: path}
			agg[path] = st
			order = append(order, path)
		}
		childMS := 0.0
		for _, c := range s.Children {
			childMS += c.DurationMS
		}
		st.Count++
		st.TotalMS += s.DurationMS
		st.SelfMS += max(0, s.DurationMS-childMS)
		// Counter rollup: only the topmost span carrying a name counts.
		added := make([]string, 0, len(s.Counters))
		for name, v := range s.Counters {
			if ancestors[name] {
				continue
			}
			p.addCounter(name, v)
			ancestors[name] = true
			added = append(added, name)
		}
		if len(s.Children) == 0 {
			leaves = append(leaves, s)
		}
		for _, c := range s.Children {
			walk(c, path+"/"+generalize(c.Name), ancestors)
		}
		for _, name := range added {
			delete(ancestors, name)
		}
	}
	walk(root, generalize(root.Name), make(map[string]bool))

	p.Paths = make([]PathStat, 0, len(order))
	for _, path := range order {
		p.Paths = append(p.Paths, *agg[path])
	}
	sort.SliceStable(p.Paths, func(i, j int) bool { return p.Paths[i].SelfMS > p.Paths[j].SelfMS })
	sort.Slice(p.Counters, func(i, j int) bool { return p.Counters[i].Name < p.Counters[j].Name })

	for s := root; s != nil; {
		frac := 0.0
		if root.DurationMS > 0 {
			frac = s.DurationMS / root.DurationMS
		}
		p.Hot = append(p.Hot, HotStep{Name: s.Name, DurationMS: s.DurationMS, FracRoot: frac})
		var next *TraceSpan
		for _, c := range s.Children {
			if next == nil || c.DurationMS > next.DurationMS {
				next = c
			}
		}
		s = next
	}

	p.Util = utilization(root, leaves)
	return p
}

// addCounter accumulates one rolled-up counter by name.
func (p *Profile) addCounter(name string, v int64) {
	for i := range p.Counters {
		if p.Counters[i].Name == name {
			p.Counters[i].Total += v
			return
		}
	}
	p.Counters = append(p.Counters, CounterTotal{Name: name, Total: v})
}

// utilization sweeps the leaf spans' wall-clock intervals. Trees without
// start times (events.jsonl reconstructions) yield nil.
func utilization(root *TraceSpan, leaves []*TraceSpan) *Utilization {
	if root.DurationMS <= 0 || len(leaves) == 0 {
		return nil
	}
	type edge struct {
		at    time.Time
		delta int
	}
	var (
		edges []edge
		busy  float64
	)
	for _, l := range leaves {
		if l.Start.IsZero() {
			return nil
		}
		busy += l.DurationMS
		end := l.Start.Add(time.Duration(l.DurationMS * float64(time.Millisecond)))
		edges = append(edges, edge{l.Start, +1}, edge{end, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if !edges[i].at.Equal(edges[j].at) {
			return edges[i].at.Before(edges[j].at)
		}
		return edges[i].delta < edges[j].delta // close before open at a tie
	})
	open, peak := 0, 0
	for _, e := range edges {
		open += e.delta
		if open > peak {
			peak = open
		}
	}
	return &Utilization{
		WallMS: root.DurationMS,
		BusyMS: busy,
		Avg:    busy / root.DurationMS,
		Peak:   peak,
		Leaves: len(leaves),
	}
}

// TreeFromEvents reconstructs a span tree from span_end events, for run
// directories whose trace.json is missing or null. Events carry paths and
// durations but no start times, so the resulting tree profiles total/self
// time and counters but not worker utilization. Returns nil when the
// events carry no span_end lines.
func TreeFromEvents(events []Event) *TraceSpan {
	byPath := make(map[string]*TraceSpan)
	var root *TraceSpan
	for _, ev := range events {
		if ev.Msg != "span_end" {
			continue
		}
		path, _ := ev.Attrs["path"].(string)
		if path == "" {
			continue
		}
		dur, _ := ev.Attrs["duration_ms"].(float64)
		s := &TraceSpan{Name: path[strings.LastIndex(path, "/")+1:], DurationMS: dur}
		if counters, ok := ev.Attrs["counters"].(map[string]any); ok {
			s.Counters = make(map[string]int64, len(counters))
			for k, v := range counters {
				if f, ok := v.(float64); ok {
					s.Counters[k] = int64(f)
				}
			}
		}
		byPath[path] = s
		switch parent := byPath[parentPath(path)]; {
		case parent != nil && parent != s:
			parent.Children = append(parent.Children, s)
		case root == nil:
			root = s
		default:
			// Orphan (its parent never emitted); keep it visible.
			root.Children = append(root.Children, s)
		}
	}
	return root
}

// parentPath strips the last slash segment ("" for a root path).
func parentPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[:i]
	}
	return ""
}

// WriteFolded renders the profile as folded stacks — one line per
// generalized path, frames joined by ';' with the path's self time in
// integer microseconds — the input format flamegraph.pl and speedscope
// consume directly:
//
//	report trace -folded rundir | flamegraph.pl > profile.svg
//
// Spaces inside frame names become underscores (the format reserves the
// space as the frame/value separator). Paths with zero self time after
// rounding are omitted: they would render as zero-width frames.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, ps := range p.Paths {
		us := int64(ps.SelfMS*1000 + 0.5)
		if us == 0 {
			continue
		}
		stack := strings.ReplaceAll(strings.ReplaceAll(ps.Path, " ", "_"), "/", ";")
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, us); err != nil {
			return err
		}
	}
	return nil
}

// String renders the profile compactly for logs and tests; cmd/report does
// its own richer rendering.
func (p *Profile) String() string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("profile(%s %.1fms, %d spans, %d paths)", p.Root, p.RootMS, p.Spans, len(p.Paths))
}
