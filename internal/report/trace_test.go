package report

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestProfileSelfTimeIdentity pins the profile's accounting invariant on
// the committed fixture: in a sequential run (the fixture is generated
// with -workers 1) every millisecond of the root's wall clock is some
// span's self time, so the SelfMS column sums back to the root duration
// within rounding.
func TestProfileSelfTimeIdentity(t *testing.T) {
	r := loadFixture(t, "base")
	p := NewProfile(r.Trace)
	if p == nil {
		t.Fatal("fixture has no trace")
	}
	var selfSum float64
	for _, ps := range p.Paths {
		selfSum += ps.SelfMS
	}
	if math.Abs(selfSum-p.RootMS) > 1 {
		t.Errorf("Σ self = %.3fms, root = %.3fms; differ by more than 1ms", selfSum, p.RootMS)
	}
}

func TestProfileFixtureShape(t *testing.T) {
	r := loadFixture(t, "base")
	p := NewProfile(r.Trace)
	if p.Root != "experiments" || p.Spans < 10 {
		t.Fatalf("profile = %+v", p)
	}
	// The 23 per-config biasvar subtrees must fold onto generalized paths.
	foundBiasvar := false
	for _, ps := range p.Paths {
		if ps.Path == "experiments/fig1/biasvar(OneXr, n_S=*, |D_FK|=*)" {
			foundBiasvar = true
			if ps.Count < 20 {
				t.Errorf("biasvar path folded only %d spans", ps.Count)
			}
		}
	}
	if !foundBiasvar {
		paths := make([]string, len(p.Paths))
		for i, ps := range p.Paths {
			paths[i] = ps.Path
		}
		t.Errorf("no generalized biasvar path; have %v", paths)
	}
	// Hot path starts at the root and descends.
	if len(p.Hot) < 2 || p.Hot[0].Name != "experiments" || p.Hot[0].FracRoot != 1 {
		t.Errorf("hot path = %+v", p.Hot)
	}
	for i := 1; i < len(p.Hot); i++ {
		if p.Hot[i].DurationMS > p.Hot[i-1].DurationMS {
			t.Errorf("hot path step %d longer than its parent: %+v", i, p.Hot)
		}
	}
	// A sequential run keeps ~1 worker busy.
	if p.Util == nil {
		t.Fatal("no utilization on a trace with start times")
	}
	if p.Util.Peak != 1 || p.Util.Avg > 1.01 {
		t.Errorf("sequential fixture utilization = %+v", p.Util)
	}
}

// span builds a test tree node with a start offset and duration in ms.
func span(name string, startMS, durMS float64, counters map[string]int64, children ...*TraceSpan) *TraceSpan {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return &TraceSpan{
		Name:       name,
		Start:      base.Add(time.Duration(startMS * float64(time.Millisecond))),
		DurationMS: durMS,
		Counters:   counters,
		Children:   children,
	}
}

func TestProfileCounterRollupSkipsNestedCarriers(t *testing.T) {
	// A carries n=10 and its child repeats a share of it (n=4): only the
	// topmost carrier counts. B's independent n=5 adds.
	tree := span("root", 0, 20, nil,
		span("A", 0, 10, map[string]int64{"n": 10},
			span("A1", 0, 4, map[string]int64{"n": 4})),
		span("B", 10, 5, map[string]int64{"n": 5, "m": 2}),
	)
	p := NewProfile(tree)
	got := map[string]int64{}
	for _, c := range p.Counters {
		got[c.Name] = c.Total
	}
	if got["n"] != 15 || got["m"] != 2 {
		t.Errorf("rollup = %v, want n=15 m=2", got)
	}
}

func TestProfileUtilizationOverlap(t *testing.T) {
	// Two fully overlapping 10ms leaves inside a 10ms root: 2 workers.
	tree := span("root", 0, 10, nil,
		span("w[0]", 0, 10, nil),
		span("w[1]", 0, 10, nil),
	)
	p := NewProfile(tree)
	if p.Util == nil || p.Util.Peak != 2 || math.Abs(p.Util.Avg-2) > 1e-9 {
		t.Errorf("overlap utilization = %+v", p.Util)
	}
	// The two w[i] leaves generalize onto one path.
	for _, ps := range p.Paths {
		if ps.Path == "root/w[*]" && ps.Count != 2 {
			t.Errorf("w[*] count = %d", ps.Count)
		}
	}
}

func TestGeneralize(t *testing.T) {
	cases := map[string]string{
		"world[3]":                             "world[*]",
		"biasvar(OneXr, n_S=100, |D_FK|=10)":   "biasvar(OneXr, n_S=*, |D_FK|=*)",
		"plan(JoinAll)":                        "plan(JoinAll)",
		"fig1":                                 "fig1",
		"simulate(OneXr, n_S=500, |D_FK|=40)":  "simulate(OneXr, n_S=*, |D_FK|=*)",
		"mimic(scale=0.25)":                    "mimic(scale=*)",
		"analyze(Walmart)":                     "analyze(Walmart)",
		"biasvar(AllXsXr, n_S=1000, |D_FK|=4)": "biasvar(AllXsXr, n_S=*, |D_FK|=*)",
	}
	for in, want := range cases {
		if got := generalize(in); got != want {
			t.Errorf("generalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTreeFromEvents(t *testing.T) {
	events := []Event{
		{Msg: "run_start", Attrs: map[string]any{"tool": "experiments"}},
		{Msg: "span_end", Attrs: map[string]any{"path": "root", "duration_ms": 20.0}},
		{Msg: "span_end", Attrs: map[string]any{"path": "root/a", "duration_ms": 15.0, "counters": map[string]any{"rows": 7.0}}},
		{Msg: "span_end", Attrs: map[string]any{"path": "root/a/a1", "duration_ms": 5.0}},
		{Msg: "span_end", Attrs: map[string]any{"path": "root/b", "duration_ms": 4.0}},
		{Msg: "run_end", Attrs: map[string]any{"ok": true}},
	}
	tree := TreeFromEvents(events)
	if tree == nil || tree.Name != "root" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	p := NewProfile(tree)
	if p.Util != nil {
		t.Error("events-reconstructed tree has no start times; utilization must be nil")
	}
	got := map[string]float64{}
	for _, ps := range p.Paths {
		got[ps.Path] = ps.SelfMS
	}
	// root self = 20-15-4 = 1; a self = 15-5 = 10; a1 = 5; b = 4.
	want := map[string]float64{"root": 1, "root/a": 10, "root/a/a1": 5, "root/b": 4}
	for path, self := range want {
		if math.Abs(got[path]-self) > 1e-9 {
			t.Errorf("self(%s) = %v, want %v", path, got[path], self)
		}
	}
	if p.Counters[0].Name != "rows" || p.Counters[0].Total != 7 {
		t.Errorf("counters = %+v", p.Counters)
	}
}

func TestTreeFromEventsEmpty(t *testing.T) {
	if tree := TreeFromEvents(nil); tree != nil {
		t.Errorf("TreeFromEvents(nil) = %+v", tree)
	}
	if p := NewProfile(nil); p != nil {
		t.Errorf("NewProfile(nil) = %+v", p)
	}
}

// TestWriteFolded pins the folded-stacks format: semicolon-joined frames,
// one space, integer self-microseconds — the grammar flamegraph.pl and
// speedscope parse. Frame names must not contain the separator characters,
// and the emitted values must sum to the profile's total self time.
func TestWriteFolded(t *testing.T) {
	p := NewProfile(&TraceSpan{
		Name: "load gen", DurationMS: 20,
		Children: []*TraceSpan{
			{Name: "drive(mode=decide)", DurationMS: 15, Children: []*TraceSpan{{Name: "decide[3]", DurationMS: 5}}},
			{Name: "tiny", DurationMS: 0.0001}, // rounds to 0µs: omitted
		},
	})
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := map[string]int64{
		"load_gen":                              5000, // 20 - 15 - 0.0001 ≈ 5ms self
		"load_gen;drive(mode=decide)":           10000,
		"load_gen;drive(mode=decide);decide[*]": 5000,
	}
	var sum int64
	for _, line := range lines {
		stack, val, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(stack, "tiny") {
			t.Fatalf("bad folded line %q", line)
		}
		us, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("value of %q: %v", line, err)
		}
		if want[stack] != us {
			t.Errorf("self(%s) = %dµs, want %dµs", stack, us, want[stack])
		}
		sum += us
	}
	if len(lines) != len(want) {
		t.Errorf("folded lines = %v, want %d stacks", lines, len(want))
	}
	if sum != 20000 {
		t.Errorf("folded self times sum to %dµs, want the 20000µs wall clock", sum)
	}
}

// TestWriteFoldedFixture sanity-checks the real fixture round trip: every
// line parses and the root frame leads each stack.
func TestWriteFoldedFixture(t *testing.T) {
	r := loadFixture(t, "base")
	var buf bytes.Buffer
	if err := NewProfile(r.Trace).WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) == 0 || buf.Len() == 0 {
		t.Fatal("fixture folded output empty")
	}
	for _, line := range lines {
		stack, val, ok := strings.Cut(line, " ")
		if !ok || !strings.HasPrefix(stack, "experiments") {
			t.Fatalf("bad folded line %q", line)
		}
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			t.Fatalf("value of %q: %v", line, err)
		}
	}
}
