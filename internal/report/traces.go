package report

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// This file is the cross-process half of the trace read side: where trace.go
// profiles one process's span tree (trace.json), AssembleTraces joins the
// per-request sampled traces (traces.jsonl) that two processes persisted —
// loadgen's client spans and advisord's server spans — by W3C trace ID into
// merged trees. The join makes the wire visible: the gap between a client
// span and the server span nested under it is transport plus queue time,
// which neither process can measure alone.

// TraceLine is one parsed traces.jsonl record: the span-context envelope
// (IDs, kind, request ID) around a span tree in the trace.json shape.
type TraceLine struct {
	// V is the record's schema stamp.
	V int `json:"v"`
	// TraceID and SpanID name this record's span context (hex).
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// ParentSpanID is the caller's span ID ("" for a locally minted root).
	// A server record's parent is the client span that carried the request,
	// which is what the cross-process join grafts on.
	ParentSpanID string `json:"parent_span_id"`
	// Kind is the recording process's role: obs.TraceKindClient or
	// obs.TraceKindServer.
	Kind string `json:"kind"`
	// RequestID is the X-Request-ID the span served (may be empty).
	RequestID string `json:"request_id"`
	// Span is the recorded span tree.
	Span *TraceSpan `json:"span"`
}

// TraceNode is one span of an assembled cross-process tree: the TraceSpan
// shape plus which process recorded it.
type TraceNode struct {
	// Kind is the recording side ("client" or "server"); children inherit
	// their record's kind.
	Kind string
	// Name, Start, DurationMS, and Counters mirror the recorded span.
	Name       string
	Start      time.Time
	DurationMS float64
	Counters   map[string]int64
	// Children holds same-process children first, then any grafted
	// remote-process roots.
	Children []*TraceNode
}

// AssembledTrace is one distributed trace joined across run directories.
type AssembledTrace struct {
	// TraceID is the shared 128-bit trace ID (hex).
	TraceID string
	// RequestID is the request ID the halves agreed on ("" when absent).
	RequestID string
	// Root is the merged tree: the client record's span with each joined
	// server record grafted under it. A server-only trace's root is the
	// server span.
	Root *TraceNode
	// Complete reports that a client and a server half joined: a server
	// record's parent span ID named a client record's span ID.
	Complete bool
	// SkewMS is serverStart − clientStart for a complete trace: one-way
	// transport plus server queueing plus any clock skew between the two
	// processes. Meaningless when Complete is false.
	SkewMS float64
	// NetMS is clientDuration − serverDuration for a complete trace: the
	// round trip's time outside the server handler (transport both ways
	// plus queueing). Clock-skew free — both durations are monotonic.
	NetMS float64
}

// TraceAssembly is the result of joining trace records across runs.
type TraceAssembly struct {
	// Traces holds the assembled traces ordered by root start time.
	Traces []*AssembledTrace
	// Complete counts traces with both halves joined.
	Complete int
	// ClientOnly and ServerOnly count one-sided traces — sampled on one
	// side but not kept by the other (tail policies are independent).
	ClientOnly, ServerOnly int
}

// AssembleTraces joins the trace records of the given runs by trace ID.
// Records of kind client become roots; each server record is grafted under
// the client record whose span ID its parent names. Typical use joins a
// loadgen run dir (client halves) with the advisord run dir it drove
// (server halves), but the join keys on record kind, not argument order.
func AssembleTraces(runs ...*Run) *TraceAssembly {
	byTrace := make(map[string][]TraceLine)
	var order []string
	for _, r := range runs {
		if r == nil {
			continue
		}
		for _, tl := range r.Traces {
			if tl.Span == nil || tl.TraceID == "" {
				continue
			}
			if _, ok := byTrace[tl.TraceID]; !ok {
				order = append(order, tl.TraceID)
			}
			byTrace[tl.TraceID] = append(byTrace[tl.TraceID], tl)
		}
	}
	asm := &TraceAssembly{}
	for _, id := range order {
		at := assembleOne(id, byTrace[id])
		switch {
		case at.Complete:
			asm.Complete++
		case at.Root.Kind == "client":
			asm.ClientOnly++
		default:
			asm.ServerOnly++
		}
		asm.Traces = append(asm.Traces, at)
	}
	sort.SliceStable(asm.Traces, func(i, j int) bool {
		return asm.Traces[i].Root.Start.Before(asm.Traces[j].Root.Start)
	})
	return asm
}

// assembleOne merges one trace ID's records into a tree.
func assembleOne(id string, recs []TraceLine) *AssembledTrace {
	at := &AssembledTrace{TraceID: id}
	// The client half anchors the tree; with several client records (not a
	// shape the CLIs produce) the earliest wins and the rest are dropped
	// into the server-graft pass below as unjoinable leftovers.
	var client *TraceLine
	for i := range recs {
		tl := &recs[i]
		if tl.Kind != "server" && (client == nil || tl.Span.Start.Before(client.Span.Start)) {
			client = tl
		}
	}
	if client != nil {
		at.Root = nodeFromSpan(client.Span, client.Kind)
		at.RequestID = client.RequestID
	}
	for i := range recs {
		tl := &recs[i]
		if tl.Kind != "server" || tl.Span == nil {
			continue
		}
		node := nodeFromSpan(tl.Span, tl.Kind)
		if client != nil && tl.ParentSpanID == client.SpanID {
			// The wire join: the server's parent span ID is the client span
			// that carried the request, so the server tree nests under it.
			at.Root.Children = append(at.Root.Children, node)
			at.Complete = true
			at.SkewMS = float64(tl.Span.Start.Sub(client.Span.Start)) / float64(time.Millisecond)
			at.NetMS = client.Span.DurationMS - tl.Span.DurationMS
			if at.RequestID == "" {
				at.RequestID = tl.RequestID
			}
		} else if at.Root == nil {
			at.Root = node
			at.RequestID = tl.RequestID
		} else if client == nil {
			// Several server-only records: keep the first as root, graft the
			// rest beside it so nothing sampled is silently dropped.
			at.Root.Children = append(at.Root.Children, node)
		}
	}
	return at
}

// nodeFromSpan converts a recorded span tree into TraceNodes of one kind.
func nodeFromSpan(s *TraceSpan, kind string) *TraceNode {
	n := &TraceNode{
		Kind:       kind,
		Name:       s.Name,
		Start:      s.Start,
		DurationMS: s.DurationMS,
		Counters:   s.Counters,
	}
	for _, c := range s.Children {
		n.Children = append(n.Children, nodeFromSpan(c, kind))
	}
	return n
}

// Write renders the assembly: one header per trace (IDs, completeness, the
// skew and net/queue split) over the indented merged tree, with each span's
// recording side tagged when it differs from its parent's.
func (a *TraceAssembly) Write(w io.Writer) error {
	if len(a.Traces) == 0 {
		return fmt.Errorf("report: no sampled traces to assemble (run with tracing enabled: loadgen -trace-sample / advisord -trace-sample)")
	}
	fmt.Fprintf(w, "assembled %d trace(s): %d complete (client+server), %d client-only, %d server-only\n",
		len(a.Traces), a.Complete, a.ClientOnly, a.ServerOnly)
	for _, at := range a.Traces {
		fmt.Fprintf(w, "\ntrace %s", at.TraceID)
		if at.RequestID != "" {
			fmt.Fprintf(w, " (request %s)", at.RequestID)
		}
		if at.Complete {
			fmt.Fprintf(w, " — skew %+.2fms, net+queue %.2fms", at.SkewMS, at.NetMS)
		} else {
			fmt.Fprintf(w, " — %s half only", at.Root.Kind)
		}
		fmt.Fprintln(w)
		writeNode(w, at.Root, 1, at.Root.Kind)
	}
	return nil
}

// writeNode renders one span line and recurses. The [kind] tag appears only
// at process boundaries, so a merged tree reads as one request with the hop
// marked.
func writeNode(w io.Writer, n *TraceNode, depth int, parentKind string) {
	fmt.Fprintf(w, "%*s%s  %.2fms", 2*depth, "", n.Name, n.DurationMS)
	if n.Kind != parentKind {
		fmt.Fprintf(w, "  [%s]", n.Kind)
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		writeNode(w, c, depth+1, n.Kind)
	}
}
