package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tracesRun builds an in-memory Run carrying the given trace records.
func tracesRun(lines ...TraceLine) *Run { return &Run{Traces: lines} }

func clientSpan(start time.Time, durMS float64) *TraceSpan {
	return &TraceSpan{Name: "client(decide)", Start: start, DurationMS: durMS}
}

func serverSpan(start time.Time, durMS float64) *TraceSpan {
	return &TraceSpan{
		Name: "server(decide)", Start: start, DurationMS: durMS,
		Children: []*TraceSpan{
			{Name: "decode", Start: start, DurationMS: 0.1},
			{Name: "decide(Walmart)", Start: start, DurationMS: durMS - 0.2},
		},
	}
}

func TestAssembleTracesJoinsHalves(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	client := tracesRun(
		TraceLine{TraceID: "aaaa", SpanID: "c1", Kind: "client", RequestID: "req-1",
			Span: clientSpan(t0, 5)},
		TraceLine{TraceID: "bbbb", SpanID: "c2", Kind: "client", RequestID: "req-2",
			Span: clientSpan(t0.Add(time.Second), 4)},
	)
	server := tracesRun(
		// aaaa's server half parents on the client span: a complete trace.
		TraceLine{TraceID: "aaaa", SpanID: "s1", ParentSpanID: "c1", Kind: "server",
			RequestID: "req-1", Span: serverSpan(t0.Add(400*time.Microsecond), 3.8)},
		// cccc has no client half: server-only.
		TraceLine{TraceID: "cccc", SpanID: "s2", ParentSpanID: "nope", Kind: "server",
			RequestID: "req-3", Span: serverSpan(t0.Add(2*time.Second), 2)},
	)
	asm := AssembleTraces(client, server)
	if len(asm.Traces) != 3 || asm.Complete != 1 || asm.ClientOnly != 1 || asm.ServerOnly != 1 {
		t.Fatalf("assembly census = %d traces, %d complete, %d client-only, %d server-only",
			len(asm.Traces), asm.Complete, asm.ClientOnly, asm.ServerOnly)
	}

	// Traces are ordered by root start: aaaa, bbbb, cccc.
	joined := asm.Traces[0]
	if joined.TraceID != "aaaa" || !joined.Complete || joined.RequestID != "req-1" {
		t.Fatalf("joined trace = %+v", joined)
	}
	// The server tree nests under the client span.
	if joined.Root.Kind != "client" || len(joined.Root.Children) != 1 {
		t.Fatalf("joined root = %+v", joined.Root)
	}
	srv := joined.Root.Children[0]
	if srv.Kind != "server" || srv.Name != "server(decide)" || len(srv.Children) != 2 {
		t.Fatalf("grafted server node = %+v", srv)
	}
	// Skew is the server start offset; net+queue is the duration gap.
	if joined.SkewMS < 0.39 || joined.SkewMS > 0.41 {
		t.Errorf("skew = %gms, want ~0.4", joined.SkewMS)
	}
	if got := joined.NetMS; got < 1.19 || got > 1.21 {
		t.Errorf("net+queue = %gms, want ~1.2 (5.0 client − 3.8 server)", got)
	}

	if at := asm.Traces[1]; at.TraceID != "bbbb" || at.Complete || at.Root.Kind != "client" {
		t.Errorf("client-only trace = %+v", at)
	}
	if at := asm.Traces[2]; at.TraceID != "cccc" || at.Complete || at.Root.Kind != "server" {
		t.Errorf("server-only trace = %+v", at)
	}

	var b strings.Builder
	if err := asm.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"assembled 3 trace(s): 1 complete",
		"trace aaaa (request req-1)",
		"skew +0.40ms, net+queue 1.20ms",
		"client half only",
		"server half only",
		"[server]",
		"decide(Walmart)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The hop tag appears only at the process boundary — on the graft, not
	// on same-kind children nor on a server-only root (its header already
	// names the side).
	if strings.Count(out, "[server]") != 1 {
		t.Errorf("[server] tags = %d, want 1 (the graft only):\n%s",
			strings.Count(out, "[server]"), out)
	}
}

func TestAssembleTracesEmpty(t *testing.T) {
	asm := AssembleTraces(tracesRun(), nil)
	if len(asm.Traces) != 0 {
		t.Fatalf("traces = %+v", asm.Traces)
	}
	if err := asm.Write(&strings.Builder{}); err == nil {
		t.Error("rendering an empty assembly must error (vacuous)")
	}
}

// TestLoadTraceLines pins the read half of the traces.jsonl contract
// against a literal line in the written shape.
func TestLoadTraceLines(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"schema_version":1,"tool":"test"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	line := `{"v":1,"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"00f067aa0ba902b7","parent_span_id":"b7ad6b7169203331","kind":"server","request_id":"r-1","span":{"name":"server(decide)","start":"2026-08-08T12:00:00Z","duration_ms":3.5,"children":[{"name":"decode","start":"2026-08-08T12:00:00Z","duration_ms":0.1}]}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "traces.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	run, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Traces) != 1 {
		t.Fatalf("traces = %+v", run.Traces)
	}
	tl := run.Traces[0]
	if tl.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tl.SpanID != "00f067aa0ba902b7" ||
		tl.ParentSpanID != "b7ad6b7169203331" || tl.Kind != "server" || tl.RequestID != "r-1" {
		t.Errorf("trace line = %+v", tl)
	}
	if tl.Span == nil || tl.Span.Name != "server(decide)" || len(tl.Span.Children) != 1 {
		t.Errorf("trace span = %+v", tl.Span)
	}

	// A run without the artifact loads with nil Traces.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "manifest.json"), []byte(`{"schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	run2, err := Load(empty)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Traces != nil {
		t.Errorf("absent traces.jsonl must load as nil, got %+v", run2.Traces)
	}

	// A future schema stamp is refused, not misread.
	if err := os.WriteFile(filepath.Join(empty, "traces.jsonl"), []byte(`{"v":99,"trace_id":"x","span":{"name":"n"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("a v99 trace line must refuse to load")
	}
}
