package report

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// This file is the live half of the latency read side: where latency.go
// renders a finished run's histograms.json, `report watch` polls a running
// advisord's /metrics exposition (or a run directory, re-read each poll) and
// renders a rolling rate/quantile view with deltas — plus an optional p99
// budget that turns the watcher into a serving-latency gate. The exposition
// parser is the read complement of internal/obs's PromWriter.

// PromSample is one parsed exposition sample line.
type PromSample struct {
	// Name is the metric name ("advisord_requests_total").
	Name string
	// Labels holds the sample's label pairs (nil when unlabeled).
	Labels map[string]string
	// Value is the sample value (+Inf parses).
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s PromSample) Label(key string) string { return s.Labels[key] }

// ParsePromText parses a Prometheus text exposition (format 0.0.4) into its
// samples. Comment and blank lines are skipped; a malformed sample line is
// an error naming the line. It accepts exactly what obs.PromWriter emits —
// plus optional trailing timestamps, which real exporters attach.
func ParsePromText(r io.Reader) ([]PromSample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []PromSample
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("report: exposition line %q: %w", line, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// parsePromLine parses one sample line: name[{labels}] value [timestamp].
func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		s.Name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parsePromLabels(line[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no sample value")
		}
		s.Name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name")
	}
	// Drop an optional trailing timestamp: "value ts".
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `k="v",k2="v2"` with the format's three escapes
// (backslash, quote, newline).
func parsePromLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(in) {
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' at %q", in[i:])
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, fmt.Errorf("unquoted value for label %q", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, fmt.Errorf("unterminated value for label %q", key)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// WatchSample is one poll's view of the served-latency surface.
type WatchSample struct {
	// Requests and Errors are cumulative counts at poll time.
	Requests, Errors int64
	// P50NS and P99NS are latency quantiles in nanoseconds — rolling-window
	// estimates from /metrics, whole-run estimates from a run directory.
	P50NS, P99NS int64
	// AvailBurn and LatBurn are the server's rolling SLO error-budget burn
	// rates (advisord_slo_error_budget_burn), valid only when HasBurn is
	// set — the server only exposes them when started with SLO flags.
	AvailBurn, LatBurn float64
	HasBurn            bool
}

// WatchSource produces one sample per call. An error marks the poll failed;
// the watcher reports it and keeps polling.
type WatchSource func() (WatchSample, error)

// MetricsSource polls a live advisord /metrics endpoint. The run-level
// (endpoint-unlabeled) latency summary feeds the quantiles, so the view
// matches what the server is doing right now, not since it started.
func MetricsSource(client *http.Client, url string) WatchSource {
	if client == nil {
		client = http.DefaultClient
	}
	return func() (WatchSample, error) {
		resp, err := client.Get(url)
		if err != nil {
			return WatchSample{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return WatchSample{}, fmt.Errorf("report: GET %s: HTTP %d", url, resp.StatusCode)
		}
		samples, err := ParsePromText(resp.Body)
		if err != nil {
			return WatchSample{}, err
		}
		var out WatchSample
		var sawRequests bool
		for _, s := range samples {
			switch s.Name {
			case "advisord_requests_total":
				out.Requests, sawRequests = int64(s.Value), true
			case "advisord_request_errors_total":
				out.Errors = int64(s.Value)
			case "advisord_request_latency_seconds":
				if s.Label("endpoint") != "" {
					continue // per-endpoint series; the run-level one is unlabeled
				}
				switch s.Label("quantile") {
				case "0.5":
					out.P50NS = int64(s.Value * 1e9)
				case "0.99":
					out.P99NS = int64(s.Value * 1e9)
				}
			case "advisord_slo_error_budget_burn":
				out.HasBurn = true
				switch s.Label("slo") {
				case "availability":
					out.AvailBurn = s.Value
				case "latency":
					out.LatBurn = s.Value
				}
			}
		}
		if !sawRequests {
			return WatchSample{}, fmt.Errorf("report: %s is not an advisord exposition (no advisord_requests_total)", url)
		}
		return out, nil
	}
}

// watchHist is the run-level latency histogram a run directory persists
// (server.LatencyHist / loadgen's run-level merge).
const watchHist = "request_latency_ns"

// RunDirSource polls a run directory's histograms.json — the post-mortem
// twin of MetricsSource, re-read each poll so a directory being rewritten
// (a daemon flushing on shutdown) converges on the final numbers.
func RunDirSource(dir string) WatchSource {
	return func() (WatchSample, error) {
		r, err := Load(dir)
		if err != nil {
			return WatchSample{}, err
		}
		h, ok := r.Histograms[watchHist]
		if !ok {
			return WatchSample{}, fmt.Errorf("report: %s has no %s histogram to watch", dir, watchHist)
		}
		return WatchSample{
			Requests: h.Count,
			P50NS:    h.Quantile(0.50),
			P99NS:    h.Quantile(0.99),
		}, nil
	}
}

// WatchOptions configures a watch loop.
type WatchOptions struct {
	// Target labels the watched thing in the header (a URL or run dir).
	Target string
	// Interval is the poll period (0 = poll back-to-back; tests).
	Interval time.Duration
	// Polls bounds the loop; <= 0 watches until the budget breaches (or
	// forever — the interactive mode, ended by interrupt).
	Polls int
	// P99Budget, when positive, arms the gate: BreachPolls consecutive polls
	// with p99 over it stop the watch with Breached set.
	P99Budget time.Duration
	// BreachPolls is the consecutive-breach count that trips the gate
	// (0 = DefaultBreachPolls).
	BreachPolls int
	// Format selects the rendering: "" or "text" for the human table,
	// "json" for one JSON object per poll (JSONL) plus a summary object —
	// the machine-readable twin for piping into jq or a dashboard.
	Format string
}

// WatchPollJSON is one poll's row in `watch -format json` output. Optional
// fields are pointers so a missing value round-trips as null, not zero.
type WatchPollJSON struct {
	Poll     int    `json:"poll"`
	Error    string `json:"error,omitempty"`
	Requests int64  `json:"requests"`
	// RatePerSec is nil on the first poll (no delta yet).
	RatePerSec *float64 `json:"rate_per_sec,omitempty"`
	Errors     int64    `json:"errors"`
	P50NS      int64    `json:"p50_ns"`
	P99NS      int64    `json:"p99_ns"`
	// BurnAvailability and BurnLatency mirror the server's SLO burn gauges
	// (nil when the server exposes none).
	BurnAvailability *float64 `json:"burn_availability,omitempty"`
	BurnLatency      *float64 `json:"burn_latency,omitempty"`
	OverBudget       bool     `json:"over_budget,omitempty"`
}

// WatchSummaryJSON is the final row of `watch -format json` output.
type WatchSummaryJSON struct {
	Summary  bool  `json:"summary"`
	Polls    int   `json:"polls"`
	Failures int   `json:"failures"`
	Breached bool  `json:"breached"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	P99NS    int64 `json:"p99_ns"`
}

// DefaultBreachPolls is how many consecutive over-budget polls trip the
// gate: one poll can be a scrape racing a cold start; three in a row is a
// trend.
const DefaultBreachPolls = 3

// WatchResult is a watch loop's outcome.
type WatchResult struct {
	// Polls and Failures count polls attempted and polls that errored.
	Polls, Failures int
	// Breached reports the p99 budget tripping (BreachPolls consecutive).
	Breached bool
	// Last is the final successful sample (zero if every poll failed).
	Last WatchSample
}

// Watch polls src and renders one line per poll: cumulative requests, the
// rate and error delta since the previous poll, and the current p50/p99.
// With a p99 budget it doubles as a gate, stopping early once the budget is
// breached on BreachPolls consecutive polls.
func Watch(w io.Writer, src WatchSource, opt WatchOptions) WatchResult {
	if opt.BreachPolls <= 0 {
		opt.BreachPolls = DefaultBreachPolls
	}
	jsonOut := opt.Format == "json"
	enc := json.NewEncoder(w)
	if !jsonOut {
		fmt.Fprintf(w, "watch %s", opt.Target)
		if opt.Polls > 0 {
			fmt.Fprintf(w, ": %d polls", opt.Polls)
		}
		if opt.Interval > 0 {
			fmt.Fprintf(w, " every %v", opt.Interval)
		}
		if opt.P99Budget > 0 {
			fmt.Fprintf(w, " (p99 budget %v, %d consecutive to fail)", opt.P99Budget, opt.BreachPolls)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%6s  %10s  %10s  %8s  %10s  %10s\n",
			"poll", "requests", "rate/s", "errors", "p50", "p99")
	}

	var res WatchResult
	var prev WatchSample
	var prevAt time.Time
	var havePrev bool
	streak := 0
	for i := 0; opt.Polls <= 0 || i < opt.Polls; i++ {
		if i > 0 && opt.Interval > 0 {
			time.Sleep(opt.Interval)
		}
		res.Polls++
		now := time.Now()
		s, err := src()
		if err != nil {
			res.Failures++
			if jsonOut {
				_ = enc.Encode(WatchPollJSON{Poll: i + 1, Error: err.Error()})
			} else {
				fmt.Fprintf(w, "%6d  poll failed: %v\n", i+1, err)
			}
			continue
		}
		var rateVal *float64
		if havePrev {
			if dt := now.Sub(prevAt); dt > 0 && s.Requests >= prev.Requests {
				v := float64(s.Requests-prev.Requests) / dt.Seconds()
				rateVal = &v
			}
		}
		over := opt.P99Budget > 0 && s.P99NS > int64(opt.P99Budget)
		if over {
			streak++
		} else {
			streak = 0
		}
		if jsonOut {
			row := WatchPollJSON{
				Poll: i + 1, Requests: s.Requests, RatePerSec: rateVal,
				Errors: s.Errors, P50NS: s.P50NS, P99NS: s.P99NS, OverBudget: over,
			}
			if s.HasBurn {
				ab, lb := s.AvailBurn, s.LatBurn
				row.BurnAvailability, row.BurnLatency = &ab, &lb
			}
			_ = enc.Encode(row)
		} else {
			rate := "-"
			if rateVal != nil {
				rate = fmt.Sprintf("%.1f", *rateVal)
			}
			errDelta := ""
			if havePrev {
				if d := s.Errors - prev.Errors; d > 0 {
					errDelta = fmt.Sprintf(" (+%d)", d)
				}
			}
			status := ""
			if s.HasBurn {
				status = fmt.Sprintf("  burn %.2f/%.2f", s.AvailBurn, s.LatBurn)
			}
			if over {
				status += fmt.Sprintf("  OVER BUDGET (%d/%d)", streak, opt.BreachPolls)
			}
			fmt.Fprintf(w, "%6d  %10d  %10s  %8s  %10v  %10v%s\n",
				i+1, s.Requests, rate,
				strconv.FormatInt(s.Errors, 10)+errDelta,
				time.Duration(s.P50NS), time.Duration(s.P99NS), status)
		}
		res.Last = s
		prev, prevAt, havePrev = s, now, true
		if streak >= opt.BreachPolls {
			res.Breached = true
			break
		}
	}
	if jsonOut {
		_ = enc.Encode(WatchSummaryJSON{
			Summary: true, Polls: res.Polls, Failures: res.Failures,
			Breached: res.Breached, Requests: res.Last.Requests,
			Errors: res.Last.Errors, P99NS: res.Last.P99NS,
		})
		return res
	}
	switch {
	case res.Breached:
		fmt.Fprintf(w, "p99 budget %v breached on %d consecutive polls (last p99 %v)\n",
			opt.P99Budget, opt.BreachPolls, time.Duration(res.Last.P99NS))
	case res.Failures == res.Polls:
		fmt.Fprintf(w, "all %d polls failed; nothing watched\n", res.Polls)
	default:
		fmt.Fprintf(w, "watched %d polls (%d failed): %d requests, %d errors, p99 %v\n",
			res.Polls, res.Failures, res.Last.Requests, res.Last.Errors, time.Duration(res.Last.P99NS))
	}
	return res
}
