package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hamlet/internal/obs"
)

func TestParsePromText(t *testing.T) {
	in := `# HELP x_total Help.
# TYPE x_total counter
x_total 42

g{path="a\"b\\c\nd",quantile="0.5"} 1.5
inf_bucket{le="+Inf"} 7
stamped 3 1700000000000
`
	samples, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4: %+v", len(samples), samples)
	}
	if s := samples[0]; s.Name != "x_total" || s.Value != 42 || s.Labels != nil {
		t.Errorf("scalar sample = %+v", s)
	}
	if s := samples[1]; s.Label("path") != "a\"b\\c\nd" || s.Label("quantile") != "0.5" || s.Value != 1.5 {
		t.Errorf("labeled sample = %+v", s)
	}
	if s := samples[2]; s.Label("le") != "+Inf" || s.Value != 7 {
		t.Errorf("+Inf-labeled sample = %+v", s)
	}
	if s := samples[3]; s.Name != "stamped" || s.Value != 3 {
		t.Errorf("timestamped sample = %+v (timestamp must be dropped)", s)
	}

	for _, bad := range []string{"novalue", "name{unclosed 1", "name{x=\"y\"} notanumber"} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePromText(%q) accepted a malformed line", bad)
		}
	}
}

// TestParsePromTextRoundTrip: the parser must read back exactly what the
// obs.PromWriter emits — the two halves of the exposition pipeline agree.
func TestParsePromTextRoundTrip(t *testing.T) {
	h := obs.NewHistogram(obs.DefaultPrecision)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	snap := h.Snapshot()
	var b strings.Builder
	p := obs.NewPromWriter(&b)
	p.Type("req_total", "counter", "Requests.")
	p.Int("req_total", nil, 100)
	p.Summary("lat_seconds", []string{"endpoint", "decide"}, snap, snap, 1e-9, 0.5, 0.99)
	p.Histogram("dur_seconds", nil, snap, 1e-9)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parser rejected PromWriter output: %v\n%s", err, b.String())
	}
	byName := make(map[string]int)
	for _, s := range samples {
		byName[s.Name]++
	}
	if byName["req_total"] != 1 || byName["lat_seconds"] != 2 || byName["dur_seconds_bucket"] == 0 {
		t.Errorf("sample census = %v", byName)
	}
}

func TestMetricsSource(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `advisord_requests_total 120
advisord_request_errors_total 3
advisord_request_latency_seconds{endpoint="decide",quantile="0.5"} 9
advisord_request_latency_seconds{quantile="0.5"} 0.000002
advisord_request_latency_seconds{quantile="0.99"} 0.00001
`)
	}))
	defer ts.Close()
	s, err := MetricsSource(nil, ts.URL)()
	if err != nil {
		t.Fatal(err)
	}
	want := WatchSample{Requests: 120, Errors: 3, P50NS: 2000, P99NS: 10000}
	if s != want {
		t.Errorf("sample = %+v, want %+v (per-endpoint series must be skipped)", s, want)
	}
}

func TestMetricsSourceRejectsForeignExposition(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "some_other_metric 1\n")
	}))
	defer ts.Close()
	if _, err := MetricsSource(nil, ts.URL)(); err == nil {
		t.Error("a non-advisord exposition must error, not report zeros")
	}
}

func TestRunDirSource(t *testing.T) {
	src := RunDirSource(filepath.Join("testdata", "latency_base"))
	s, err := src()
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != 100_000 || s.P50NS <= 0 || s.P99NS < s.P50NS {
		t.Errorf("sample from fixture = %+v", s)
	}

	if _, err := RunDirSource(filepath.Join("testdata", "no-such-dir"))(); err == nil {
		t.Error("missing run dir must error per poll")
	}
}

func TestWatchRendersDeltasAndSummary(t *testing.T) {
	var n int64
	src := func() (WatchSample, error) {
		n += 100
		return WatchSample{Requests: n, Errors: n / 100, P50NS: 1000, P99NS: 5000}, nil
	}
	var buf bytes.Buffer
	res := Watch(&buf, src, WatchOptions{Target: "test", Polls: 3})
	if res.Polls != 3 || res.Failures != 0 || res.Breached {
		t.Fatalf("result = %+v", res)
	}
	if res.Last.Requests != 300 {
		t.Errorf("last sample = %+v", res.Last)
	}
	out := buf.String()
	for _, want := range []string{"watch test: 3 polls", "p50", "300", "(+1)", "watched 3 polls (0 failed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

func TestWatchBudgetBreachStopsEarly(t *testing.T) {
	src := func() (WatchSample, error) {
		return WatchSample{Requests: 1, P99NS: int64(10 * time.Millisecond)}, nil
	}
	var buf bytes.Buffer
	res := Watch(&buf, src, WatchOptions{
		Target:      "test",
		Polls:       10,
		P99Budget:   time.Millisecond,
		BreachPolls: 2,
	})
	if !res.Breached {
		t.Fatalf("budget did not breach: %+v\n%s", res, buf.String())
	}
	if res.Polls != 2 {
		t.Errorf("breach must stop the loop at k polls, ran %d", res.Polls)
	}
	if !strings.Contains(buf.String(), "OVER BUDGET") || !strings.Contains(buf.String(), "breached on 2 consecutive polls") {
		t.Errorf("output does not name the breach:\n%s", buf.String())
	}
}

// TestWatchBreachStreakResets: a recovery between over-budget polls resets
// the consecutive count, so a single spike never fails the gate.
func TestWatchBreachStreakResets(t *testing.T) {
	p99 := []int64{int64(10 * time.Millisecond), int64(time.Microsecond), int64(10 * time.Millisecond), int64(time.Microsecond)}
	i := 0
	src := func() (WatchSample, error) {
		s := WatchSample{Requests: 1, P99NS: p99[i%len(p99)]}
		i++
		return s, nil
	}
	var buf bytes.Buffer
	res := Watch(&buf, src, WatchOptions{Target: "t", Polls: 4, P99Budget: time.Millisecond, BreachPolls: 2})
	if res.Breached {
		t.Errorf("alternating spikes tripped the %d-consecutive gate:\n%s", 2, buf.String())
	}
}

// TestWatchJSONRoundTrip: -format json emits one decodable object per poll
// plus a summary object, and every field survives the trip.
func TestWatchJSONRoundTrip(t *testing.T) {
	var n int64
	src := func() (WatchSample, error) {
		n++
		if n == 2 {
			return WatchSample{}, fmt.Errorf("scrape refused")
		}
		return WatchSample{
			Requests: n * 100, Errors: n, P50NS: 1000, P99NS: 5000,
			AvailBurn: 0.25, LatBurn: 1.5, HasBurn: true,
		}, nil
	}
	var buf bytes.Buffer
	res := Watch(&buf, src, WatchOptions{Target: "test", Polls: 3, Format: "json"})
	if res.Polls != 3 || res.Failures != 1 {
		t.Fatalf("result = %+v", res)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("emitted %d lines, want 3 polls + summary:\n%s", len(lines), buf.String())
	}
	var polls []WatchPollJSON
	for _, ln := range lines[:3] {
		var row WatchPollJSON
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("poll row %q: %v", ln, err)
		}
		polls = append(polls, row)
	}
	if polls[0].Poll != 1 || polls[0].Requests != 100 || polls[0].RatePerSec != nil {
		t.Errorf("first poll = %+v (no rate before a delta exists)", polls[0])
	}
	if polls[0].BurnAvailability == nil || *polls[0].BurnAvailability != 0.25 ||
		polls[0].BurnLatency == nil || *polls[0].BurnLatency != 1.5 {
		t.Errorf("burn fields = %+v", polls[0])
	}
	if polls[1].Error == "" || polls[1].Requests != 0 {
		t.Errorf("failed poll = %+v, want an error field", polls[1])
	}
	if polls[2].Poll != 3 || polls[2].Requests != 300 || polls[2].RatePerSec == nil {
		t.Errorf("third poll = %+v (rate resumes once a prior sample exists)", polls[2])
	}
	var sum WatchSummaryJSON
	if err := json.Unmarshal([]byte(lines[3]), &sum); err != nil {
		t.Fatalf("summary row %q: %v", lines[3], err)
	}
	want := WatchSummaryJSON{Summary: true, Polls: 3, Failures: 1, Requests: 300, Errors: 3, P99NS: 5000}
	if sum != want {
		t.Errorf("summary = %+v, want %+v", sum, want)
	}
	// No stray text: every line must be JSON.
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "{") {
			t.Errorf("non-JSON line in -format json output: %q", ln)
		}
	}
}

// TestWatchBurnColumnFromMetrics: a server exposing SLO burn gauges shows
// up in both the parsed sample and the text rendering.
func TestWatchBurnColumnFromMetrics(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `advisord_requests_total 10
advisord_request_latency_seconds{quantile="0.5"} 0.001
advisord_request_latency_seconds{quantile="0.99"} 0.002
advisord_slo_error_budget_burn{slo="availability"} 0.5
advisord_slo_error_budget_burn{slo="latency"} 2.25
`)
	}))
	defer ts.Close()
	s, err := MetricsSource(nil, ts.URL)()
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasBurn || s.AvailBurn != 0.5 || s.LatBurn != 2.25 {
		t.Fatalf("sample = %+v, want burn 0.5/2.25", s)
	}
	var buf bytes.Buffer
	Watch(&buf, MetricsSource(nil, ts.URL), WatchOptions{Target: ts.URL, Polls: 1})
	if !strings.Contains(buf.String(), "burn 0.50/2.25") {
		t.Errorf("text watch does not surface the burn rates:\n%s", buf.String())
	}
}

func TestWatchAllPollsFail(t *testing.T) {
	src := func() (WatchSample, error) { return WatchSample{}, fmt.Errorf("connection refused") }
	var buf bytes.Buffer
	res := Watch(&buf, src, WatchOptions{Target: "dead", Polls: 2})
	if res.Failures != 2 || res.Breached {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(buf.String(), "all 2 polls failed") {
		t.Errorf("output:\n%s", buf.String())
	}
}

// TestLatencyFormatsRoundTrip: the csv and json renderings carry exactly the
// rows LatencyRows computes — parse both back and compare.
func TestLatencyFormatsRoundTrip(t *testing.T) {
	r := loadFixture(t, "latency_base")
	rows, err := r.LatencyRows()
	if err != nil {
		t.Fatal(err)
	}

	var jb bytes.Buffer
	if err := r.WriteLatencyJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back []LatencyRow
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Errorf("json round trip: got %+v, want %+v", back, rows)
	}

	var cb bytes.Buffer
	if err := r.WriteLatencyCSV(&cb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&cb).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rows)+1 {
		t.Fatalf("csv records = %d, want %d rows + header", len(recs), len(rows))
	}
	wantHeader := []string{"histogram", "count", "min_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns", "mean_ns", "precision"}
	if !reflect.DeepEqual(recs[0], wantHeader) {
		t.Errorf("csv header = %v", recs[0])
	}
	for i, row := range rows {
		rec := recs[i+1]
		if rec[0] != row.Histogram || rec[1] != fmt.Sprint(row.Count) || rec[5] != fmt.Sprint(row.P99NS) {
			t.Errorf("csv row %d = %v, want %+v", i, rec, row)
		}
	}

	var empty Run
	empty.Dir = "x"
	if err := empty.WriteLatencyCSV(&bytes.Buffer{}); err == nil {
		t.Error("WriteLatencyCSV on a histogram-less run should error")
	}
	if err := empty.WriteLatencyJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteLatencyJSON on a histogram-less run should error")
	}
}
