package server

import "hamlet/internal/core"

// This file is the wire half of the advisord service: the versioned JSON
// request/response schema for POST /v1/decide and GET /v1/datasets. The
// types deliberately do not reuse internal/core's structs on the wire —
// field names there are Go API, these are a protocol — so the JSON contract
// can stay frozen while the internals refactor.

// RequestSchemaVersion is the decide-API schema this build speaks. It
// follows the same single-major policy as the artifact schema
// (obs.SchemaVersion): breaking changes (renamed keys, changed units,
// changed status-code semantics) bump it; additive changes (new optional
// request keys, new response fields) do not. A request carrying a newer
// version than the server understands is refused with 400 rather than
// half-parsed; requests with v omitted (or 0) are taken as the current
// version, mirroring how artifact readers accept legacy v0.
//
// Schema v1 (current):
//
//	POST /v1/decide     body DecideRequest: v, requests[1..N] of
//	                    {dataset, scale?, seed?, rule?}; omitted scale,
//	                    seed, and rule fall back to the server defaults.
//	                    200 → DecideResponse, 400 → malformed body, empty
//	                    or oversized batch, bad scale/rule, or schema
//	                    mismatch; 404 → unknown dataset; 500 → generation
//	                    or decision failure. Errors are ErrorResponse.
//	GET /v1/datasets    200 → DatasetsResponse: the resolvable catalog
//	                    plus the (dataset, scale, seed) keys already
//	                    resolved in the registry.
//	GET /healthz        200 while the process serves.
//	GET /readyz         200 once preloading finished, 503 before and
//	                    while draining.
const RequestSchemaVersion = 1

// DecideRequest is the POST /v1/decide body: a batch of 1..MaxBatch
// decision queries answered in one round trip. A single decision is a
// one-element batch.
type DecideRequest struct {
	// V is the request schema version (0 means current).
	V int `json:"v,omitempty"`
	// Requests holds the queries, answered in order.
	Requests []Query `json:"requests"`
}

// Query asks for the advisor's verdicts on one dataset.
type Query struct {
	// Dataset is the mimic name (GET /v1/datasets lists the catalog).
	Dataset string `json:"dataset"`
	// Scale is the generation scale in (0, 1]; 0 or omitted uses the
	// server default.
	Scale float64 `json:"scale,omitempty"`
	// Seed is the generation seed; 0 or omitted uses the server default.
	Seed uint64 `json:"seed,omitempty"`
	// Rule is "TR" or "ROR" (case-insensitive); omitted uses the server
	// default.
	Rule string `json:"rule,omitempty"`
}

// DecideResponse is the 200 body: one Result per query, in request order.
type DecideResponse struct {
	// V is the response schema version.
	V int `json:"v"`
	// Results holds one entry per query.
	Results []Result `json:"results"`
}

// Result is the advisor's answer for one query, echoing the resolved
// (dataset, scale, seed, rule) tuple so batch responses are self-describing.
type Result struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    uint64  `json:"seed"`
	Rule    string  `json:"rule"`
	// Decisions holds one verdict per attribute table, in declaration
	// order.
	Decisions []Decision `json:"decisions"`
}

// Decision is the wire form of core.Decision.
type Decision struct {
	FK         string  `json:"fk"`
	Attr       string  `json:"attr"`
	Considered bool    `json:"considered"`
	Avoid      bool    `json:"avoid"`
	Reason     string  `json:"reason,omitempty"`
	TR         float64 `json:"tr"`
	ROR        float64 `json:"ror"`
	QRStar     int     `json:"qr_star"`
	DFK        int     `json:"d_fk"`
}

// decisionFromCore converts one advisor verdict to its wire form.
func decisionFromCore(d core.Decision) Decision {
	return Decision{
		FK:         d.FK,
		Attr:       d.Attr,
		Considered: d.Considered,
		Avoid:      d.Avoid,
		Reason:     d.Reason,
		TR:         d.TR,
		ROR:        d.ROR,
		QRStar:     d.QRStar,
		DFK:        d.DFK,
	}
}

// DatasetsResponse is the GET /v1/datasets body.
type DatasetsResponse struct {
	// V is the response schema version.
	V int `json:"v"`
	// Available lists every dataset name the server can resolve, sorted.
	Available []string `json:"available"`
	// Loaded lists the (dataset, scale, seed) keys already resolved in the
	// registry — answered from cache, no generation on request.
	Loaded []LoadedDataset `json:"loaded"`
}

// LoadedDataset is one resolved registry entry.
type LoadedDataset struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    uint64  `json:"seed"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// V is the response schema version.
	V int `json:"v"`
	// Error is the human-readable failure.
	Error string `json:"error"`
}
