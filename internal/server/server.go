// Package server is the transport half of the join-advisor service: an
// http.Handler (and its serve/drain lifecycle) that answers the paper's
// TR/ROR decisions over the statistics registry. internal/registry caches
// per-dataset sufficient statistics behind once-cells, so a request is pure
// arithmetic on the hot path; a registry miss pays one generation plus
// CollectStats scan and every later request for that key is served from
// cache. cmd/advisord wires this package to a listener, signals, and a run
// directory; cmd/loadgen's HTTP mode drives it at service speed.
//
// Observability follows the repo's conventions: per-endpoint request
// latency lands in obs.Histograms (published to the Default registry, so
// they show on /debug/vars live and in metrics.json at close, and flushed
// as histograms.json so `report latency` works unchanged on server runs),
// and each request is logged as an "http_request" event when the server is
// given a run dir's event log.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"hamlet/internal/core"
	"hamlet/internal/obs"
	"hamlet/internal/registry"
)

// LatencyHist is the base name of the request-latency histograms, shared
// with cmd/loadgen so `report latency` aligns server runs against loadgen
// runs. Per-endpoint series append ".<endpoint>"; the run-level merge is
// the bare name.
const LatencyHist = "request_latency_ns"

// endpoints are the instrumented routes, each with its own latency series.
var endpoints = []string{"decide", "datasets", "healthz", "readyz", "metrics"}

// Defaults for Config's zero values.
const (
	// DefaultMaxBatch caps queries per decide request.
	DefaultMaxBatch = 1024
	// DefaultMaxBody caps the decide request body in bytes.
	DefaultMaxBody = 1 << 20
	// DefaultScale is the generation scale for queries that omit one.
	DefaultScale = 0.1
	// DefaultSeed is the generation seed for queries that omit one.
	DefaultSeed = 1
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// Scale is the default mimic scale for queries that omit one
	// (0 = DefaultScale).
	Scale float64
	// Seed is the default generation seed for queries that omit one
	// (0 = DefaultSeed).
	Seed uint64
	// Rule is the default decision rule for queries that omit one.
	Rule core.Rule
	// Precision is the latency histograms' sub-bucket bits
	// (0 = obs.DefaultPrecision).
	Precision int
	// Events, when set, receives one "http_request" event per request —
	// the request log. A nil log no-ops (the obs convention).
	Events *obs.EventLog
	// MaxBatch caps queries per decide request (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxBody caps the decide request body in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// Registry, when set, replaces the server-owned registry (tests,
	// pre-warmed processes).
	Registry *registry.Registry
	// Window is the rolling-metrics rotation interval
	// (0 = obs.DefaultWindow). /metrics summaries and rates cover the last
	// Windows of this length.
	Window time.Duration
	// Windows is the rolling-metrics ring depth (0 = obs.DefaultWindows).
	Windows int
	// Slow is the slow-request threshold: a request at or beyond it is
	// logged, counted, and retained as an exemplar on /debug/slow.
	// 0 disables slow-request capture.
	Slow time.Duration
	// SlowLog, when set, receives one line per slow request.
	SlowLog io.Writer
	// Sampler, when set, enables distributed tracing: inbound traceparent
	// headers are adopted (minted otherwise), every instrumented request
	// records a span tree, and the sampler's tail decision picks which trees
	// are persisted. Nil disables tracing entirely (the obs convention).
	Sampler *obs.Sampler
	// Traces, when set, receives the kept traces (a run dir's
	// obs.RunDir.Traces()). Nil keeps sampling decisions but drops the
	// records — useful only in tests.
	Traces *obs.TraceLog
	// SLOAvailability is the availability SLO target in (0, 1), e.g. 0.999
	// = "99.9% of requests answer without a 4xx/5xx". 0 disables the
	// availability burn-rate gauge on /metrics.
	SLOAvailability float64
	// SLOLatencyObjective and SLOLatencyTarget define the latency SLO:
	// SLOLatencyTarget of requests (e.g. 0.99) must finish within
	// SLOLatencyObjective (e.g. 1ms). Either zero disables the latency
	// burn-rate gauge.
	SLOLatencyObjective time.Duration
	SLOLatencyTarget    float64
}

// Server answers advisor decisions over HTTP. Build with New, expose via
// Handler (tests) or Serve (daemons), stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *registry.Registry
	known map[string]bool
	// advTR and advROR are the two rule configurations, shared across
	// requests (Advisors are immutable here).
	advTR, advROR *core.Advisor
	mux           *http.ServeMux
	httpSrv       *http.Server
	// ready flips true after Preload and false at Shutdown; readyz serves
	// it.
	ready atomic.Bool
	// requests and errors count every instrumented request and the 4xx/5xx
	// subset.
	requests, errors atomic.Int64
	// inFlight gauges requests currently inside a handler.
	inFlight atomic.Int64
	hists    map[string]*obs.WindowedHistogram
	// wreq and werr back the rolling request/error rates on /metrics.
	wreq, werr *obs.WindowedCounter
	// idPrefix + idSeq mint X-Request-IDs for requests arriving without one.
	idPrefix string
	idSeq    atomic.Uint64
	// slow retains the most recent slow-request exemplars (/debug/slow).
	slow slowRing
	// traces counts tail-sampled traces persisted to traces.jsonl.
	traces atomic.Int64
	// buildVersion and buildCommit label the advisord_build_info gauge.
	buildVersion, buildCommit string
	// decideHook, when set (tests only), runs at the top of the decide
	// handler — the seam the graceful-shutdown drain test blocks on.
	decideHook func()
}

// New builds a server. The catalog of resolvable datasets is fixed at
// construction (the registry's mimic universe).
func New(cfg Config) *Server {
	if cfg.Scale == 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.Precision == 0 {
		cfg.Precision = obs.DefaultPrecision
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Registry == nil {
		cfg.Registry = registry.New()
	}
	if cfg.Window == 0 {
		cfg.Window = obs.DefaultWindow
	}
	if cfg.Windows == 0 {
		cfg.Windows = obs.DefaultWindows
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		known:    make(map[string]bool),
		advTR:    &core.Advisor{Rule: core.TRRule},
		advROR:   &core.Advisor{Rule: core.RORRule},
		hists:    make(map[string]*obs.WindowedHistogram, len(endpoints)),
		wreq:     obs.NewWindowedCounter(cfg.Window, cfg.Windows),
		werr:     obs.NewWindowedCounter(cfg.Window, cfg.Windows),
		idPrefix: requestIDPrefix(),
	}
	s.buildVersion, s.buildCommit = obs.BuildIdentity()
	for _, name := range registry.Names() {
		s.known[name] = true
	}
	for _, ep := range endpoints {
		h := obs.NewWindowedHistogram(cfg.Precision, cfg.Window, cfg.Windows)
		s.hists[ep] = h
		// Publish the cumulative view on the Default registry: live on
		// /debug/vars, persisted in metrics.json. The flush-to-
		// histograms.json copy comes from the server's own handles
		// (Histograms), so parallel servers in tests never bleed into each
		// other's artifacts. The windowed view is /metrics-only.
		obs.Default.SetHistogram("advisord."+LatencyHist+"."+ep, h.Cumulative())
	}

	mux := http.NewServeMux()
	mux.Handle("POST /v1/decide", s.instrument("decide", s.handleDecide))
	mux.Handle("GET /v1/datasets", s.instrument("datasets", s.handleDatasets))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReady))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/slow", s.handleSlow)
	obs.Publish()
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.httpSrv = &http.Server{Handler: mux}
	return s
}

// Handler returns the server's routing handler (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the backing statistics registry.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Preload resolves the named datasets at the server's default scale and
// seed — paying generation and the statistics scan before traffic arrives —
// then marks the server ready. Call with no names to mark ready without
// warming anything.
func (s *Server) Preload(names ...string) error {
	for _, name := range names {
		if _, err := s.reg.Get(name, s.cfg.Scale, s.cfg.Seed); err != nil {
			return fmt.Errorf("server: preload %s: %w", name, err)
		}
	}
	s.ready.Store(true)
	return nil
}

// Serve accepts connections on ln until Shutdown. A shutdown-initiated stop
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: readiness drops immediately (load balancers
// stop routing), the listener closes, and in-flight requests run to
// completion or the context deadline, whichever first. The error is
// http.Server.Shutdown's (ctx expiry when requests did not drain in time).
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	return s.httpSrv.Shutdown(ctx)
}

// Stats reports the instrumented request count and its 4xx/5xx subset.
func (s *Server) Stats() (requests, errors int64) {
	return s.requests.Load(), s.errors.Load()
}

// Histograms snapshots the per-endpoint latency series plus their run-level
// merge under the loadgen-compatible names, ready for
// obs.RunDir.WriteHistograms. Endpoints that served nothing are omitted;
// the merge is always present (empty runs still flush a well-formed
// artifact).
func (s *Server) Histograms() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, len(s.hists)+1)
	var total obs.HistogramSnapshot
	for ep, h := range s.hists {
		snap := h.Total()
		if snap.Count == 0 {
			continue
		}
		out[LatencyHist+"."+ep] = snap
		// Same precision everywhere by construction; Merge cannot fail.
		_ = total.Merge(snap)
	}
	if total.Count == 0 {
		total.Precision = s.cfg.Precision
	}
	out[LatencyHist] = total
	return out
}

// statusRecorder captures the response status (and, for decide, the batch
// size) for the instrumentation wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	queries int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// RequestIDHeader carries the request ID on requests and responses: an
// inbound value is adopted verbatim, a missing one is minted server-side,
// and either way the response echoes it.
const RequestIDHeader = "X-Request-ID"

// instrument wraps a handler with the per-endpoint latency histogram, the
// request/error counters and rolling rates, the request ID, the trace
// context and server span (when a Sampler is configured), slow-request
// capture, and the request-log event.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.hists[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		st := s.startTrace(w, r, endpoint)
		if st.span != nil {
			r = r.WithContext(withSpan(r.Context(), st.span))
		}
		s.inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.inFlight.Add(-1)
		hist.Observe(elapsed.Nanoseconds())
		s.requests.Add(1)
		s.wreq.Inc()
		if rec.status >= 400 {
			s.errors.Add(1)
			s.werr.Inc()
		}
		s.finishTrace(st, id, elapsed, rec.status)
		if s.cfg.Slow > 0 && elapsed >= s.cfg.Slow {
			s.recordSlow(SlowRequest{
				ID:         id,
				TraceID:    st.traceID(),
				Endpoint:   endpoint,
				Method:     r.Method,
				Path:       r.URL.Path,
				Status:     rec.status,
				Queries:    rec.queries,
				DurationNS: elapsed.Nanoseconds(),
				Time:       start.UTC(),
			})
		}
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
		}
		if rec.queries > 0 {
			attrs = append(attrs, slog.Int("queries", rec.queries))
		}
		if tid := st.traceID(); tid != "" {
			attrs = append(attrs, slog.String("trace_id", tid))
		}
		s.cfg.Events.Emit("http_request", attrs...)
	})
}

// fail writes an ErrorResponse with the given status.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{V: RequestSchemaVersion, Error: fmt.Sprintf(format, args...)})
}

// resolvedQuery is one validated decide query.
type resolvedQuery struct {
	dataset string
	scale   float64
	seed    uint64
	adv     *core.Advisor
}

// handleDecide answers a batch of decisions. Validation is two-phase — the
// whole batch is checked before any query is answered, so a malformed tuple
// can never leave a half-answered batch — and the cached-statistics path
// means the per-query cost after the registry is warm is O(#attribute
// tables) arithmetic.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if s.decideHook != nil {
		s.decideHook()
	}
	span := requestSpan(r)
	decode := span.Child("decode")
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req DecideRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decode.End()
		s.fail(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if req.V < 0 || req.V > RequestSchemaVersion {
		decode.End()
		s.fail(w, http.StatusBadRequest,
			"request schema v%d not understood (this server speaks up to v%d)", req.V, RequestSchemaVersion)
		return
	}
	if len(req.Requests) == 0 {
		decode.End()
		s.fail(w, http.StatusBadRequest, "empty batch: requests must carry 1..%d queries", s.cfg.MaxBatch)
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		decode.End()
		s.fail(w, http.StatusBadRequest, "batch of %d queries exceeds the %d cap", len(req.Requests), s.cfg.MaxBatch)
		return
	}
	if rec, ok := w.(*statusRecorder); ok {
		rec.queries = len(req.Requests)
	}

	resolved := make([]resolvedQuery, len(req.Requests))
	for i, q := range req.Requests {
		if !s.known[q.Dataset] {
			decode.End()
			s.fail(w, http.StatusNotFound, "unknown dataset %q (GET /v1/datasets lists the catalog)", q.Dataset)
			return
		}
		rq := resolvedQuery{dataset: q.Dataset, scale: q.Scale, seed: q.Seed}
		if rq.scale == 0 {
			rq.scale = s.cfg.Scale
		}
		if rq.scale <= 0 || rq.scale > 1 {
			decode.End()
			s.fail(w, http.StatusBadRequest, "scale %v outside (0, 1] for dataset %q", rq.scale, q.Dataset)
			return
		}
		if rq.seed == 0 {
			rq.seed = s.cfg.Seed
		}
		adv, err := s.advisorFor(q.Rule)
		if err != nil {
			decode.End()
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		rq.adv = adv
		resolved[i] = rq
	}
	decode.End()

	results := make([]Result, len(resolved))
	for i, q := range resolved {
		// The name concat is guarded so the tracing-off hot path never pays
		// the allocation (Child on nil would skip it, but after the concat).
		var dspan *obs.Span
		if span != nil {
			dspan = span.Child("decide(" + q.dataset + ")")
		}
		// A miss generates the dataset and collects its statistics exactly
		// once (the registry's once-cell); every other request for the same
		// key — including the rest of this batch — waits on or reuses it.
		e, err := s.reg.Get(q.dataset, q.scale, q.seed)
		if err != nil {
			dspan.End()
			s.fail(w, http.StatusInternalServerError, "resolve %s: %v", q.dataset, err)
			return
		}
		decisions, err := q.adv.DecideFromStats(e.Stats)
		dspan.End()
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "decide %s: %v", q.dataset, err)
			return
		}
		res := Result{
			Dataset:   q.dataset,
			Scale:     q.scale,
			Seed:      q.seed,
			Rule:      q.adv.Rule.String(),
			Decisions: make([]Decision, len(decisions)),
		}
		for j, d := range decisions {
			res.Decisions[j] = decisionFromCore(d)
		}
		results[i] = res
	}
	writeJSON(w, http.StatusOK, DecideResponse{V: RequestSchemaVersion, Results: results})
}

// advisorFor maps a wire rule name to the shared advisor ("" = default).
func (s *Server) advisorFor(rule string) (*core.Advisor, error) {
	switch strings.ToUpper(rule) {
	case "":
		if s.cfg.Rule == core.RORRule {
			return s.advROR, nil
		}
		return s.advTR, nil
	case "TR":
		return s.advTR, nil
	case "ROR":
		return s.advROR, nil
	default:
		return nil, fmt.Errorf("unknown rule %q (want TR or ROR)", rule)
	}
}

// handleDatasets enumerates the catalog and the registry's resolved keys.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	keys := s.reg.Keys()
	loaded := make([]LoadedDataset, len(keys))
	for i, k := range keys {
		loaded[i] = LoadedDataset{Dataset: k.Name, Scale: k.Scale, Seed: k.Seed}
	}
	writeJSON(w, http.StatusOK, DatasetsResponse{
		V:         RequestSchemaVersion,
		Available: registry.Names(),
		Loaded:    loaded,
	})
}

// handleHealth reports liveness: the process serves.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady reports readiness: preloading finished and the server is not
// draining.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past WriteHeader are connection failures; nothing
	// useful remains to tell the client.
	_ = json.NewEncoder(w).Encode(v)
}
