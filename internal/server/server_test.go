package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hamlet/internal/obs"
	"hamlet/internal/registry"
)

// testConfig keeps generation cheap: the smallest scale the smoke paths use.
func testConfig() Config {
	return Config{Scale: 0.02, Seed: 1}
}

// newTestServer returns a server and an httptest front for handler tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postDecide marshals req and POSTs it to the decide endpoint.
func postDecide(t *testing.T, ts *httptest.Server, req DecideRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, ts, body)
}

func postRaw(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestDecideSingle(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, data := postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out DecideResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != RequestSchemaVersion {
		t.Errorf("response v = %d, want %d", out.V, RequestSchemaVersion)
	}
	if len(out.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(out.Results))
	}
	r := out.Results[0]
	if r.Dataset != "Walmart" || r.Scale != 0.02 || r.Seed != 1 || r.Rule != "TR" {
		t.Errorf("echoed tuple = %+v", r)
	}
	if len(r.Decisions) == 0 {
		t.Fatal("no decisions for Walmart")
	}
	for _, d := range r.Decisions {
		if d.FK == "" || d.Attr == "" || d.DFK <= 0 {
			t.Errorf("implausible decision %+v", d)
		}
	}
}

// TestDecideBatch pins the batch acceptance criterion: a 100-decision batch
// is answered in one round trip, in request order, and the cached stats make
// it cheap (every query after the first hits the registry).
func TestDecideBatch(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	queries := make([]Query, 100)
	for i := range queries {
		queries[i] = Query{Dataset: "Walmart"}
		if i%2 == 1 {
			queries[i].Rule = "ROR"
		}
	}
	resp, data := postDecide(t, ts, DecideRequest{V: RequestSchemaVersion, Requests: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, data)
	}
	var out DecideResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 100 {
		t.Fatalf("results = %d, want 100", len(out.Results))
	}
	for i, r := range out.Results {
		wantRule := "TR"
		if i%2 == 1 {
			wantRule = "ROR"
		}
		if r.Rule != wantRule {
			t.Fatalf("result %d rule = %q, want %q (order not preserved?)", i, r.Rule, wantRule)
		}
	}
	// One dataset generated once, despite 100 queries.
	if n := s.Registry().Len(); n != 1 {
		t.Errorf("registry holds %d entries after a single-dataset batch, want 1", n)
	}
}

func TestDecideMalformed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		name string
		body string
		want string
	}{
		{"truncated json", `{"requests": [`, "parse request"},
		{"empty batch", `{"requests": []}`, "empty batch"},
		{"missing requests", `{}`, "empty batch"},
		{"bad rule", `{"requests": [{"dataset": "Walmart", "rule": "XTREME"}]}`, "unknown rule"},
		{"bad scale", `{"requests": [{"dataset": "Walmart", "scale": 7}]}`, "outside (0, 1]"},
		{"negative scale", `{"requests": [{"dataset": "Walmart", "scale": -0.5}]}`, "outside (0, 1]"},
	}
	for _, tc := range cases {
		resp, data := postRaw(t, ts, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body: %s)", tc.name, resp.StatusCode, data)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("%s: error body is not ErrorResponse: %v", tc.name, err)
			continue
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.want)
		}
	}
}

func TestDecideUnknownDataset(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, data := postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "NoSuchDataset"}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (body: %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "NoSuchDataset") {
		t.Errorf("error %q does not name the dataset", e.Error)
	}
}

func TestDecideSchemaVersionMismatch(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, data := postDecide(t, ts, DecideRequest{V: RequestSchemaVersion + 1, Requests: []Query{{Dataset: "Walmart"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body: %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "schema") {
		t.Errorf("error %q does not mention the schema", e.Error)
	}
}

func TestDecideMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/decide status = %d, want 405", resp.StatusCode)
	}
}

func TestDatasetsEnumeratesLoaded(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if want := registry.Names(); fmt.Sprint(out.Available) != fmt.Sprint(want) {
		t.Errorf("available = %v, want %v", out.Available, want)
	}
	if len(out.Loaded) != 1 || out.Loaded[0] != (LoadedDataset{Dataset: "Walmart", Scale: 0.02, Seed: 1}) {
		t.Errorf("loaded = %+v", out.Loaded)
	}
}

func TestHealthAndReadyLifecycle(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before Preload = %d, want 503", code)
	}
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz after Preload = %d, want 200", code)
	}
}

func TestDebugVarsServesMetricsRegistry(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"hamlet"`)) {
		t.Error("/debug/vars does not publish the hamlet registry")
	}
	if !bytes.Contains(data, []byte("advisord."+LatencyHist+".decide")) {
		t.Errorf("/debug/vars does not carry the decide latency histogram:\n%.2000s", data)
	}
}

func TestHistogramsAndStats(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	postRaw(t, ts, []byte("not json")) // one error
	hists := s.Histograms()
	total, ok := hists[LatencyHist]
	if !ok {
		t.Fatalf("no run-level histogram: %v", hists)
	}
	if total.Count != 2 {
		t.Errorf("run-level count = %d, want 2", total.Count)
	}
	decide, ok := hists[LatencyHist+".decide"]
	if !ok || decide.Count != 2 {
		t.Errorf("decide histogram = %+v (ok=%v), want count 2", decide, ok)
	}
	if _, ok := hists[LatencyHist+".healthz"]; ok {
		t.Error("unserved endpoint leaked an empty histogram into the flush")
	}
	reqs, errs := s.Stats()
	if reqs != 2 || errs != 1 {
		t.Errorf("Stats = (%d, %d), want (2, 1)", reqs, errs)
	}
}

func TestRequestLogEvents(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Events = obs.NewEventLog(&syncWriter{w: &buf})
	_, ts := newTestServer(t, cfg)
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}, {Dataset: "Walmart"}}})
	out := buf.String()
	if !strings.Contains(out, `"msg":"http_request"`) {
		t.Fatalf("no http_request event:\n%s", out)
	}
	for _, want := range []string{`"path":"/v1/decide"`, `"status":200`, `"queries":2`, `"method":"POST"`} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %s:\n%s", want, out)
		}
	}
}

// syncWriter serializes writes; handler goroutines share the buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestGracefulShutdownDrains pins the drain contract under -race: a request
// in flight when Shutdown begins completes with 200, Shutdown waits for it,
// and requests arriving after the listener closed are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(testConfig())
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s.decideHook = func() {
		close(entered)
		<-release
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Fire the in-flight request; it blocks inside the handler.
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/decide", "application/json",
			strings.NewReader(`{"requests": [{"dataset": "Walmart"}]}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("in-flight request status = %d", resp.StatusCode)
			return
		}
		reqDone <- nil
	}()
	<-entered

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the blocked request.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
	// The drained server refuses new connections.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("request after shutdown succeeded")
	}
}

// TestShutdownDeadlineExpires: a request that outlives the drain deadline
// surfaces as a Shutdown error, not a hang.
func TestShutdownDeadlineExpires(t *testing.T) {
	s := New(testConfig())
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s.decideHook = func() {
		close(entered)
		<-release
	}
	defer close(release)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/decide", "application/json",
			strings.NewReader(`{"requests": [{"dataset": "Walmart"}]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned nil despite an undrained request")
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
}
