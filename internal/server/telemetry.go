package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"hamlet/internal/obs"
)

// This file is the live-telemetry half of the server: the continuous view of
// a running advisord, where server.go's artifacts (histograms.json,
// metrics.json) are the post-mortem view. Three surfaces:
//
//   - GET /metrics — Prometheus text exposition: cumulative request/error
//     counters, the in-flight gauge, rolling request/error rates, windowed
//     latency quantiles (summary) and cumulative latency buckets (histogram)
//     per endpoint, plus every counter and gauge on the obs.Default
//     registry.
//   - X-Request-ID — every instrumented request carries one: accepted from
//     the client when present, generated otherwise, echoed in the response,
//     and threaded through the http_request event so a log line, a trace,
//     and a client retry all name the same request.
//   - /debug/slow — a ring of the most recent slow-request exemplars
//     (requests at or beyond Config.Slow), each carrying its request ID, so
//     a tail spike on the scrape surface resolves to attributable requests.

// Exposed quantiles of the rolling latency summaries.
var metricsQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// slowRingDepth caps the /debug/slow exemplar buffer.
const slowRingDepth = 64

// requestIDPrefix returns the per-process random prefix of generated request
// IDs, so IDs from different replicas never collide.
func requestIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a reason to refuse traffic: fall back to
		// a time-based prefix.
		return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
	}
	return hex.EncodeToString(b[:])
}

// nextRequestID mints an ID for a request that arrived without one:
// "<process-prefix>-<sequence>".
func (s *Server) nextRequestID() string {
	return s.idPrefix + "-" + strconv.FormatUint(s.idSeq.Add(1), 10)
}

// SlowRequest is one slow-request exemplar: the identifying tuple of a
// request whose latency met or exceeded the server's slow threshold.
type SlowRequest struct {
	// ID is the request's X-Request-ID (inbound or generated).
	ID string `json:"request_id"`
	// TraceID is the request's distributed trace ID (empty with tracing
	// off). Slow requests always pass the tail sampler, so the exemplar
	// links directly to its persisted trace in traces.jsonl.
	TraceID string `json:"trace_id,omitempty"`
	// Endpoint is the instrumented route name ("decide", ...).
	Endpoint string `json:"endpoint"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Status   int    `json:"status"`
	// Queries is the decide batch size (0 elsewhere).
	Queries int `json:"queries,omitempty"`
	// DurationNS is the measured handler latency.
	DurationNS int64 `json:"duration_ns"`
	// Time is when the request started.
	Time time.Time `json:"time"`
}

// slowRing keeps the newest slowRingDepth exemplars. The mutex is fine here:
// only requests already past the slow threshold take it.
type slowRing struct {
	mu    sync.Mutex
	buf   []SlowRequest
	next  int
	total int64
}

func (r *slowRing) add(sr SlowRequest) {
	r.mu.Lock()
	if len(r.buf) < slowRingDepth {
		r.buf = append(r.buf, sr)
	} else {
		r.buf[r.next] = sr
	}
	r.next = (r.next + 1) % slowRingDepth
	r.total++
	r.mu.Unlock()
}

// list returns the exemplars newest-first and the all-time slow count.
func (r *slowRing) list() ([]SlowRequest, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowRequest, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out, r.total
}

// recordSlow captures one slow request: the exemplar ring, the log line, and
// the slow counter.
func (s *Server) recordSlow(sr SlowRequest) {
	s.slow.add(sr)
	if s.cfg.SlowLog != nil {
		fmt.Fprintf(s.cfg.SlowLog, "advisord: slow request id=%s endpoint=%s status=%d duration=%v (threshold %v)\n",
			sr.ID, sr.Endpoint, sr.Status, time.Duration(sr.DurationNS), s.cfg.Slow)
	}
}

// SlowResponse is the GET /debug/slow body.
type SlowResponse struct {
	// V is the response schema version.
	V int `json:"v"`
	// ThresholdNS echoes the active slow threshold (0 = exemplars disabled).
	ThresholdNS int64 `json:"threshold_ns"`
	// Total counts every slow request since start, including ones the ring
	// has since evicted.
	Total int64 `json:"total"`
	// Slow holds the retained exemplars, newest first.
	Slow []SlowRequest `json:"slow"`
}

// handleSlow serves the slow-request exemplar ring, newest first. ?n=K
// limits the response to the K most recent exemplars.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	slow, total := s.slow.list()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad n=%q: want a non-negative integer", nStr)
			return
		}
		if n < len(slow) {
			slow = slow[:n]
		}
	}
	writeJSON(w, http.StatusOK, SlowResponse{
		V:           RequestSchemaVersion,
		ThresholdNS: int64(s.cfg.Slow),
		Total:       total,
		Slow:        slow,
	})
}

// handleMetrics serves the Prometheus text exposition. Naming: the summary
// advisord_request_latency_seconds carries rolling-window quantiles (the
// summary convention) with cumulative _sum/_count; the histogram
// advisord_request_duration_seconds carries the cumulative bucket
// distribution — two names because the exposition format allows one type
// per name. Run-level latency series carry no endpoint label; per-endpoint
// series add one.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	p := obs.NewPromWriter(w)

	p.Type("advisord_requests_total", "counter", "Instrumented requests served since process start.")
	p.Int("advisord_requests_total", nil, s.requests.Load())
	p.Type("advisord_request_errors_total", "counter", "Requests answered with a 4xx or 5xx status.")
	p.Int("advisord_request_errors_total", nil, s.errors.Load())
	p.Type("advisord_in_flight_requests", "gauge", "Requests currently being handled.")
	p.Int("advisord_in_flight_requests", nil, s.inFlight.Load())
	p.Type("advisord_requests_per_second", "gauge", "Rolling request rate over the histogram window ring.")
	p.Value("advisord_requests_per_second", nil, s.wreq.Rate())
	p.Type("advisord_request_errors_per_second", "gauge", "Rolling error rate over the histogram window ring.")
	p.Value("advisord_request_errors_per_second", nil, s.werr.Rate())
	p.Type("advisord_slow_requests_total", "counter", "Requests at or beyond the -slow threshold since process start.")
	_, slowTotal := s.slow.list()
	p.Int("advisord_slow_requests_total", nil, slowTotal)
	p.Type("advisord_ready", "gauge", "1 once preloading finished and the server is not draining.")
	ready := int64(0)
	if s.ready.Load() {
		ready = 1
	}
	p.Int("advisord_ready", nil, ready)
	p.Type("advisord_build_info", "gauge", "Build identity of the running binary; the value is always 1.")
	p.Int("advisord_build_info", []string{"version", s.buildVersion, "commit", s.buildCommit}, 1)
	if s.cfg.Sampler != nil {
		p.Type("advisord_traces_total", "counter", "Tail-sampled traces persisted to traces.jsonl since process start.")
		p.Int("advisord_traces_total", nil, s.traces.Load())
	}

	eps := make([]string, 0, len(s.hists))
	for ep := range s.hists {
		eps = append(eps, ep)
	}
	sort.Strings(eps)

	// Rolling quantiles per endpoint and run-level; cumulative _sum/_count.
	p.Type("advisord_request_latency_seconds", "summary",
		"Request latency: rolling-window quantiles, cumulative sum/count.")
	var winAll, cumAll obs.HistogramSnapshot
	for _, ep := range eps {
		h := s.hists[ep]
		win, cum := h.Window(0), h.Total()
		// Identical precision by construction; Merge cannot fail.
		_ = winAll.Merge(win)
		_ = cumAll.Merge(cum)
		p.Summary("advisord_request_latency_seconds", []string{"endpoint", ep}, win, cum, 1e-9, metricsQuantiles...)
	}
	p.Summary("advisord_request_latency_seconds", nil, winAll, cumAll, 1e-9, metricsQuantiles...)

	// Live SLO burn rates over the rolling window. Burn = (bad fraction) /
	// (error budget): 1.0 spends the budget exactly at the sustainable
	// rate, 14.4 exhausts a 30-day budget in 2 days (the SRE fast-burn
	// alarm). `report watch` and `report slo` read these.
	if s.cfg.SLOAvailability > 0 || (s.cfg.SLOLatencyObjective > 0 && s.cfg.SLOLatencyTarget > 0) {
		p.Type("advisord_slo_error_budget_burn", "gauge",
			"Rolling-window error-budget burn rate per SLO (1.0 = sustainable).")
	}
	if target := s.cfg.SLOAvailability; target > 0 {
		burn := 0.0
		if reqRate := s.wreq.Rate(); reqRate > 0 {
			burn = (s.werr.Rate() / reqRate) / (1 - target)
		}
		p.Value("advisord_slo_error_budget_burn", []string{"slo", "availability"}, burn)
		p.Type("advisord_slo_availability_target", "gauge", "Configured availability SLO target.")
		p.Value("advisord_slo_availability_target", nil, target)
	}
	if obj, target := s.cfg.SLOLatencyObjective, s.cfg.SLOLatencyTarget; obj > 0 && target > 0 {
		burn := 0.0
		if winAll.Count > 0 {
			badFrac := 1 - float64(winAll.CountAtOrBelow(obj.Nanoseconds()))/float64(winAll.Count)
			burn = badFrac / (1 - target)
		}
		p.Value("advisord_slo_error_budget_burn", []string{"slo", "latency"}, burn)
		p.Type("advisord_slo_latency_objective_seconds", "gauge", "Configured latency SLO objective.")
		p.Value("advisord_slo_latency_objective_seconds", nil, obj.Seconds())
		p.Type("advisord_slo_latency_target", "gauge", "Configured fraction of requests required within the objective.")
		p.Value("advisord_slo_latency_target", nil, target)
	}

	// Cumulative bucket distribution per endpoint.
	p.Type("advisord_request_duration_seconds", "histogram",
		"Request latency: cumulative HDR bucket distribution.")
	for _, ep := range eps {
		p.Histogram("advisord_request_duration_seconds", []string{"endpoint", ep}, s.hists[ep].Total(), 1e-9)
	}

	p.Type("advisord_endpoint_requests_total", "counter", "Requests served per endpoint since process start.")
	for _, ep := range eps {
		p.Int("advisord_endpoint_requests_total", []string{"endpoint", ep}, s.hists[ep].Total().Count)
	}

	// Every scalar on the process-wide registry, under its sanitized name.
	counters, gauges := obs.Default.Export()
	writeSorted := func(m map[string]int64, typ string) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pn := "hamlet_" + obs.PromName(name)
			p.Type(pn, typ, "")
			p.Int(pn, nil, m[name])
		}
	}
	writeSorted(counters, "counter")
	writeSorted(gauges, "gauge")
	// A write error here means the scraper hung up; nothing to answer.
	_ = p.Err()
}
