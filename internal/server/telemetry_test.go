package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hamlet/internal/obs"
)

// get fetches a path from the test server and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// No inbound ID: the server mints one and echoes it.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get(RequestIDHeader)
	if id1 == "" {
		t.Fatal("no X-Request-ID on response to ID-less request")
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get(RequestIDHeader); id2 == id1 {
		t.Errorf("generated IDs collide: %q", id1)
	}

	// An inbound ID is adopted verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "client-chose-this")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(RequestIDHeader); got != "client-chose-this" {
		t.Errorf("inbound ID not echoed: got %q", got)
	}
}

func TestRequestIDInEventLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Events = obs.NewEventLog(&syncWriter{w: &buf})
	_, ts := newTestServer(t, cfg)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "evt-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), `"request_id":"evt-42"`) {
		t.Errorf("http_request event missing request_id:\n%s", buf.String())
	}
}

func TestSlowRequestCapture(t *testing.T) {
	var slowLog bytes.Buffer
	cfg := testConfig()
	cfg.Slow = time.Nanosecond // every request is slow
	cfg.SlowLog = &syncWriter{w: &slowLog}
	_, ts := newTestServer(t, cfg)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "slow-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, body := get(t, ts, "/debug/slow")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/slow = %d", status)
	}
	var sr SlowResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("unmarshal /debug/slow: %v\n%s", err, body)
	}
	if sr.ThresholdNS != 1 {
		t.Errorf("threshold_ns = %d, want 1", sr.ThresholdNS)
	}
	if sr.Total < 1 || len(sr.Slow) < 1 {
		t.Fatalf("slow ring empty: total=%d entries=%d", sr.Total, len(sr.Slow))
	}
	var found bool
	for _, e := range sr.Slow {
		if e.ID == "slow-1" {
			found = true
			if e.Endpoint != "healthz" || e.Status != http.StatusOK || e.DurationNS <= 0 {
				t.Errorf("exemplar fields off: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("exemplar slow-1 not retained: %+v", sr.Slow)
	}
	if !strings.Contains(slowLog.String(), "id=slow-1") {
		t.Errorf("slow log missing request: %q", slowLog.String())
	}
}

func TestSlowRingEvictsOldest(t *testing.T) {
	var r slowRing
	for i := 0; i < slowRingDepth+10; i++ {
		r.add(SlowRequest{DurationNS: int64(i)})
	}
	list, total := r.list()
	if total != slowRingDepth+10 {
		t.Errorf("total = %d, want %d", total, slowRingDepth+10)
	}
	if len(list) != slowRingDepth {
		t.Fatalf("retained = %d, want %d", len(list), slowRingDepth)
	}
	// Newest first: the most recent add leads, the oldest retained closes.
	if list[0].DurationNS != int64(slowRingDepth+9) {
		t.Errorf("newest = %d, want %d", list[0].DurationNS, slowRingDepth+9)
	}
	if last := list[len(list)-1].DurationNS; last != 10 {
		t.Errorf("oldest retained = %d, want 10 (0..9 evicted)", last)
	}
}

func TestSlowCaptureDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := get(t, ts, "/debug/slow")
	var sr SlowResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ThresholdNS != 0 || sr.Total != 0 || len(sr.Slow) != 0 {
		t.Errorf("slow capture active with Slow=0: %+v", sr)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	postRaw(t, ts, []byte(`{not json`)) // one 400 for the error counter

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)

	for _, want := range []string{
		"# TYPE advisord_requests_total counter",
		"# TYPE advisord_request_latency_seconds summary",
		"# TYPE advisord_request_duration_seconds histogram",
		`advisord_request_latency_seconds{endpoint="decide",quantile="0.99"} `,
		`advisord_request_latency_seconds_count{endpoint="decide"} 2`,
		`advisord_request_duration_seconds_bucket{endpoint="decide",le="+Inf"} 2`,
		`advisord_endpoint_requests_total{endpoint="decide"} 2`,
		"advisord_request_errors_total 1",
		"advisord_in_flight_requests ",
		"advisord_requests_per_second ",
		"advisord_ready 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The run-level (label-free) summary merges every endpoint.
	if !strings.Contains(out, "advisord_request_latency_seconds_count ") {
		t.Error("no run-level latency summary")
	}
	// Registry scalars ride along under the hamlet_ prefix.
	if !strings.Contains(out, "hamlet_") {
		t.Error("no Default-registry metrics in exposition")
	}

	// Every non-comment line must parse as "<series> <float>".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
	}

	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestMetricsRatesMoveUnderTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.Window = time.Second // short window so the rate reflects this test's traffic
	cfg.Windows = 4
	s, ts := newTestServer(t, cfg)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if rate := s.wreq.Rate(); rate <= 0 {
		t.Errorf("request rate = %v after traffic, want > 0", rate)
	}
	if rate := s.werr.Rate(); rate != 0 {
		t.Errorf("error rate = %v with no errors, want 0", rate)
	}
}
