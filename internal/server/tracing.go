package server

import (
	"context"
	"net/http"
	"time"

	"hamlet/internal/obs"
)

// This file is the server half of distributed tracing. The instrumentation
// wrapper adopts an inbound W3C traceparent (or mints a fresh context and
// head-samples it), echoes the server's own context on the response, records
// the request as a span tree — server(endpoint) → decode → decide(dataset)
// per batch item — and at request end asks the tail sampler whether the
// outcome (error? slow? head-sampled?) earns the trace a line in
// traces.jsonl. The span tree is threaded to handlers through the request
// context; with tracing disabled the context carries no span, every Child
// call no-ops on nil, and the request path allocates nothing extra.

// spanKey carries the per-request server span in the request context.
type spanKey struct{}

// withSpan returns ctx carrying sp for requestSpan to find.
func withSpan(ctx context.Context, sp *obs.Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// requestSpan returns the request's server span, or nil when tracing is off
// (every obs.Span method no-ops on nil, so handlers call through it
// unconditionally).
func requestSpan(r *http.Request) *obs.Span {
	sp, _ := r.Context().Value(spanKey{}).(*obs.Span)
	return sp
}

// traceState is the per-request tracing bookkeeping instrument threads from
// accept to the tail decision.
type traceState struct {
	tc     obs.TraceContext
	parent string // inbound caller's span ID ("" at the trace head)
	span   *obs.Span
}

// traceID returns the request's trace ID as 32 hex digits, "" when tracing
// is off (the zero traceState).
func (st traceState) traceID() string {
	if st.span == nil {
		return ""
	}
	return st.tc.TraceIDString()
}

// startTrace begins tracing one request: adopt the caller's traceparent as
// parent (deriving a fresh server span ID) or mint a head-sampled root
// context, echo the server's context on the response, and open the server
// span. Returns the zero traceState when tracing is disabled.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, endpoint string) traceState {
	if s.cfg.Sampler == nil {
		return traceState{}
	}
	var st traceState
	if in, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); err == nil {
		st.parent = in.SpanIDString()
		st.tc = in.Child()
	} else {
		tc := obs.NewTraceContext()
		st.tc = tc.WithSampled(s.cfg.Sampler.Sampled(tc))
	}
	w.Header().Set(obs.TraceparentHeader, st.tc.Traceparent())
	st.span = obs.StartSpan("server(" + endpoint + ")")
	return st
}

// finishTrace closes the request's span and applies the tail-sampling
// decision, appending a kept trace to the run's traces.jsonl.
func (s *Server) finishTrace(st traceState, requestID string, elapsed time.Duration, status int) {
	if st.span == nil {
		return
	}
	st.span.End()
	if !s.cfg.Sampler.Keep(st.tc.Sampled(), elapsed, status >= 400) {
		return
	}
	// Append errors surface nowhere better than the event log; tracing is
	// telemetry and must not fail the request.
	if err := s.cfg.Traces.Append(obs.TraceRecord{
		TraceID:      st.tc.TraceIDString(),
		SpanID:       st.tc.SpanIDString(),
		ParentSpanID: st.parent,
		Kind:         obs.TraceKindServer,
		RequestID:    requestID,
		Span:         st.span,
	}); err == nil {
		s.traces.Add(1)
	}
}
