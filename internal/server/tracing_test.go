package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hamlet/internal/obs"
)

// spanNode decodes the span tree inside a traces.jsonl line (obs.Span has a
// custom marshaler but no unmarshaler; readers decode the JSON shape).
type spanNode struct {
	Name       string     `json:"name"`
	DurationMS float64    `json:"duration_ms"`
	Children   []spanNode `json:"children"`
}

// traceLine is one decoded traces.jsonl record.
type traceLine struct {
	V            int      `json:"v"`
	TraceID      string   `json:"trace_id"`
	SpanID       string   `json:"span_id"`
	ParentSpanID string   `json:"parent_span_id"`
	Kind         string   `json:"kind"`
	RequestID    string   `json:"request_id"`
	Span         spanNode `json:"span"`
}

func readTraces(t *testing.T, dir string) []traceLine {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, obs.TracesFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []traceLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad traces.jsonl line %q: %v", sc.Text(), err)
		}
		out = append(out, l)
	}
	return out
}

func TestTraceMintedWhenAbsent(t *testing.T) {
	dir := t.TempDir()
	run, err := obs.OpenRunDir(dir, &obs.RunInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sampler = obs.NewSampler(1, 0, 0) // keep everything
	cfg.Traces = run.Traces()
	_, ts := newTestServer(t, cfg)

	resp, _ := postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	hdr := resp.Header.Get(obs.TraceparentHeader)
	tc, err := obs.ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", hdr, err)
	}
	if !tc.Sampled() {
		t.Errorf("p=1 sampler minted an unsampled context: %q", hdr)
	}
	recs := readTraces(t, dir)
	if len(recs) != 1 {
		t.Fatalf("kept %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.V != obs.SchemaVersion || rec.Kind != obs.TraceKindServer {
		t.Errorf("record v=%d kind=%q", rec.V, rec.Kind)
	}
	if rec.TraceID != tc.TraceIDString() || rec.SpanID != tc.SpanIDString() {
		t.Errorf("record ids %s/%s, response %s/%s", rec.TraceID, rec.SpanID, tc.TraceIDString(), tc.SpanIDString())
	}
	if rec.ParentSpanID != "" {
		t.Errorf("minted trace has parent %q, want none", rec.ParentSpanID)
	}
	if rec.RequestID == "" {
		t.Error("record carries no request ID")
	}
	if rec.Span.Name != "server(decide)" {
		t.Errorf("root span %q, want server(decide)", rec.Span.Name)
	}
	var names []string
	for _, c := range rec.Span.Children {
		names = append(names, c.Name)
	}
	if want := []string{"decode", "decide(Walmart)"}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("span children %v, want %v", names, want)
	}
}

func TestTraceAdoptedFromCaller(t *testing.T) {
	dir := t.TempDir()
	run, err := obs.OpenRunDir(dir, &obs.RunInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sampler = obs.NewSampler(0, 0, 0) // only the inbound flag keeps it
	cfg.Traces = run.Traces()
	_, ts := newTestServer(t, cfg)

	client := obs.NewTraceContext().WithSampled(true)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide",
		strings.NewReader(`{"requests": [{"dataset": "Walmart"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, client.Traceparent())
	req.Header.Set(RequestIDHeader, "client-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	echo, err := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if echo.TraceIDString() != client.TraceIDString() {
		t.Errorf("server changed the trace ID: %s -> %s", client.TraceIDString(), echo.TraceIDString())
	}
	if echo.SpanIDString() == client.SpanIDString() {
		t.Error("server reused the caller's span ID")
	}
	if !echo.Sampled() {
		t.Error("server dropped the sampled flag")
	}

	recs := readTraces(t, dir)
	if len(recs) != 1 {
		t.Fatalf("kept %d traces, want 1 (inbound sampled flag must be honored)", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != client.TraceIDString() {
		t.Errorf("record trace ID %s, want the caller's %s", rec.TraceID, client.TraceIDString())
	}
	if rec.ParentSpanID != client.SpanIDString() {
		t.Errorf("record parent %s, want the caller's span %s", rec.ParentSpanID, client.SpanIDString())
	}
	if rec.RequestID != "client-req-7" {
		t.Errorf("record request ID %q", rec.RequestID)
	}
}

func TestTraceTailPolicyOverHTTP(t *testing.T) {
	dir := t.TempDir()
	run, err := obs.OpenRunDir(dir, &obs.RunInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sampler = obs.NewSampler(0, 0, 0) // nothing head-sampled, no slow rule
	cfg.Traces = run.Traces()
	_, ts := newTestServer(t, cfg)

	// A fast, successful, unsampled request leaves nothing behind.
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	if recs := readTraces(t, dir); len(recs) != 0 {
		t.Fatalf("unsampled success kept %d traces, want 0", len(recs))
	}
	// An error is always kept.
	postRaw(t, ts, []byte(`{not json`))
	recs := readTraces(t, dir)
	if len(recs) != 1 {
		t.Fatalf("error kept %d traces, want 1", len(recs))
	}
	if recs[0].Span.Name != "server(decide)" {
		t.Errorf("error trace root %q", recs[0].Span.Name)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, _ := postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	if hdr := resp.Header.Get(obs.TraceparentHeader); hdr != "" {
		t.Errorf("tracing disabled but response carries traceparent %q", hdr)
	}
}

func TestSlowExemplarTraceIDAndLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Slow = time.Nanosecond // everything is slow
	cfg.Sampler = obs.NewSampler(0, 0, 0)
	_, ts := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})
	}

	get := func(url string) SlowResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", url, resp.StatusCode)
		}
		var out SlowResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	all := get(ts.URL + "/debug/slow")
	if len(all.Slow) < 3 {
		t.Fatalf("retained %d exemplars, want >= 3", len(all.Slow))
	}
	for _, sr := range all.Slow {
		if sr.TraceID == "" {
			t.Errorf("exemplar %s has no trace ID", sr.ID)
		}
	}
	limited := get(ts.URL + "/debug/slow?n=1")
	if len(limited.Slow) != 1 {
		t.Errorf("?n=1 returned %d exemplars", len(limited.Slow))
	}
	if limited.Total != all.Total {
		t.Errorf("?n=1 total = %d, want the all-time %d", limited.Total, all.Total)
	}
	if limited.Slow[0] != all.Slow[0] {
		t.Error("?n=1 did not return the newest exemplar")
	}
	resp, err := http.Get(ts.URL + "/debug/slow?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?n=bogus status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsBuildInfoAndSLOBurn(t *testing.T) {
	cfg := testConfig()
	cfg.Sampler = obs.NewSampler(1, 0, 0)
	cfg.SLOAvailability = 0.999
	cfg.SLOLatencyObjective = time.Second
	cfg.SLOLatencyTarget = 0.99
	_, ts := newTestServer(t, cfg)
	postDecide(t, ts, DecideRequest{Requests: []Query{{Dataset: "Walmart"}}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"# TYPE advisord_build_info gauge",
		`advisord_build_info{version="`,
		`commit="`,
		"advisord_traces_total ",
		"# TYPE advisord_slo_error_budget_burn gauge",
		`advisord_slo_error_budget_burn{slo="availability"} `,
		`advisord_slo_error_budget_burn{slo="latency"} `,
		"advisord_slo_availability_target 0.999",
		"advisord_slo_latency_objective_seconds 1",
		"advisord_slo_latency_target 0.99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A healthy service under the objective burns (close to) nothing.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `advisord_slo_error_budget_burn{slo="latency"} `) {
			if !strings.HasSuffix(line, " 0") {
				t.Errorf("latency burn %q, want 0 for sub-second requests", line)
			}
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestDrainWithConcurrentScrapesAndTraces extends the PR 7 drain test for the
// telemetry surfaces: /metrics scrapes and traced decide requests race a
// SIGTERM-style Shutdown. Run under -race this pins that the trace log, the
// sampler, the SLO gauges, and the drain path share no unsynchronized state.
func TestDrainWithConcurrentScrapesAndTraces(t *testing.T) {
	dir := t.TempDir()
	run, err := obs.OpenRunDir(dir, &obs.RunInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Sampler = obs.NewSampler(1, 1000, time.Nanosecond)
	cfg.Traces = run.Traces()
	cfg.SLOAvailability = 0.999
	cfg.SLOLatencyObjective = time.Millisecond
	cfg.SLOLatencyTarget = 0.99
	s := New(cfg)
	if err := s.Preload("Walmart"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := obs.NewTraceContext().WithSampled(true)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				if i%2 == 0 {
					req, _ := http.NewRequest(http.MethodPost, url+"/v1/decide",
						strings.NewReader(`{"requests": [{"dataset": "Walmart"}]}`))
					req.Header.Set(obs.TraceparentHeader, client.Child().Traceparent())
					resp, err = http.DefaultClient.Do(req)
				} else {
					resp, err = http.Get(url + "/metrics")
				}
				if err != nil {
					return // listener closed mid-drain: expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
	if err := run.Close(nil, nil); err != nil {
		t.Fatal(err)
	}
	if recs := readTraces(t, dir); len(recs) == 0 {
		t.Error("no traces persisted by sampled requests before the drain")
	}
}
