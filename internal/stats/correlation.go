package stats

import "math"

// Pearson returns the Pearson product-moment correlation coefficient between
// two equal-length series. It returns 0 when either series has zero variance
// or when the series are shorter than two points. The paper uses this to
// verify that the worst-case ROR is approximately linear in 1/sqrt(TR)
// (reported coefficient ≈ 0.97 in Figure 4(C)).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Mean returns the arithmetic mean of the series, or 0 for an empty series.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of the series, or 0 for a series
// shorter than two points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of the series.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RMSE returns the root mean squared error between predicted and true ordinal
// class indices, the error metric the paper uses for multi-class ordinal
// targets (§5.1). The slices must be the same length; extra entries in either
// are ignored.
func RMSE(pred, truth []int32) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := float64(pred[i] - truth[i])
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// ZeroOneError returns the fraction of positions where pred differs from
// truth, the error metric the paper uses for binary targets (§5.1).
func ZeroOneError(pred, truth []int32) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return 0
	}
	wrong := 0
	for i := 0; i < n; i++ {
		if pred[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(n)
}
