// Package stats provides the statistical primitives that the rest of
// Hamlet-Go is built on: information-theoretic quantities over nominal
// (categorical) variables, correlation measures, discrete samplers with and
// without skew, and deterministic random-number streams.
//
// All information-theoretic quantities use natural logarithms internally and
// are reported in bits (log base 2), matching the convention used in the
// paper's Appendix D guard "H(Y) < 0.5 bits ≈ a 90%:10% class split".
package stats

import "math"

// log2 converts a natural logarithm value to bits.
const log2 = math.Ln2

// EntropyCounts returns the Shannon entropy, in bits, of the empirical
// distribution induced by the given category counts. Zero counts contribute
// nothing. The entropy of an empty or all-zero count vector is 0.
func EntropyCounts(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log(p)
	}
	return h / log2
}

// EntropyProbs returns the Shannon entropy, in bits, of a probability vector.
// The vector need not be exactly normalized; it is renormalized defensively.
// Entries that are zero or negative contribute nothing.
func EntropyProbs(probs []float64) float64 {
	total := 0.0
	for _, p := range probs {
		if p > 0 {
			total += p
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range probs {
		if p <= 0 {
			continue
		}
		q := p / total
		h -= q * math.Log(q)
	}
	return h / log2
}

// Entropy returns the empirical Shannon entropy, in bits, of a column of
// category codes drawn from a domain of the given cardinality. Codes outside
// [0, card) are ignored.
func Entropy(codes []int32, card int) float64 {
	if card <= 0 || len(codes) == 0 {
		return 0
	}
	counts := make([]int, card)
	for _, v := range codes {
		if v >= 0 && int(v) < card {
			counts[v]++
		}
	}
	return EntropyCounts(counts)
}

// JointCounts tabulates the joint contingency table of two code columns.
// The result is a row-major cardA×cardB table: counts[a*cardB+b].
// The two slices must have equal length; codes outside range are ignored.
func JointCounts(a []int32, cardA int, b []int32, cardB int) []int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	counts := make([]int, cardA*cardB)
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if x < 0 || int(x) >= cardA || y < 0 || int(y) >= cardB {
			continue
		}
		counts[int(x)*cardB+int(y)]++
	}
	return counts
}

// MutualInformationCounts returns I(A;B) in bits from a row-major joint
// contingency table with cardA rows and cardB columns.
func MutualInformationCounts(joint []int, cardA, cardB int) float64 {
	if cardA <= 0 || cardB <= 0 || len(joint) < cardA*cardB {
		return 0
	}
	total := 0
	rowSums := make([]int, cardA)
	colSums := make([]int, cardB)
	for a := 0; a < cardA; a++ {
		for b := 0; b < cardB; b++ {
			c := joint[a*cardB+b]
			rowSums[a] += c
			colSums[b] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	ft := float64(total)
	mi := 0.0
	for a := 0; a < cardA; a++ {
		if rowSums[a] == 0 {
			continue
		}
		for b := 0; b < cardB; b++ {
			c := joint[a*cardB+b]
			if c == 0 {
				continue
			}
			pab := float64(c) / ft
			pa := float64(rowSums[a]) / ft
			pb := float64(colSums[b]) / ft
			mi += pab * math.Log(pab/(pa*pb))
		}
	}
	if mi < 0 {
		// Guard against tiny negative values from floating-point error.
		mi = 0
	}
	return mi / log2
}

// MutualInformation returns the empirical mutual information I(A;B), in bits,
// between two columns of category codes.
func MutualInformation(a []int32, cardA int, b []int32, cardB int) float64 {
	return MutualInformationCounts(JointCounts(a, cardA, b, cardB), cardA, cardB)
}

// InformationGainRatio returns IGR(F;Y) = I(F;Y)/H(F), the mutual information
// between a feature and the target normalized by the feature's own entropy.
// This is the relevancy score from the paper's §3.1.2 that can prefer foreign
// features over the FK because it penalizes large domains. If H(F) is zero
// (constant feature) the ratio is defined as 0.
func InformationGainRatio(f []int32, cardF int, y []int32, cardY int) float64 {
	hf := Entropy(f, cardF)
	if hf == 0 {
		return 0
	}
	return MutualInformation(f, cardF, y, cardY) / hf
}

// ConditionalEntropy returns H(A|B) in bits, the expected entropy of A given
// B, estimated from the two code columns. By the chain rule
// H(A|B) = H(A) − I(A;B); we compute it directly from counts for stability.
func ConditionalEntropy(a []int32, cardA int, b []int32, cardB int) float64 {
	joint := JointCounts(a, cardA, b, cardB)
	total := 0
	for _, c := range joint {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for bv := 0; bv < cardB; bv++ {
		colTotal := 0
		for av := 0; av < cardA; av++ {
			colTotal += joint[av*cardB+bv]
		}
		if colTotal == 0 {
			continue
		}
		fct := float64(colTotal)
		hcol := 0.0
		for av := 0; av < cardA; av++ {
			c := joint[av*cardB+bv]
			if c == 0 {
				continue
			}
			p := float64(c) / fct
			hcol -= p * math.Log(p)
		}
		h += fct / float64(total) * hcol
	}
	return h / log2
}

// ConditionalMutualInformation returns I(A;B|C) in bits, used by the TAN
// structure learner (Appendix E) to weight candidate tree edges. It is
// computed as Σ_c P(c) · I(A;B | C=c) from the three code columns.
func ConditionalMutualInformation(a []int32, cardA int, b []int32, cardB int, c []int32, cardC int) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(c) < n {
		n = len(c)
	}
	if n == 0 || cardA <= 0 || cardB <= 0 || cardC <= 0 {
		return 0
	}
	// Partition rows by the conditioning value and accumulate per-slice MI.
	perC := make([][]int, cardC)
	counts := make([]int, cardC)
	for idx := range perC {
		perC[idx] = make([]int, cardA*cardB)
	}
	for i := 0; i < n; i++ {
		av, bv, cv := a[i], b[i], c[i]
		if av < 0 || int(av) >= cardA || bv < 0 || int(bv) >= cardB || cv < 0 || int(cv) >= cardC {
			continue
		}
		perC[cv][int(av)*cardB+int(bv)]++
		counts[cv]++
	}
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	if total == 0 {
		return 0
	}
	cmi := 0.0
	for cv := 0; cv < cardC; cv++ {
		if counts[cv] == 0 {
			continue
		}
		w := float64(counts[cv]) / float64(total)
		cmi += w * MutualInformationCounts(perC[cv], cardA, cardB)
	}
	return cmi
}
